file(REMOVE_RECURSE
  "CMakeFiles/test_dht_failures.dir/test_dht_failures.cpp.o"
  "CMakeFiles/test_dht_failures.dir/test_dht_failures.cpp.o.d"
  "test_dht_failures"
  "test_dht_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dht_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
