# Empty dependencies file for test_dht_failures.
# This may be replaced when dependencies are built.
