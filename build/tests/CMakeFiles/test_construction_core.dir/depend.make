# Empty dependencies file for test_construction_core.
# This may be replaced when dependencies are built.
