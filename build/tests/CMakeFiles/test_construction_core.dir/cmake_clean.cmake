file(REMOVE_RECURSE
  "CMakeFiles/test_construction_core.dir/test_construction_core.cpp.o"
  "CMakeFiles/test_construction_core.dir/test_construction_core.cpp.o.d"
  "test_construction_core"
  "test_construction_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_construction_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
