# Empty dependencies file for test_sufficiency.
# This may be replaced when dependencies are built.
