file(REMOVE_RECURSE
  "CMakeFiles/test_sufficiency.dir/test_sufficiency.cpp.o"
  "CMakeFiles/test_sufficiency.dir/test_sufficiency.cpp.o.d"
  "test_sufficiency"
  "test_sufficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sufficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
