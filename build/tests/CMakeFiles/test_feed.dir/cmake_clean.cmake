file(REMOVE_RECURSE
  "CMakeFiles/test_feed.dir/test_feed.cpp.o"
  "CMakeFiles/test_feed.dir/test_feed.cpp.o.d"
  "test_feed"
  "test_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
