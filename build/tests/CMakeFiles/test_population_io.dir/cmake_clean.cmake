file(REMOVE_RECURSE
  "CMakeFiles/test_population_io.dir/test_population_io.cpp.o"
  "CMakeFiles/test_population_io.dir/test_population_io.cpp.o.d"
  "test_population_io"
  "test_population_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_population_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
