# Empty dependencies file for test_live.
# This may be replaced when dependencies are built.
