file(REMOVE_RECURSE
  "CMakeFiles/test_live.dir/test_live.cpp.o"
  "CMakeFiles/test_live.dir/test_live.cpp.o.d"
  "test_live"
  "test_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
