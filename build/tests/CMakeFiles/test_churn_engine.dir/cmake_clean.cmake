file(REMOVE_RECURSE
  "CMakeFiles/test_churn_engine.dir/test_churn_engine.cpp.o"
  "CMakeFiles/test_churn_engine.dir/test_churn_engine.cpp.o.d"
  "test_churn_engine"
  "test_churn_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_churn_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
