# Empty dependencies file for test_churn_engine.
# This may be replaced when dependencies are built.
