file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_realizations.dir/test_oracle_realizations.cpp.o"
  "CMakeFiles/test_oracle_realizations.dir/test_oracle_realizations.cpp.o.d"
  "test_oracle_realizations"
  "test_oracle_realizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_realizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
