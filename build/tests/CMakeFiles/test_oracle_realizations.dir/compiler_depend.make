# Empty compiler generated dependencies file for test_oracle_realizations.
# This may be replaced when dependencies are built.
