# Empty compiler generated dependencies file for test_fanout_greedy.
# This may be replaced when dependencies are built.
