file(REMOVE_RECURSE
  "CMakeFiles/test_fanout_greedy.dir/test_fanout_greedy.cpp.o"
  "CMakeFiles/test_fanout_greedy.dir/test_fanout_greedy.cpp.o.d"
  "test_fanout_greedy"
  "test_fanout_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fanout_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
