# Empty dependencies file for test_multi_feed.
# This may be replaced when dependencies are built.
