file(REMOVE_RECURSE
  "CMakeFiles/test_multi_feed.dir/test_multi_feed.cpp.o"
  "CMakeFiles/test_multi_feed.dir/test_multi_feed.cpp.o.d"
  "test_multi_feed"
  "test_multi_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
