file(REMOVE_RECURSE
  "CMakeFiles/lagover_baseline.dir/feedtree.cpp.o"
  "CMakeFiles/lagover_baseline.dir/feedtree.cpp.o.d"
  "CMakeFiles/lagover_baseline.dir/polling.cpp.o"
  "CMakeFiles/lagover_baseline.dir/polling.cpp.o.d"
  "liblagover_baseline.a"
  "liblagover_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
