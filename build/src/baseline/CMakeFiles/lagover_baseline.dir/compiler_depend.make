# Empty compiler generated dependencies file for lagover_baseline.
# This may be replaced when dependencies are built.
