file(REMOVE_RECURSE
  "liblagover_baseline.a"
)
