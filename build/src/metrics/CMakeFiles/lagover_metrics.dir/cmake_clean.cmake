file(REMOVE_RECURSE
  "CMakeFiles/lagover_metrics.dir/experiment.cpp.o"
  "CMakeFiles/lagover_metrics.dir/experiment.cpp.o.d"
  "CMakeFiles/lagover_metrics.dir/tree_metrics.cpp.o"
  "CMakeFiles/lagover_metrics.dir/tree_metrics.cpp.o.d"
  "liblagover_metrics.a"
  "liblagover_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
