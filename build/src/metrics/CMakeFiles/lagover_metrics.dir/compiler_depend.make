# Empty compiler generated dependencies file for lagover_metrics.
# This may be replaced when dependencies are built.
