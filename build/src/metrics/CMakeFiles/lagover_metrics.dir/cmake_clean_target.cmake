file(REMOVE_RECURSE
  "liblagover_metrics.a"
)
