
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/chord.cpp" "src/dht/CMakeFiles/lagover_dht.dir/chord.cpp.o" "gcc" "src/dht/CMakeFiles/lagover_dht.dir/chord.cpp.o.d"
  "/root/repo/src/dht/directory.cpp" "src/dht/CMakeFiles/lagover_dht.dir/directory.cpp.o" "gcc" "src/dht/CMakeFiles/lagover_dht.dir/directory.cpp.o.d"
  "/root/repo/src/dht/hash_space.cpp" "src/dht/CMakeFiles/lagover_dht.dir/hash_space.cpp.o" "gcc" "src/dht/CMakeFiles/lagover_dht.dir/hash_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lagover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lagover_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lagover_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lagover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lagover_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
