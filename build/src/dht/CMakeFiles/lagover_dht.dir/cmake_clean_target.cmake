file(REMOVE_RECURSE
  "liblagover_dht.a"
)
