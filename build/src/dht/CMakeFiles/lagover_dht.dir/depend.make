# Empty dependencies file for lagover_dht.
# This may be replaced when dependencies are built.
