file(REMOVE_RECURSE
  "CMakeFiles/lagover_dht.dir/chord.cpp.o"
  "CMakeFiles/lagover_dht.dir/chord.cpp.o.d"
  "CMakeFiles/lagover_dht.dir/directory.cpp.o"
  "CMakeFiles/lagover_dht.dir/directory.cpp.o.d"
  "CMakeFiles/lagover_dht.dir/hash_space.cpp.o"
  "CMakeFiles/lagover_dht.dir/hash_space.cpp.o.d"
  "liblagover_dht.a"
  "liblagover_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
