
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/adversarial.cpp" "src/workload/CMakeFiles/lagover_workload.dir/adversarial.cpp.o" "gcc" "src/workload/CMakeFiles/lagover_workload.dir/adversarial.cpp.o.d"
  "/root/repo/src/workload/churn.cpp" "src/workload/CMakeFiles/lagover_workload.dir/churn.cpp.o" "gcc" "src/workload/CMakeFiles/lagover_workload.dir/churn.cpp.o.d"
  "/root/repo/src/workload/constraints.cpp" "src/workload/CMakeFiles/lagover_workload.dir/constraints.cpp.o" "gcc" "src/workload/CMakeFiles/lagover_workload.dir/constraints.cpp.o.d"
  "/root/repo/src/workload/population_io.cpp" "src/workload/CMakeFiles/lagover_workload.dir/population_io.cpp.o" "gcc" "src/workload/CMakeFiles/lagover_workload.dir/population_io.cpp.o.d"
  "/root/repo/src/workload/sessions.cpp" "src/workload/CMakeFiles/lagover_workload.dir/sessions.cpp.o" "gcc" "src/workload/CMakeFiles/lagover_workload.dir/sessions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lagover_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lagover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lagover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lagover_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
