file(REMOVE_RECURSE
  "CMakeFiles/lagover_workload.dir/adversarial.cpp.o"
  "CMakeFiles/lagover_workload.dir/adversarial.cpp.o.d"
  "CMakeFiles/lagover_workload.dir/churn.cpp.o"
  "CMakeFiles/lagover_workload.dir/churn.cpp.o.d"
  "CMakeFiles/lagover_workload.dir/constraints.cpp.o"
  "CMakeFiles/lagover_workload.dir/constraints.cpp.o.d"
  "CMakeFiles/lagover_workload.dir/population_io.cpp.o"
  "CMakeFiles/lagover_workload.dir/population_io.cpp.o.d"
  "CMakeFiles/lagover_workload.dir/sessions.cpp.o"
  "CMakeFiles/lagover_workload.dir/sessions.cpp.o.d"
  "liblagover_workload.a"
  "liblagover_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
