# Empty dependencies file for lagover_workload.
# This may be replaced when dependencies are built.
