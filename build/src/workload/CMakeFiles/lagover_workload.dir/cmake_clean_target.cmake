file(REMOVE_RECURSE
  "liblagover_workload.a"
)
