# Empty compiler generated dependencies file for lagover_sim.
# This may be replaced when dependencies are built.
