file(REMOVE_RECURSE
  "liblagover_sim.a"
)
