file(REMOVE_RECURSE
  "CMakeFiles/lagover_sim.dir/simulator.cpp.o"
  "CMakeFiles/lagover_sim.dir/simulator.cpp.o.d"
  "liblagover_sim.a"
  "liblagover_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
