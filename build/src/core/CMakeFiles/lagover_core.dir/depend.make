# Empty dependencies file for lagover_core.
# This may be replaced when dependencies are built.
