file(REMOVE_RECURSE
  "liblagover_core.a"
)
