
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_engine.cpp" "src/core/CMakeFiles/lagover_core.dir/async_engine.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/async_engine.cpp.o.d"
  "/root/repo/src/core/construction_core.cpp" "src/core/CMakeFiles/lagover_core.dir/construction_core.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/construction_core.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/lagover_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/fanout_greedy.cpp" "src/core/CMakeFiles/lagover_core.dir/fanout_greedy.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/fanout_greedy.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/lagover_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/lagover_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/locality.cpp" "src/core/CMakeFiles/lagover_core.dir/locality.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/locality.cpp.o.d"
  "/root/repo/src/core/multi_feed.cpp" "src/core/CMakeFiles/lagover_core.dir/multi_feed.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/multi_feed.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/lagover_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/lagover_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/lagover_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/lagover_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/lagover_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/snapshot.cpp.o.d"
  "/root/repo/src/core/sufficiency.cpp" "src/core/CMakeFiles/lagover_core.dir/sufficiency.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/sufficiency.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/lagover_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/types.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/lagover_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/lagover_core.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lagover_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lagover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lagover_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
