# Empty compiler generated dependencies file for lagover_gossip.
# This may be replaced when dependencies are built.
