file(REMOVE_RECURSE
  "CMakeFiles/lagover_gossip.dir/unstructured.cpp.o"
  "CMakeFiles/lagover_gossip.dir/unstructured.cpp.o.d"
  "liblagover_gossip.a"
  "liblagover_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
