file(REMOVE_RECURSE
  "liblagover_gossip.a"
)
