# Empty compiler generated dependencies file for lagover_stats.
# This may be replaced when dependencies are built.
