file(REMOVE_RECURSE
  "CMakeFiles/lagover_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/lagover_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/lagover_stats.dir/histogram.cpp.o"
  "CMakeFiles/lagover_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/lagover_stats.dir/sample.cpp.o"
  "CMakeFiles/lagover_stats.dir/sample.cpp.o.d"
  "CMakeFiles/lagover_stats.dir/summary.cpp.o"
  "CMakeFiles/lagover_stats.dir/summary.cpp.o.d"
  "CMakeFiles/lagover_stats.dir/timeseries.cpp.o"
  "CMakeFiles/lagover_stats.dir/timeseries.cpp.o.d"
  "liblagover_stats.a"
  "liblagover_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
