file(REMOVE_RECURSE
  "liblagover_stats.a"
)
