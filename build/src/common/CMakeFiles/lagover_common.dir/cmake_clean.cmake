file(REMOVE_RECURSE
  "CMakeFiles/lagover_common.dir/flags.cpp.o"
  "CMakeFiles/lagover_common.dir/flags.cpp.o.d"
  "CMakeFiles/lagover_common.dir/json.cpp.o"
  "CMakeFiles/lagover_common.dir/json.cpp.o.d"
  "CMakeFiles/lagover_common.dir/table.cpp.o"
  "CMakeFiles/lagover_common.dir/table.cpp.o.d"
  "liblagover_common.a"
  "liblagover_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
