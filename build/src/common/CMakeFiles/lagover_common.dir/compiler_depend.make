# Empty compiler generated dependencies file for lagover_common.
# This may be replaced when dependencies are built.
