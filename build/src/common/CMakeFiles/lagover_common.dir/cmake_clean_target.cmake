file(REMOVE_RECURSE
  "liblagover_common.a"
)
