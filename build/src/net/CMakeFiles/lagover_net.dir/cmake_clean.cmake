file(REMOVE_RECURSE
  "CMakeFiles/lagover_net.dir/latency_model.cpp.o"
  "CMakeFiles/lagover_net.dir/latency_model.cpp.o.d"
  "liblagover_net.a"
  "liblagover_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
