# Empty compiler generated dependencies file for lagover_net.
# This may be replaced when dependencies are built.
