file(REMOVE_RECURSE
  "liblagover_net.a"
)
