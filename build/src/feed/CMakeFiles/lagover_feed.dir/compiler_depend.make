# Empty compiler generated dependencies file for lagover_feed.
# This may be replaced when dependencies are built.
