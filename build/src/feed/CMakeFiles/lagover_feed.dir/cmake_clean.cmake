file(REMOVE_RECURSE
  "CMakeFiles/lagover_feed.dir/dissemination.cpp.o"
  "CMakeFiles/lagover_feed.dir/dissemination.cpp.o.d"
  "CMakeFiles/lagover_feed.dir/feed.cpp.o"
  "CMakeFiles/lagover_feed.dir/feed.cpp.o.d"
  "CMakeFiles/lagover_feed.dir/live.cpp.o"
  "CMakeFiles/lagover_feed.dir/live.cpp.o.d"
  "CMakeFiles/lagover_feed.dir/reliability.cpp.o"
  "CMakeFiles/lagover_feed.dir/reliability.cpp.o.d"
  "liblagover_feed.a"
  "liblagover_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
