file(REMOVE_RECURSE
  "liblagover_feed.a"
)
