file(REMOVE_RECURSE
  "../bench/bench_live_churn"
  "../bench/bench_live_churn.pdb"
  "CMakeFiles/bench_live_churn.dir/bench_live_churn.cpp.o"
  "CMakeFiles/bench_live_churn.dir/bench_live_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
