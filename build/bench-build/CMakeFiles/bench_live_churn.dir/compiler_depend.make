# Empty compiler generated dependencies file for bench_live_churn.
# This may be replaced when dependencies are built.
