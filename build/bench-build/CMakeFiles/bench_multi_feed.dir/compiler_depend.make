# Empty compiler generated dependencies file for bench_multi_feed.
# This may be replaced when dependencies are built.
