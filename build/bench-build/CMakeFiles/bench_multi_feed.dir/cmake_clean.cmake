file(REMOVE_RECURSE
  "../bench/bench_multi_feed"
  "../bench/bench_multi_feed.pdb"
  "CMakeFiles/bench_multi_feed.dir/bench_multi_feed.cpp.o"
  "CMakeFiles/bench_multi_feed.dir/bench_multi_feed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
