# Empty dependencies file for bench_fig2_convergence_variation.
# This may be replaced when dependencies are built.
