# Empty dependencies file for bench_fig1_toy_trace.
# This may be replaced when dependencies are built.
