# Empty dependencies file for bench_fig3_oracles.
# This may be replaced when dependencies are built.
