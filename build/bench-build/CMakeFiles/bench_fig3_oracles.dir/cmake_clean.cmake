file(REMOVE_RECURSE
  "../bench/bench_fig3_oracles"
  "../bench/bench_fig3_oracles.pdb"
  "CMakeFiles/bench_fig3_oracles.dir/bench_fig3_oracles.cpp.o"
  "CMakeFiles/bench_fig3_oracles.dir/bench_fig3_oracles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
