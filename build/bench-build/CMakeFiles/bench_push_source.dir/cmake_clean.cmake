file(REMOVE_RECURSE
  "../bench/bench_push_source"
  "../bench/bench_push_source.pdb"
  "CMakeFiles/bench_push_source.dir/bench_push_source.cpp.o"
  "CMakeFiles/bench_push_source.dir/bench_push_source.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_push_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
