# Empty dependencies file for bench_push_source.
# This may be replaced when dependencies are built.
