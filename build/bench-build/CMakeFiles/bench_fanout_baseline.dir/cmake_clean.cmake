file(REMOVE_RECURSE
  "../bench/bench_fanout_baseline"
  "../bench/bench_fanout_baseline.pdb"
  "CMakeFiles/bench_fanout_baseline.dir/bench_fanout_baseline.cpp.o"
  "CMakeFiles/bench_fanout_baseline.dir/bench_fanout_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanout_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
