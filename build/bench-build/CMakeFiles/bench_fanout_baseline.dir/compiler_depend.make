# Empty compiler generated dependencies file for bench_fanout_baseline.
# This may be replaced when dependencies are built.
