file(REMOVE_RECURSE
  "../bench/bench_flash_crowd"
  "../bench/bench_flash_crowd.pdb"
  "CMakeFiles/bench_flash_crowd.dir/bench_flash_crowd.cpp.o"
  "CMakeFiles/bench_flash_crowd.dir/bench_flash_crowd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
