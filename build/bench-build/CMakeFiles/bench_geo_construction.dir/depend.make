# Empty dependencies file for bench_geo_construction.
# This may be replaced when dependencies are built.
