file(REMOVE_RECURSE
  "../bench/bench_geo_construction"
  "../bench/bench_geo_construction.pdb"
  "CMakeFiles/bench_geo_construction.dir/bench_geo_construction.cpp.o"
  "CMakeFiles/bench_geo_construction.dir/bench_geo_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
