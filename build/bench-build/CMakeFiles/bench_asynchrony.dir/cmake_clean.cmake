file(REMOVE_RECURSE
  "../bench/bench_asynchrony"
  "../bench/bench_asynchrony.pdb"
  "CMakeFiles/bench_asynchrony.dir/bench_asynchrony.cpp.o"
  "CMakeFiles/bench_asynchrony.dir/bench_asynchrony.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asynchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
