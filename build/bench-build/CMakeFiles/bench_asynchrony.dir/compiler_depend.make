# Empty compiler generated dependencies file for bench_asynchrony.
# This may be replaced when dependencies are built.
