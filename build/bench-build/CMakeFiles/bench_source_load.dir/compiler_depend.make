# Empty compiler generated dependencies file for bench_source_load.
# This may be replaced when dependencies are built.
