file(REMOVE_RECURSE
  "../bench/bench_source_load"
  "../bench/bench_source_load.pdb"
  "CMakeFiles/bench_source_load.dir/bench_source_load.cpp.o"
  "CMakeFiles/bench_source_load.dir/bench_source_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_source_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
