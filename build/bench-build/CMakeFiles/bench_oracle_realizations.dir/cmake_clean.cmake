file(REMOVE_RECURSE
  "../bench/bench_oracle_realizations"
  "../bench/bench_oracle_realizations.pdb"
  "CMakeFiles/bench_oracle_realizations.dir/bench_oracle_realizations.cpp.o"
  "CMakeFiles/bench_oracle_realizations.dir/bench_oracle_realizations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_realizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
