# Empty compiler generated dependencies file for bench_oracle_realizations.
# This may be replaced when dependencies are built.
