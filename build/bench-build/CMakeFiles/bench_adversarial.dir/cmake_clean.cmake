file(REMOVE_RECURSE
  "../bench/bench_adversarial"
  "../bench/bench_adversarial.pdb"
  "CMakeFiles/bench_adversarial.dir/bench_adversarial.cpp.o"
  "CMakeFiles/bench_adversarial.dir/bench_adversarial.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
