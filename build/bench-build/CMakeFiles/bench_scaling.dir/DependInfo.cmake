
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cpp" "bench-build/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o" "gcc" "bench-build/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/lagover_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/feed/CMakeFiles/lagover_feed.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/lagover_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/lagover_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lagover_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lagover_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lagover_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lagover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lagover_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lagover_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lagover_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
