# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "--peers" "40")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_rss_aggregator "/root/repo/build/examples/rss_aggregator" "--peers" "40")
set_tests_properties(smoke_rss_aggregator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_churn_resilience "/root/repo/build/examples/churn_resilience" "--peers" "40" "--rounds" "200")
set_tests_properties(smoke_churn_resilience PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_adversarial_workload "/root/repo/build/examples/adversarial_workload" "--k" "2")
set_tests_properties(smoke_adversarial_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_multipath_video "/root/repo/build/examples/multipath_video" "--peers" "30" "--stripes" "2")
set_tests_properties(smoke_multipath_video PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_live_swarm "/root/repo/build/examples/live_swarm" "--peers" "40")
set_tests_properties(smoke_live_swarm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
