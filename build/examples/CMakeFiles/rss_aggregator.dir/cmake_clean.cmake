file(REMOVE_RECURSE
  "CMakeFiles/rss_aggregator.dir/rss_aggregator.cpp.o"
  "CMakeFiles/rss_aggregator.dir/rss_aggregator.cpp.o.d"
  "rss_aggregator"
  "rss_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
