# Empty dependencies file for rss_aggregator.
# This may be replaced when dependencies are built.
