# Empty compiler generated dependencies file for lagover_cli.
# This may be replaced when dependencies are built.
