file(REMOVE_RECURSE
  "CMakeFiles/lagover_cli.dir/lagover_cli.cpp.o"
  "CMakeFiles/lagover_cli.dir/lagover_cli.cpp.o.d"
  "lagover_cli"
  "lagover_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagover_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
