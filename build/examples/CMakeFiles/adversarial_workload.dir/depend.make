# Empty dependencies file for adversarial_workload.
# This may be replaced when dependencies are built.
