file(REMOVE_RECURSE
  "CMakeFiles/adversarial_workload.dir/adversarial_workload.cpp.o"
  "CMakeFiles/adversarial_workload.dir/adversarial_workload.cpp.o.d"
  "adversarial_workload"
  "adversarial_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
