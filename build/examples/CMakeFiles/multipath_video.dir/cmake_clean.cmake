file(REMOVE_RECURSE
  "CMakeFiles/multipath_video.dir/multipath_video.cpp.o"
  "CMakeFiles/multipath_video.dir/multipath_video.cpp.o.d"
  "multipath_video"
  "multipath_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
