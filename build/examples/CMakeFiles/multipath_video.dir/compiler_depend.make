# Empty compiler generated dependencies file for multipath_video.
# This may be replaced when dependencies are built.
