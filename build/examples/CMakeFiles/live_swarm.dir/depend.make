# Empty dependencies file for live_swarm.
# This may be replaced when dependencies are built.
