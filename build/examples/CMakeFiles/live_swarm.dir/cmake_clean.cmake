file(REMOVE_RECURSE
  "CMakeFiles/live_swarm.dir/live_swarm.cpp.o"
  "CMakeFiles/live_swarm.dir/live_swarm.cpp.o.d"
  "live_swarm"
  "live_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
