// Asynchronous construction (paper Section 5.3 end): asynchrony slows
// construction but does not affect eventual convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/async_engine.hpp"
#include "stats/sample.hpp"
#include "workload/churn.hpp"
#include "workload/adversarial.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population workload(WorkloadKind kind, std::size_t peers,
                    std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(kind, params);
}

TEST(AsyncEngineTest, ConvergesOnAllWorkloads) {
  for (auto kind : kAllWorkloads) {
    AsyncConfig config;
    config.seed = 11;
    AsyncEngine engine(workload(kind, 60, 7), config);
    const auto converged = engine.run_until_converged(/*horizon=*/20000.0);
    ASSERT_TRUE(converged.has_value()) << to_string(kind);
    EXPECT_TRUE(engine.overlay().all_satisfied()) << to_string(kind);
  }
}

TEST(AsyncEngineTest, GreedyAlsoConvergesAsynchronously) {
  AsyncConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.seed = 13;
  AsyncEngine engine(workload(WorkloadKind::kRand, 60, 3), config);
  const auto converged = engine.run_until_converged(20000.0);
  ASSERT_TRUE(converged.has_value());
  EXPECT_EQ(engine.overlay().first_greedy_order_violation(), kNoNode);
}

TEST(AsyncEngineTest, HybridSolvesAdversarialAsynchronously) {
  AsyncConfig config;
  config.seed = 17;
  AsyncEngine engine(adversarial_family(4), config);
  EXPECT_TRUE(engine.run_until_converged(50000.0).has_value());
}

TEST(AsyncEngineTest, DeterministicGivenSeed) {
  AsyncConfig config;
  config.seed = 19;
  const Population population = workload(WorkloadKind::kBiUnCorr, 40, 5);
  AsyncEngine a(population, config);
  AsyncEngine b(population, config);
  const auto ra = a.run_until_converged(20000.0);
  const auto rb = b.run_until_converged(20000.0);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_DOUBLE_EQ(*ra, *rb);
}

TEST(AsyncEngineTest, AcceptsInjectedOracle) {
  const Population population = workload(WorkloadKind::kBiUnCorr, 40, 21);
  AsyncConfig config;
  config.seed = 31;
  AsyncEngine engine(population, config);
  engine.set_oracle(make_oracle(OracleKind::kRandom));
  const auto converged = engine.run_until_converged(30000.0);
  ASSERT_TRUE(converged.has_value());
  EXPECT_EQ(engine.oracle().kind(), OracleKind::kRandom);
  EXPECT_GT(engine.oracle().stats().queries, 0u);
}

TEST(AsyncEngineTest, NetworkLatencySlowsConstruction) {
  const Population population = workload(WorkloadKind::kBiUnCorr, 60, 23);
  Sample baseline_times;
  Sample rtt_times;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AsyncConfig config;
    config.min_interaction_time = 0.2;
    config.max_interaction_time = 0.6;
    config.seed = seed;
    AsyncEngine baseline(population, config);
    const auto base = baseline.run_until_converged(50000.0);
    ASSERT_TRUE(base.has_value());
    baseline_times.add(*base);

    AsyncConfig with_rtt = config;
    with_rtt.network_latency = std::make_shared<net::ConstantLatency>(1.0);
    with_rtt.rtt_weight = 1.0;  // +2.0 per interaction
    AsyncEngine slower(population, with_rtt);
    const auto slow = slower.run_until_converged(50000.0);
    ASSERT_TRUE(slow.has_value());
    rtt_times.add(*slow);
  }
  EXPECT_GT(rtt_times.median(), baseline_times.median());
}

TEST(AsyncEngineTest, SustainsSatisfactionUnderChurn) {
  AsyncConfig config;
  config.seed = 41;
  AsyncEngine engine(workload(WorkloadKind::kBiUnCorr, 80, 25), config);
  engine.set_churn(std::make_unique<BernoulliChurn>(0.01, 0.2));
  // Warm up, then sample the satisfied fraction across a long window.
  engine.run_for(200.0);
  double sum = 0.0;
  int samples = 0;
  for (int window = 0; window < 20; ++window) {
    sum += engine.run_for(20.0);
    ++samples;
  }
  engine.overlay().audit();
  EXPECT_GT(sum / samples, 0.8);
}

TEST(AsyncEngineTest, RecoversAfterChurnWindow) {
  AsyncConfig config;
  config.seed = 43;
  AsyncEngine engine(workload(WorkloadKind::kRand, 60, 27), config);
  engine.set_churn(std::make_unique<WindowedChurn>(
      /*active_rounds=*/150, 0.02, 0.2));
  engine.run_for(400.0);
  // Churn ended at t=150 and everyone rejoined; the overlay must be
  // fully satisfied again by now.
  EXPECT_DOUBLE_EQ(engine.overlay().satisfied_fraction(), 1.0);
}

TEST(AsyncEngineTest, SlowerInteractionsDelayConvergence) {
  // Mean interaction duration 3x: convergence time should grow
  // substantially (the paper's "asynchrony slowed down the overlay
  // construction"). Compare medians over several seeds to tame variance.
  const Population population = workload(WorkloadKind::kBiCorr, 60, 9);
  std::vector<double> fast_times;
  std::vector<double> slow_times;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AsyncConfig fast;
    fast.min_interaction_time = 0.5;
    fast.max_interaction_time = 1.5;
    fast.seed = seed;
    AsyncEngine fast_engine(population, fast);
    const auto fast_result = fast_engine.run_until_converged(50000.0);
    ASSERT_TRUE(fast_result.has_value());
    fast_times.push_back(*fast_result);

    AsyncConfig slow = fast;
    slow.min_interaction_time = 1.5;
    slow.max_interaction_time = 4.5;
    AsyncEngine slow_engine(population, slow);
    const auto slow_result = slow_engine.run_until_converged(50000.0);
    ASSERT_TRUE(slow_result.has_value());
    slow_times.push_back(*slow_result);
  }
  std::sort(fast_times.begin(), fast_times.end());
  std::sort(slow_times.begin(), slow_times.end());
  EXPECT_GT(slow_times[2], fast_times[2]);
}

}  // namespace
}  // namespace lagover
