// Tests for the overlay health observatory (telemetry/health): the
// property at its heart is that the recorder's incremental mirror —
// maintained in O(changed nodes) from edge events — agrees with an
// independent BFS recompute (crosscheck_health) after EVERY round of a
// seeded greedy and hybrid sweep under churn and chaos. Plus: the
// byte-identical guard (an active recorder changes no engine decision),
// convergence-tracker semantics, stream stride doubling, and the shape
// of the embedded bench-JSON health block.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using telemetry::OverlayHealthRecorder;

/// Scoped telemetry enable that restores the previous state and leaves
/// the global registries clean (mirrors test_telemetry.cpp).
class TelemetryGuard {
 public:
  explicit TelemetryGuard(bool on) : previous_(telemetry::enabled()) {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::set_enabled(on);
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(previous_);
    telemetry::MetricsRegistry::instance().reset();
  }

 private:
  bool previous_;
};

/// Scoped health-recorder activation; deactivates on exit.
class HealthGuard {
 public:
  explicit HealthGuard(OverlayHealthRecorder::Config config = {})
      : recorder_(std::make_unique<OverlayHealthRecorder>(config)) {
    OverlayHealthRecorder::set_active(recorder_.get());
  }
  ~HealthGuard() { OverlayHealthRecorder::set_active(nullptr); }

  OverlayHealthRecorder& recorder() { return *recorder_; }

 private:
  std::unique_ptr<OverlayHealthRecorder> recorder_;
};

Population population(WorkloadKind kind, std::size_t peers,
                      std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(kind, params);
}

// ------------------------------------------------- the core property

// Greedy and hybrid construction under Bernoulli churn, several seeds:
// after every round the incremental aggregates must match the
// independent recompute exactly — zero "health_mismatch" violations.
TEST(HealthPropertyTest, MirrorMatchesBfsRecomputeEveryRoundUnderChurn) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (std::uint64_t seed : {3u, 17u, 29u}) {
      TelemetryGuard telemetry_guard(true);
      HealthGuard health_guard;
      EngineConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      Engine engine(population(WorkloadKind::kBiCorr, 60, seed), config);
      engine.set_churn(std::make_unique<BernoulliChurn>(0.02, 0.2));
      const std::uint64_t run = health_guard.recorder().current_run();
      ASSERT_NE(run, 0u);
      std::size_t rounds_checked = 0;
      for (int round = 0; round < 150; ++round) {
        engine.run_round();
        const InvariantReport report = crosscheck_health(
            engine.overlay(), health_guard.recorder(), run);
        ASSERT_TRUE(report.ok())
            << "algorithm=" << static_cast<int>(algorithm)
            << " seed=" << seed << " round=" << round << "\n"
            << report.to_string();
        rounds_checked += report.nodes_checked > 0 ? 1 : 0;
      }
      // The sweep must not pass vacuously.
      EXPECT_EQ(rounds_checked, 150u);
    }
  }
}

// Same property through the async engine under a chaos fault plan
// (crashes take nodes offline and back online mid-run).
TEST(HealthPropertyTest, MirrorMatchesRecomputeUnderAsyncChaos) {
  TelemetryGuard telemetry_guard(true);
  HealthGuard health_guard;
  AsyncConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 41;
  fault::FaultPlan plan;
  plan.add(fault::FaultPlan::crashes(5.0, 60.0, 0.03, 5.0))
      .add(fault::FaultPlan::drop(20.0, 50.0, 0.2));
  config.faults = std::make_shared<fault::FaultInjector>(plan);
  AsyncEngine engine(population(WorkloadKind::kRand, 50, 13), config);
  const std::uint64_t run = health_guard.recorder().current_run();
  ASSERT_NE(run, 0u);
  for (int window = 0; window < 20; ++window) {
    engine.run_for(5.0);
    const InvariantReport report = crosscheck_health(
        engine.overlay(), health_guard.recorder(), run);
    ASSERT_TRUE(report.ok()) << "window=" << window << "\n"
                             << report.to_string();
    ASSERT_GT(report.nodes_checked, 0u);
  }
  EXPECT_GT(health_guard.recorder().samples_total(), 0u);
}

// ----------------------------------------------- byte-identical guard

std::string converged_snapshot(AlgorithmKind algorithm) {
  EngineConfig config;
  config.algorithm = algorithm;
  config.seed = 23;
  Engine engine(population(WorkloadKind::kRand, 48, 11), config);
  engine.run_until_converged(3000);
  return to_snapshot(engine.overlay());
}

// The observatory is read-only: recording on vs everything off must
// produce byte-identical overlays. This is the in-process half of the
// CI guarantee that default runs match pre-observatory output.
TEST(HealthDefaultOffTest, RecorderChangesNoEngineDecision) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    std::string with_recorder;
    {
      TelemetryGuard telemetry_guard(true);
      HealthGuard health_guard;
      with_recorder = converged_snapshot(algorithm);
      EXPECT_GT(health_guard.recorder().samples_total(), 0u);
    }
    std::string without;
    {
      TelemetryGuard telemetry_guard(false);
      without = converged_snapshot(algorithm);
    }
    EXPECT_EQ(with_recorder, without);
  }
}

// With no active recorder, engines must not register runs at all, even
// when the rest of telemetry is on.
TEST(HealthDefaultOffTest, NoRecorderMeansNoRuns) {
  TelemetryGuard telemetry_guard(true);
  OverlayHealthRecorder bystander;  // constructed but never set_active
  EngineConfig config;
  config.seed = 7;
  Engine engine(population(WorkloadKind::kRand, 24, 7), config);
  engine.run_until_converged(2000);
  EXPECT_EQ(bystander.current_run(), 0u);
  EXPECT_EQ(bystander.samples_total(), 0u);
}

// --------------------------------------------- convergence semantics

// With stability_rounds=1 the tracker must latch exactly the engine's
// first all-satisfied round.
TEST(HealthConvergenceTest, LatchesFirstAllSatisfiedRound) {
  TelemetryGuard telemetry_guard(true);
  HealthGuard health_guard;
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.seed = 9;
  std::int64_t engine_round = -1;
  {
    Engine engine(population(WorkloadKind::kRand, 40, 5), config);
    const auto converged = engine.run_until_converged(3000);
    ASSERT_TRUE(converged.has_value());
    engine_round = static_cast<std::int64_t>(*converged);
  }  // dtor ends the run
  const auto runs = health_guard.recorder().completed_runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs.front().converged);
  EXPECT_EQ(runs.front().convergence_round, engine_round);
  EXPECT_EQ(runs.front().final.unsatisfied, 0);
  EXPECT_EQ(runs.front().final.orphans, 0);
}

// stability_rounds > the run length must not latch: a run that stops
// the moment it converges has no stability window to observe.
TEST(HealthConvergenceTest, StabilityWindowRejectsTransientConvergence) {
  TelemetryGuard telemetry_guard(true);
  OverlayHealthRecorder::Config recorder_config;
  recorder_config.stability_rounds = 1000000;
  HealthGuard health_guard(recorder_config);
  EngineConfig config;
  config.seed = 9;
  {
    Engine engine(population(WorkloadKind::kRand, 40, 5), config);
    ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  }
  const auto runs = health_guard.recorder().completed_runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs.front().converged);
  EXPECT_EQ(runs.front().convergence_round, -1);
}

// ------------------------------------------------- stream and JSON

// The stream stays within its budget by stride doubling, while the
// in-memory sample count keeps every round.
TEST(HealthStreamTest, StrideDoublingBoundsEmittedSamples) {
  TelemetryGuard telemetry_guard(true);
  OverlayHealthRecorder::Config recorder_config;
  recorder_config.stream_budget = 8;
  recorder_config.ring_capacity = 4;
  HealthGuard health_guard(recorder_config);
  auto& recorder = health_guard.recorder();
  const std::vector<int> fanout(16, 2);
  const std::vector<int> latency(16, 4);
  const std::uint64_t run = recorder.begin_run(fanout, latency);
  for (int round = 1; round <= 200; ++round)
    recorder.note_round(run, static_cast<double>(round));
  recorder.end_run(run);
  EXPECT_EQ(recorder.samples_total(), 200u);
  // Emitted samples: at most budget per stride generation, log2(200/8)
  // generations — far fewer than 200.
  EXPECT_LE(recorder.stream_lines(), 2u + 8u * 6u);
  EXPECT_EQ(recorder.recent_samples().size(), 4u);
}

// The embedded bench block carries run/convergence statistics.
TEST(HealthStreamTest, ToJsonSummarizesRuns) {
  TelemetryGuard telemetry_guard(true);
  HealthGuard health_guard;
  for (std::uint64_t seed : {1u, 2u}) {
    EngineConfig config;
    config.seed = seed;
    Engine engine(population(WorkloadKind::kRand, 32, seed), config);
    ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  }
  const Json block = health_guard.recorder().to_json();
  EXPECT_EQ(block.find("schema")->as_string(), "lagover.health.v1");
  EXPECT_EQ(block.find("runs")->as_int(), 2);
  EXPECT_EQ(block.find("converged_runs")->as_int(), 2);
  const Json* stats = block.find("convergence_round");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->find("min")->as_int(), 0);
  EXPECT_LE(stats->find("min")->as_int(), stats->find("max")->as_int());
  const Json* final = block.find("final");
  ASSERT_NE(final, nullptr);
  EXPECT_EQ(final->find("unsatisfied")->as_int(), 0);
}

}  // namespace
}  // namespace lagover
