// Tests for the workload generators (Section 4.1) and churn models
// (Section 5.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/sufficiency.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(WorkloadTest, Tf1MatchesPaperLevels) {
  WorkloadParams params;
  params.peers = 120;
  const Population p = generate_workload(WorkloadKind::kTf1, params);
  ASSERT_EQ(p.consumers.size(), 120u);
  EXPECT_EQ(p.source_fanout, 3);
  // 3 / 9 / 27 / 81 nodes at latency 1 / 2 / 3 / 4.
  std::vector<int> counts(6, 0);
  for (const auto& spec : p.consumers) {
    ASSERT_LE(spec.constraints.latency, 4);
    ++counts[static_cast<std::size_t>(spec.constraints.latency)];
    EXPECT_EQ(spec.constraints.fanout, 3);
  }
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 9);
  EXPECT_EQ(counts[3], 27);
  EXPECT_EQ(counts[4], 81);
}

TEST(WorkloadTest, Tf1PartialLastLevel) {
  WorkloadParams params;
  params.peers = 20;  // 3 + 9 + 8 of the 27-level
  const Population p = generate_workload(WorkloadKind::kTf1, params);
  EXPECT_EQ(p.consumers.size(), 20u);
  EXPECT_TRUE(sufficiency_condition(p).holds);
}

TEST(WorkloadTest, GeneratorsAreDeterministicInSeed) {
  for (auto kind :
       {WorkloadKind::kRand, WorkloadKind::kBiCorr, WorkloadKind::kBiUnCorr}) {
    WorkloadParams params;
    params.peers = 50;
    params.seed = 33;
    const Population a = generate_workload(kind, params);
    const Population b = generate_workload(kind, params);
    EXPECT_EQ(a.consumers, b.consumers) << to_string(kind);
  }
}

TEST(WorkloadTest, AllGeneratedWorkloadsSatisfySufficiency) {
  for (auto kind : kAllWorkloads) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      WorkloadParams params;
      params.peers = 120;
      params.seed = seed;
      const Population p = generate_workload(kind, params);
      EXPECT_TRUE(sufficiency_condition(p).holds)
          << to_string(kind) << " seed " << seed;
    }
  }
}

TEST(WorkloadTest, BiCorrStrictPeersHaveLowFanout) {
  WorkloadParams params;
  params.peers = 120;
  params.seed = 5;
  const Population p = generate_workload(WorkloadKind::kBiCorr, params);
  for (const auto& spec : p.consumers) {
    EXPECT_GE(spec.constraints.latency, 1);
    EXPECT_LE(spec.constraints.latency, 10);
    const bool low = spec.constraints.fanout >= params.low_fanout_min &&
                     spec.constraints.fanout <= params.low_fanout_max;
    const bool high = spec.constraints.fanout >= params.high_fanout_min &&
                      spec.constraints.fanout <= params.high_fanout_max;
    EXPECT_TRUE(low || high);
    if (spec.constraints.latency < params.bicorr_strict_threshold) {
      EXPECT_TRUE(low) << "strict peer " << spec.id << " must be low-fanout";
    }
  }
}

TEST(WorkloadTest, BiUnCorrHasHighFanoutStrictPeers) {
  // The uncorrelated variant must produce at least some strict-latency
  // high-fanout peers (the thing BiCorr forbids), over a few seeds.
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 5 && !found; ++seed) {
    WorkloadParams params;
    params.peers = 120;
    params.seed = seed;
    const Population p = generate_workload(WorkloadKind::kBiUnCorr, params);
    for (const auto& spec : p.consumers)
      if (spec.constraints.latency < params.bicorr_strict_threshold &&
          spec.constraints.fanout >= params.high_fanout_min)
        found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadTest, RandRespectsConfiguredRanges) {
  WorkloadParams params;
  params.peers = 200;
  params.seed = 9;
  params.max_latency = 6;
  params.rand_fanout_max = 4;
  params.source_fanout = 60;  // generous so sufficiency resampling is easy
  const Population p = generate_workload(WorkloadKind::kRand, params);
  for (const auto& spec : p.consumers) {
    EXPECT_GE(spec.constraints.latency, 1);
    EXPECT_LE(spec.constraints.latency, 6);
    EXPECT_GE(spec.constraints.fanout, 0);
    EXPECT_LE(spec.constraints.fanout, 4);
  }
}

// --- churn models -------------------------------------------------------

TEST(ChurnTest, BernoulliRatesRoughlyHonored) {
  WorkloadParams params;
  params.peers = 100;
  Overlay overlay(generate_workload(WorkloadKind::kTf1, params));
  BernoulliChurn churn(0.1, 0.5);
  Rng rng(1);
  int leaves = 0;
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    const auto decision = churn.decide(r, overlay, rng);
    leaves += static_cast<int>(decision.leave.size());
    EXPECT_TRUE(decision.join.empty());  // everyone is online
  }
  const double rate = leaves / static_cast<double>(kRounds * 100);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(ChurnTest, OfflineNodesRejoin) {
  WorkloadParams params;
  params.peers = 50;
  Overlay overlay(generate_workload(WorkloadKind::kTf1, params));
  for (NodeId id = 1; id <= 25; ++id) overlay.set_offline(id);
  BernoulliChurn churn(0.0, 1.0);
  Rng rng(2);
  const auto decision = churn.decide(0, overlay, rng);
  EXPECT_TRUE(decision.leave.empty());
  EXPECT_EQ(decision.join.size(), 25u);
}

TEST(ChurnTest, MassFailureKillsRequestedFraction) {
  WorkloadParams params;
  params.peers = 100;
  Overlay overlay(generate_workload(WorkloadKind::kTf1, params));
  MassFailureChurn churn(/*fail_round=*/10, /*fail_fraction=*/0.3);
  Rng rng(3);
  EXPECT_TRUE(churn.decide(9, overlay, rng).leave.empty());
  const auto decision = churn.decide(10, overlay, rng);
  EXPECT_EQ(decision.leave.size(), 30u);
}

TEST(ChurnTest, WindowedChurnStopsAndRejoinsEveryone) {
  WorkloadParams params;
  params.peers = 40;
  Overlay overlay(generate_workload(WorkloadKind::kTf1, params));
  for (NodeId id = 1; id <= 10; ++id) overlay.set_offline(id);
  WindowedChurn churn(/*active_rounds=*/5, 0.5, 0.0);
  Rng rng(4);
  // After the window every offline node rejoins, none leave.
  const auto decision = churn.decide(6, overlay, rng);
  EXPECT_TRUE(decision.leave.empty());
  EXPECT_EQ(decision.join.size(), 10u);
}

}  // namespace
}  // namespace lagover
