#!/bin/sh
# End-to-end smoke test of the lagover_cli binary: generate a
# population, check feasibility, construct, validate the snapshot, and
# disseminate over it. Invoked by ctest with the binary path as $1.
set -e
CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --kind bicorr --peers 40 --seed 5 --out "$WORK/pop.txt"
test -s "$WORK/pop.txt"

"$CLI" check --population "$WORK/pop.txt" | grep -q "sufficient condition: holds"

"$CLI" construct --population "$WORK/pop.txt" --algorithm hybrid \
  --oracle o3 --snapshot "$WORK/snap.txt" | grep -q "converged in"
test -s "$WORK/snap.txt"

"$CLI" validate --snapshot "$WORK/snap.txt" | grep -q "LagOver constructed"

"$CLI" disseminate --snapshot "$WORK/snap.txt" --duration 100 \
  | grep -q "staleness-budget violations: 0"

# Greedy on an unsolvable instance must exit non-zero.
cat > "$WORK/adversarial.txt" <<EOF
source 1
peer 1 1
peer 2 4
peer 0 3
peer 0 3
EOF
if "$CLI" construct --population "$WORK/adversarial.txt" \
     --algorithm greedy --max-rounds 300 > "$WORK/greedy.out"; then
  echo "expected non-zero exit for greedy on adversarial instance" >&2
  exit 1
fi
grep -q "did not converge" "$WORK/greedy.out"

# Bad input is rejected with a readable error.
if "$CLI" check --population /nonexistent/nope.txt 2> "$WORK/err.txt"; then
  echo "expected failure on missing population file" >&2
  exit 1
fi
grep -q "error:" "$WORK/err.txt"

echo "cli smoke ok"
