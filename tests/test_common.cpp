// Tests for the common utilities: tables/CSV, flag parsing, logging
// levels, and notation helpers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/types.hpp"

namespace lagover {
namespace {

TEST(TableTest, AlignedRendering) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 12345 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "multi\nline"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(TableTest, RowArityEnforced) {
  Table table({"one", "two"});
  EXPECT_DEATH(table.add_row({"only-one"}), "precondition");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_pair(1.0, 2.5, 1), "1.0 / 2.5");
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--peers=120", "--trials", "7",
                        "positional", "--verbose"};
  Flags flags(6, argv);
  EXPECT_EQ(flags.get_int("peers", 0), 120);
  EXPECT_EQ(flags.get_int("trials", 0), 7);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("peers"));
  EXPECT_FALSE(flags.has("absent"));
  EXPECT_EQ(flags.get_int("absent", 42), 42);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DoublesAndStrings) {
  const char* argv[] = {"prog", "--rate=0.25", "--name", "bench"};
  Flags flags(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(flags.get_string("name", ""), "bench");
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
}

TEST(FlagsTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Flags flags(5, argv);
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(JsonTest, ScalarsSerialize) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, NestedStructures) {
  Json root = Json::object();
  Json list = Json::array();
  list.push_back(Json::integer(1)).push_back(Json::integer(2));
  root.set("name", Json::string("lagover"));
  root.set("values", std::move(list));
  root.set("empty", Json::array());
  EXPECT_EQ(root.dump(),
            "{\"name\":\"lagover\",\"values\":[1,2],\"empty\":[]}");
  // Overwriting a key keeps insertion order.
  root.set("name", Json::string("v2"));
  EXPECT_EQ(root.dump(), "{\"name\":\"v2\",\"values\":[1,2],\"empty\":[]}");
}

TEST(JsonTest, PrettyPrintIndents) {
  Json root = Json::object();
  root.set("k", Json::integer(1));
  EXPECT_EQ(root.dump_pretty(), "{\n  \"k\": 1\n}");
}

TEST(JsonParseTest, RoundTripsEveryKind) {
  Json root = Json::object();
  root.set("null", Json::null());
  root.set("bool", Json::boolean(true));
  root.set("int", Json::integer(-7));
  root.set("num", Json::number(2.5));
  root.set("str", Json::string("a\"b\nc"));
  Json list = Json::array();
  list.push_back(Json::integer(1)).push_back(Json::string("x"));
  root.set("list", std::move(list));
  Json parsed;
  ASSERT_TRUE(Json::parse(root.dump(), parsed));
  EXPECT_EQ(parsed.dump(), root.dump());
  EXPECT_TRUE(parsed.find("null")->is_null());
  EXPECT_TRUE(parsed.find("bool")->as_bool());
  EXPECT_EQ(parsed.find("int")->as_int(), -7);
  EXPECT_DOUBLE_EQ(parsed.find("num")->as_number(), 2.5);
  EXPECT_EQ(parsed.find("str")->as_string(), "a\"b\nc");
  EXPECT_EQ(parsed.find("list")->size(), 2u);
  EXPECT_EQ(parsed.find("list")->at(0).as_int(), 1);
  EXPECT_EQ(parsed.find("missing"), nullptr);
}

TEST(JsonParseTest, AcceptsEscapesAndUnicode) {
  Json parsed;
  ASSERT_TRUE(Json::parse(R"("A\t\u00e9")", parsed));
  EXPECT_EQ(parsed.as_string(),
            "A\t\xc3\xa9");  // é decodes to UTF-8 e-acute
}

TEST(JsonParseTest, RejectsMalformedInput) {
  Json parsed;
  std::string error;
  EXPECT_FALSE(Json::parse("", parsed, &error));
  EXPECT_FALSE(Json::parse("{", parsed, &error));
  EXPECT_FALSE(Json::parse("[1,]", parsed, &error));
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing", parsed, &error));
  EXPECT_FALSE(Json::parse("\"unterminated", parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonParseTest, LenientAccessorsFallBack) {
  Json parsed;
  ASSERT_TRUE(Json::parse("{\"s\":\"text\"}", parsed));
  const Json* s = parsed.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->as_number(2.0), 2.0);  // kind mismatch -> fallback
  EXPECT_FALSE(s->as_bool(false));
}

TEST(TableTest, JsonFormContainsHeaderAndRows) {
  Table table({"a", "b"});
  table.add_row({"x", "1"});
  const std::string json = table.to_json();
  EXPECT_NE(json.find("\"header\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"x\""), std::string::npos);
}

TEST(LoggingTest, LevelsGateOutput) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kTrace);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug));
  logger.set_level(original);
}

TEST(LoggingTest, DirectCallWithOffLevelEmitsNothing) {
  // kOff is a threshold, not an emission level: enabled(kOff) is
  // trivially true at any threshold, so log(kOff, ...) must be
  // suppressed by its own check rather than printed as "[off]".
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kTrace);
  testing::internal::CaptureStderr();
  logger.log(LogLevel::kOff, "must not appear");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
  logger.set_level(original);
}

TEST(LoggingTest, EmittedLinesCarrySimAndWallPrefix) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kInfo);
  telemetry::note_sim_time(42.5);
  testing::internal::CaptureStderr();
  logger.log(LogLevel::kInfo, "payload %d", 7);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[t=42.50 w="), std::string::npos) << err;
  EXPECT_NE(err.find("info] payload 7"), std::string::npos) << err;
  logger.set_level(original);
  telemetry::note_sim_time(0.0);
}

TEST(LoggingTest, RoutesThroughLogBusWhenTelemetryEnabled) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  const bool telemetry_was_on = telemetry::enabled();
  logger.set_level(LogLevel::kInfo);
  telemetry::set_enabled(true);
  std::vector<std::string> seen;
  const auto sub = telemetry::log_bus().subscribe(
      [&](const telemetry::LogRecord& record) {
        seen.push_back(record.message);
      });
  testing::internal::CaptureStderr();
  logger.log(LogLevel::kInfo, "bus line");
  logger.log(LogLevel::kDebug, "below threshold");  // not emitted
  testing::internal::GetCapturedStderr();
  telemetry::log_bus().unsubscribe(sub);
  telemetry::set_enabled(telemetry_was_on);
  logger.set_level(original);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "bus line");
}

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(TypesTest, NotationMatchesPaper) {
  EXPECT_EQ(to_notation(NodeSpec{3, Constraints{2, 4}}), "3_2^4");
  EXPECT_EQ(to_notation(NodeSpec{10, Constraints{0, 1}}), "10_0^1");
}

TEST(TypesTest, EnumNames) {
  EXPECT_EQ(to_string(AlgorithmKind::kGreedy), "greedy");
  EXPECT_EQ(to_string(AlgorithmKind::kHybrid), "hybrid");
  EXPECT_EQ(to_string(SourceMode::kPullOnly), "pull-only");
  EXPECT_EQ(to_string(SourceMode::kPush), "push");
  EXPECT_EQ(to_string(OracleKind::kRandomDelay), "Random-Delay");
}

}  // namespace
}  // namespace lagover
