// Tests for the pure fanout-greedy baseline (Section 3.4's
// hypothetical): connects everyone quickly, ignores latency, never
// runs maintenance.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/fanout_greedy.hpp"
#include "metrics/tree_metrics.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiCorr, params);
}

TEST(FanoutGreedyTest, ConnectsEveryoneQuickly) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kFanoutGreedy;
  config.seed = 3;
  Engine engine(workload(80, 3), config);
  bool all_connected = false;
  for (int round = 0; round < 200 && !all_connected; ++round) {
    engine.run_round();
    engine.overlay().audit();
    const TreeMetrics metrics = compute_tree_metrics(engine.overlay());
    all_connected = metrics.connected == engine.overlay().online_count();
  }
  EXPECT_TRUE(all_connected);
}

TEST(FanoutGreedyTest, LatencyBlindAttachIsAllowed) {
  // A strict node ends up at an illegal depth and stays there: the
  // baseline neither refuses the attach nor repairs it.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 5}},
      NodeSpec{2, Constraints{1, 5}},
      NodeSpec{3, Constraints{0, 1}},  // needs depth 1, will sit at 3
  };
  EngineConfig config;
  config.algorithm = AlgorithmKind::kFanoutGreedy;
  config.seed = 5;
  Engine engine(p, config);
  engine.overlay().attach(1, kSourceId);
  engine.overlay().attach(2, 1);
  FanoutGreedyProtocol protocol;
  const auto result = protocol.interact(engine.overlay(), 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(engine.overlay().delay_at(3), 3);
  EXPECT_FALSE(engine.overlay().satisfied(3));
  // Maintenance never fires (astronomical patience).
  for (int round = 0; round < 50; ++round) engine.run_round();
  EXPECT_EQ(engine.overlay().parent(3), 2u);
}

TEST(FanoutGreedyTest, HigherFanoutReplacesInChains) {
  // f=5 node takes the slot of an f=1 node and adopts it.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 9}},
      NodeSpec{2, Constraints{1, 9}},
      NodeSpec{3, Constraints{5, 9}},
  };
  Overlay overlay(p);
  FanoutGreedyProtocol protocol;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = protocol.interact(overlay, 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), 3u);
  overlay.audit();
}

TEST(FanoutGreedyTest, ViolatesConstraintsWhereConstraintAwareDoesNot) {
  const Population population = workload(100, 7);
  EngineConfig baseline_config;
  baseline_config.algorithm = AlgorithmKind::kFanoutGreedy;
  baseline_config.seed = 11;
  Engine baseline(population, baseline_config);
  for (int round = 0; round < 300; ++round) baseline.run_round();

  EngineConfig hybrid_config;
  hybrid_config.algorithm = AlgorithmKind::kHybrid;
  hybrid_config.seed = 11;
  Engine hybrid(population, hybrid_config);
  ASSERT_TRUE(hybrid.run_until_converged(3000).has_value());

  EXPECT_LT(baseline.overlay().satisfied_fraction(), 0.9);
  EXPECT_DOUBLE_EQ(hybrid.overlay().satisfied_fraction(), 1.0);
}

}  // namespace
}  // namespace lagover
