// Tests for the baselines: all-poll RSS and the FeedTree/Scribe
// comparator.
#include <gtest/gtest.h>

#include "baseline/feedtree.hpp"
#include "baseline/polling.hpp"
#include "core/engine.hpp"
#include "feed/dissemination.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(AllPollTest, AnalysisSumsInverseLatencies) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{0, 1}},
      NodeSpec{2, Constraints{0, 2}},
      NodeSpec{3, Constraints{0, 4}},
  };
  const auto analysis = baseline::analyze_all_poll(p);
  EXPECT_EQ(analysis.consumers, 3u);
  EXPECT_DOUBLE_EQ(analysis.source_requests_per_unit, 1.0 + 0.5 + 0.25);
}

TEST(AllPollTest, SimulationMatchesAnalysisAndMeetsConstraints) {
  const Population population = workload(50, 3);
  feed::DisseminationConfig config;
  config.source.publish_period = 2.0;
  const auto report = baseline::run_all_poll(population, config, 500.0);
  const auto analysis = baseline::analyze_all_poll(population);
  EXPECT_NEAR(report.source_request_rate, analysis.source_requests_per_unit,
              0.1 * analysis.source_requests_per_unit);
  // Direct polling always meets staleness budgets; it just hammers the
  // source.
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.pollers, 50u);
  EXPECT_EQ(report.push_messages, 0u);
}

TEST(AllPollTest, LagOverReducesSourceLoad) {
  const Population population = workload(120, 4);
  EngineConfig config;
  config.seed = 8;
  Engine engine(population, config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());

  feed::DisseminationConfig dconfig;
  const auto lagover_report =
      feed::run_dissemination(engine.overlay(), dconfig, 300.0);
  const auto allpoll_report =
      baseline::run_all_poll(population, dconfig, 300.0);
  // The headline claim: the source sees Theta(source fanout) requests
  // per unit instead of Theta(N).
  EXPECT_LT(lagover_report.source_request_rate * 2.0,
            allpoll_report.source_request_rate);
}

TEST(FeedTreeTest, BuildsTreesForEveryFeed) {
  const Population population = workload(48, 5);
  baseline::FeedTreeConfig config;
  config.feeds = 4;
  config.seed = 7;
  const auto report = baseline::build_and_analyze_feedtree(population, config);
  ASSERT_EQ(report.feeds.size(), 4u);
  std::size_t total_subscribers = 0;
  for (const auto& feed : report.feeds) {
    EXPECT_EQ(feed.subscribers, 12u);
    EXPECT_GE(feed.tree_nodes, feed.subscribers);
    EXPECT_GE(feed.max_depth, 1);
    total_subscribers += feed.subscribers;
  }
  EXPECT_EQ(total_subscribers, 48u);
  EXPECT_GT(report.ring_maintenance_messages, 0u);
}

TEST(FeedTreeTest, InvolvesUninterestedForwarders) {
  // The paper's Section 6 critique: with multiple feeds on one DHT,
  // peers forward traffic for feeds they never subscribed to.
  const Population population = workload(64, 6);
  baseline::FeedTreeConfig config;
  config.feeds = 8;
  config.seed = 9;
  const auto report = baseline::build_and_analyze_feedtree(population, config);
  EXPECT_GT(report.total_pure_forwarders, 0u);
}

TEST(FeedTreeTest, IgnoresIndividualConstraints) {
  // Scribe trees are oblivious to declared latency/fanout budgets; on a
  // constraint-rich population some violations are essentially certain,
  // while a converged LagOver has none by construction.
  const Population population = workload(96, 7);
  baseline::FeedTreeConfig config;
  config.feeds = 2;  // deeper trees per feed
  config.seed = 11;
  const auto report = baseline::build_and_analyze_feedtree(population, config);
  EXPECT_GT(report.total_latency_violations + report.total_fanout_violations,
            0u);
}

TEST(FeedTreeTest, SingleFeedHasNoPureForwardersAmongSubscribers) {
  // With one feed everyone subscribes, so any tree member except the
  // rendezvous is a subscriber.
  const Population population = workload(32, 8);
  baseline::FeedTreeConfig config;
  config.feeds = 1;
  config.seed = 13;
  const auto report = baseline::build_and_analyze_feedtree(population, config);
  ASSERT_EQ(report.feeds.size(), 1u);
  EXPECT_EQ(report.feeds[0].pure_forwarders, 0u);
}

}  // namespace
}  // namespace lagover
