// Tests for the constraint-satisfaction validator and push-source feed
// dissemination.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/validator.hpp"
#include "feed/dissemination.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(ValidatorTest, DiagnosesEveryIssueKind) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 5}},  // satisfied
      NodeSpec{2, Constraints{1, 1}},  // delay exceeded (depth 2)
      NodeSpec{3, Constraints{0, 4}},  // in detached group
      NodeSpec{4, Constraints{1, 3}},  // parentless root of that group
      NodeSpec{5, Constraints{0, 2}},  // offline
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 4);
  overlay.set_offline(5);

  const ValidationReport report = validate_overlay(overlay);
  EXPECT_EQ(report.consumers, 5u);
  EXPECT_EQ(report.satisfied, 1u);
  ASSERT_EQ(report.issues.size(), 4u);
  EXPECT_FALSE(report.converged());

  auto issue_of = [&](NodeId id) {
    for (const auto& diagnosis : report.issues)
      if (diagnosis.node == id) return diagnosis.issue;
    return NodeIssue::kNone;
  };
  EXPECT_EQ(issue_of(2), NodeIssue::kDelayExceeded);
  EXPECT_EQ(issue_of(3), NodeIssue::kDisconnected);
  EXPECT_EQ(issue_of(4), NodeIssue::kParentless);
  EXPECT_EQ(issue_of(5), NodeIssue::kOffline);

  const std::string text = report.to_string();
  EXPECT_NE(text.find("1/5 consumers satisfied"), std::string::npos);
  EXPECT_NE(text.find("delay exceeds constraint"), std::string::npos);
}

TEST(ValidatorTest, ConvergedOverlayHasNoIssues) {
  WorkloadParams params;
  params.peers = 40;
  params.seed = 5;
  EngineConfig config;
  config.seed = 5;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  const ValidationReport report = validate_overlay(engine.overlay());
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.satisfied, 40u);
  EXPECT_NE(report.to_string().find("LagOver constructed"),
            std::string::npos);
}

TEST(PushSourceTest, NoRequestsAndNoEmptyPolls) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}}, NodeSpec{2, Constraints{1, 1}},
      NodeSpec{3, Constraints{0, 2}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, kSourceId);
  overlay.attach(3, 1);

  feed::DisseminationConfig config;
  config.push_source = true;
  config.source.publish_period = 2.0;
  const auto report = feed::run_dissemination(overlay, config, 100.0);
  EXPECT_EQ(report.source_requests, 0u);
  EXPECT_EQ(report.source_empty_requests, 0u);
  EXPECT_EQ(report.pollers, 0u);
  for (const auto& node : report.nodes) {
    EXPECT_GT(node.items, 0u);
    EXPECT_TRUE(node.constraint_met);
  }
}

TEST(PushSourceTest, StalenessEqualsDepthHops) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {NodeSpec{1, Constraints{1, 1}},
                 NodeSpec{2, Constraints{0, 2}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  feed::DisseminationConfig config;
  config.push_source = true;
  config.hop_delay = 1.0;
  config.source.publish_period = 3.0;
  const auto report = feed::run_dissemination(overlay, config, 90.0);
  ASSERT_EQ(report.nodes.size(), 2u);
  // Deterministic staleness: exactly depth hops, no polling phase.
  EXPECT_DOUBLE_EQ(report.nodes[0].max_staleness, 1.0);
  EXPECT_DOUBLE_EQ(report.nodes[0].mean_staleness, 1.0);
  EXPECT_DOUBLE_EQ(report.nodes[1].max_staleness, 2.0);
}

}  // namespace
}  // namespace lagover
