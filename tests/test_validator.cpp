// Tests for the constraint-satisfaction validator, the paper-invariant
// audit harness (audit_invariants / AuditBus), and push-source feed
// dissemination.
#include <gtest/gtest.h>

#include <memory>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "feed/dissemination.hpp"
#include "health/lease.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(ValidatorTest, DiagnosesEveryIssueKind) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 5}},  // satisfied
      NodeSpec{2, Constraints{1, 1}},  // delay exceeded (depth 2)
      NodeSpec{3, Constraints{0, 4}},  // in detached group
      NodeSpec{4, Constraints{1, 3}},  // parentless root of that group
      NodeSpec{5, Constraints{0, 2}},  // offline
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 4);
  overlay.set_offline(5);

  const ValidationReport report = validate_overlay(overlay);
  EXPECT_EQ(report.consumers, 5u);
  EXPECT_EQ(report.satisfied, 1u);
  ASSERT_EQ(report.issues.size(), 4u);
  EXPECT_FALSE(report.converged());

  auto issue_of = [&](NodeId id) {
    for (const auto& diagnosis : report.issues)
      if (diagnosis.node == id) return diagnosis.issue;
    return NodeIssue::kNone;
  };
  EXPECT_EQ(issue_of(2), NodeIssue::kDelayExceeded);
  EXPECT_EQ(issue_of(3), NodeIssue::kDisconnected);
  EXPECT_EQ(issue_of(4), NodeIssue::kParentless);
  EXPECT_EQ(issue_of(5), NodeIssue::kOffline);

  const std::string text = report.to_string();
  EXPECT_NE(text.find("1/5 consumers satisfied"), std::string::npos);
  EXPECT_NE(text.find("delay exceeds constraint"), std::string::npos);
}

TEST(ValidatorTest, ConvergedOverlayHasNoIssues) {
  WorkloadParams params;
  params.peers = 40;
  params.seed = 5;
  EngineConfig config;
  config.seed = 5;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  const ValidationReport report = validate_overlay(engine.overlay());
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.satisfied, 40u);
  EXPECT_NE(report.to_string().find("LagOver constructed"),
            std::string::npos);
}

TEST(ValidatorTest, NodeIssueNamesAreStable) {
  EXPECT_STREQ(to_string(NodeIssue::kNone).c_str(), "satisfied");
  EXPECT_STREQ(to_string(NodeIssue::kOffline).c_str(), "offline");
  EXPECT_STREQ(to_string(NodeIssue::kParentless).c_str(), "parentless");
  EXPECT_STREQ(to_string(NodeIssue::kDisconnected).c_str(),
               "in detached group");
  EXPECT_STREQ(to_string(NodeIssue::kDelayExceeded).c_str(),
               "delay exceeds constraint");
}

TEST(EpochAuditTest, ToStringReportsCountsAndAcyclicity) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{1, 2}},
                 NodeSpec{2, Constraints{0, 3}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);

  health::EpochBook book(overlay.node_count());
  book.record_attachment(1, kSourceId);
  book.record_attachment(2, 1);
  EpochAudit clean = audit_epochs(overlay, book);
  EXPECT_TRUE(clean.ok());
  EXPECT_NE(clean.to_string().find("0 stale edge(s)"), std::string::npos);
  EXPECT_NE(clean.to_string().find("acyclic"), std::string::npos);

  book.bump(1);  // node 1 re-incarnates; edge 2 <- 1 is now stale
  EpochAudit dirty = audit_epochs(overlay, book);
  EXPECT_FALSE(dirty.ok());
  ASSERT_EQ(dirty.stale_edges.size(), 1u);
  EXPECT_EQ(dirty.stale_edges[0], 2u);
  EXPECT_NE(dirty.to_string().find("1 stale edge(s)"), std::string::npos);

  book.clear_lease(2);  // no lease at all: flagged separately, not stale
  EpochAudit unleased = audit_epochs(overlay, book);
  EXPECT_TRUE(unleased.stale_edges.empty());
  ASSERT_EQ(unleased.unleased_edges.size(), 1u);
  EXPECT_EQ(unleased.unleased_edges[0], 2u);
  EXPECT_NE(unleased.to_string().find("1 unleased edge(s)"),
            std::string::npos);
}

// --- paper-invariant audit harness -----------------------------------

TEST(InvariantAuditTest, InvariantNamesAreStable) {
  EXPECT_STREQ(to_string(Invariant::kAcyclic), "acyclic");
  EXPECT_STREQ(to_string(Invariant::kFanoutBound), "fanout_bound");
  EXPECT_STREQ(to_string(Invariant::kGreedyOrder), "greedy_order");
  EXPECT_STREQ(to_string(Invariant::kDelayDepth), "delay_depth");
  EXPECT_STREQ(to_string(Invariant::kEpochLease), "epoch_lease");
}

TEST(InvariantAuditTest, CleanOnEngineBuiltOverlay) {
  WorkloadParams params;
  params.peers = 40;
  params.seed = 11;
  EngineConfig config;
  config.seed = 11;
  config.algorithm = AlgorithmKind::kGreedy;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());

  const InvariantReport report = audit_invariants(
      engine.overlay(), AlgorithmKind::kGreedy, &engine.epochs());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.nodes_checked, engine.overlay().node_count());
  EXPECT_GT(report.edges_checked, 0u);
  EXPECT_NE(report.to_string().find("0 violation(s)"), std::string::npos);
}

TEST(InvariantAuditTest, FlagsGreedyLatencyOrderInversion) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {NodeSpec{1, Constraints{1, 5}},
                 NodeSpec{2, Constraints{0, 1}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);  // l_parent (5) > l_child (1): greedy inversion

  const InvariantReport greedy =
      audit_invariants(overlay, AlgorithmKind::kGreedy);
  ASSERT_EQ(greedy.violations.size(), 1u);
  EXPECT_EQ(greedy.violations[0].invariant, Invariant::kGreedyOrder);
  EXPECT_STREQ(greedy.violations[0].cause, "latency_order");
  EXPECT_EQ(greedy.violations[0].node, 2u);
  EXPECT_EQ(greedy.violations[0].parent, 1u);
  EXPECT_NE(greedy.to_string().find("latency_order"), std::string::npos);

  // The ordering is a greedy-mode invariant only: hybrid overlays may
  // legitimately place low-l nodes deep (paper Section 3.2).
  EXPECT_TRUE(audit_invariants(overlay, AlgorithmKind::kHybrid).ok());
}

TEST(InvariantAuditTest, FlagsEveryEpochLeaseCause) {
  Population p;
  p.source_fanout = 3;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}}, NodeSpec{2, Constraints{1, 1}},
      NodeSpec{3, Constraints{1, 1}}, NodeSpec{4, Constraints{0, 2}},
      NodeSpec{5, Constraints{0, 2}}, NodeSpec{6, Constraints{0, 2}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, kSourceId);
  overlay.attach(3, kSourceId);
  overlay.attach(4, 1);
  overlay.attach(5, 2);
  overlay.attach(6, 3);

  health::EpochBook book(overlay.node_count());
  for (NodeId child = 1; child <= 6; ++child)
    book.record_attachment(child, overlay.parent(child));
  ASSERT_TRUE(
      audit_invariants(overlay, AlgorithmKind::kHybrid, &book).ok());

  book.clear_lease(4);  // edge 4 <- 1: lease lost entirely
  book.bump(2);         // edge 5 <- 2: parent re-incarnated, lease stale
  book.bump(5);         // give node 5 epoch 2, then lease 6 against it:
  book.record_attachment(6, 5);  // edge 6 <- 3 now "leased" epoch 2 > 1

  const InvariantReport report =
      audit_invariants(overlay, AlgorithmKind::kHybrid, &book);
  ASSERT_EQ(report.violations.size(), 3u);
  auto cause_of = [&](NodeId node) -> std::string {
    for (const InvariantViolation& v : report.violations)
      if (v.node == node) return v.cause;
    return "";
  };
  EXPECT_EQ(cause_of(4), "unleased_edge");
  EXPECT_EQ(cause_of(5), "stale_lease");
  EXPECT_EQ(cause_of(6), "future_lease");
  for (const InvariantViolation& v : report.violations)
    EXPECT_EQ(v.invariant, Invariant::kEpochLease);

  // A book sized for a different overlay is ignored, not misapplied.
  health::EpochBook wrong_size(overlay.node_count() + 3);
  EXPECT_TRUE(
      audit_invariants(overlay, AlgorithmKind::kHybrid, &wrong_size).ok());
}

// Overlay::attach aborts on cycles and fanout overflows, so those causes
// cannot be staged through a real overlay; cover the reporting layer
// (publish / AuditBus / to_string) with a synthetic report instead.
TEST(InvariantAuditTest, PublishStampsRoundAndFansOut) {
  InvariantReport report;
  report.nodes_checked = 7;
  report.edges_checked = 6;
  report.violations.push_back(InvariantViolation{
      Invariant::kAcyclic, 3, kNoNode, 0, "cycle", "node 3 on a cycle"});
  report.violations.push_back(
      InvariantViolation{Invariant::kFanoutBound, 5, kNoNode, 0,
                         "fanout_exceeded", "node 5 over bound"});
  EXPECT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("2 violation(s)"), std::string::npos);
  EXPECT_NE(text.find("[acyclic/cycle]"), std::string::npos);
  EXPECT_NE(text.find("[fanout_bound/fanout_exceeded]"), std::string::npos);

  AuditBus bus;
  std::vector<InvariantViolation> seen;
  bus.subscribe([&](const InvariantViolation& v) { seen.push_back(v); });
  EXPECT_EQ(publish(report, bus, 42), 2u);
  ASSERT_EQ(seen.size(), 2u);
  for (const InvariantViolation& v : seen) EXPECT_EQ(v.round, 42u);
  EXPECT_STREQ(seen[0].cause, "cycle");
  EXPECT_STREQ(seen[1].cause, "fanout_exceeded");
}

// Property sweep: across seeded greedy and hybrid chaos runs, the full
// invariant set holds at every sampled instant — faults may delay the
// overlay but never corrupt it. (The LAGOVER_AUDIT build enforces the
// same property per round inside the engines; this keeps the property
// under test in every build.)
TEST(InvariantAuditTest, CleanThroughoutSeededChaosRuns) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    for (std::uint64_t seed : {3u, 17u}) {
      WorkloadParams params;
      params.peers = 30;
      params.seed = seed;
      fault::FaultPlan plan;
      plan.add(fault::FaultPlan::drop(20.0, 60.0, 0.2))
          .add(fault::FaultPlan::crashes(40.0, 80.0, 0.02, 6.0))
          .add(fault::FaultPlan::partition(90.0, 120.0, 0.1));
      AsyncConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      config.faults =
          std::make_shared<fault::FaultInjector>(plan, seed ^ 0xc4a05);
      AsyncEngine engine(
          generate_workload(WorkloadKind::kBiUnCorr, params), config);
      std::size_t audits = 0;
      engine.set_sampler(5.0, [&](SimTime t) {
        const InvariantReport report = audit_invariants(
            engine.overlay(), algorithm, &engine.epochs());
        EXPECT_TRUE(report.ok())
            << to_string(algorithm) << " seed " << seed << " t=" << t
            << "\n" << report.to_string();
        ++audits;
      });
      engine.run_for(200.0);
      EXPECT_GT(audits, 10u);
    }
  }
}

TEST(PushSourceTest, NoRequestsAndNoEmptyPolls) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}}, NodeSpec{2, Constraints{1, 1}},
      NodeSpec{3, Constraints{0, 2}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, kSourceId);
  overlay.attach(3, 1);

  feed::DisseminationConfig config;
  config.push_source = true;
  config.source.publish_period = 2.0;
  const auto report = feed::run_dissemination(overlay, config, 100.0);
  EXPECT_EQ(report.source_requests, 0u);
  EXPECT_EQ(report.source_empty_requests, 0u);
  EXPECT_EQ(report.pollers, 0u);
  for (const auto& node : report.nodes) {
    EXPECT_GT(node.items, 0u);
    EXPECT_TRUE(node.constraint_met);
  }
}

TEST(PushSourceTest, StalenessEqualsDepthHops) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {NodeSpec{1, Constraints{1, 1}},
                 NodeSpec{2, Constraints{0, 2}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  feed::DisseminationConfig config;
  config.push_source = true;
  config.hop_delay = 1.0;
  config.source.publish_period = 3.0;
  const auto report = feed::run_dissemination(overlay, config, 90.0);
  ASSERT_EQ(report.nodes.size(), 2u);
  // Deterministic staleness: exactly depth hops, no polling phase.
  EXPECT_DOUBLE_EQ(report.nodes[0].max_staleness, 1.0);
  EXPECT_DOUBLE_EQ(report.nodes[0].mean_staleness, 1.0);
  EXPECT_DOUBLE_EQ(report.nodes[1].max_staleness, 2.0);
}

}  // namespace
}  // namespace lagover
