// Feed-capacity tests: CapacityConfig budget arithmetic (squeeze
// scaling, flooring, the unlimited sentinel), the empty() normalization
// contract (a squeezes-only config is still empty — squeezes are inert
// without a budget), byte-identity of live and lossy dissemination when
// the capacity config is empty, and the defended/undefended split — a
// binding budget sheds with the policy on, drops queues with it off,
// and only the shedding ladder ever escalates starvation.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "feed/live.hpp"
#include "feed/overload.hpp"
#include "feed/reliability.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using feed::CapacityConfig;
using feed::CapacitySqueeze;
using feed::LiveConfig;
using feed::LiveReport;
using feed::LossyConfig;
using feed::LossyReport;

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

// --- budget arithmetic ------------------------------------------------

TEST(CapacityConfigTest, BudgetScalesInsideSqueezeWindows) {
  CapacityConfig config;
  config.relay_budget = 8;
  config.squeezes.push_back({10.0, 20.0, 0.5});
  EXPECT_EQ(config.budget_at(5.0), 8u);
  EXPECT_EQ(config.budget_at(10.0), 4u);   // start is inclusive
  EXPECT_EQ(config.budget_at(19.99), 4u);
  EXPECT_EQ(config.budget_at(20.0), 8u);   // end is exclusive
}

TEST(CapacityConfigTest, OverlappingSqueezesCompoundAndFloorAtOne) {
  CapacityConfig config;
  config.relay_budget = 8;
  config.squeezes.push_back({0.0, 100.0, 0.5});
  config.squeezes.push_back({50.0, 100.0, 0.1});
  EXPECT_EQ(config.budget_at(25.0), 4u);
  // 8 * 0.5 * 0.1 = 0.4 -> floored at 1: a squeezed relay trickles,
  // it does not halt.
  EXPECT_EQ(config.budget_at(75.0), 1u);
}

TEST(CapacityConfigTest, ZeroBudgetMeansUnlimitedEvenUnderSqueeze) {
  CapacityConfig config;
  config.squeezes.push_back({0.0, 100.0, 0.1});
  EXPECT_EQ(config.budget_at(50.0), 0u);
}

TEST(CapacityConfigTest, EmptyIgnoresPolicyAndSqueezes) {
  CapacityConfig config;
  EXPECT_TRUE(config.empty());
  config.shedding = true;
  config.squeezes.push_back({0.0, 10.0, 0.5});
  EXPECT_TRUE(config.empty()) << "squeezes are inert without a budget";
  config.relay_budget = 1;
  EXPECT_FALSE(config.empty());
  config.relay_budget = 0;
  config.queue_limit = 1;
  EXPECT_FALSE(config.empty());
}

// --- live dissemination -----------------------------------------------

LiveConfig live_config(std::uint64_t seed) {
  LiveConfig config;
  config.engine.seed = seed;
  config.publish_every = 2;
  config.warmup_rounds = 30;
  config.measured_rounds = 120;
  return config;
}

void expect_same_report(const LiveReport& a, const LiveReport& b) {
  EXPECT_EQ(a.items_published, b.items_published);
  EXPECT_EQ(a.total_deliveries, b.total_deliveries);
  EXPECT_EQ(a.total_late, b.total_late);
  EXPECT_DOUBLE_EQ(a.on_time_fraction, b.on_time_fraction);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].node, b.nodes[i].node);
    EXPECT_EQ(a.nodes[i].deliveries, b.nodes[i].deliveries);
    EXPECT_EQ(a.nodes[i].late_deliveries, b.nodes[i].late_deliveries);
    EXPECT_DOUBLE_EQ(a.nodes[i].max_staleness, b.nodes[i].max_staleness);
  }
}

TEST(LiveCapacityTest, SqueezesOnlyConfigIsByteIdentical) {
  const Population population = workload(40, 17);
  const LiveReport plain =
      run_live_dissemination(population, live_config(17));

  // Squeezes without a budget are inert — the config is empty() and the
  // run must be byte-identical to the capacity-free path.
  LiveConfig wired = live_config(17);
  wired.capacity.shedding = true;
  wired.capacity.squeezes.push_back({10.0, 40.0, 0.25});
  const LiveReport squeezed = run_live_dissemination(population, wired);

  expect_same_report(plain, squeezed);
  EXPECT_EQ(squeezed.shed_items, 0u);
  EXPECT_EQ(squeezed.queue_drops, 0u);
  EXPECT_EQ(squeezed.starvation_detaches, 0u);
}

TEST(LiveCapacityTest, BindingBudgetShedsWithThePolicyOn) {
  const Population population = workload(60, 19);
  LiveConfig config = live_config(19);
  config.publish_every = 1;
  config.capacity.relay_budget = 1;
  config.capacity.shedding = true;
  const LiveReport report = run_live_dissemination(population, config);
  EXPECT_GT(report.shed_items, 0u);
  EXPECT_GT(report.degraded_relay_ticks, 0u);
  // Shed items are deferred, not destroyed — no bounded queue here.
  EXPECT_EQ(report.queue_drops, 0u);
}

TEST(LiveCapacityTest, BoundedQueueDropsOldestWhenFull) {
  const Population population = workload(60, 19);
  LiveConfig config = live_config(19);
  config.publish_every = 1;
  config.capacity.relay_budget = 1;
  config.capacity.queue_limit = 2;
  config.capacity.shedding = true;
  const LiveReport report = run_live_dissemination(population, config);
  EXPECT_GT(report.queue_drops, 0u);
  // max_backlog gauges the depth *before* the trim, so it may exceed
  // the limit transiently — but the trim must be observable.
  EXPECT_GT(report.max_backlog, 0u);
}

TEST(LiveCapacityTest, UndefendedBudgetNeverEscalatesStarvation) {
  const Population population = workload(60, 19);
  LiveConfig config = live_config(19);
  config.publish_every = 1;
  config.capacity.relay_budget = 1;
  config.capacity.shedding = false;
  const LiveReport report = run_live_dissemination(population, config);
  // The budget binds either way, but escalation and degraded-fanout are
  // shedding-ladder policy — the undefended run must not show them.
  EXPECT_EQ(report.starvation_detaches, 0u);
  EXPECT_EQ(report.degraded_relay_ticks, 0u);
}

// --- lossy dissemination ----------------------------------------------

TEST(LossyCapacityTest, EmptyCapacityIsByteIdentical) {
  const Population population = workload(40, 23);
  EngineConfig engine_config;
  engine_config.seed = 23;
  Engine engine(population, engine_config);
  ASSERT_TRUE(engine.run_until_converged(600).has_value());

  LossyConfig plain;
  plain.base.seed = 23;
  plain.push_loss = 0.15;
  plain.enable_recovery = true;
  const LossyReport base =
      run_lossy_dissemination(engine.overlay(), plain, 60.0);

  LossyConfig wired = plain;
  wired.base.capacity.shedding = true;
  wired.base.capacity.squeezes.push_back({5.0, 25.0, 0.5});
  const LossyReport squeezed =
      run_lossy_dissemination(engine.overlay(), wired, 60.0);

  EXPECT_EQ(base.push_deliveries, squeezed.push_deliveries);
  EXPECT_EQ(base.lost_pushes, squeezed.lost_pushes);
  EXPECT_EQ(base.recovered_deliveries, squeezed.recovered_deliveries);
  EXPECT_EQ(base.applications, squeezed.applications);
  EXPECT_DOUBLE_EQ(base.delivery_ratio, squeezed.delivery_ratio);
  EXPECT_EQ(squeezed.shed_pushes, 0u);
}

TEST(LossyCapacityTest, ShedPushesStayRecoverable) {
  const Population population = workload(40, 23);
  EngineConfig engine_config;
  engine_config.seed = 23;
  Engine engine(population, engine_config);
  ASSERT_TRUE(engine.run_until_converged(600).has_value());

  LossyConfig config;
  config.base.seed = 23;
  config.base.capacity.relay_budget = 1;
  config.base.capacity.shedding = true;
  config.push_loss = 0.1;
  config.enable_recovery = true;
  config.repair = feed::RepairMode::kNack;
  const LossyReport report =
      run_lossy_dissemination(engine.overlay(), config, 60.0);
  EXPECT_GT(report.shed_pushes, 0u);
  EXPECT_GT(report.recovered_deliveries, 0u);
  // Dedup invariant survives the capacity layer.
  EXPECT_EQ(report.applications,
            report.push_deliveries + report.recovered_deliveries);
}

}  // namespace
}  // namespace lagover
