// Tests for session-length churn: duration semantics, alternation, and
// end-to-end construction under heavy-tailed sessions.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "workload/constraints.hpp"
#include "workload/sessions.hpp"

namespace lagover {
namespace {

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(SessionChurnTest, ValidatesConfig) {
  SessionChurnConfig bad;
  bad.mean_online = 0.0;
  EXPECT_DEATH(SessionChurn{bad}, "precondition");

  SessionChurnConfig bad_alpha;
  bad_alpha.pareto_alpha = 0.5;  // infinite-mean regime rejected
  EXPECT_DEATH(SessionChurn{bad_alpha}, "precondition");
}

TEST(SessionChurnTest, NodesAlternateStates) {
  const Population population = workload(30, 1);
  Overlay overlay(population);
  SessionChurnConfig config;
  config.mean_online = 10.0;
  config.mean_offline = 5.0;
  SessionChurn churn(config);
  Rng rng(3);
  int leaves = 0;
  int joins = 0;
  for (Round round = 0; round < 500; ++round) {
    const auto decision = churn.decide(round, overlay, rng);
    for (NodeId id : decision.leave) {
      overlay.set_offline(id);
      ++leaves;
    }
    for (NodeId id : decision.join) {
      overlay.set_online(id);
      ++joins;
    }
  }
  EXPECT_GT(leaves, 100);  // ~30 nodes cycling every ~15 rounds
  EXPECT_GT(joins, 100);
}

TEST(SessionChurnTest, MeanSessionLengthApproximatelyHonored) {
  const Population population = workload(50, 2);
  Overlay overlay(population);
  SessionChurnConfig config;
  config.mean_online = 20.0;
  config.mean_offline = 20.0;
  SessionChurn churn(config);
  Rng rng(5);
  // Long-run fraction of time online should be about
  // mean_online / (mean_online + mean_offline) = 0.5.
  long online_node_rounds = 0;
  const int kRounds = 4000;
  for (Round round = 0; round < kRounds; ++round) {
    const auto decision = churn.decide(round, overlay, rng);
    for (NodeId id : decision.leave) overlay.set_offline(id);
    for (NodeId id : decision.join) overlay.set_online(id);
    online_node_rounds += static_cast<long>(overlay.online_count());
  }
  const double online_fraction =
      static_cast<double>(online_node_rounds) / (kRounds * 50.0);
  EXPECT_NEAR(online_fraction, 0.5, 0.06);
}

TEST(SessionChurnTest, ParetoProducesHeavyTail) {
  // With the same mean, Pareto sessions should show a much larger
  // maximum than exponential ones.
  SessionChurnConfig exp_config;
  exp_config.mean_online = 50.0;
  SessionChurnConfig pareto_config = exp_config;
  pareto_config.pareto_alpha = 1.5;

  const Population population = workload(100, 3);
  auto longest_session = [&](SessionChurnConfig config,
                             std::uint64_t seed) {
    Overlay overlay(population);
    SessionChurn churn(config);
    Rng rng(seed);
    std::vector<Round> online_since(overlay.node_count(), 0);
    Round longest = 0;
    for (Round round = 1; round <= 5000; ++round) {
      const auto decision = churn.decide(round, overlay, rng);
      for (NodeId id : decision.leave) {
        overlay.set_offline(id);
        longest = std::max(longest, round - online_since[id]);
      }
      for (NodeId id : decision.join) {
        overlay.set_online(id);
        online_since[id] = round;
      }
    }
    return longest;
  };
  EXPECT_GT(longest_session(pareto_config, 7),
            longest_session(exp_config, 7));
}

TEST(SessionChurnTest, ConstructionSurvivesSessionChurn) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 9;
  Engine engine(workload(80, 4), config);
  SessionChurnConfig churn_config;
  churn_config.mean_online = 150.0;
  churn_config.mean_offline = 10.0;
  churn_config.pareto_alpha = 1.8;
  engine.set_churn(std::make_unique<SessionChurn>(churn_config));
  engine.set_record_history(true);
  for (int round = 0; round < 500; ++round) {
    engine.run_round();
    engine.overlay().audit();
  }
  double mean_fraction = 0.0;
  int counted = 0;
  for (const auto& stats : engine.history()) {
    if (stats.round <= 150) continue;
    mean_fraction += stats.satisfied_fraction;
    ++counted;
  }
  EXPECT_GT(mean_fraction / counted, 0.85);
}

}  // namespace
}  // namespace lagover
