// Golden-bundle tests for the lagover_inspect query core: a seeded,
// audited chaos run is dumped through the flight recorder, reloaded
// from disk, and the offline answers are checked against ground truth
// from the live run — every delivered item has a complete
// publish→deliver chain, `laggards` agrees with the
// "feed.deadline_misses" counter, and `ancestry_at` reproduces the
// overlay's actual parent chains. A second group forces an invariant
// violation and checks the post-mortem bundle is self-contained and
// replays (same seed, same audit) to the same violation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "core/validator.hpp"
#include "feed/reliability.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "tools/inspect.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

/// Scoped telemetry enable mirroring test_telemetry.cpp's guard.
class TelemetryGuard {
 public:
  TelemetryGuard() : previous_(telemetry::enabled()) {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::set_enabled(true);
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(previous_);
    telemetry::MetricsRegistry::instance().reset();
  }

 private:
  bool previous_;
};

/// Deletes the file when the test scope ends.
class TempFile {
 public:
  explicit TempFile(std::string path) : path_(std::move(path)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(InspectTest, SelfCheckPasses) {
  std::string error;
  EXPECT_TRUE(tools::self_check(&error)) << error;
}

/// One seeded lossy run dumped through the flight recorder and loaded
/// back — the shared fixture for the golden-bundle assertions.
class GoldenBundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    guard_ = std::make_unique<TelemetryGuard>();
    WorkloadParams params;
    params.peers = 40;
    params.seed = 17;
    EngineConfig config;
    config.seed = 17;
    engine_ = std::make_unique<Engine>(
        generate_workload(WorkloadKind::kBiUnCorr, params), config);
    ASSERT_TRUE(engine_->run_until_converged(3000).has_value());

    telemetry::FlightRecorder::Config capacity;
    capacity.span_capacity = 1 << 20;  // retain the whole run
    capacity.event_capacity = 1 << 20;
    telemetry::FlightRecorder recorder(capacity);
    recorder.set_repro(17, "--peers 40 --seed 17");
    recorder.note_snapshot(0.0, to_snapshot(engine_->overlay()));

    feed::LossyConfig lossy;
    lossy.base.seed = 17;
    lossy.push_loss = 0.2;
    lossy.enable_recovery = true;
    lossy.repair = feed::RepairMode::kNack;
    report_ = feed::run_lossy_dissemination(engine_->overlay(), lossy, 60.0);
    misses_ = telemetry::MetricsRegistry::instance()
                  .counter("feed.deadline_misses")
                  .value();

    file_ = std::make_unique<TempFile>("test_inspect_golden.json");
    ASSERT_TRUE(recorder.dump(file_->path(), "golden"));
    std::string error;
    ASSERT_TRUE(tools::load_bundle(file_->path(), bundle_, &error)) << error;
  }

  std::unique_ptr<TelemetryGuard> guard_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<TempFile> file_;
  feed::LossyReport report_;
  std::uint64_t misses_ = 0;
  tools::Bundle bundle_;
};

TEST_F(GoldenBundleTest, BundleIsSelfContained) {
  EXPECT_TRUE(bundle_.is_postmortem());
  EXPECT_EQ(bundle_.reason, "golden");
  EXPECT_EQ(bundle_.seed, 17u);
  EXPECT_EQ(bundle_.flags, "--peers 40 --seed 17");
  ASSERT_EQ(bundle_.snapshots.size(), 1u);
  EXPECT_FALSE(bundle_.spans.empty());
  EXPECT_FALSE(bundle_.metrics.is_null());
}

TEST_F(GoldenBundleTest, EveryDeliveredItemHasACompletePath) {
  // Ground truth: the first receipt of each (item, node). Every one of
  // them must reconstruct to an unbroken publish→...→deliver chain.
  std::map<std::pair<std::uint64_t, NodeId>, bool> receipts;
  for (const auto& span : bundle_.spans)
    if (span.is_receipt())
      receipts.emplace(std::make_pair(span.item, span.node), true);
  ASSERT_GT(receipts.size(), 0u);

  std::size_t checked = 0;
  for (const auto& [key, unused] : receipts) {
    const auto result = tools::item_path(bundle_, key.first, key.second);
    EXPECT_TRUE(result.complete)
        << "item " << key.first << " node " << key.second << ": "
        << result.note;
    ASSERT_GE(result.hops.size(), 2u);  // publish + at least one receipt
    EXPECT_EQ(result.hops.front().kind, "publish");
    EXPECT_EQ(result.hops.back().node, key.second);
    // Hops are causally chained: each receipt came from the previous
    // node in the walk.
    for (std::size_t i = 2; i < result.hops.size(); ++i)
      EXPECT_EQ(result.hops[i].parent, result.hops[i - 1].node);
    ++checked;
  }
  EXPECT_EQ(checked, receipts.size());
}

TEST_F(GoldenBundleTest, LaggardsAgreeWithDeadlineMissCounter) {
  ASSERT_GT(misses_, 0u);  // loss + recovery must produce late receipts
  EXPECT_EQ(tools::deadline_misses(bundle_), misses_);
  const auto late = tools::laggards(bundle_);
  EXPECT_EQ(late.size(), misses_);
  // Worst first, and every entry genuinely beyond its budget.
  for (std::size_t i = 1; i < late.size(); ++i)
    EXPECT_GE(late[i - 1].miss, late[i].miss);
  for (const auto& laggard : late)
    EXPECT_GT(laggard.latency, laggard.deadline);
}

TEST_F(GoldenBundleTest, AncestryMatchesLiveOverlay) {
  const Overlay& overlay = engine_->overlay();
  for (NodeId node = 1; node < overlay.node_count(); ++node) {
    const auto result = tools::ancestry_at(bundle_, node, 30.0);
    ASSERT_TRUE(result.ok) << result.note;
    // Rebuild the expected chain from the live structure.
    std::vector<NodeId> expected{node};
    for (NodeId at = node; overlay.parent(at) != kNoNode;
         at = overlay.parent(at))
      expected.push_back(overlay.parent(at));
    EXPECT_EQ(result.chain, expected) << "node " << node;
  }
}

TEST(InspectPostmortemTest, ForcedViolationDumpsAndReplays) {
  TelemetryGuard guard;
  // An overlay whose depth breaks node 2's latency budget — the audit
  // must flag it, and the flagged audit must trigger the dump.
  Population population;
  population.source_fanout = 1;
  population.consumers = {NodeSpec{1, Constraints{1, 2}},
                          NodeSpec{2, Constraints{0, 1}}};
  auto violate = [&population](telemetry::FlightRecorder* recorder) {
    Overlay overlay(population);
    overlay.attach(1, kSourceId);
    overlay.attach(2, 1);
    // Corrupt the greedy ordering: node 2 (l=1) hangs below node 1
    // (l=2), which kGreedy forbids.
    const auto report = audit_invariants(overlay, AlgorithmKind::kGreedy);
    if (recorder != nullptr) {
      AuditBus bus;
      const auto sub = attach_flight_recorder(bus, *recorder);
      publish(report, bus, 7);
      bus.unsubscribe(sub);
    }
    return report;
  };

  TempFile file("test_inspect_postmortem.json");
  telemetry::FlightRecorder recorder;
  recorder.set_repro(99, "--forced-violation");
  recorder.set_dump_on_violation(file.path());
  recorder.note_snapshot(0.0, "lagover-snapshot v1\nsource 1\n");
  const auto live = violate(&recorder);
  ASSERT_FALSE(live.ok());
  EXPECT_TRUE(recorder.violation_seen());
  EXPECT_TRUE(recorder.dumped());

  tools::Bundle bundle;
  std::string error;
  ASSERT_TRUE(tools::load_bundle(file.path(), bundle, &error)) << error;
  EXPECT_EQ(bundle.reason, "invariant_violation");
  EXPECT_EQ(bundle.seed, 99u);
  ASSERT_GT(bundle.violations.size(), 0u);

  // Replay: the bundle's repro inputs rebuild the same overlay, and the
  // re-run audit reports the identical violation set.
  const auto replayed = violate(nullptr);
  ASSERT_EQ(replayed.violations.size(), live.violations.size());
  ASSERT_EQ(bundle.violations.size(), live.violations.size());
  for (std::size_t i = 0; i < live.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].invariant, live.violations[i].invariant);
    EXPECT_EQ(replayed.violations[i].node, live.violations[i].node);
    const Json& recorded = bundle.violations.at(i);
    ASSERT_NE(recorded.find("invariant"), nullptr);
    EXPECT_EQ(recorded.find("invariant")->as_string(),
              to_string(live.violations[i].invariant));
  }
}

TEST(InspectShedTest, ShedDropsAttributedInGoldenBundle) {
  TelemetryGuard guard;
  WorkloadParams params;
  params.peers = 40;
  params.seed = 23;
  EngineConfig config;
  config.seed = 23;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());

  telemetry::FlightRecorder::Config capacity;
  capacity.span_capacity = 1 << 20;
  capacity.event_capacity = 1 << 20;
  telemetry::FlightRecorder recorder(capacity);
  recorder.set_repro(23, "--peers 40 --seed 23");
  recorder.note_snapshot(0.0, to_snapshot(engine.overlay()));

  // A starved relay budget with shedding on: overload spans must be
  // recorded with the "shed" cause, distinct from plain push loss, and
  // the inspect queries must surface them.
  feed::LossyConfig lossy;
  lossy.base.seed = 23;
  lossy.base.capacity.relay_budget = 1;
  lossy.base.capacity.shedding = true;
  lossy.push_loss = 0.1;
  lossy.enable_recovery = true;
  lossy.repair = feed::RepairMode::kNack;
  const auto report =
      feed::run_lossy_dissemination(engine.overlay(), lossy, 60.0);
  ASSERT_GT(report.shed_pushes, 0u);

  TempFile file("test_inspect_shed.json");
  ASSERT_TRUE(recorder.dump(file.path(), "shed-golden"));
  tools::Bundle bundle;
  std::string error;
  ASSERT_TRUE(tools::load_bundle(file.path(), bundle, &error)) << error;

  std::size_t shed_spans = 0;
  for (const auto& [cause, count] : tools::drop_causes(bundle))
    if (cause == "shed") shed_spans = count;
  EXPECT_EQ(shed_spans, report.shed_pushes);
  EXPECT_NE(tools::summary(bundle).find("shed: "), std::string::npos);
}

TEST(InspectJsonlTest, LoadsRawSpanStream) {
  // A --spans-out style stream (no bundle wrapper) must load too.
  TempFile file("test_inspect_spans.jsonl");
  {
    std::ofstream out(file.path());
    out << R"({"kind":"span","schema":"lagover.spans.v1","item":1,)"
        << R"("span":"publish","node":0,"hop":0,"published_at":1.0,)"
        << R"("start":1.0,"ts":1.0})"
        << "\n";
    out << R"({"kind":"span","schema":"lagover.spans.v1","item":1,)"
        << R"("span":"deliver","node":3,"parent":0,"hop":1,)"
        << R"("published_at":1.0,"start":1.0,"ts":2.0,"deadline":4.0})"
        << "\n";
  }
  tools::Bundle bundle;
  std::string error;
  ASSERT_TRUE(tools::load_bundle(file.path(), bundle, &error)) << error;
  EXPECT_FALSE(bundle.is_postmortem());
  ASSERT_EQ(bundle.spans.size(), 2u);
  const auto result = tools::item_path(bundle, 1, 3);
  EXPECT_TRUE(result.complete) << result.note;
  EXPECT_EQ(result.hops.size(), 2u);
}

}  // namespace
}  // namespace lagover
