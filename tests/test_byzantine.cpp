// Byzantine-layer tests: deterministic adversary role assignment and
// per-class behavior (AdversaryBook), the protocol's claimed-delay
// interposition hook, the suspicion ladder (escalation, epoch fencing,
// persistence across re-incarnations), correlated failure domains, and
// the engine-level guarantees — an empty adversary spec plus empty
// domains is byte-identical to the plain path, and the defense ladder
// actually quarantines delay-liars where the undefended run degrades.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "core/greedy.hpp"
#include "fault/byzantine.hpp"
#include "fault/domains.hpp"
#include "fault/fault_injector.hpp"
#include "health/suspicion.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using fault::AdversaryBook;
using fault::AdversaryClass;
using fault::ByzantineSpec;
using fault::FailureDomain;
using fault::FailureDomains;
using health::DefenseConfig;
using health::SuspicionBook;
using health::TrustState;

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

// --- adversary book ---------------------------------------------------

TEST(AdversaryBookTest, EmptySpecIsAllHonest) {
  const AdversaryBook book(ByzantineSpec{}, 100);
  EXPECT_TRUE(book.empty());
  for (NodeId id = 0; id < 100; ++id)
    EXPECT_EQ(book.role(id), AdversaryClass::kHonest);
  EXPECT_EQ(book.count(AdversaryClass::kDelayLiar), 0u);
}

TEST(AdversaryBookTest, RoleAssignmentIsDeterministicAndCalibrated) {
  ByzantineSpec spec;
  spec.delay_liar_fraction = 0.1;
  spec.fanout_liar_fraction = 0.1;
  spec.free_rider_fraction = 0.1;
  spec.flapper_fraction = 0.1;
  const std::size_t n = 2000;
  const AdversaryBook book(spec, n);
  const AdversaryBook again(spec, n);
  EXPECT_FALSE(book.empty());
  for (NodeId id = 0; id < n; ++id)
    EXPECT_EQ(book.role(id), again.role(id)) << "role differs at " << id;
  // Each 10% class bucket lands near 200 of 2000 consumers.
  for (auto cls : {AdversaryClass::kDelayLiar, AdversaryClass::kFanoutLiar,
                   AdversaryClass::kFreeRider, AdversaryClass::kFlapper}) {
    EXPECT_GT(book.count(cls), 120u) << to_string(cls);
    EXPECT_LT(book.count(cls), 280u) << to_string(cls);
  }
  // A different salt picks a different liar set.
  ByzantineSpec salted = spec;
  salted.salt ^= 0x9e3779b97f4a7c15ull;
  const AdversaryBook other(salted, n);
  std::size_t moved = 0;
  for (NodeId id = 0; id < n; ++id)
    if (book.role(id) != other.role(id)) ++moved;
  EXPECT_GT(moved, 0u);
}

TEST(AdversaryBookTest, SourceIsAlwaysHonest) {
  ByzantineSpec spec;
  spec.delay_liar_fraction = 1.0;
  const AdversaryBook book(spec, 50);
  EXPECT_EQ(book.role(kSourceId), AdversaryClass::kHonest);
  EXPECT_EQ(book.count(AdversaryClass::kDelayLiar), 49u);
}

TEST(AdversaryBookTest, ClaimedValuesFollowRoles) {
  ByzantineSpec spec;
  spec.delay_liar_fraction = 0.5;
  spec.delay_understatement = 2;
  const AdversaryBook book(spec, 200);
  NodeId liar = kNoNode;
  NodeId honest = kNoNode;
  for (NodeId id = 1; id < 200; ++id) {
    if (book.role(id) == AdversaryClass::kDelayLiar && liar == kNoNode)
      liar = id;
    if (book.role(id) == AdversaryClass::kHonest && honest == kNoNode)
      honest = id;
  }
  ASSERT_NE(liar, kNoNode);
  ASSERT_NE(honest, kNoNode);
  EXPECT_EQ(book.claimed_delay(liar, 5), 3);   // 5 - understatement
  EXPECT_EQ(book.claimed_delay(liar, 2), 1);   // floored at 1
  EXPECT_EQ(book.claimed_delay(honest, 5), 5);
  EXPECT_EQ(book.claimed_delay(kSourceId, 0), 0);
}

TEST(AdversaryBookTest, FanoutLiarAdvertisesPhantomCapacity) {
  ByzantineSpec spec;
  spec.fanout_liar_fraction = 0.5;
  const AdversaryBook book(spec, 200);
  NodeId liar = kNoNode;
  for (NodeId id = 1; id < 200 && liar == kNoNode; ++id)
    if (book.role(id) == AdversaryClass::kFanoutLiar) liar = id;
  ASSERT_NE(liar, kNoNode);
  EXPECT_GE(book.claimed_free_fanout(liar, 0), 1);
  EXPECT_TRUE(book.rejects_child(liar));
  EXPECT_FALSE(book.withholds_feed(liar));
  EXPECT_FALSE(book.rejects_child(kSourceId));
}

TEST(AdversaryBookTest, FlapperCyclesOnItsDutySchedule) {
  ByzantineSpec spec;
  spec.flapper_fraction = 0.5;
  spec.flap_period = 10.0;
  spec.flap_duty = 0.5;
  const AdversaryBook book(spec, 100);
  NodeId flapper = kNoNode;
  NodeId honest = kNoNode;
  for (NodeId id = 1; id < 100; ++id) {
    if (book.role(id) == AdversaryClass::kFlapper && flapper == kNoNode)
      flapper = id;
    if (book.role(id) == AdversaryClass::kHonest && honest == kNoNode)
      honest = id;
  }
  ASSERT_NE(flapper, kNoNode);
  ASSERT_NE(honest, kNoNode);
  // Over one full period the flapper is down for ~the off-duty half.
  int down = 0;
  for (int tick = 0; tick < 100; ++tick) {
    const SimTime t = static_cast<double>(tick) * 0.1;
    if (book.flapping_down(flapper, t)) {
      ++down;
      EXPECT_GT(book.flap_remaining(flapper, t), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(book.flap_remaining(flapper, t), 0.0);
    }
    EXPECT_FALSE(book.flapping_down(honest, t));
  }
  EXPECT_GT(down, 30);
  EXPECT_LT(down, 70);
}

// --- protocol claimed-delay hook --------------------------------------

TEST(ProtocolClaimTest, ClaimHookInterposesRemoteDelaysOnly) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{2, 2}},
                 NodeSpec{2, Constraints{2, 4}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  GreedyProtocol protocol;
  // No hook: claims are ground truth.
  EXPECT_EQ(protocol.claimed_delay(overlay, 1), overlay.delay_at(1));
  EXPECT_EQ(protocol.claimed_delay(overlay, 2), overlay.delay_at(2));
  // Node 1 understates by 1; the source's claim is never interposed.
  protocol.set_delay_claim([](NodeId node, Delay truth) {
    return node == 1 ? truth - 1 : truth;
  });
  EXPECT_EQ(protocol.claimed_delay(overlay, 1), overlay.delay_at(1) - 1);
  EXPECT_EQ(protocol.claimed_delay(overlay, 2), overlay.delay_at(2));
  EXPECT_EQ(protocol.claimed_delay(overlay, kSourceId),
            overlay.delay_at(kSourceId));
}

// --- suspicion ladder -------------------------------------------------

DefenseConfig enabled_defense() {
  DefenseConfig config;
  config.enabled = true;
  return config;
}

TEST(SuspicionBookTest, LadderEscalatesWithEvidence) {
  SuspicionBook book(10, enabled_defense());
  EXPECT_TRUE(book.enabled());
  EXPECT_EQ(book.state(3), TrustState::kTrusted);
  EXPECT_EQ(book.report(3, 1.0, 1, "test"), TrustState::kTrusted);
  EXPECT_EQ(book.report(3, 1.0, 1, "test"), TrustState::kProbation);
  EXPECT_FALSE(book.barred(3));
  EXPECT_EQ(book.report(3, 3.0, 1, "test"), TrustState::kQuarantined);
  EXPECT_TRUE(book.barred(3));
  EXPECT_EQ(book.report(3, 7.0, 1, "test"), TrustState::kBlacklisted);
  EXPECT_DOUBLE_EQ(book.score(3), 12.0);
  EXPECT_EQ(book.barred_nodes(), std::vector<NodeId>{3});
  EXPECT_EQ(book.probations(), 1u);
  EXPECT_EQ(book.quarantines(), 1u);
  EXPECT_EQ(book.blacklists(), 1u);
}

TEST(SuspicionBookTest, SourceIsNeverSuspected) {
  SuspicionBook book(10, enabled_defense());
  book.report(kSourceId, 100.0, 1, "test");
  EXPECT_EQ(book.state(kSourceId), TrustState::kTrusted);
  EXPECT_FALSE(book.barred(kSourceId));
}

TEST(SuspicionBookTest, StaleEpochReportsAreFenced) {
  SuspicionBook book(10, enabled_defense());
  book.note_epoch(4, 3);
  book.report(4, 2.0, 2, "stale");  // older incarnation: void
  EXPECT_DOUBLE_EQ(book.score(4), 0.0);
  EXPECT_EQ(book.fenced_reports(), 1u);
  book.report(4, 2.0, 3, "current");
  EXPECT_DOUBLE_EQ(book.score(4), 2.0);
  // A newer epoch advances the fence and still counts.
  book.report(4, 1.0, 5, "newer");
  EXPECT_DOUBLE_EQ(book.score(4), 3.0);
  book.report(4, 1.0, 4, "now stale");
  EXPECT_DOUBLE_EQ(book.score(4), 3.0);
  EXPECT_EQ(book.fenced_reports(), 2u);
}

TEST(SuspicionBookTest, ScoreSurvivesReIncarnation) {
  // A flapper cannot launder suspicion by restarting: the accrued score
  // and ladder state persist across note_epoch.
  SuspicionBook book(10, enabled_defense());
  book.report(2, 5.0, 1, "test");
  ASSERT_EQ(book.state(2), TrustState::kQuarantined);
  book.note_epoch(2, 2);
  EXPECT_EQ(book.state(2), TrustState::kQuarantined);
  EXPECT_DOUBLE_EQ(book.score(2), 5.0);
  book.report(2, 7.0, 2, "test");
  EXPECT_EQ(book.state(2), TrustState::kBlacklisted);
  book.note_epoch(2, 3);
  EXPECT_TRUE(book.barred(2));  // blacklist is permanent
}

TEST(SuspicionBookTest, ReportOnceCountsPerCausePerEpoch) {
  SuspicionBook book(10, enabled_defense());
  book.report_once(5, 1.5, 1, "implausible_delay");
  book.report_once(5, 1.5, 1, "implausible_delay");
  EXPECT_DOUBLE_EQ(book.score(5), 1.5);
  book.report_once(5, 1.0, 1, "another_cause");
  EXPECT_DOUBLE_EQ(book.score(5), 2.5);
  // A new incarnation may re-earn the same once-cause.
  book.note_epoch(5, 2);
  book.report_once(5, 1.5, 2, "implausible_delay");
  EXPECT_DOUBLE_EQ(book.score(5), 4.0);
}

// --- correlated failure domains ---------------------------------------

TEST(DomainsTest, HashedMembersAreDeterministicAndCalibrated) {
  const auto members =
      FailureDomains::hashed_members("rack-a", 400, 0.25, 42);
  const auto again = FailureDomains::hashed_members("rack-a", 400, 0.25, 42);
  EXPECT_EQ(members, again);
  EXPECT_GT(members.size(), 60u);
  EXPECT_LT(members.size(), 140u);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(std::count(members.begin(), members.end(), kSourceId), 0);
  const auto other =
      FailureDomains::hashed_members("rack-b", 400, 0.25, 42);
  EXPECT_NE(members, other);
}

TEST(DomainsTest, CrashWindowsTakeTheWholeDomainDown) {
  FailureDomains domains;
  domains.add(FailureDomain{
      "rack-a", {1, 2, 3}, {{10.0, 20.0, fault::DomainFault::kCrash}}});
  EXPECT_DOUBLE_EQ(domains.crash_outage(1, 15.0), 5.0);
  EXPECT_DOUBLE_EQ(domains.crash_outage(3, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(domains.crash_outage(4, 15.0), 0.0);  // not a member
  EXPECT_DOUBLE_EQ(domains.crash_outage(1, 25.0), 0.0);  // window over
  EXPECT_TRUE(domains.any_active(15.0));
  EXPECT_FALSE(domains.any_active(25.0));
  EXPECT_DOUBLE_EQ(domains.last_end(), 20.0);
}

TEST(DomainsTest, PartitionWindowsCutCrossDomainLinksOnly) {
  FailureDomains domains;
  domains.add(FailureDomain{
      "rack-a", {1, 2}, {{0.0, 10.0, fault::DomainFault::kPartition}}});
  EXPECT_TRUE(domains.partitioned(1, 5.0));
  EXPECT_FALSE(domains.partitioned(3, 5.0));
  EXPECT_TRUE(domains.reachable(1, 2, 5.0));    // both inside
  EXPECT_FALSE(domains.reachable(1, 3, 5.0));   // across the cut
  EXPECT_FALSE(domains.reachable(1, kSourceId, 5.0));
  EXPECT_TRUE(domains.reachable(1, 3, 10.0));   // window closed
  EXPECT_DOUBLE_EQ(domains.crash_outage(1, 5.0), 0.0);  // not a crash
}

// --- engine byte-identity guard ---------------------------------------

std::vector<NodeId> parents_of(const Overlay& overlay) {
  std::vector<NodeId> parents;
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    parents.push_back(overlay.has_parent(id) ? overlay.parent(id) : kNoNode);
  return parents;
}

TEST(ByzantineEngineTest, EmptyAdversaryAndDomainsAreByteIdenticalAsync) {
  // An installed-but-empty adversary book, an empty fault plan with an
  // empty domain schedule, and an enabled-but-partnerless defense must
  // all normalize away: same seed, same tree, byte for byte.
  const SimTime horizon = 150.0;
  AsyncConfig plain;
  plain.seed = 7;
  AsyncEngine baseline(workload(40, 7), plain);
  const double base_fraction = baseline.run_for(horizon);

  AsyncConfig wired = plain;
  wired.adversary = std::make_shared<AdversaryBook>(ByzantineSpec{}, 41);
  wired.defense.enabled = true;
  auto injector = std::make_shared<fault::FaultInjector>(fault::FaultPlan{});
  injector->set_domains(std::make_shared<FailureDomains>());
  wired.faults = injector;
  AsyncEngine guarded(workload(40, 7), wired);
  const double wired_fraction = guarded.run_for(horizon);

  EXPECT_DOUBLE_EQ(base_fraction, wired_fraction);
  EXPECT_EQ(parents_of(baseline.overlay()), parents_of(guarded.overlay()));
  EXPECT_EQ(guarded.byzantine_oracle(), nullptr);
  EXPECT_EQ(guarded.suspicion().reports(), 0u);
  EXPECT_EQ(guarded.quarantine_detaches(), 0u);
}

TEST(ByzantineEngineTest, EmptyAdversaryAndDomainsAreByteIdenticalSync) {
  EngineConfig plain;
  plain.seed = 11;
  Engine baseline(workload(40, 11), plain);
  const auto base_round = baseline.run_until_converged(400);

  EngineConfig wired = plain;
  wired.adversary = std::make_shared<AdversaryBook>(ByzantineSpec{}, 41);
  wired.defense.enabled = true;
  auto injector = std::make_shared<fault::FaultInjector>(fault::FaultPlan{});
  injector->set_domains(std::make_shared<FailureDomains>());
  wired.faults = injector;
  Engine guarded(workload(40, 11), wired);
  const auto wired_round = guarded.run_until_converged(400);

  EXPECT_EQ(base_round, wired_round);
  EXPECT_EQ(parents_of(baseline.overlay()), parents_of(guarded.overlay()));
  EXPECT_EQ(guarded.byzantine_oracle(), nullptr);
}

// --- defense ladder end to end ----------------------------------------

TEST(ByzantineEngineTest, DefenseLadderQuarantinesDelayLiars) {
  ByzantineSpec spec;
  spec.delay_liar_fraction = 0.2;
  AsyncConfig config;
  config.seed = 5;
  config.adversary = std::make_shared<AdversaryBook>(spec, 61);
  config.defense.enabled = true;
  AsyncEngine engine(workload(60, 5), config);
  engine.run_for(300.0);

  ASSERT_NE(engine.byzantine_oracle(), nullptr);
  const SuspicionBook& suspicion = engine.suspicion();
  EXPECT_GT(suspicion.quarantines(), 0u);
  // The ladder is mostly precise: the barred set is dominated by actual
  // delay-liars. Some honest collateral is expected — an honest node
  // attached under a liar honestly relays the understated chain
  // downstream, so its own children's delay verification blames it.
  const auto barred = suspicion.barred_nodes();
  ASSERT_FALSE(barred.empty());
  std::size_t barred_liars = 0;
  for (NodeId id : barred)
    if (config.adversary->role(id) == AdversaryClass::kDelayLiar)
      ++barred_liars;
  EXPECT_GT(barred_liars, 0u);
  EXPECT_GE(barred_liars * 2, barred.size());  // liars are the majority
}

TEST(ByzantineEngineTest, UndefendedLiarsDegradeTheOverlay) {
  ByzantineSpec spec;
  spec.delay_liar_fraction = 0.2;
  AsyncConfig config;
  config.seed = 5;
  config.adversary = std::make_shared<AdversaryBook>(spec, 61);
  config.defense.enabled = false;
  AsyncEngine engine(workload(60, 5), config);
  const double fraction = engine.run_for(300.0);
  // With a fifth of the population understating DelayAt and no defense,
  // some victims end the run violated or orphaned.
  EXPECT_LT(fraction, 1.0);
  EXPECT_EQ(engine.suspicion().reports(), 0u);  // ladder never engaged
  EXPECT_EQ(engine.quarantine_detaches(), 0u);
}

}  // namespace
}  // namespace lagover
