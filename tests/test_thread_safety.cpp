// Multi-threaded smoke tests for the telemetry core: hammer the
// metrics registry, the span/event buses, the profiler, the perf
// recorder, and the logger level from many threads at once and assert
// no update is lost. Single-threaded correctness lives in
// test_telemetry.cpp / test_perf.cpp; this file exists to give the
// LAGOVER_GUARDED_BY annotations a dynamic witness — CI runs it under
// ThreadSanitizer, so a missing lock is a test failure, not a latent
// data race. (tests/ is exempt from the raw-thread lint rule for
// exactly this purpose.)
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;
constexpr std::uint64_t kTotal =
    static_cast<std::uint64_t>(kThreads) * kIterations;

/// Runs `body(thread_index)` on kThreads threads and joins them all.
void run_threads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (std::thread& thread : threads) thread.join();
}

/// Scoped telemetry enable that restores the previous state and leaves
/// the global registries clean (mirrors test_telemetry.cpp).
class TelemetryGuard {
 public:
  TelemetryGuard() : previous_(telemetry::enabled()) {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
    telemetry::set_enabled(true);
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(previous_);
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
  }

 private:
  bool previous_;
};

TEST(ThreadSafetyTest, CounterIncrementsAreNotLost) {
  TelemetryGuard guard;
  telemetry::Counter& direct =
      telemetry::MetricsRegistry::instance().counter("ts.direct");
  run_threads([&](int) {
    for (int i = 0; i < kIterations; ++i) {
      direct.inc();
      // The macro path adds the magic-static site cache on top.
      TELEM_COUNT("ts.macro", 1);
    }
  });
  EXPECT_EQ(direct.value(), kTotal);
  EXPECT_EQ(telemetry::MetricsRegistry::instance().counter("ts.macro").value(),
            kTotal);
}

TEST(ThreadSafetyTest, GaugeSettlesOnOneWritersValue) {
  TelemetryGuard guard;
  telemetry::Gauge& gauge =
      telemetry::MetricsRegistry::instance().gauge("ts.gauge");
  run_threads([&](int t) {
    for (int i = 0; i < kIterations; ++i)
      gauge.set(static_cast<double>(t + 1));
  });
  const double last = gauge.value();
  EXPECT_GE(last, 1.0);
  EXPECT_LE(last, static_cast<double>(kThreads));
}

TEST(ThreadSafetyTest, HistogramAddsAreNotLost) {
  TelemetryGuard guard;
  telemetry::LogHistogram& hist =
      telemetry::MetricsRegistry::instance().histogram("ts.hist");
  run_threads([&](int) {
    for (int i = 0; i < kIterations; ++i) hist.add(2.5);
  });
  EXPECT_EQ(hist.count(), kTotal);
  EXPECT_DOUBLE_EQ(hist.sum(), 2.5 * static_cast<double>(kTotal));
  EXPECT_DOUBLE_EQ(hist.min(), 2.5);
  EXPECT_DOUBLE_EQ(hist.max(), 2.5);
}

TEST(ThreadSafetyTest, EventBusRetentionRingUnderContention) {
  telemetry::EventBus<int> bus;
  bus.set_retention(64);
  std::atomic<std::uint64_t> delivered{0};
  const auto id =
      bus.subscribe([&](const int&) { delivered.fetch_add(1); });
  run_threads([&](int) {
    for (int i = 0; i < kIterations; ++i) bus.publish(i);
  });
  EXPECT_EQ(bus.published(), kTotal);
  EXPECT_EQ(delivered.load(), kTotal);
  EXPECT_EQ(bus.recent().size(), 64u);
  EXPECT_EQ(bus.overwritten(), kTotal - 64u);
  bus.unsubscribe(id);
}

TEST(ThreadSafetyTest, SpanEmissionFeedsBusAndMetrics) {
  TelemetryGuard guard;
  std::atomic<std::uint64_t> seen{0};
  const auto id = telemetry::span_bus().subscribe(
      [&](const telemetry::ItemSpan&) { seen.fetch_add(1); });
  const std::uint64_t published_before = telemetry::span_bus().published();
  run_threads([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      telemetry::ItemSpan span;
      span.item = static_cast<std::uint64_t>(t) * kIterations + i;
      span.kind = telemetry::SpanKind::kDeliver;
      span.node = static_cast<std::uint32_t>(t + 1);
      span.published_at = 1.0;
      span.ts = 2.0;
      telemetry::record_span(span);
    }
  });
  telemetry::span_bus().unsubscribe(id);
  telemetry::MetricsRegistry& registry =
      telemetry::MetricsRegistry::instance();
  EXPECT_EQ(seen.load(), kTotal);
  EXPECT_EQ(telemetry::span_bus().published() - published_before, kTotal);
  EXPECT_EQ(registry.counter("span.deliver").value(), kTotal);
  EXPECT_EQ(registry.histogram("feed.delivery_latency").count(), kTotal);
  EXPECT_EQ(registry.counter("feed.deadline_misses").value(), 0u);
}

TEST(ThreadSafetyTest, ProfilerScopesAggregateAcrossThreads) {
  TelemetryGuard guard;
  run_threads([&](int) {
    for (int i = 0; i < kIterations; ++i) {
      TELEM_SCOPE("ts.scope");
    }
  });
  telemetry::ProfileSite& site =
      telemetry::Profiler::instance().site("ts.scope");
  EXPECT_EQ(site.calls.load(), kTotal);
  EXPECT_GE(site.total_ns.load(), site.max_ns.load());
}

TEST(ThreadSafetyTest, PerfRecorderPhasesFromManyThreads) {
  TelemetryGuard guard;
  telemetry::PerfRecorder recorder;
  telemetry::PerfRecorder::set_active(&recorder);
  run_threads([&](int t) {
    const std::string phase = "ts.phase." + std::to_string(t);
    for (int i = 0; i < kIterations / 10; ++i) {
      // set_active's release store must be visible here.
      ASSERT_EQ(telemetry::PerfRecorder::active(), &recorder);
      recorder.phase_begin(phase);
      recorder.phase_end(phase);
    }
  });
  telemetry::PerfRecorder::set_active(nullptr);
  recorder.finish();
  const std::vector<telemetry::PerfPhaseStats> phases = recorder.phases();
  ASSERT_EQ(phases.size(), static_cast<std::size_t>(kThreads));
  for (const telemetry::PerfPhaseStats& phase : phases)
    EXPECT_EQ(phase.name.rfind("ts.phase.", 0), 0u) << phase.name;
}

TEST(ThreadSafetyTest, LoggerLevelTogglesWithoutTearing) {
  const LogLevel before = Logger::instance().level();
  Logger::instance().set_level(LogLevel::kOff);
  run_threads([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      if (t % 2 == 0) {
        Logger::instance().set_level(LogLevel::kError);
      } else {
        const LogLevel seen = Logger::instance().level();
        EXPECT_TRUE(seen == LogLevel::kOff || seen == LogLevel::kError);
        // Below every threshold the writers install: never prints.
        LAGOVER_TRACE("suppressed probe %d", i);
      }
    }
  });
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
  Logger::instance().set_level(before);
}

}  // namespace
}  // namespace lagover
