// Tests for lossy dissemination and anti-entropy recovery.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "feed/reliability.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Overlay converged_overlay(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  EngineConfig config;
  config.seed = seed;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  EXPECT_TRUE(engine.run_until_converged(3000).has_value());
  return engine.overlay();
}

TEST(ReliabilityTest, NoLossDeliversEverything) {
  const Overlay overlay = converged_overlay(60, 3);
  feed::LossyConfig config;
  config.push_loss = 0.0;
  config.enable_recovery = false;
  const auto report =
      feed::run_lossy_dissemination(overlay, config, /*duration=*/200.0);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 1.0);
  EXPECT_EQ(report.lost_pushes, 0u);
  EXPECT_EQ(report.recovered_deliveries, 0u);
  EXPECT_EQ(report.late_deliveries, 0u);
}

TEST(ReliabilityTest, LossWithoutRecoveryDropsDeliveries) {
  const Overlay overlay = converged_overlay(60, 4);
  feed::LossyConfig config;
  config.push_loss = 0.2;
  config.enable_recovery = false;
  const auto report = feed::run_lossy_dissemination(overlay, config, 200.0);
  EXPECT_LT(report.delivery_ratio, 0.99);
  EXPECT_GT(report.lost_pushes, 0u);
  EXPECT_EQ(report.recovery_pulls, 0u);
}

TEST(ReliabilityTest, RecoveryRestoresDeliveryRatio) {
  const Overlay overlay = converged_overlay(60, 5);
  feed::LossyConfig lossy;
  lossy.push_loss = 0.2;
  lossy.enable_recovery = false;
  const auto without = feed::run_lossy_dissemination(overlay, lossy, 300.0);

  lossy.enable_recovery = true;
  const auto with = feed::run_lossy_dissemination(overlay, lossy, 300.0);

  EXPECT_GT(with.delivery_ratio, without.delivery_ratio);
  EXPECT_GT(with.delivery_ratio, 0.999);
  EXPECT_GT(with.recovered_deliveries, 0u);
  EXPECT_GT(with.recovery_pulls, 0u);
}

TEST(ReliabilityTest, RecoveredDeliveriesCanBeLate) {
  // Recovery repairs completeness, not timeliness: with serious loss a
  // nonzero fraction of deliveries exceed the staleness budget.
  const Overlay overlay = converged_overlay(80, 6);
  feed::LossyConfig config;
  config.push_loss = 0.3;
  config.enable_recovery = true;
  config.recovery_period = 4.0;
  const auto report = feed::run_lossy_dissemination(overlay, config, 300.0);
  EXPECT_GT(report.delivery_ratio, 0.99);
  EXPECT_GT(report.late_deliveries, 0u);
}

TEST(ReliabilityTest, SourcePollersAreNeverLossy) {
  // A star topology (everyone polls the source) has no push edges, so
  // loss cannot affect it.
  Population p;
  p.source_fanout = 5;
  for (NodeId id = 1; id <= 5; ++id)
    p.consumers.push_back(NodeSpec{id, Constraints{0, 2}});
  Overlay overlay(p);
  for (NodeId id = 1; id <= 5; ++id) overlay.attach(id, kSourceId);
  feed::LossyConfig config;
  config.push_loss = 0.9;
  const auto report = feed::run_lossy_dissemination(overlay, config, 100.0);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 1.0);
  EXPECT_EQ(report.lost_pushes, 0u);
}

TEST(ReliabilityTest, DuplicatesAreSuppressedExactlyOnceSemantics) {
  // With duplicate injection on, every extra copy of an already-applied
  // item must be counted and dropped: applications stays exactly
  // push_deliveries + recovered_deliveries, and the delivery ratio is
  // unaffected by the duplicate storm.
  const Overlay overlay = converged_overlay(60, 8);
  feed::LossyConfig config;
  config.push_loss = 0.1;
  config.duplicate_probability = 0.4;
  const auto report = feed::run_lossy_dissemination(overlay, config, 300.0);
  EXPECT_GT(report.duplicate_pushes, 0u);
  EXPECT_GT(report.duplicates_suppressed, 0u);
  EXPECT_EQ(report.applications,
            report.push_deliveries + report.recovered_deliveries);
  // Injected copies always trail an applied original, so at least that
  // many receipts were suppressed (repair/forward races add more).
  EXPECT_GE(report.duplicates_suppressed, report.duplicate_pushes / 2);
  EXPECT_GT(report.delivery_ratio, 0.999);
}

TEST(ReliabilityTest, ZeroDuplicateProbabilityIsByteIdentical) {
  // duplicate_probability = 0 must draw no extra randomness: the report
  // matches the pre-duplicates configuration bit for bit, and no
  // injected copy ever enters the system.
  const Overlay overlay = converged_overlay(40, 9);
  feed::LossyConfig config;
  config.push_loss = 0.15;
  const auto base = feed::run_lossy_dissemination(overlay, config, 200.0);
  feed::LossyConfig dup = config;
  dup.duplicate_probability = 0.0;
  const auto same = feed::run_lossy_dissemination(overlay, dup, 200.0);
  EXPECT_EQ(base.push_deliveries, same.push_deliveries);
  EXPECT_EQ(base.recovered_deliveries, same.recovered_deliveries);
  EXPECT_DOUBLE_EQ(base.delivery_ratio, same.delivery_ratio);
  EXPECT_EQ(same.duplicate_pushes, 0u);
}

TEST(ReliabilityTest, NackRepairMatchesBlanketRatioWithFewerMessages) {
  // The NACK repairer computes the same repair set as blanket
  // anti-entropy, so the delivery ratio cannot regress — but it only
  // speaks when it has gaps to name, so it must send strictly fewer
  // repair requests under equal loss.
  const Overlay overlay = converged_overlay(60, 10);
  feed::LossyConfig blanket;
  blanket.push_loss = 0.2;
  blanket.repair = feed::RepairMode::kAntiEntropy;
  const auto anti = feed::run_lossy_dissemination(overlay, blanket, 300.0);

  feed::LossyConfig nack = blanket;
  nack.repair = feed::RepairMode::kNack;
  const auto targeted = feed::run_lossy_dissemination(overlay, nack, 300.0);

  EXPECT_GE(targeted.delivery_ratio, anti.delivery_ratio);
  EXPECT_GT(targeted.delivery_ratio, 0.999);
  EXPECT_LT(targeted.recovery_pulls, anti.recovery_pulls);
  EXPECT_GT(targeted.nacked_items, 0u);
  EXPECT_EQ(anti.nacked_items, 0u);
  // Both strategies actually repaired something.
  EXPECT_GT(anti.recovered_deliveries, 0u);
  EXPECT_GT(targeted.recovered_deliveries, 0u);
}

TEST(ReliabilityTest, NackUnderDuplicatesStaysExactlyOnce) {
  // The full upgrade at once: loss + duplicate storm + NACK repair.
  // Exactly-once application and full eventual delivery both hold.
  const Overlay overlay = converged_overlay(60, 11);
  feed::LossyConfig config;
  config.push_loss = 0.25;
  config.duplicate_probability = 0.3;
  config.repair = feed::RepairMode::kNack;
  const auto report = feed::run_lossy_dissemination(overlay, config, 300.0);
  EXPECT_GT(report.delivery_ratio, 0.999);
  EXPECT_EQ(report.applications,
            report.push_deliveries + report.recovered_deliveries);
  EXPECT_GT(report.duplicates_suppressed, 0u);
  EXPECT_GT(report.nacked_items, 0u);
}

TEST(ReliabilityTest, DeterministicPerSeed) {
  const Overlay overlay = converged_overlay(40, 7);
  feed::LossyConfig config;
  config.push_loss = 0.15;
  const auto a = feed::run_lossy_dissemination(overlay, config, 150.0);
  const auto b = feed::run_lossy_dissemination(overlay, config, 150.0);
  EXPECT_EQ(a.push_deliveries, b.push_deliveries);
  EXPECT_EQ(a.recovered_deliveries, b.recovered_deliveries);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

}  // namespace
}  // namespace lagover
