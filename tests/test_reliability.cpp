// Tests for lossy dissemination and anti-entropy recovery.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "feed/reliability.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Overlay converged_overlay(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  EngineConfig config;
  config.seed = seed;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  EXPECT_TRUE(engine.run_until_converged(3000).has_value());
  return engine.overlay();
}

TEST(ReliabilityTest, NoLossDeliversEverything) {
  const Overlay overlay = converged_overlay(60, 3);
  feed::LossyConfig config;
  config.push_loss = 0.0;
  config.enable_recovery = false;
  const auto report =
      feed::run_lossy_dissemination(overlay, config, /*duration=*/200.0);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 1.0);
  EXPECT_EQ(report.lost_pushes, 0u);
  EXPECT_EQ(report.recovered_deliveries, 0u);
  EXPECT_EQ(report.late_deliveries, 0u);
}

TEST(ReliabilityTest, LossWithoutRecoveryDropsDeliveries) {
  const Overlay overlay = converged_overlay(60, 4);
  feed::LossyConfig config;
  config.push_loss = 0.2;
  config.enable_recovery = false;
  const auto report = feed::run_lossy_dissemination(overlay, config, 200.0);
  EXPECT_LT(report.delivery_ratio, 0.99);
  EXPECT_GT(report.lost_pushes, 0u);
  EXPECT_EQ(report.recovery_pulls, 0u);
}

TEST(ReliabilityTest, RecoveryRestoresDeliveryRatio) {
  const Overlay overlay = converged_overlay(60, 5);
  feed::LossyConfig lossy;
  lossy.push_loss = 0.2;
  lossy.enable_recovery = false;
  const auto without = feed::run_lossy_dissemination(overlay, lossy, 300.0);

  lossy.enable_recovery = true;
  const auto with = feed::run_lossy_dissemination(overlay, lossy, 300.0);

  EXPECT_GT(with.delivery_ratio, without.delivery_ratio);
  EXPECT_GT(with.delivery_ratio, 0.999);
  EXPECT_GT(with.recovered_deliveries, 0u);
  EXPECT_GT(with.recovery_pulls, 0u);
}

TEST(ReliabilityTest, RecoveredDeliveriesCanBeLate) {
  // Recovery repairs completeness, not timeliness: with serious loss a
  // nonzero fraction of deliveries exceed the staleness budget.
  const Overlay overlay = converged_overlay(80, 6);
  feed::LossyConfig config;
  config.push_loss = 0.3;
  config.enable_recovery = true;
  config.recovery_period = 4.0;
  const auto report = feed::run_lossy_dissemination(overlay, config, 300.0);
  EXPECT_GT(report.delivery_ratio, 0.99);
  EXPECT_GT(report.late_deliveries, 0u);
}

TEST(ReliabilityTest, SourcePollersAreNeverLossy) {
  // A star topology (everyone polls the source) has no push edges, so
  // loss cannot affect it.
  Population p;
  p.source_fanout = 5;
  for (NodeId id = 1; id <= 5; ++id)
    p.consumers.push_back(NodeSpec{id, Constraints{0, 2}});
  Overlay overlay(p);
  for (NodeId id = 1; id <= 5; ++id) overlay.attach(id, kSourceId);
  feed::LossyConfig config;
  config.push_loss = 0.9;
  const auto report = feed::run_lossy_dissemination(overlay, config, 100.0);
  EXPECT_DOUBLE_EQ(report.delivery_ratio, 1.0);
  EXPECT_EQ(report.lost_pushes, 0u);
}

TEST(ReliabilityTest, DeterministicPerSeed) {
  const Overlay overlay = converged_overlay(40, 7);
  feed::LossyConfig config;
  config.push_loss = 0.15;
  const auto a = feed::run_lossy_dissemination(overlay, config, 150.0);
  const auto b = feed::run_lossy_dissemination(overlay, config, 150.0);
  EXPECT_EQ(a.push_deliveries, b.push_deliveries);
  EXPECT_EQ(a.recovered_deliveries, b.recovered_deliveries);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

}  // namespace
}  // namespace lagover
