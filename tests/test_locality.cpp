// Tests for the locality extension (paper Section 7 future work):
// biased oracle semantics, metric accounting, and the end-to-end effect
// on cross-locality edges.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/locality.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(LocalityTest, RandomLocalitiesCoverAllBuckets) {
  const LocalityMap localities = random_localities(200, 4, 9);
  ASSERT_EQ(localities.size(), 201u);
  std::vector<int> counts(4, 0);
  for (std::size_t id = 1; id <= 200; ++id) {
    ASSERT_GE(localities[id], 0);
    ASSERT_LT(localities[id], 4);
    ++counts[static_cast<std::size_t>(localities[id])];
  }
  for (int c : counts) EXPECT_GT(c, 25);  // roughly balanced
}

TEST(LocalityTest, FullBiasSamplesOwnLocalityWhenPossible) {
  const Population population = workload(60, 2);
  Overlay overlay(population);
  const LocalityMap localities = random_localities(60, 3, 5);
  LocalityBiasedOracle oracle(OracleKind::kRandom, localities, 1.0);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto sample = oracle.sample(1, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(localities[*sample], localities[1]);
  }
  EXPECT_EQ(oracle.local_samples(), 200u);
  EXPECT_EQ(oracle.global_samples(), 0u);
}

TEST(LocalityTest, ZeroBiasBehavesLikeBaseOracle) {
  const Population population = workload(60, 3);
  Overlay overlay(population);
  const LocalityMap localities = random_localities(60, 3, 6);
  LocalityBiasedOracle oracle(OracleKind::kRandom, localities, 0.0);
  Rng rng(8);
  bool saw_foreign = false;
  for (int i = 0; i < 200; ++i) {
    const auto sample = oracle.sample(1, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    if (localities[*sample] != localities[1]) saw_foreign = true;
  }
  EXPECT_TRUE(saw_foreign);
  EXPECT_EQ(oracle.local_samples(), 0u);
}

TEST(LocalityTest, FallsBackGloballyWhenLocalityStarved) {
  // Querier is alone in its bucket: full bias must still return someone.
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{1, 5}}, NodeSpec{2, Constraints{1, 5}},
                 NodeSpec{3, Constraints{1, 5}}};
  Overlay overlay(p);
  LocalityMap localities{0, 0, 1, 1};  // node 1 alone in bucket 0
  LocalityBiasedOracle oracle(OracleKind::kRandom, localities, 1.0);
  Rng rng(9);
  const auto sample = oracle.sample(1, overlay, rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_NE(localities[*sample], localities[1]);
  EXPECT_GT(oracle.global_samples(), 0u);
}

TEST(LocalityTest, RespectsBaseFilter) {
  // Delay-filtered base: even with locality bias, candidates must obey
  // the delay constraint filter.
  const Population population = workload(40, 4);
  Overlay overlay(population);
  overlay.attach(1, kSourceId);
  const LocalityMap localities = random_localities(40, 2, 7);
  LocalityBiasedOracle oracle(OracleKind::kRandomDelay, localities, 0.7);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto sample = oracle.sample(2, overlay, rng);
    if (!sample.has_value()) continue;
    EXPECT_LT(overlay.delay_at(*sample), overlay.latency_of(2));
  }
}

TEST(LocalityTest, MetricsCountCrossEdges) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 3}},
                 NodeSpec{3, Constraints{0, 4}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);  // edge 2->1
  overlay.attach(3, 2);  // edge 3->2
  const LocalityMap localities{0, 0, 0, 1};  // node 3 in another bucket
  const auto metrics = compute_locality_metrics(overlay, localities);
  EXPECT_EQ(metrics.edges, 2u);        // source edge excluded
  EXPECT_EQ(metrics.cross_edges, 1u);  // 3 -> 2
  EXPECT_DOUBLE_EQ(metrics.cross_fraction, 0.5);
}

TEST(LocalityTest, BiasReducesCrossEdgesEndToEnd) {
  // Construct with bias 0 and bias 0.9 on the same population/localities:
  // the biased run should produce (weakly) fewer cross-locality edges,
  // aggregated over a few seeds to tame randomness.
  const Population population = workload(120, 5);
  const LocalityMap localities = random_localities(120, 4, 11);
  double cross_unbiased = 0.0;
  double cross_biased = 0.0;
  int runs = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (double bias : {0.0, 0.9}) {
      EngineConfig config;
      config.algorithm = AlgorithmKind::kHybrid;
      config.seed = seed;
      Engine engine(population, config);
      engine.set_oracle(std::make_unique<LocalityBiasedOracle>(
          OracleKind::kRandomDelay, localities, bias));
      ASSERT_TRUE(engine.run_until_converged(3000).has_value());
      const auto metrics =
          compute_locality_metrics(engine.overlay(), localities);
      (bias == 0.0 ? cross_unbiased : cross_biased) +=
          metrics.cross_fraction;
    }
    ++runs;
  }
  EXPECT_LT(cross_biased, cross_unbiased);
}

}  // namespace
}  // namespace lagover
