// Unit tests for the Overlay forest structure (parents, children, roots,
// delays, online state, attach/detach preconditions, audit invariants).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/overlay.hpp"

namespace lagover {
namespace {

Population small_population() {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 2}},
      NodeSpec{3, Constraints{0, 3}}, NodeSpec{4, Constraints{1, 2}},
      NodeSpec{5, Constraints{2, 4}},
  };
  return p;
}

TEST(OverlayTest, InitialStateIsAllParentlessAndOnline) {
  Overlay overlay(small_population());
  EXPECT_EQ(overlay.consumer_count(), 5u);
  EXPECT_EQ(overlay.node_count(), 6u);
  EXPECT_EQ(overlay.online_count(), 5u);
  for (NodeId id = 1; id <= 5; ++id) {
    EXPECT_EQ(overlay.parent(id), kNoNode);
    EXPECT_TRUE(overlay.children(id).empty());
    EXPECT_TRUE(overlay.online(id));
    EXPECT_FALSE(overlay.satisfied(id));
  }
  overlay.audit();
}

TEST(OverlayTest, SourceSpecUsesPopulationFanout) {
  Overlay overlay(small_population());
  EXPECT_EQ(overlay.fanout_of(kSourceId), 2);
  EXPECT_EQ(overlay.free_fanout(kSourceId), 2);
  EXPECT_EQ(overlay.root(kSourceId), kSourceId);
  EXPECT_EQ(overlay.delay_at(kSourceId), 0);
}

TEST(OverlayTest, AttachBuildsChainWithDepthEqualsDelay) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);
  EXPECT_EQ(overlay.parent(2), 1u);
  EXPECT_EQ(overlay.root(3), kSourceId);
  EXPECT_EQ(overlay.delay_at(1), 1);
  EXPECT_EQ(overlay.delay_at(2), 2);
  EXPECT_EQ(overlay.delay_at(3), 3);
  EXPECT_TRUE(overlay.connected(3));
  overlay.audit();
}

TEST(OverlayTest, DetachedGroupReportsOptimisticDelay) {
  Overlay overlay(small_population());
  overlay.attach(2, 5);
  overlay.attach(3, 2);
  // Group root 5 is detached: delays assume 5 would sit at depth 1.
  EXPECT_EQ(overlay.root(3), 5u);
  EXPECT_FALSE(overlay.connected(3));
  EXPECT_EQ(overlay.delay_at(5), 1);
  EXPECT_EQ(overlay.delay_at(2), 2);
  EXPECT_EQ(overlay.delay_at(3), 3);
}

TEST(OverlayTest, SatisfactionRequiresConnectionAndDelayBound) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);  // l=1, delay 1: satisfied
  overlay.attach(2, 1);          // l=2, delay 2: satisfied
  overlay.attach(4, 1);          // l=2, delay 2: satisfied
  overlay.attach(3, 2);          // l=3, delay 3: satisfied
  EXPECT_TRUE(overlay.satisfied(1));
  EXPECT_TRUE(overlay.satisfied(2));
  EXPECT_TRUE(overlay.satisfied(3));
  EXPECT_TRUE(overlay.satisfied(4));
  EXPECT_FALSE(overlay.satisfied(5));  // parentless
  EXPECT_FALSE(overlay.all_satisfied());
  EXPECT_EQ(overlay.satisfied_count(), 4u);
  overlay.attach(5, kSourceId);
  EXPECT_TRUE(overlay.all_satisfied());
  EXPECT_DOUBLE_EQ(overlay.satisfied_fraction(), 1.0);
}

TEST(OverlayTest, SatisfactionViolatedWhenTooDeep) {
  Overlay overlay(small_population());
  overlay.attach(5, kSourceId);
  overlay.attach(2, 5);
  overlay.attach(1, 2);  // l=1 at delay 3
  EXPECT_FALSE(overlay.satisfied(1));
  EXPECT_TRUE(overlay.satisfied(2));
}

TEST(OverlayTest, CanAttachRejectsFanoutOverflow) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(5, kSourceId);
  EXPECT_EQ(overlay.free_fanout(kSourceId), 0);
  EXPECT_FALSE(overlay.can_attach(2, kSourceId));
  // Zero-fanout node never hosts.
  EXPECT_FALSE(overlay.can_attach(2, 3));
}

TEST(OverlayTest, CanAttachRejectsCycles) {
  Overlay overlay(small_population());
  overlay.attach(2, 1);
  overlay.attach(3, 2);
  // 1 is the root of {1,2,3}; attaching 1 under its own descendant would
  // create a cycle.
  EXPECT_FALSE(overlay.can_attach(1, 2));
  EXPECT_TRUE(overlay.in_subtree(3, 1));
  EXPECT_FALSE(overlay.in_subtree(1, 3));
}

TEST(OverlayTest, CanAttachRejectsNodesThatAlreadyHaveParents) {
  Overlay overlay(small_population());
  overlay.attach(2, 1);
  EXPECT_FALSE(overlay.can_attach(2, 5));
}

TEST(OverlayTest, DetachKeepsSubtreeWithChild) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);
  overlay.detach(2);
  EXPECT_EQ(overlay.parent(2), kNoNode);
  EXPECT_EQ(overlay.parent(3), 2u);
  EXPECT_EQ(overlay.root(3), 2u);
  EXPECT_FALSE(overlay.connected(3));
  EXPECT_EQ(overlay.free_fanout(1), 2);
  overlay.audit();
}

TEST(OverlayTest, SetOfflineDetachesAndOrphansChildren) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(4, 1);
  overlay.set_offline(1);
  EXPECT_FALSE(overlay.online(1));
  EXPECT_EQ(overlay.online_count(), 4u);
  EXPECT_EQ(overlay.parent(2), kNoNode);
  EXPECT_EQ(overlay.parent(4), kNoNode);
  EXPECT_EQ(overlay.free_fanout(kSourceId), 2);
  overlay.audit();
  // Offline nodes can't be attach targets or children.
  EXPECT_FALSE(overlay.can_attach(2, 1));
  EXPECT_FALSE(overlay.can_attach(1, kSourceId));
  overlay.set_online(1);
  EXPECT_TRUE(overlay.can_attach(1, kSourceId));
}

TEST(OverlayTest, SubtreeEnumeratesAllDescendants) {
  Overlay overlay(small_population());
  overlay.attach(2, 1);
  overlay.attach(4, 1);
  overlay.attach(3, 2);
  const auto nodes = overlay.subtree(1);
  EXPECT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes.front(), 1u);
}

TEST(OverlayTest, GreedyOrderViolationDetection) {
  Overlay overlay(small_population());
  overlay.attach(5, kSourceId);  // source edges never violate
  EXPECT_EQ(overlay.first_greedy_order_violation(), kNoNode);
  overlay.attach(1, 5);  // l_5=4 > l_1=1: violation
  EXPECT_EQ(overlay.first_greedy_order_violation(), 1u);
}

TEST(OverlayTest, CountersTrackMutations) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.detach(2);
  EXPECT_EQ(overlay.counters().attaches, 2u);
  EXPECT_EQ(overlay.counters().detaches, 1u);
}

TEST(OverlayTest, ValidateRejectsBadPopulations) {
  Population bad;
  bad.source_fanout = 1;
  bad.consumers = {NodeSpec{2, Constraints{1, 1}}};  // ids must start at 1
  EXPECT_THROW(Overlay{bad}, InvalidArgument);

  Population bad_latency;
  bad_latency.source_fanout = 1;
  bad_latency.consumers = {NodeSpec{1, Constraints{1, 0}}};
  EXPECT_THROW(Overlay{bad_latency}, InvalidArgument);

  Population bad_fanout;
  bad_fanout.source_fanout = 1;
  bad_fanout.consumers = {NodeSpec{1, Constraints{-1, 1}}};
  EXPECT_THROW(Overlay{bad_fanout}, InvalidArgument);
}

TEST(OverlayTest, AsciiRenderingMentionsAllRoots) {
  Overlay overlay(small_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 5);
  const std::string art = overlay.to_ascii();
  EXPECT_NE(art.find("source tree"), std::string::npos);
  EXPECT_NE(art.find("detached group (root 5)"), std::string::npos);
}

}  // namespace
}  // namespace lagover
