// Tests for the multi-feed system: budget splitting, per-feed
// construction, shared-budget invariants, and aggregate stats.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/multi_feed.hpp"

namespace lagover {
namespace {

std::vector<MultiConsumerSpec> striped_consumers(std::size_t n, int feeds,
                                                 std::uint64_t seed) {
  // Every consumer subscribes to all feeds; later feeds tolerate more
  // buffering (the multipath-video pattern).
  Rng rng(seed);
  std::vector<MultiConsumerSpec> consumers;
  for (NodeId id = 1; id <= n; ++id) {
    MultiConsumerSpec spec;
    spec.id = id;
    spec.total_fanout = static_cast<int>(rng.uniform_int(0, 2)) * feeds;
    const auto base = static_cast<Delay>(rng.uniform_int(2, 6));
    for (int f = 0; f < feeds; ++f)
      spec.subscriptions.push_back(
          {static_cast<std::size_t>(f), static_cast<Delay>(base + f)});
    consumers.push_back(spec);
  }
  return consumers;
}

TEST(MultiFeedTest, EvenBudgetSplitSumsToTotal) {
  MultiFeedConfig config;
  auto consumers = striped_consumers(30, 3, 1);
  MultiFeedSystem system({4, 4, 4}, consumers, config);
  for (const auto& consumer : consumers) {
    int total = 0;
    for (std::size_t f = 0; f < 3; ++f)
      total += system.allocated_fanout(consumer.id, f);
    EXPECT_EQ(total, consumer.total_fanout) << "consumer " << consumer.id;
  }
}

TEST(MultiFeedTest, DemandWeightedFavorsPopularFeeds) {
  // One consumer with budget 4 subscribed to a feed with 20 subscribers
  // and a feed with 5: the popular feed gets the larger share.
  std::vector<MultiConsumerSpec> consumers;
  for (NodeId id = 1; id <= 20; ++id) {
    MultiConsumerSpec spec;
    spec.id = id;
    spec.total_fanout = id == 1 ? 4 : 1;
    spec.subscriptions.push_back({0, 5});
    if (id == 1 || id <= 5) spec.subscriptions.push_back({1, 5});
    consumers.push_back(spec);
  }
  MultiFeedConfig config;
  config.policy = BudgetPolicy::kDemandWeighted;
  MultiFeedSystem system({4, 4}, consumers, config);
  EXPECT_GT(system.allocated_fanout(1, 0), system.allocated_fanout(1, 1));
  EXPECT_EQ(system.allocated_fanout(1, 0) + system.allocated_fanout(1, 1), 4);
}

TEST(MultiFeedTest, NonSubscriberHasZeroAllocation) {
  std::vector<MultiConsumerSpec> consumers;
  MultiConsumerSpec only_feed0;
  only_feed0.id = 1;
  only_feed0.total_fanout = 3;
  only_feed0.subscriptions.push_back({0, 4});
  consumers.push_back(only_feed0);
  MultiFeedSystem system({2, 2}, consumers, MultiFeedConfig{});
  EXPECT_EQ(system.allocated_fanout(1, 0), 3);
  EXPECT_EQ(system.allocated_fanout(1, 1), 0);
  EXPECT_EQ(system.engine(1).overlay().consumer_count(), 0u);
}

TEST(MultiFeedTest, ConvergesAndServesAllSubscriptions) {
  MultiFeedConfig config;
  config.engine.seed = 77;
  MultiFeedSystem system({5, 5, 5}, striped_consumers(45, 3, 2), config);
  const auto converged = system.run_until_converged(5000);
  ASSERT_TRUE(converged.has_value());
  const auto stats = system.stats();
  EXPECT_EQ(stats.fully_served, 45u);
  EXPECT_DOUBLE_EQ(stats.fully_served_fraction, 1.0);
  for (double fraction : stats.per_feed_satisfied)
    EXPECT_DOUBLE_EQ(fraction, 1.0);
  system.audit_budgets();
}

TEST(MultiFeedTest, BudgetInvariantHoldsMidConstruction) {
  MultiFeedConfig config;
  config.engine.seed = 13;
  MultiFeedSystem system({4, 4}, striped_consumers(40, 2, 3), config);
  for (int round = 0; round < 50; ++round) {
    system.run_round();
    system.audit_budgets();
  }
}

TEST(MultiFeedTest, ValidatesInput) {
  std::vector<MultiConsumerSpec> bad_ids;
  bad_ids.push_back({2, 1, {{0, 1}}});
  EXPECT_THROW(MultiFeedSystem({1}, bad_ids, MultiFeedConfig{}),
               InvalidArgument);

  std::vector<MultiConsumerSpec> bad_feed;
  bad_feed.push_back({1, 1, {{7, 1}}});
  EXPECT_THROW(MultiFeedSystem({1}, bad_feed, MultiFeedConfig{}),
               InvalidArgument);

  std::vector<MultiConsumerSpec> bad_latency;
  bad_latency.push_back({1, 1, {{0, 0}}});
  EXPECT_THROW(MultiFeedSystem({1}, bad_latency, MultiFeedConfig{}),
               InvalidArgument);

  EXPECT_THROW(MultiFeedSystem({}, {}, MultiFeedConfig{}), InvalidArgument);
}

TEST(MultiFeedTest, StatsCountPartiallyServedConsumers) {
  // Two feeds; consumer 1 subscribes to both but feed 1's source has no
  // capacity, so it can never be fully served.
  std::vector<MultiConsumerSpec> consumers;
  consumers.push_back({1, 2, {{0, 3}, {1, 3}}});
  MultiFeedConfig config;
  MultiFeedSystem system({1, 0}, consumers, config);
  for (int round = 0; round < 30; ++round) system.run_round();
  EXPECT_FALSE(system.fully_served(1));
  const auto stats = system.stats();
  EXPECT_EQ(stats.fully_served, 0u);
  EXPECT_DOUBLE_EQ(stats.per_feed_satisfied[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.per_feed_satisfied[1], 0.0);
}

}  // namespace
}  // namespace lagover
