// Tests for the population text format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/constraints.hpp"
#include "workload/population_io.hpp"

namespace lagover {
namespace {

TEST(PopulationIoTest, ParsesPeersAndShorthand) {
  const Population p = parse_population_text(
      "# an example\n"
      "source 3\n"
      "peer 2 1\n"
      "peers 3 1 4   # three identical peers\n"
      "peer 0 9\n");
  EXPECT_EQ(p.source_fanout, 3);
  ASSERT_EQ(p.consumers.size(), 5u);
  EXPECT_EQ(p.consumers[0].constraints, (Constraints{2, 1}));
  EXPECT_EQ(p.consumers[1].constraints, (Constraints{1, 4}));
  EXPECT_EQ(p.consumers[3].constraints, (Constraints{1, 4}));
  EXPECT_EQ(p.consumers[4].constraints, (Constraints{0, 9}));
  for (std::size_t k = 0; k < p.consumers.size(); ++k)
    EXPECT_EQ(p.consumers[k].id, k + 1);
}

TEST(PopulationIoTest, RoundTripsGeneratedWorkloads) {
  for (auto kind : kAllWorkloads) {
    WorkloadParams params;
    params.peers = 50;
    params.seed = 3;
    const Population original = generate_workload(kind, params);
    const Population parsed =
        parse_population_text(to_population_text(original));
    EXPECT_EQ(parsed.source_fanout, original.source_fanout);
    EXPECT_EQ(parsed.consumers, original.consumers) << to_string(kind);
  }
}

TEST(PopulationIoTest, ShorthandUsedForRuns) {
  Population p;
  p.source_fanout = 1;
  for (NodeId id = 1; id <= 5; ++id)
    p.consumers.push_back(NodeSpec{id, Constraints{3, 2}});
  const std::string text = to_population_text(p);
  EXPECT_NE(text.find("peers 5 3 2"), std::string::npos);
}

TEST(PopulationIoTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_population_text("peer 1 1\n"), InvalidArgument);
  EXPECT_THROW(parse_population_text("source 1\nbogus 2 3\n"),
               InvalidArgument);
  EXPECT_THROW(parse_population_text("source 1\npeer 1\n"), InvalidArgument);
  EXPECT_THROW(parse_population_text("source -1\n"), InvalidArgument);
  // latency 0 fails population validation
  EXPECT_THROW(parse_population_text("source 1\npeer 1 0\n"),
               InvalidArgument);
}

TEST(PopulationIoTest, FileRoundTrip) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{1, 2}},
                 NodeSpec{2, Constraints{0, 3}}};
  const std::string path = "/tmp/lagover_test_population.txt";
  ASSERT_TRUE(save_population(p, path));
  const Population loaded = load_population(path);
  EXPECT_EQ(loaded.consumers, p.consumers);
  EXPECT_THROW(load_population("/nonexistent/nope.txt"), InvalidArgument);
}

TEST(PopulationIoTest, EmptyConsumerListIsValid) {
  const Population p = parse_population_text("source 4\n");
  EXPECT_EQ(p.source_fanout, 4);
  EXPECT_TRUE(p.consumers.empty());
}

}  // namespace
}  // namespace lagover
