// Tests for the Section 3.3 sufficient condition and the exact
// feasibility checker, including cross-validation against brute force.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sufficiency.hpp"
#include "workload/adversarial.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population make(int source_fanout,
                std::vector<std::pair<int, Delay>> fanout_latency) {
  Population p;
  p.source_fanout = source_fanout;
  NodeId id = 1;
  for (auto [f, l] : fanout_latency)
    p.consumers.push_back(NodeSpec{id++, Constraints{f, l}});
  return p;
}

TEST(SufficiencyTest, EmptyPopulationHolds) {
  EXPECT_TRUE(sufficiency_condition(make(0, {})).holds);
  EXPECT_TRUE(exactly_feasible(make(0, {})));
}

TEST(SufficiencyTest, SimpleChainHolds) {
  // 0 -> a(l=1) -> b(l=2) -> c(l=3), each fanout 1.
  const Population p = make(1, {{1, 1}, {1, 2}, {1, 3}});
  const auto report = sufficiency_condition(p);
  EXPECT_TRUE(report.holds);
  ASSERT_EQ(report.levels.size(), 3u);
  EXPECT_EQ(report.levels[0].demand, 1u);
  EXPECT_EQ(report.levels[0].capacity, 1);
  EXPECT_EQ(report.levels[0].surplus, 0);
}

TEST(SufficiencyTest, OverloadedLevelFails) {
  // Two nodes need delay 1 but the source supports only one.
  const Population p = make(1, {{1, 1}, {1, 1}});
  const auto report = sufficiency_condition(p);
  EXPECT_FALSE(report.holds);
  EXPECT_EQ(report.failing_level, 1);
  EXPECT_FALSE(exactly_feasible(p));
}

TEST(SufficiencyTest, SurplusCarriesForward) {
  // Source fanout 3, one node at l=1 with fanout 0; two nodes at l=3.
  // N_2's own fanout is 0, but the surplus of 2 from level 1 carries.
  const Population p = make(3, {{0, 1}, {0, 3}, {0, 3}});
  EXPECT_TRUE(sufficiency_condition(p).holds);
  EXPECT_TRUE(exactly_feasible(p));
}

TEST(SufficiencyTest, Tf1IsExactlyTight) {
  WorkloadParams params;
  params.peers = 120;
  const Population p = generate_workload(WorkloadKind::kTf1, params);
  const auto report = sufficiency_condition(p);
  ASSERT_TRUE(report.holds);
  // "Use full available capacity": every level's surplus is zero.
  for (const auto& level : report.levels) EXPECT_EQ(level.surplus, 0);
  EXPECT_TRUE(exactly_feasible(p));
}

TEST(SufficiencyTest, PrintedCounterexampleIsInfeasibleUnderDepthDelay) {
  // The paper's Section 3.3.1 instance as printed: nodes 4 and 5 (l = 3)
  // sit at depth 4 in the claimed configuration, so under the paper's
  // own delay-equals-depth accounting no valid tree exists (see
  // workload/adversarial.hpp).
  const Population p = paper_printed_counterexample();
  EXPECT_FALSE(sufficiency_condition(p).holds);
  EXPECT_FALSE(exactly_feasible(p));
  EXPECT_FALSE(brute_force_feasible(p));
}

TEST(SufficiencyTest, CorrectedCounterexampleFeasibleButNotSufficient) {
  const Population p = corrected_counterexample();
  // The whole point of Section 3.3.1: feasible, yet the sufficient
  // condition does not hold.
  EXPECT_FALSE(sufficiency_condition(p).holds);
  EXPECT_TRUE(exactly_feasible(p));
  EXPECT_TRUE(brute_force_feasible(p));
}

TEST(SufficiencyTest, AdversarialFamilyFeasibleForAllK) {
  for (int k : {1, 2, 4, 8, 16}) {
    const Population p = adversarial_family(k);
    EXPECT_TRUE(exactly_feasible(p)) << "k=" << k;
    EXPECT_FALSE(sufficiency_condition(p).holds) << "k=" << k;
  }
}

TEST(SufficiencyTest, WitnessOverlaySatisfiesEveryone) {
  const Population p = corrected_counterexample();
  const auto depths = feasible_depths(p);
  ASSERT_TRUE(depths.has_value());
  Overlay overlay = build_witness_overlay(p, *depths);
  overlay.audit();
  EXPECT_TRUE(overlay.all_satisfied());
}

TEST(SufficiencyTest, WitnessForGeneratedWorkloads) {
  for (auto kind : kAllWorkloads) {
    WorkloadParams params;
    params.peers = 60;
    params.seed = 5;
    const Population p = generate_workload(kind, params);
    const auto depths = feasible_depths(p);
    ASSERT_TRUE(depths.has_value()) << to_string(kind);
    Overlay overlay = build_witness_overlay(p, *depths);
    EXPECT_TRUE(overlay.all_satisfied()) << to_string(kind);
  }
}

TEST(SufficiencyTest, SufficientImpliesFeasibleOnRandomInstances) {
  // Property: the paper's condition is sufficient, so whenever it holds
  // the exact checker must find a witness.
  Rng rng(2024);
  int holds_count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Population p;
    p.source_fanout = static_cast<int>(rng.uniform_int(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 10));
    for (NodeId id = 1; id <= n; ++id)
      p.consumers.push_back(
          NodeSpec{id, Constraints{static_cast<int>(rng.uniform_int(0, 4)),
                                   static_cast<Delay>(rng.uniform_int(1, 5))}});
    if (sufficiency_condition(p).holds) {
      ++holds_count;
      EXPECT_TRUE(exactly_feasible(p));
    }
  }
  EXPECT_GT(holds_count, 0);
}

TEST(SufficiencyTest, ExactCheckerMatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  int feasible_count = 0;
  int infeasible_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Population p;
    p.source_fanout = static_cast<int>(rng.uniform_int(0, 3));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (NodeId id = 1; id <= n; ++id)
      p.consumers.push_back(
          NodeSpec{id, Constraints{static_cast<int>(rng.uniform_int(0, 3)),
                                   static_cast<Delay>(rng.uniform_int(1, 4))}});
    const bool expected = brute_force_feasible(p);
    EXPECT_EQ(exactly_feasible(p), expected) << "trial " << trial;
    (expected ? feasible_count : infeasible_count)++;
  }
  // Ensure the sweep actually exercises both outcomes.
  EXPECT_GT(feasible_count, 10);
  EXPECT_GT(infeasible_count, 10);
}

TEST(SufficiencyTest, MinimumSourceFanout) {
  // Two latency-1 nodes need a source fanout of 2.
  const Population p = make(0, {{0, 1}, {0, 1}});
  Population probe = p;
  const auto minimum = minimum_source_fanout(probe);
  ASSERT_TRUE(minimum.has_value());
  EXPECT_EQ(*minimum, 2);

  // A latency-1 node with zero fanout plus an unplaceable follower.
  Population impossible = make(0, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  impossible.consumers.push_back(NodeSpec{5, Constraints{0, 1}});
  const auto minimum2 = minimum_source_fanout(impossible);
  ASSERT_TRUE(minimum2.has_value());
  EXPECT_EQ(*minimum2, 5);
}

}  // namespace
}  // namespace lagover
