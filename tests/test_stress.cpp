// Stress and robustness tests: randomized operation sequences against
// the overlay with continuous invariant auditing, engines fed
// *infeasible* populations (must degrade gracefully, never corrupt
// state), and long mixed-churn runs.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/sufficiency.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(StressTest, RandomOverlayOperationsKeepInvariants) {
  Rng rng(2025);
  for (int trial = 0; trial < 20; ++trial) {
    Population p;
    p.source_fanout = static_cast<int>(rng.uniform_int(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 40));
    for (NodeId id = 1; id <= n; ++id)
      p.consumers.push_back(
          NodeSpec{id, Constraints{static_cast<int>(rng.uniform_int(0, 4)),
                                   static_cast<Delay>(rng.uniform_int(1, 8))}});
    Overlay overlay(p);

    for (int op = 0; op < 400; ++op) {
      const auto choice = rng.next_below(4);
      const auto node =
          static_cast<NodeId>(1 + rng.next_below(n));
      switch (choice) {
        case 0: {  // try attach to a random parent (or source)
          const auto parent = static_cast<NodeId>(rng.next_below(n + 1));
          if (overlay.can_attach(node, parent)) overlay.attach(node, parent);
          break;
        }
        case 1:  // detach if attached
          if (overlay.has_parent(node)) overlay.detach(node);
          break;
        case 2:
          overlay.set_offline(node);
          break;
        case 3:
          overlay.set_online(node);
          break;
      }
      overlay.audit();
    }
    // Queries never crash on arbitrary reachable states.
    for (NodeId id = 1; id <= n; ++id) {
      overlay.delay_at(id);
      overlay.root(id);
      overlay.satisfied(id);
    }
    overlay.satisfied_fraction();
    overlay.to_ascii();
  }
}

TEST(StressTest, EngineNeverCorruptsOnInfeasiblePopulations) {
  // Populations drawn WITHOUT the sufficiency filter: many are
  // infeasible. The engine must keep invariants and report
  // non-convergence rather than misbehave.
  Rng rng(77);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Population p;
    p.source_fanout = static_cast<int>(rng.uniform_int(0, 2));
    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 25));
    for (NodeId id = 1; id <= n; ++id)
      p.consumers.push_back(
          NodeSpec{id, Constraints{static_cast<int>(rng.uniform_int(0, 2)),
                                   static_cast<Delay>(rng.uniform_int(1, 4))}});
    const bool feasible = exactly_feasible(p);
    if (!feasible) ++infeasible_seen;

    for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
      EngineConfig config;
      config.algorithm = algorithm;
      config.seed = rng();
      Engine engine(p, config);
      const auto converged = engine.run_until_converged(200);
      engine.overlay().audit();
      if (!feasible) {
        EXPECT_FALSE(converged.has_value());
      }
      if (algorithm == AlgorithmKind::kGreedy) {
        EXPECT_EQ(engine.overlay().first_greedy_order_violation(), kNoNode);
      }
    }
  }
  EXPECT_GT(infeasible_seen, 3);  // the sweep must exercise the hard case
}

TEST(StressTest, LongRunUnderHeavyChurnStaysSane) {
  WorkloadParams params;
  params.peers = 100;
  params.seed = 31;
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 31;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  // 10x the paper's leave rate.
  engine.set_churn(std::make_unique<BernoulliChurn>(0.1, 0.3));
  for (int round = 0; round < 1500; ++round) {
    engine.run_round();
    if (round % 50 == 0) engine.overlay().audit();
  }
  engine.overlay().audit();
  // Under extreme churn satisfaction is partial but the system must
  // still be serving a nontrivial fraction.
  EXPECT_GT(engine.overlay().satisfied_fraction(), 0.2);
}

TEST(StressTest, RepeatedConvergeDetachCycles) {
  // Converge, rip out a chunk of the tree, reconverge — many times.
  WorkloadParams params;
  params.peers = 60;
  params.seed = 17;
  EngineConfig config;
  config.seed = 17;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  Rng rng(99);
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(engine.run_until_converged(3000).has_value())
        << "cycle " << cycle;
    // Detach 10 random attached nodes (their subtrees detach with them).
    for (int k = 0; k < 10; ++k) {
      const auto id = static_cast<NodeId>(1 + rng.next_below(60));
      if (engine.overlay().has_parent(id)) engine.overlay().detach(id);
    }
    engine.overlay().audit();
  }
}

TEST(StressTest, ZeroFanoutEverywhereDegradesGracefully) {
  // Only the source has capacity: exactly source_fanout nodes can ever
  // be satisfied (at depth 1); everyone else must keep waiting.
  Population p;
  p.source_fanout = 3;
  for (NodeId id = 1; id <= 10; ++id)
    p.consumers.push_back(NodeSpec{id, Constraints{0, 5}});
  EngineConfig config;
  config.seed = 7;
  Engine engine(p, config);
  EXPECT_FALSE(engine.run_until_converged(300).has_value());
  EXPECT_EQ(engine.overlay().satisfied_count(), 3u);
  engine.overlay().audit();
}

}  // namespace
}  // namespace lagover
