// Tests for the simulated network substrate: delivery, latency models,
// traffic accounting, drops.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hpp"

namespace lagover::net {
namespace {

TEST(LatencyModelTest, ConstantAlwaysSame) {
  ConstantLatency model(0.25);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.latency(0, 1, rng), 0.25);
  EXPECT_DOUBLE_EQ(model.latency(5, 9, rng), 0.25);
}

TEST(LatencyModelTest, UniformWithinBounds) {
  UniformLatency model(0.1, 0.2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double l = model.latency(0, 1, rng);
    EXPECT_GE(l, 0.1);
    EXPECT_LT(l, 0.2);
  }
}

TEST(LatencyModelTest, CoordinateSymmetricAndTriangle) {
  CoordinateLatency model(10, 0.01, 1.0, 42);
  Rng rng(3);
  for (Address a = 0; a < 10; ++a)
    for (Address b = 0; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(model.latency(a, b, rng), model.latency(b, a, rng));
      for (Address c = 0; c < 10; ++c) {
        // base + d(a,c) <= 2*base + d(a,b) + d(b,c): triangle holds up
        // to the per-message base cost.
        EXPECT_LE(model.latency(a, c, rng),
                  model.latency(a, b, rng) + model.latency(b, c, rng) + 0.01);
      }
    }
}

TEST(NetworkTest, DeliversToRegisteredHandlerAfterLatency) {
  Simulator sim;
  Network<std::string> network(sim, std::make_unique<ConstantLatency>(0.5), 1);
  std::vector<std::pair<Address, std::string>> received;
  network.register_node(2, [&](Address from, const std::string& msg) {
    received.emplace_back(from, msg);
  });
  network.send(1, 2, "hello");
  EXPECT_TRUE(received.empty());  // not yet delivered
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[0].second, "hello");
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);
}

TEST(NetworkTest, DropsWhenNoHandler) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(0.1), 1);
  network.send(1, 99, 42);
  sim.run();
  EXPECT_EQ(network.dropped(), 1u);
}

TEST(NetworkTest, DropsWhenHandlerDeregisteredMidFlight) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(1.0), 1);
  int received = 0;
  network.register_node(2, [&](Address, int) { ++received; });
  network.send(1, 2, 7);
  network.deregister_node(2);  // crash before delivery
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.dropped(), 1u);
}

TEST(NetworkTest, TrafficCountersTrackMessagesAndBytes) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(0.1), 1);
  network.register_node(2, [](Address, int) {});
  network.send(1, 2, 1, 100);
  network.send(1, 2, 2, 50);
  sim.run();
  EXPECT_EQ(network.counters(1).messages_sent, 2u);
  EXPECT_EQ(network.counters(1).bytes_sent, 150u);
  EXPECT_EQ(network.counters(2).messages_received, 2u);
  EXPECT_EQ(network.counters(2).bytes_received, 150u);
  EXPECT_EQ(network.total_messages(), 2u);
}

TEST(NetworkCapacityTest, SendBudgetShedsOverWindowAndRollsWithTime) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(0.1), 1);
  int received = 0;
  network.register_node(2, [&](Address, int) { ++received; });
  network.set_capacity({/*send_budget=*/2, /*queue_limit=*/0});
  network.send(1, 2, 1);
  network.send(1, 2, 2);
  network.send(1, 2, 3);  // third send in window [0,1) — shed
  EXPECT_EQ(network.shed(), 1u);
  sim.run();
  EXPECT_EQ(received, 2);
  // The window keys on integer sim time: after t=1 the budget is fresh.
  sim.schedule_at(1.5, [&] { network.send(1, 2, 4); });
  sim.run();
  EXPECT_EQ(network.shed(), 1u);
  EXPECT_EQ(received, 3);
}

TEST(NetworkCapacityTest, QueueLimitRefusesAtTheDoorAndFreesOnDelivery) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(1.0), 1);
  int received = 0;
  network.register_node(2, [&](Address, int) { ++received; });
  network.set_capacity({/*send_budget=*/0, /*queue_limit=*/1});
  network.send(1, 2, 1);
  EXPECT_EQ(network.queue_depth(2), 1u);
  network.send(3, 2, 2);  // receiver full — refused before any latency
  EXPECT_EQ(network.queue_dropped(), 1u);
  sim.run();  // the admitted message delivers, freeing the slot
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.queue_depth(2), 0u);
  network.send(3, 2, 3);
  EXPECT_EQ(network.queue_dropped(), 1u);
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST(NetworkCapacityTest, ClearingCapacityRestoresUnlimitedSends) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(0.1), 1);
  int received = 0;
  network.register_node(2, [&](Address, int) { ++received; });
  network.set_capacity({/*send_budget=*/1, /*queue_limit=*/1});
  network.send(1, 2, 1);
  network.send(1, 2, 2);
  EXPECT_EQ(network.shed(), 1u);
  network.set_capacity({});  // empty clears window + in-flight state
  for (int i = 0; i < 10; ++i) network.send(1, 2, i);
  EXPECT_EQ(network.shed(), 1u);
  EXPECT_EQ(network.queue_depth(2), 0u);
  sim.run();
  EXPECT_EQ(received, 11);
}

TEST(NetworkTest, MessagesToSelfStillGoThroughTheNetwork) {
  Simulator sim;
  Network<int> network(sim, std::make_unique<ConstantLatency>(0.2), 1);
  int received = 0;
  network.register_node(1, [&](Address, int) { ++received; });
  network.send(1, 1, 5);
  sim.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace lagover::net
