// Unit tests of the construction protocols' interaction rules: the
// greedy ordering behaviour, the hybrid fanout preference, source
// contact with displacement, and the reconfiguration primitives.
#include <gtest/gtest.h>

#include "core/greedy.hpp"
#include "core/hybrid.hpp"
#include "core/overlay.hpp"

namespace lagover {
namespace {

Population population_from(std::vector<std::pair<int, Delay>> specs,
                           int source_fanout) {
  Population p;
  p.source_fanout = source_fanout;
  NodeId id = 1;
  for (auto [f, l] : specs)
    p.consumers.push_back(NodeSpec{id++, Constraints{f, l}});
  return p;
}

// --- source contact (shared by both protocols) -------------------------

TEST(SourceContactTest, AttachesOnFreeCapacity) {
  Overlay overlay(population_from({{1, 2}}, 1));
  GreedyProtocol greedy;
  EXPECT_TRUE(greedy.contact_source(overlay, 1));
  EXPECT_EQ(overlay.parent(1), kSourceId);
  EXPECT_EQ(greedy.counters().source_attaches, 1u);
}

TEST(SourceContactTest, DisplacesLaxestChildWhenFull) {
  // Source fanout 1 occupied by a lax node; a stricter node displaces it
  // and re-adopts it.
  Overlay overlay(population_from({{1, 5}, {1, 1}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  EXPECT_TRUE(greedy.contact_source(overlay, 2));
  EXPECT_EQ(overlay.parent(2), kSourceId);
  EXPECT_EQ(overlay.parent(1), 2u);  // adopted by the displacer
  EXPECT_EQ(greedy.counters().source_replacements, 1u);
  overlay.audit();
}

TEST(SourceContactTest, DisplacedChildOrphanedWhenDisplacerFull) {
  // Node 3 (fanout 0, l=1) displaces node 1 but cannot adopt it.
  Overlay overlay(population_from({{1, 5}, {1, 4}, {0, 1}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  EXPECT_TRUE(greedy.contact_source(overlay, 3));
  EXPECT_EQ(overlay.parent(3), kSourceId);
  EXPECT_EQ(overlay.parent(1), kNoNode);  // orphaned with its subtree
  EXPECT_EQ(overlay.parent(2), 1u);
  overlay.audit();
}

TEST(SourceContactTest, FailsWhenAllChildrenStricter) {
  Overlay overlay(population_from({{1, 1}, {1, 3}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  EXPECT_FALSE(greedy.contact_source(overlay, 2));
  EXPECT_EQ(greedy.counters().failed_source_contacts, 1u);
  EXPECT_EQ(overlay.parent(2), kNoNode);
}

// --- greedy interactions ------------------------------------------------

TEST(GreedyTest, OrphanMergeStricterBecomesParent) {
  Overlay overlay(population_from({{1, 2}, {1, 5}}, 1));
  GreedyProtocol greedy;
  const auto result = greedy.interact(overlay, 2, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(2), 1u);  // l_1 = 2 < l_2 = 5
  EXPECT_EQ(overlay.first_greedy_order_violation(), kNoNode);
}

TEST(GreedyTest, OrphanMergeInitiatorCanBecomeParent) {
  Overlay overlay(population_from({{1, 2}, {1, 5}}, 1));
  GreedyProtocol greedy;
  // Initiated by the stricter node: it still ends up the parent.
  const auto result = greedy.interact(overlay, 1, 2);
  EXPECT_FALSE(result.attached);  // i itself stays parentless
  EXPECT_EQ(overlay.parent(2), 1u);
}

TEST(GreedyTest, EqualLatencyTieBreaksOnFreeFanout) {
  Overlay overlay(population_from({{1, 3}, {4, 3}}, 1));
  GreedyProtocol greedy;
  greedy.interact(overlay, 1, 2);
  EXPECT_EQ(overlay.parent(1), 2u);  // node 2 has more free fanout
}

TEST(GreedyTest, AttachUnderConnectedStricterNode) {
  Overlay overlay(population_from({{2, 1}, {1, 4}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  const auto result = greedy.interact(overlay, 2, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(2), 1u);
  EXPECT_TRUE(overlay.satisfied(2));
}

TEST(GreedyTest, RefusesAttachViolatingOwnDelay) {
  // Node 3 (l=1) cannot go at depth 2 under node 2.
  Overlay overlay(population_from({{1, 1}, {1, 2}, {1, 1}}, 2));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = greedy.interact(overlay, 3, 2);
  EXPECT_FALSE(result.attached);
  // Referred upstream toward the source (node 1).
  ASSERT_TRUE(result.referral.has_value());
  EXPECT_EQ(*result.referral, 1u);
}

TEST(GreedyTest, DisplacementPushesLaxChildDown) {
  // Node 1 (l=1, fanout 1) is full with node 2 (l=5); node 3 (l=2, f=1)
  // takes the slot and adopts node 2.
  Overlay overlay(population_from({{1, 1}, {1, 5}, {1, 2}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = greedy.interact(overlay, 3, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), 3u);
  EXPECT_EQ(greedy.counters().displacements, 1u);
  EXPECT_EQ(overlay.first_greedy_order_violation(), kNoNode);
  overlay.audit();
}

TEST(GreedyTest, StricterInitiatorInsertsAboveLaxerNode) {
  // Chain 0 <- 1(l=1) <- 2(l=5); node 3 (l=2, fanout 1) meets node 2 and
  // takes its slot, adopting it.
  Overlay overlay(population_from({{1, 1}, {0, 5}, {1, 2}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = greedy.interact(overlay, 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), 3u);
  EXPECT_EQ(overlay.first_greedy_order_violation(), kNoNode);
}

TEST(GreedyTest, PartnerInOwnGroupIsWasted) {
  Overlay overlay(population_from({{1, 2}, {1, 5}}, 1));
  GreedyProtocol greedy;
  overlay.attach(2, 1);
  const auto result = greedy.interact(overlay, 1, 2);
  EXPECT_FALSE(result.attached);
  EXPECT_FALSE(result.referral.has_value());
  EXPECT_EQ(greedy.counters().wasted_interactions, 1u);
}

// --- hybrid interactions -----------------------------------------------

TEST(HybridTest, OrphanMergePrefersLargerFanout) {
  // Unlike greedy, the *higher-fanout* node hosts even with laxer l.
  Overlay overlay(population_from({{0, 2}, {5, 9}}, 1));
  HybridProtocol hybrid;
  const auto result = hybrid.interact(overlay, 1, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(1), 2u);
}

TEST(HybridTest, OrphanMergeFanoutTieUsesStricterLatency) {
  Overlay overlay(population_from({{2, 2}, {2, 7}}, 1));
  HybridProtocol hybrid;
  hybrid.interact(overlay, 2, 1);
  EXPECT_EQ(overlay.parent(2), 1u);  // same fanout, stricter l hosts
}

TEST(HybridTest, PullSourceChildReplacedByStricterNode) {
  // j <- 0 with l_i < l_j: i takes the slot, j becomes i's child.
  Overlay overlay(population_from({{1, 6}, {1, 2}}, 1));
  HybridProtocol hybrid(SourceMode::kPullOnly);
  overlay.attach(1, kSourceId);
  const auto result = hybrid.interact(overlay, 2, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(2), kSourceId);
  EXPECT_EQ(overlay.parent(1), 2u);
  EXPECT_EQ(hybrid.counters().replacements, 1u);
}

TEST(HybridTest, PushSourceChildReplacedByLargerFanout) {
  // Same topology but a push source: fanout decides, not latency.
  Overlay overlay(population_from({{1, 2}, {4, 6}}, 1));
  HybridProtocol hybrid(SourceMode::kPush);
  overlay.attach(1, kSourceId);
  const auto result = hybrid.interact(overlay, 2, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(2), kSourceId);
  EXPECT_EQ(overlay.parent(1), 2u);
}

TEST(HybridTest, PullModeKeepsStricterChildAtSource) {
  // With a pull-only source the laxer initiator must NOT displace the
  // stricter child; it attaches underneath instead.
  Overlay overlay(population_from({{1, 1}, {1, 6}}, 1));
  HybridProtocol hybrid(SourceMode::kPullOnly);
  overlay.attach(1, kSourceId);
  const auto result = hybrid.interact(overlay, 2, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(1), kSourceId);
  EXPECT_EQ(overlay.parent(2), 1u);
}

TEST(HybridTest, InteriorReplaceByLargerFanout) {
  // Chain 0 <- 1 <- 2 (fanout 1); node 3 with fanout 3 takes 2's slot.
  Overlay overlay(population_from({{1, 1}, {1, 8}, {3, 8}}, 1));
  HybridProtocol hybrid;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = hybrid.interact(overlay, 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), 3u);
  overlay.audit();
}

TEST(HybridTest, ReplaceDiscardsChildWhenAdopterFull) {
  // Node 3 (fanout 2) already parents nodes 4 and 5; replacing node 2
  // under node 1 forces it to discard its laxest child to adopt node 2.
  Overlay overlay(
      population_from({{1, 1}, {1, 8}, {2, 8}, {0, 9}, {0, 9}}, 1));
  HybridProtocol hybrid;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(4, 3);
  overlay.attach(5, 3);
  const auto result = hybrid.interact(overlay, 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), 3u);
  // One of the equal-latency children was evicted, the other kept.
  EXPECT_TRUE((overlay.parent(4) == kNoNode) !=
              (overlay.parent(5) == kNoNode));
  EXPECT_EQ(hybrid.counters().child_discards, 1u);
  overlay.audit();
}

TEST(HybridTest, EqualFanoutDoesNotReplaceInterior) {
  // Replacing on equal fanout is a zero-gain reconfiguration; the node
  // attaches underneath instead.
  Overlay overlay(population_from({{1, 1}, {1, 8}, {1, 8}}, 1));
  HybridProtocol hybrid;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto result = hybrid.interact(overlay, 3, 2);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 2u);
  EXPECT_EQ(hybrid.counters().replacements, 0u);
}

TEST(HybridTest, ReferralWalksUpstreamWhenDelayTooHigh) {
  // Node 4 (l=1) meets a deep node: everything at or below j violates
  // its constraint, so it is referred to k = Parent(j).
  Overlay overlay(population_from({{1, 1}, {1, 4}, {1, 4}, {0, 1}}, 2));
  HybridProtocol hybrid;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);
  const auto result = hybrid.interact(overlay, 4, 3);
  EXPECT_FALSE(result.attached);
  ASSERT_TRUE(result.referral.has_value());
  EXPECT_EQ(*result.referral, 2u);
}

TEST(HybridTest, SourceChildInteractionFallsBackToSourceReferral) {
  // Nothing works at a full source child: i is referred to the source.
  Overlay overlay(population_from({{0, 1}, {0, 3}}, 1));
  HybridProtocol hybrid;
  overlay.attach(1, kSourceId);
  const auto result = hybrid.interact(overlay, 2, 1);
  EXPECT_FALSE(result.attached);
  ASSERT_TRUE(result.referral.has_value());
  EXPECT_EQ(*result.referral, kSourceId);
}

TEST(GreedyTest, OrphaningDisplacementWhenAdoptionImpossible) {
  // Node 3 (saturated: its own fanout is fully used) meets node 1 whose
  // only slot is held by the much laxer node 2. Adoption is impossible
  // (3 has no free slot), so node 2 is orphaned and node 3 takes the
  // slot — the move that unblocks capacity-tight workloads.
  Overlay overlay(population_from({{1, 1}, {1, 9}, {1, 2}, {0, 3}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);  // lax occupant
  overlay.attach(4, 3);  // saturates node 3
  const auto result = greedy.interact(overlay, 3, 1);
  EXPECT_TRUE(result.attached);
  EXPECT_EQ(overlay.parent(3), 1u);
  EXPECT_EQ(overlay.parent(2), kNoNode);  // orphaned, restarts
  EXPECT_EQ(overlay.parent(4), 3u);       // 3's subtree came along
  overlay.audit();
}

TEST(GreedyTest, OrphaningRequiresStrictlyLaxerVictim) {
  // Equal-latency occupants never yield their slot (would ping-pong).
  Overlay overlay(population_from({{1, 1}, {1, 2}, {1, 2}, {0, 3}}, 1));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(4, 3);
  const auto result = greedy.interact(overlay, 3, 1);
  EXPECT_FALSE(result.attached);
  EXPECT_EQ(overlay.parent(2), 1u);  // untouched
}

TEST(GreedyTest, DisplacementDisabledViaToggle) {
  Overlay overlay(population_from({{1, 1}, {1, 9}, {1, 2}, {0, 3}}, 1));
  GreedyProtocol greedy;
  greedy.set_orphaning_displacement(false);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(4, 3);
  const auto result = greedy.interact(overlay, 3, 1);
  EXPECT_FALSE(result.attached);
  EXPECT_EQ(overlay.parent(2), 1u);
}

TEST(SourceContactTest, PicksLaxestVictimAmongSeveral) {
  Overlay overlay(population_from({{1, 4}, {1, 7}, {1, 5}, {1, 1}}, 3));
  GreedyProtocol greedy;
  overlay.attach(1, kSourceId);
  overlay.attach(2, kSourceId);
  overlay.attach(3, kSourceId);
  EXPECT_TRUE(greedy.contact_source(overlay, 4));
  EXPECT_EQ(overlay.parent(4), kSourceId);
  // The laxest child (node 2, l=7) was displaced and re-adopted.
  EXPECT_EQ(overlay.parent(2), 4u);
  EXPECT_EQ(overlay.parent(1), kSourceId);
  EXPECT_EQ(overlay.parent(3), kSourceId);
}

TEST(HybridTest, MaintenancePatienceIsConfigurable) {
  HybridProtocol hybrid(SourceMode::kPullOnly, 7);
  EXPECT_EQ(hybrid.maintenance_patience(), 7);
  GreedyProtocol greedy;
  EXPECT_EQ(greedy.maintenance_patience(), 0);
}

}  // namespace
}  // namespace lagover
