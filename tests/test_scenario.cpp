// Scenario-engine tests: the strict "lagover.scenario.v1" parser
// (defaults, full documents, loud rejection of typos and out-of-range
// values), the domain/adversary/injector builders, loading the checked-in
// example scenarios, and trial-level determinism (same scenario + trial
// index, same result).
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "workload/scenario.hpp"

#ifndef LAGOVER_SOURCE_DIR
#define LAGOVER_SOURCE_DIR "."
#endif

namespace lagover {
namespace {

using workload::Scenario;
using workload::ScenarioTrialResult;

Scenario parse_ok(const std::string& text) {
  Json json;
  std::string error;
  EXPECT_TRUE(Json::parse(text, json, &error)) << error;
  Scenario scenario;
  EXPECT_TRUE(workload::parse_scenario(json, scenario, &error)) << error;
  return scenario;
}

std::string parse_error(const std::string& text) {
  Json json;
  std::string error;
  EXPECT_TRUE(Json::parse(text, json, &error)) << error;
  Scenario scenario;
  EXPECT_FALSE(workload::parse_scenario(json, scenario, &error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ScenarioParseTest, MinimalDocumentGetsDefaults) {
  const Scenario s =
      parse_ok(R"({"schema": "lagover.scenario.v1", "name": "minimal"})");
  EXPECT_EQ(s.name, "minimal");
  EXPECT_TRUE(s.async);
  EXPECT_EQ(s.algorithm, AlgorithmKind::kHybrid);
  EXPECT_EQ(s.oracle, OracleKind::kRandomDelay);
  EXPECT_EQ(s.seed, 1u);
  EXPECT_EQ(s.trials, 1);
  EXPECT_DOUBLE_EQ(s.horizon, 600.0);
  EXPECT_EQ(s.workload, WorkloadKind::kBiUnCorr);
  EXPECT_FALSE(s.has_churn);
  EXPECT_FALSE(s.has_faults());
  EXPECT_TRUE(s.adversary.empty());
  EXPECT_FALSE(s.defense.enabled);
  EXPECT_FALSE(s.feed.enabled);
}

TEST(ScenarioParseTest, FullDocumentRoundTrips) {
  const Scenario s = parse_ok(R"({
    "schema": "lagover.scenario.v1",
    "name": "full",
    "engine": "rounds",
    "algorithm": "greedy",
    "oracle": "random",
    "seed": 99, "trials": 4, "horizon": 250,
    "workload": {"kind": "tf1", "peers": 48, "max_latency": 8},
    "churn": {"leave_probability": 0.02, "rejoin_probability": 0.3},
    "faults": [{"start": 10, "end": 40, "oracle_outage": true,
                "partition_fraction": 0.25}],
    "domains": [{"name": "rack-a", "fraction": 0.2,
                 "windows": [{"start": 20, "end": 60, "fault": "crash"}]},
                {"name": "rack-b", "members": [3, 4, 5],
                 "windows": [{"start": 80, "end": 90,
                              "fault": "partition"}]}],
    "adversary": {"delay_liar_fraction": 0.1, "flapper_fraction": 0.05,
                  "delay_understatement": 3, "salt": 7},
    "defense": {"enabled": true, "probation_threshold": 1.5,
                "quarantine_threshold": 4.0, "blacklist_threshold": 9.0,
                "receipt_audit": false},
    "feed": {"duration": 120, "push_loss": 0.1, "recovery": true}
  })");
  EXPECT_FALSE(s.async);
  EXPECT_EQ(s.algorithm, AlgorithmKind::kGreedy);
  EXPECT_EQ(s.oracle, OracleKind::kRandom);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.trials, 4);
  EXPECT_EQ(s.workload, WorkloadKind::kTf1);
  EXPECT_EQ(s.workload_params.peers, 48u);
  EXPECT_TRUE(s.has_churn);
  EXPECT_DOUBLE_EQ(s.churn_leave, 0.02);
  EXPECT_TRUE(s.has_faults());
  EXPECT_TRUE(s.fault_plan.has_oracle_faults());
  ASSERT_EQ(s.domains.size(), 2u);
  EXPECT_DOUBLE_EQ(s.domains[0].fraction, 0.2);
  EXPECT_EQ(s.domains[1].members.size(), 3u);
  EXPECT_EQ(s.domains[1].windows[0].fault, fault::DomainFault::kPartition);
  EXPECT_DOUBLE_EQ(s.adversary.delay_liar_fraction, 0.1);
  EXPECT_EQ(s.adversary.delay_understatement, 3);
  EXPECT_EQ(s.adversary.salt, 7u);
  EXPECT_TRUE(s.defense.enabled);
  EXPECT_DOUBLE_EQ(s.defense.quarantine_threshold, 4.0);
  EXPECT_FALSE(s.defense.receipt_audit);
  EXPECT_TRUE(s.defense.delay_verification);  // untouched default
  EXPECT_TRUE(s.feed.enabled);
  EXPECT_TRUE(s.feed.recovery);
  EXPECT_DOUBLE_EQ(s.feed.push_loss, 0.1);
}

TEST(ScenarioParseTest, RejectsWrongSchemaTagAndMissingName) {
  parse_error(R"({"schema": "lagover.scenario.v2", "name": "x"})");
  parse_error(R"({"schema": "lagover.scenario.v1"})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": ""})");
}

TEST(ScenarioParseTest, RejectsUnknownKeysEverywhere) {
  // Typos fail loudly instead of silently running a different scenario.
  EXPECT_NE(parse_error(R"({"schema": "lagover.scenario.v1",
                            "name": "x", "trails": 3})")
                .find("trails"),
            std::string::npos);
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "workload": {"peer": 40}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "adversary": {"delay_liars": 0.1}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "defense": {"enable": true}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "domains": [{"name": "r", "fraction": 0.1,
                               "windows": [{"start": 0, "end": 1,
                                            "kind": "crash"}]}]})");
}

TEST(ScenarioParseTest, RejectsBadEnumsAndRanges) {
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "algorithm": "fastest"})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "engine": "turbo"})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "workload": {"kind": "zipf"}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "trials": 0})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "horizon": -5})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "churn": {"leave_probability": 1.5}})");
  // Adversary fractions must sum to <= 1.
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "adversary": {"delay_liar_fraction": 0.6,
                                "free_rider_fraction": 0.6}})");
  // Ladder thresholds must be ordered.
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "defense": {"probation_threshold": 6.0,
                              "quarantine_threshold": 5.0}})");
  // Domains take fraction XOR members, and need windows.
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "domains": [{"name": "r", "fraction": 0.2,
                               "members": [1],
                               "windows": [{"start": 0, "end": 1}]}]})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "domains": [{"name": "r", "fraction": 0.2}]})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "domains": [{"name": "r", "fraction": 0.2,
                               "windows": [{"start": 5, "end": 2}]}]})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "feed": {"push_loss": 1.0}})");
}

TEST(ScenarioParseTest, OverloadSectionRoundTrips) {
  const Scenario s = parse_ok(R"({
    "schema": "lagover.scenario.v1", "name": "crowd",
    "overload": {
      "admission": {"rate_limit": 12, "window": 4.0, "retry_after": 1.5,
                    "breaker_trip_windows": 2, "breaker_cooldown": 10.0,
                    "breaker_close_windows": 3, "serve_stale": false},
      "capacity": {"relay_budget": 4, "queue_limit": 16, "shedding": true,
                   "fanout_factor": 0.5, "recovery_ticks": 3,
                   "starve_limit": 20,
                   "squeezes": [{"start": 50, "end": 80, "factor": 0.25}]},
      "join_storm": {"at": 60, "fraction": 0.5}
    }
  })");
  EXPECT_FALSE(s.overload.empty());
  EXPECT_DOUBLE_EQ(s.overload.admission.rate_limit, 12.0);
  EXPECT_DOUBLE_EQ(s.overload.admission.window, 4.0);
  EXPECT_EQ(s.overload.admission.breaker_trip_windows, 2);
  EXPECT_EQ(s.overload.admission.breaker_close_windows, 3);
  EXPECT_FALSE(s.overload.admission.serve_stale);
  EXPECT_EQ(s.overload.capacity.relay_budget, 4u);
  EXPECT_EQ(s.overload.capacity.queue_limit, 16u);
  EXPECT_TRUE(s.overload.capacity.shedding);
  EXPECT_EQ(s.overload.capacity.starve_limit, 20);
  ASSERT_EQ(s.overload.capacity.squeezes.size(), 1u);
  EXPECT_DOUBLE_EQ(s.overload.capacity.squeezes[0].factor, 0.25);
  EXPECT_TRUE(s.overload.has_join_storm);
  EXPECT_DOUBLE_EQ(s.overload.join_storm_at, 60.0);
  EXPECT_DOUBLE_EQ(s.overload.join_storm_fraction, 0.5);
}

TEST(ScenarioParseTest, OverloadRejectsBadShapes) {
  // An empty overload section declares nothing — that's a typo.
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {"admission": {"rate_limit": 0}}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {"capacity": {"relay_budget": 2,
                    "squeezes": [{"start": 10, "end": 5,
                                  "factor": 0.5}]}}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {"capacity": {"relay_budget": 2,
                    "squeezes": [{"start": 0, "end": 5,
                                  "factor": 1.5}]}}})");
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {"join_storm": {"at": 60,
                                              "fraction": 1.0}}})");
  // Unknown keys fail loudly, as everywhere else in the schema.
  EXPECT_NE(parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                            "overload": {"admision": {"rate_limit": 5}}})")
                .find("admision"),
            std::string::npos);
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "overload": {"capacity": {"budget": 4}}})");
  // A storm needs the parked crowd undisturbed; churn would blur it.
  parse_error(R"({"schema": "lagover.scenario.v1", "name": "x",
                  "churn": {"leave_probability": 0.01},
                  "overload": {"join_storm": {"at": 60,
                                              "fraction": 0.5}}})");
}

TEST(ScenarioBuildTest, BuildersMaterializeDeclaredSections) {
  const Scenario empty =
      parse_ok(R"({"schema": "lagover.scenario.v1", "name": "x"})");
  EXPECT_EQ(workload::build_domains(empty, 41), nullptr);
  EXPECT_EQ(workload::build_adversary(empty, 41), nullptr);
  EXPECT_EQ(workload::build_fault_injector(empty, 41, 1), nullptr);

  const Scenario declared = parse_ok(R"({
    "schema": "lagover.scenario.v1", "name": "x", "seed": 13,
    "workload": {"peers": 100},
    "domains": [{"name": "rack-a", "fraction": 0.25,
                 "windows": [{"start": 0, "end": 10}]}],
    "adversary": {"free_rider_fraction": 0.1}
  })");
  const auto domains = workload::build_domains(declared, 101);
  ASSERT_NE(domains, nullptr);
  ASSERT_EQ(domains->domains().size(), 1u);
  // The fractional membership materialized deterministically.
  const auto& members = domains->domains()[0].members;
  EXPECT_FALSE(members.empty());
  EXPECT_EQ(members,
            fault::FailureDomains::hashed_members("rack-a", 101, 0.25, 13));
  const auto book = workload::build_adversary(declared, 101);
  ASSERT_NE(book, nullptr);
  EXPECT_GT(book->count(fault::AdversaryClass::kFreeRider), 0u);
  // Domains ride the composed injector even without a fault plan.
  const auto injector = workload::build_fault_injector(declared, 101, 13);
  ASSERT_NE(injector, nullptr);
  EXPECT_NE(injector->domains(), nullptr);
}

TEST(ScenarioFileTest, CheckedInExamplesLoad) {
  for (const char* name :
       {"/examples/scenario_byzantine.json",
        "/examples/scenario_rack_outage.json",
        "/examples/scenario_overload.json"}) {
    Scenario scenario;
    std::string error;
    ASSERT_TRUE(workload::load_scenario_file(
        std::string(LAGOVER_SOURCE_DIR) + name, scenario, &error))
        << name << ": " << error;
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_TRUE(scenario.feed.enabled);
  }
  // The overload example actually declares all three subsections.
  Scenario overload;
  std::string error;
  ASSERT_TRUE(workload::load_scenario_file(
      std::string(LAGOVER_SOURCE_DIR) + "/examples/scenario_overload.json",
      overload, &error))
      << error;
  EXPECT_FALSE(overload.overload.empty());
  EXPECT_FALSE(overload.overload.admission.empty());
  EXPECT_FALSE(overload.overload.capacity.empty());
  EXPECT_TRUE(overload.overload.has_join_storm);

  Scenario scenario;
  EXPECT_FALSE(workload::load_scenario_file(
      std::string(LAGOVER_SOURCE_DIR) + "/examples/no_such.json", scenario,
      &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioRunTest, OverloadTrialPopulatesCountersDeterministically) {
  const Scenario scenario = parse_ok(R"({
    "schema": "lagover.scenario.v1", "name": "overload-run",
    "seed": 33, "horizon": 120,
    "workload": {"peers": 40},
    "overload": {
      "admission": {"rate_limit": 2, "window": 5.0},
      "capacity": {"relay_budget": 1, "shedding": true},
      "join_storm": {"at": 30, "fraction": 0.5}
    },
    "feed": {"duration": 60, "publish_period": 1.0}
  })");
  const ScenarioTrialResult a = workload::run_scenario_trial(scenario, 0);
  const ScenarioTrialResult b = workload::run_scenario_trial(scenario, 0);
  EXPECT_GT(a.oracle_admitted, 0u);
  EXPECT_GT(a.storm_joiners, 0u);
  EXPECT_EQ(a.oracle_admitted, b.oracle_admitted);
  EXPECT_EQ(a.oracle_rejected, b.oracle_rejected);
  EXPECT_EQ(a.oracle_stale_served, b.oracle_stale_served);
  EXPECT_EQ(a.oracle_breaker_trips, b.oracle_breaker_trips);
  EXPECT_EQ(a.starvation_detaches, b.starvation_detaches);
  EXPECT_EQ(a.feed_shed_pushes, b.feed_shed_pushes);
  EXPECT_EQ(a.storm_joiners, b.storm_joiners);
  EXPECT_DOUBLE_EQ(a.feed_delivery_ratio, b.feed_delivery_ratio);
}

TEST(ScenarioRunTest, TrialsAreDeterministic) {
  const Scenario scenario = parse_ok(R"({
    "schema": "lagover.scenario.v1", "name": "determinism",
    "seed": 21, "horizon": 80,
    "workload": {"peers": 30},
    "adversary": {"delay_liar_fraction": 0.1},
    "defense": {"enabled": true},
    "feed": {"duration": 30}
  })");
  const ScenarioTrialResult a = workload::run_scenario_trial(scenario, 0);
  const ScenarioTrialResult b = workload::run_scenario_trial(scenario, 0);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_DOUBLE_EQ(a.satisfied_fraction, b.satisfied_fraction);
  EXPECT_EQ(a.suspicion_reports, b.suspicion_reports);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.blacklists, b.blacklists);
  EXPECT_EQ(a.oracle_implausible_skips, b.oracle_implausible_skips);
  EXPECT_DOUBLE_EQ(a.feed_delivery_ratio, b.feed_delivery_ratio);
  EXPECT_DOUBLE_EQ(a.feed_late_fraction, b.feed_late_fraction);
  EXPECT_GE(a.feed_delivery_ratio, 0.0);  // the feed phase actually ran
}

}  // namespace
}  // namespace lagover
