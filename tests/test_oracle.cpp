// Tests for the four directory Oracles' filtering semantics and
// statistics.
#include <gtest/gtest.h>

#include "core/oracle.hpp"

namespace lagover {
namespace {

Population population() {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}},  // will sit at the source
      NodeSpec{2, Constraints{0, 3}},  // zero fanout
      NodeSpec{3, Constraints{2, 5}},  // free fanout, deep
      NodeSpec{4, Constraints{1, 2}},
  };
  return p;
}

TEST(OracleTest, RandomReturnsAnyOtherConsumer) {
  Overlay overlay(population());
  auto oracle = make_oracle(OracleKind::kRandom);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto sample = oracle->sample(4, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_NE(*sample, 4u);
    EXPECT_NE(*sample, kSourceId);
  }
  EXPECT_EQ(oracle->stats().queries, 50u);
  EXPECT_EQ(oracle->stats().empty_results, 0u);
}

TEST(OracleTest, RandomCapacityFiltersSaturatedNodes) {
  Overlay overlay(population());
  overlay.attach(1, kSourceId);
  overlay.attach(4, 1);  // node 1 now saturated (fanout 1)
  auto oracle = make_oracle(OracleKind::kRandomCapacity);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto sample = oracle->sample(2, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    // Only nodes 3 (fanout 2, unused) and 4 (fanout 1, unused) qualify.
    EXPECT_TRUE(*sample == 3u || *sample == 4u);
  }
}

TEST(OracleTest, RandomDelayFiltersByQuerierConstraint) {
  Overlay overlay(population());
  overlay.attach(1, kSourceId);  // delay 1
  overlay.attach(4, 1);          // delay 2
  auto oracle = make_oracle(OracleKind::kRandomDelay);
  Rng rng(3);
  // Querier 4 has l = 2: only nodes with delay < 2 qualify; detached
  // nodes 2 and 3 report optimistic delay 1 and also qualify.
  for (int i = 0; i < 50; ++i) {
    const auto sample = oracle->sample(4, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_LT(overlay.delay_at(*sample), 2);
  }
}

TEST(OracleTest, RandomDelayIgnoresCapacity) {
  Overlay overlay(population());
  overlay.attach(1, kSourceId);
  overlay.attach(4, 1);  // node 1 saturated but delay 1
  auto oracle = make_oracle(OracleKind::kRandomDelay);
  Rng rng(4);
  bool saw_saturated = false;
  for (int i = 0; i < 100; ++i) {
    const auto sample = oracle->sample(2, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    if (*sample == 1u) saw_saturated = true;
  }
  EXPECT_TRUE(saw_saturated);  // the key property behind the paper's O3
}

TEST(OracleTest, RandomDelayCapacityRequiresBoth) {
  Overlay overlay(population());
  overlay.attach(1, kSourceId);
  overlay.attach(4, 1);
  auto oracle = make_oracle(OracleKind::kRandomDelayCapacity);
  Rng rng(5);
  // Querier 4 (l=2): needs delay < 2 AND free fanout. Node 1 is
  // saturated; nodes 2 (fanout 0) fails capacity; node 3 qualifies
  // (optimistic delay 1, fanout free).
  for (int i = 0; i < 50; ++i) {
    const auto sample = oracle->sample(4, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(*sample, 3u);
  }
}

TEST(OracleTest, EmptyResultWhenNoCandidateQualifies) {
  Overlay overlay(population());
  auto oracle = make_oracle(OracleKind::kRandomDelay);
  Rng rng(6);
  // Querier 1 has l = 1: no node can have delay < 1.
  const auto sample = oracle->sample(1, overlay, rng);
  EXPECT_FALSE(sample.has_value());
  EXPECT_EQ(oracle->stats().empty_results, 1u);
}

TEST(OracleTest, OfflineNodesNeverSampled) {
  Overlay overlay(population());
  overlay.set_offline(2);
  overlay.set_offline(3);
  auto oracle = make_oracle(OracleKind::kRandom);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const auto sample = oracle->sample(1, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(*sample, 4u);
  }
}

TEST(OracleTest, SamplingIsApproximatelyUniform) {
  Overlay overlay(population());
  auto oracle = make_oracle(OracleKind::kRandom);
  Rng rng(8);
  std::vector<int> counts(5, 0);
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) {
    const auto sample = oracle->sample(4, overlay, rng);
    ASSERT_TRUE(sample.has_value());
    ++counts[*sample];
  }
  // Candidates 1, 2, 3 each ~1/3.
  for (NodeId id = 1; id <= 3; ++id)
    EXPECT_NEAR(counts[id] / static_cast<double>(kTrials), 1.0 / 3.0, 0.02);
  EXPECT_EQ(counts[4], 0);
}

TEST(OracleTest, PaperLabels) {
  EXPECT_EQ(paper_label(OracleKind::kRandom), "O1");
  EXPECT_EQ(paper_label(OracleKind::kRandomCapacity), "O2a");
  EXPECT_EQ(paper_label(OracleKind::kRandomDelayCapacity), "O2b");
  EXPECT_EQ(paper_label(OracleKind::kRandomDelay), "O3");
}

}  // namespace
}  // namespace lagover
