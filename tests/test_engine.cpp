// Integration and property tests for the round-based construction
// engine: convergence on every (algorithm, oracle, workload) mix the
// paper evaluates, structural invariants throughout construction, and
// behaviour on adversarial instances.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/sufficiency.hpp"
#include "workload/adversarial.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

constexpr Round kMaxRounds = 3000;

Population tiny_tf1() {
  WorkloadParams params;
  params.peers = 12;  // 3 + 9 at fanout 3
  return generate_workload(WorkloadKind::kTf1, params);
}

TEST(EngineTest, GreedyConvergesOnTinyTf1) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 7;
  Engine engine(tiny_tf1(), config);
  const auto converged = engine.run_until_converged(kMaxRounds);
  ASSERT_TRUE(converged.has_value());
  EXPECT_TRUE(engine.overlay().all_satisfied());
  engine.overlay().audit();
}

TEST(EngineTest, HybridConvergesOnTinyTf1) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 7;
  Engine engine(tiny_tf1(), config);
  const auto converged = engine.run_until_converged(kMaxRounds);
  ASSERT_TRUE(converged.has_value());
  EXPECT_TRUE(engine.overlay().all_satisfied());
  engine.overlay().audit();
}

TEST(EngineTest, GreedyPreservesOrderingInvariantEveryRound) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 11;
  WorkloadParams params;
  params.peers = 40;
  params.seed = 3;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  for (int round = 0; round < 200; ++round) {
    engine.run_round();
    engine.overlay().audit();
    ASSERT_EQ(engine.overlay().first_greedy_order_violation(), kNoNode)
        << "greedy ordering invariant broken at round " << round;
    if (engine.overlay().all_satisfied()) break;
  }
  EXPECT_TRUE(engine.overlay().all_satisfied());
}

TEST(EngineTest, ConvergedStateIsStableWithoutChurn) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 5;
  Engine engine(tiny_tf1(), config);
  ASSERT_TRUE(engine.run_until_converged(kMaxRounds).has_value());
  // Without churn no further rounds may disturb a satisfied overlay.
  for (int i = 0; i < 50; ++i) {
    engine.run_round();
    ASSERT_TRUE(engine.overlay().all_satisfied());
  }
}

TEST(EngineTest, DeterministicGivenSeed) {
  WorkloadParams params;
  params.peers = 30;
  params.seed = 9;
  const Population population =
      generate_workload(WorkloadKind::kBiUnCorr, params);
  EngineConfig config;
  config.seed = 42;

  Engine a(population, config);
  Engine b(population, config);
  const auto ra = a.run_until_converged(kMaxRounds);
  const auto rb = b.run_until_converged(kMaxRounds);
  ASSERT_TRUE(ra.has_value());
  EXPECT_EQ(*ra, *rb);
  for (NodeId id = 1; id < a.overlay().node_count(); ++id)
    EXPECT_EQ(a.overlay().parent(id), b.overlay().parent(id));
}

TEST(EngineTest, HistoryRecordsMonotoneRounds) {
  EngineConfig config;
  config.seed = 3;
  Engine engine(tiny_tf1(), config);
  engine.set_record_history(true);
  engine.run_until_converged(kMaxRounds);
  const auto& history = engine.history();
  ASSERT_FALSE(history.empty());
  for (std::size_t i = 1; i < history.size(); ++i)
    EXPECT_EQ(history[i].round, history[i - 1].round + 1);
  EXPECT_DOUBLE_EQ(history.back().satisfied_fraction, 1.0);
}

TEST(EngineTest, TraceObserverSeesInteractions) {
  EngineConfig config;
  config.seed = 13;
  Engine engine(tiny_tf1(), config);
  std::size_t interactions = 0;
  std::size_t source_contacts = 0;
  engine.set_trace([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kInteraction) ++interactions;
    if (event.type == TraceEventType::kSourceContact) ++source_contacts;
  });
  engine.run_until_converged(kMaxRounds);
  EXPECT_GT(interactions + source_contacts, 0u);
  EXPECT_GT(source_contacts, 0u);  // l=1 nodes must contact the source
}

TEST(EngineTest, GreedyCannotSolveAdversarialInstance) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 17;
  Engine engine(corrected_counterexample(), config);
  EXPECT_FALSE(engine.run_until_converged(500).has_value());
  engine.overlay().audit();
  EXPECT_EQ(engine.overlay().first_greedy_order_violation(), kNoNode);
}

TEST(EngineTest, HybridSolvesAdversarialInstance) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 17;
  Engine engine(corrected_counterexample(), config);
  const auto converged = engine.run_until_converged(2000);
  ASSERT_TRUE(converged.has_value());
  engine.overlay().audit();
  // The unique feasible shape: hub (node 2) parents nodes 3 and 4.
  EXPECT_EQ(engine.overlay().parent(3), 2u);
  EXPECT_EQ(engine.overlay().parent(4), 2u);
}

TEST(EngineTest, HybridSolvesAdversarialFamily) {
  for (int k : {1, 2, 5, 8}) {
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = 23 + static_cast<std::uint64_t>(k);
    Engine engine(adversarial_family(k), config);
    ASSERT_TRUE(engine.run_until_converged(3000).has_value())
        << "hybrid failed at k=" << k;
  }
}

TEST(EngineTest, GreedyNeverSolvesAdversarialFamily) {
  for (int k : {1, 3}) {
    EngineConfig config;
    config.algorithm = AlgorithmKind::kGreedy;
    config.seed = 29 + static_cast<std::uint64_t>(k);
    Engine engine(adversarial_family(k), config);
    EXPECT_FALSE(engine.run_until_converged(500).has_value())
        << "greedy unexpectedly solved k=" << k;
  }
}

TEST(EngineTest, StaleKnowledgeStillConverges) {
  // Section 2.1.3 ablation: maintenance acting on rounds-old
  // observations slows repairs but must not break convergence.
  for (int lag : {1, 4, 8}) {
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.knowledge_lag = lag;
    config.seed = 31 + static_cast<std::uint64_t>(lag);
    WorkloadParams params;
    params.peers = 60;
    params.seed = 12;
    Engine engine(generate_workload(WorkloadKind::kBiCorr, params), config);
    const auto converged = engine.run_until_converged(kMaxRounds);
    ASSERT_TRUE(converged.has_value()) << "lag " << lag;
    engine.overlay().audit();
  }
}

TEST(EngineTest, StaleKnowledgeDelaysMaintenance) {
  // With a large lag, a violated node must NOT detach before the
  // violation becomes visible to it.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 5}},
      NodeSpec{2, Constraints{1, 1}},  // violated at depth 2
  };
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;  // patience 0
  config.knowledge_lag = 6;
  config.seed = 3;
  Engine engine(p, config);
  engine.overlay().attach(1, kSourceId);
  engine.overlay().attach(2, 1);
  // For the first lag-1 rounds node 2 has not yet "heard" about its
  // delay; it stays attached despite the live violation.
  for (int r = 0; r < 4; ++r) {
    engine.run_round();
    ASSERT_EQ(engine.overlay().parent(2), 1u) << "detached too early";
  }
  for (int r = 0; r < 10; ++r) engine.run_round();
  EXPECT_NE(engine.overlay().parent(2), 1u);  // eventually repaired
}

// --- property sweep: every algorithm x oracle x workload combination ---

struct SweepCase {
  AlgorithmKind algorithm;
  OracleKind oracle;
  WorkloadKind workload;
};

class ConvergenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvergenceSweep, ConvergesAndStaysValid) {
  const SweepCase c = GetParam();
  WorkloadParams params;
  params.peers = 60;
  params.seed = 101;
  const Population population = generate_workload(c.workload, params);
  ASSERT_TRUE(sufficiency_condition(population).holds);

  EngineConfig config;
  config.algorithm = c.algorithm;
  config.oracle = c.oracle;
  config.seed = 777;
  Engine engine(population, config);
  const auto converged = engine.run_until_converged(kMaxRounds);
  engine.overlay().audit();
  // The capacity-filtered oracles (O2a/O2b) are allowed to stall — that
  // is a headline finding of the paper. Everything else must converge.
  if (c.oracle == OracleKind::kRandom || c.oracle == OracleKind::kRandomDelay) {
    EXPECT_TRUE(converged.has_value())
        << to_string(c.algorithm) << " / " << to_string(c.oracle) << " / "
        << to_string(c.workload);
  }
  if (converged.has_value()) {
    EXPECT_TRUE(engine.overlay().all_satisfied());
  }
}

std::vector<SweepCase> all_sweep_cases() {
  std::vector<SweepCase> cases;
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid})
    for (auto oracle :
         {OracleKind::kRandom, OracleKind::kRandomCapacity,
          OracleKind::kRandomDelayCapacity, OracleKind::kRandomDelay})
      for (auto workload : kAllWorkloads)
        cases.push_back({algorithm, oracle, workload});
  return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = to_string(info.param.algorithm) + "_" +
                     paper_label(info.param.oracle) + "_" +
                     to_string(info.param.workload);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, ConvergenceSweep,
                         ::testing::ValuesIn(all_sweep_cases()), sweep_name);

}  // namespace
}  // namespace lagover
