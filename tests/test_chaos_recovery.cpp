// Engine-level chaos tests: under a FaultPlan with message loss, a
// population partition, and an Oracle outage, both construction
// algorithms must reconverge (zero orphans, zero latency-constraint
// violations) once the last fault window closes — and with an empty
// plan the fault layer must be invisible (byte-identical runs).
#include <gtest/gtest.h>

#include <memory>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/recovery.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

/// The acceptance-criteria plan: 20% message drop, a 10%-population
/// partition, and a full Oracle outage. The outage overlaps the
/// partition tail so partition-orphaned nodes hit a dead Oracle and
/// must lean on their partner caches / backoff until it lifts.
FaultPlan acceptance_plan() {
  FaultPlan plan;
  plan.add(FaultPlan::drop(30.0, 80.0, 0.2))
      .add(FaultPlan::partition(100.0, 150.0, 0.1))
      .add(FaultPlan::oracle_outage(140.0, 190.0));
  return plan;
}

void expect_fully_healthy(const Overlay& overlay) {
  EXPECT_TRUE(overlay.all_satisfied());
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id)) continue;
    EXPECT_TRUE(overlay.has_parent(id)) << "permanent orphan " << id;
    EXPECT_LE(overlay.delay_at(id), overlay.latency_of(id))
        << "constraint violation at " << id;
  }
  overlay.audit();
}

TEST(ChaosRecoveryTest, AsyncEnginesReconvergeAfterAcceptancePlan) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    AsyncConfig config;
    config.algorithm = algorithm;
    config.seed = 33;
    config.faults = std::make_shared<FaultInjector>(acceptance_plan(), 9);
    AsyncEngine engine(workload(60, 13), config);
    RecoveryRecorder recorder(engine.overlay(), acceptance_plan());
    engine.set_sampler(1.0, [&](SimTime t) { recorder.sample(t); });
    engine.run_for(600.0);
    expect_fully_healthy(engine.overlay());
    // The recorder agrees, and pins down when recovery happened.
    EXPECT_TRUE(recorder.healthy_at_end()) << to_string(algorithm);
    const double ttr = recorder.final_time_to_reconverge();
    EXPECT_GE(ttr, 0.0) << to_string(algorithm);
    EXPECT_LE(ttr, 390.0) << to_string(algorithm);
    // The plan actually did damage (the windows were not no-ops).
    const auto& stats = engine.faults()->stats();
    EXPECT_GT(stats.messages_dropped, 0u) << to_string(algorithm);
    EXPECT_GT(stats.oracle_outage_queries, 0u) << to_string(algorithm);
  }
}

TEST(ChaosRecoveryTest, SyncEnginesReconvergeAfterAcceptancePlan) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    EngineConfig config;
    config.algorithm = algorithm;
    config.seed = 35;
    config.faults = std::make_shared<FaultInjector>(acceptance_plan(), 11);
    Engine engine(workload(60, 15), config);
    RecoveryRecorder recorder(engine.overlay(), acceptance_plan());
    for (int r = 0; r < 600; ++r) {
      engine.run_round();
      recorder.sample(static_cast<double>(engine.round()));
    }
    expect_fully_healthy(engine.overlay());
    EXPECT_TRUE(recorder.healthy_at_end()) << to_string(algorithm);
    EXPECT_GE(recorder.final_time_to_reconverge(), 0.0);
  }
}

TEST(ChaosRecoveryTest, EmptyPlanIsByteIdenticalToNoFaultLayer) {
  const Population population = workload(50, 21);
  AsyncConfig plain;
  plain.seed = 77;
  AsyncEngine baseline(population, plain);
  const auto base_time = baseline.run_until_converged(20000.0);

  AsyncConfig with_empty_plan = plain;
  with_empty_plan.faults = std::make_shared<FaultInjector>(FaultPlan{});
  AsyncEngine chaos(population, with_empty_plan);
  const auto chaos_time = chaos.run_until_converged(20000.0);

  ASSERT_TRUE(base_time.has_value());
  ASSERT_TRUE(chaos_time.has_value());
  // Identical convergence instant AND identical final structure: the
  // fault layer consumed no engine randomness and changed no decision.
  EXPECT_DOUBLE_EQ(*base_time, *chaos_time);
  for (NodeId id = 1; id < baseline.overlay().node_count(); ++id)
    EXPECT_EQ(baseline.overlay().parent(id), chaos.overlay().parent(id));
}

TEST(ChaosRecoveryTest, EmptyPlanIsByteIdenticalForSyncEngine) {
  const Population population = workload(50, 22);
  EngineConfig plain;
  plain.seed = 78;
  Engine baseline(population, plain);
  const auto base_round = baseline.run_until_converged(3000);

  EngineConfig with_empty_plan = plain;
  with_empty_plan.faults = std::make_shared<FaultInjector>(FaultPlan{});
  Engine chaos(population, with_empty_plan);
  const auto chaos_round = chaos.run_until_converged(3000);

  ASSERT_TRUE(base_round.has_value());
  ASSERT_TRUE(chaos_round.has_value());
  EXPECT_EQ(*base_round, *chaos_round);
  for (NodeId id = 1; id < baseline.overlay().node_count(); ++id)
    EXPECT_EQ(baseline.overlay().parent(id), chaos.overlay().parent(id));
}

TEST(ChaosRecoveryTest, EmptyPlanWithHealthLayerIsByteIdentical) {
  const Population population = workload(50, 21);
  AsyncConfig plain;
  plain.seed = 77;
  AsyncEngine baseline(population, plain);
  const auto base_time = baseline.run_until_converged(20000.0);

  // Health layer fully enabled — phi-accrual detection AND the failover
  // ladder — but an empty plan: no crash ever fires, so the detector
  // never suspects, the ladder never arms, the epoch book never bumps.
  // The run must stay byte-identical to the no-fault-layer baseline.
  AsyncConfig with_health = plain;
  with_health.faults = std::make_shared<FaultInjector>(FaultPlan{});
  with_health.health.detection = health::DetectionPolicy::kPhiAccrual;
  with_health.health.failover = health::FailoverPolicy::kLadder;
  AsyncEngine healthy(population, with_health);
  const auto healthy_time = healthy.run_until_converged(20000.0);

  ASSERT_TRUE(base_time.has_value());
  ASSERT_TRUE(healthy_time.has_value());
  EXPECT_DOUBLE_EQ(*base_time, *healthy_time);
  for (NodeId id = 1; id < baseline.overlay().node_count(); ++id)
    EXPECT_EQ(baseline.overlay().parent(id), healthy.overlay().parent(id));
  // And the health layer itself stayed inert.
  EXPECT_EQ(healthy.epochs().bumps(), 0u);
  EXPECT_EQ(healthy.epochs().fences(), 0u);
  EXPECT_EQ(healthy.core().failover_attaches(), 0u);
  EXPECT_EQ(healthy.protocol().counters().stale_epoch_rejections, 0u);
}

TEST(ChaosRecoveryTest, EmptyPlanWithHealthLayerIsByteIdenticalSync) {
  const Population population = workload(50, 22);
  EngineConfig plain;
  plain.seed = 78;
  Engine baseline(population, plain);
  const auto base_round = baseline.run_until_converged(3000);

  EngineConfig with_health = plain;
  with_health.faults = std::make_shared<FaultInjector>(FaultPlan{});
  with_health.health.detection = health::DetectionPolicy::kPhiAccrual;
  with_health.health.failover = health::FailoverPolicy::kLadder;
  Engine healthy(population, with_health);
  const auto healthy_round = healthy.run_until_converged(3000);

  ASSERT_TRUE(base_round.has_value());
  ASSERT_TRUE(healthy_round.has_value());
  EXPECT_EQ(*base_round, *healthy_round);
  for (NodeId id = 1; id < baseline.overlay().node_count(); ++id)
    EXPECT_EQ(baseline.overlay().parent(id), healthy.overlay().parent(id));
  EXPECT_EQ(healthy.epochs().bumps(), 0u);
  EXPECT_EQ(healthy.epochs().fences(), 0u);
  EXPECT_EQ(healthy.core().failover_attaches(), 0u);
}

TEST(ChaosRecoveryTest, CrashesOrphanSubtreesAndHeal) {
  AsyncConfig config;
  config.seed = 41;
  FaultPlan plan;
  plan.add(FaultPlan::crashes(20.0, 60.0, /*probability=*/0.05,
                              /*downtime=*/8.0));
  config.faults = std::make_shared<FaultInjector>(plan, 17);
  AsyncEngine engine(workload(60, 19), config);
  engine.run_for(400.0);
  EXPECT_GT(engine.faults()->stats().crashes, 0u);
  // Everyone is back online and satisfied well after the crash window.
  EXPECT_EQ(engine.overlay().online_count(),
            engine.overlay().consumer_count());
  expect_fully_healthy(engine.overlay());
}

TEST(ChaosRecoveryTest, PartitionedChildrenDetectDeadParents) {
  // A long partition: attached nodes on the isolated side lose their
  // parents (or their parents' side) and must re-orphan via missed
  // polls, then rejoin the majority-side tree after the window.
  AsyncConfig config;
  config.seed = 43;
  FaultPlan plan;
  plan.add(FaultPlan::partition(50.0, 120.0, 0.25));
  config.faults = std::make_shared<FaultInjector>(plan, 23);
  AsyncEngine engine(workload(60, 23), config);
  std::uint64_t parent_losses = 0;
  engine.set_trace([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kParentLost) ++parent_losses;
  });
  engine.run_for(500.0);
  EXPECT_GT(engine.faults()->stats().partition_blocks, 0u);
  EXPECT_GT(parent_losses, 0u);
  expect_fully_healthy(engine.overlay());
}

TEST(ChaosRecoveryTest, LatencySpikesAndStaleOracleStillConverge) {
  AsyncConfig config;
  config.seed = 47;
  FaultPlan plan;
  plan.add(FaultPlan::latency_spike(0.0, 100.0, 0.3, 4.0))
      .add(FaultPlan::oracle_staleness(0.0, 100.0, /*age=*/10.0));
  config.faults = std::make_shared<FaultInjector>(plan, 29);
  AsyncEngine engine(workload(60, 29), config);
  const auto converged = engine.run_until_converged(20000.0);
  ASSERT_TRUE(converged.has_value());
  expect_fully_healthy(engine.overlay());
}

TEST(ChaosRecoveryTest, RecorderTracksPerWindowDamage) {
  AsyncConfig config;
  config.seed = 51;
  const FaultPlan plan = acceptance_plan();
  config.faults = std::make_shared<FaultInjector>(plan, 31);
  AsyncEngine engine(workload(60, 31), config);
  RecoveryRecorder recorder(engine.overlay(), plan);
  engine.set_sampler(1.0, [&](SimTime t) { recorder.sample(t); });
  engine.run_for(600.0);
  const auto recoveries = recorder.window_recoveries();
  ASSERT_EQ(recoveries.size(), 3u);
  for (const auto& r : recoveries) {
    EXPECT_TRUE(r.recovered) << "window " << r.window;
    EXPECT_GE(r.time_to_reconverge, 0.0);
  }
  // The orphan series actually moved (damage was observed).
  double peak = 0.0;
  for (std::size_t i = 0; i < recorder.orphan_series().size(); ++i)
    peak = std::max(peak, recorder.orphan_series().value_at(i));
  EXPECT_GT(peak, 0.0);
}

}  // namespace
}  // namespace lagover
