// Parameterized property sweeps across the whole pipeline: end-to-end
// invariants that must hold for every (workload, algorithm, seed)
// combination — construction produces trees whose message-level
// dissemination meets every staleness budget, snapshots round-trip,
// feasibility theory agrees with construction practice, and the
// asynchronous engine agrees with the synchronous one on convergability.
#include <gtest/gtest.h>

#include <memory>

#include "core/async_engine.hpp"
#include "fault/fault_injector.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "core/sufficiency.hpp"
#include "core/validator.hpp"
#include "feed/dissemination.hpp"
#include "metrics/tree_metrics.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

struct PropertyCase {
  WorkloadKind workload;
  AlgorithmKind algorithm;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return to_string(info.param.workload) + "_" +
         to_string(info.param.algorithm) + "_s" +
         std::to_string(info.param.seed);
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  for (auto workload : kAllWorkloads)
    for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid})
      for (std::uint64_t seed : {11ull, 22ull, 33ull})
        cases.push_back({workload, algorithm, seed});
  return cases;
}

class PipelineProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  Population population() const {
    WorkloadParams params;
    params.peers = 60;
    params.seed = GetParam().seed;
    return generate_workload(GetParam().workload, params);
  }

  std::unique_ptr<Engine> converged_engine() const {
    EngineConfig config;
    config.algorithm = GetParam().algorithm;
    config.seed = GetParam().seed * 31 + 7;
    auto engine = std::make_unique<Engine>(population(), config);
    EXPECT_TRUE(engine->run_until_converged(4000).has_value());
    return engine;
  }
};

TEST_P(PipelineProperty, SufficiencyPredictsConstructability) {
  // Generated workloads satisfy the sufficient condition, so the exact
  // checker must find a witness and construction must succeed (checked
  // inside converged_engine).
  const Population p = population();
  ASSERT_TRUE(sufficiency_condition(p).holds);
  const auto depths = feasible_depths(p);
  ASSERT_TRUE(depths.has_value());
  Overlay witness = build_witness_overlay(p, *depths);
  EXPECT_TRUE(witness.all_satisfied());
  converged_engine();
}

TEST_P(PipelineProperty, ConvergedTreeHasConsistentMetrics) {
  const auto engine = converged_engine();
  const Overlay& overlay = engine->overlay();
  const TreeMetrics metrics = compute_tree_metrics(overlay);
  EXPECT_EQ(metrics.connected, overlay.consumer_count());
  EXPECT_EQ(metrics.satisfied, overlay.consumer_count());
  EXPECT_EQ(metrics.detached_groups, 0u);
  EXPECT_GE(metrics.min_slack, 0);
  EXPECT_LE(metrics.source_children,
            static_cast<std::size_t>(overlay.fanout_of(kSourceId)));
  // Depth histogram sums to the population.
  std::size_t total = 0;
  for (std::size_t count : metrics.depth_histogram) total += count;
  EXPECT_EQ(total, overlay.consumer_count());
  EXPECT_TRUE(validate_overlay(overlay).converged());
}

TEST_P(PipelineProperty, DisseminationMeetsEveryBudget) {
  const auto engine = converged_engine();
  feed::DisseminationConfig config;
  config.seed = GetParam().seed;
  config.source.publish_period = 2.0;
  const auto report =
      feed::run_dissemination(engine->overlay(), config, 150.0);
  EXPECT_EQ(report.violations, 0u);
  for (const auto& node : report.nodes) EXPECT_GT(node.items, 0u);
}

TEST_P(PipelineProperty, SnapshotRoundTripsConvergedState) {
  const auto engine = converged_engine();
  const Overlay restored = from_snapshot(to_snapshot(engine->overlay()));
  EXPECT_TRUE(same_structure(engine->overlay(), restored));
  EXPECT_TRUE(restored.all_satisfied());
}

TEST_P(PipelineProperty, AsyncEngineAlsoConverges) {
  AsyncConfig config;
  config.algorithm = GetParam().algorithm;
  config.seed = GetParam().seed;
  AsyncEngine engine(population(), config);
  EXPECT_TRUE(engine.run_until_converged(30000.0).has_value())
      << "async variant failed where sync succeeded";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineProperty,
                         ::testing::ValuesIn(property_cases()), case_name);

// --- sufficiency-theory property sweep over random populations ----------

class FeasibilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeasibilityProperty, HybridConstructsEveryFeasibleSmallInstance) {
  // For small feasible instances (witness exists), hybrid construction
  // succeeds; for infeasible ones, no algorithm may claim success.
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Population p;
    p.source_fanout = static_cast<int>(rng.uniform_int(1, 3));
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 9));
    for (NodeId id = 1; id <= n; ++id)
      p.consumers.push_back(
          NodeSpec{id, Constraints{static_cast<int>(rng.uniform_int(0, 3)),
                                   static_cast<Delay>(rng.uniform_int(1, 4))}});
    const bool feasible = exactly_feasible(p);
    EngineConfig config;
    config.algorithm = AlgorithmKind::kHybrid;
    config.seed = rng();
    Engine engine(p, config);
    const auto converged = engine.run_until_converged(4000);
    if (!feasible) {
      EXPECT_FALSE(converged.has_value());
    }
    // Note: feasible-but-unconverged is possible in theory (the paper
    // concedes hybrid may miss feasible configurations when sufficiency
    // fails), so the converse is only spot-checked:
    if (feasible && sufficiency_condition(p).holds) {
      EXPECT_TRUE(converged.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilityProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- epoch-fence property sweep over crash/rejoin histories -------------

class EpochFenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochFenceProperty, CrashRejoinSequencesNeverMixEpochsOrCycle) {
  // For arbitrary crash/rejoin histories (seed-varied crash plans, both
  // detection policies, ladder failover so re-attachment takes the
  // hint/cache shortcuts where stale state would bite), two invariants
  // must hold at every observation point: no edge connects a child's
  // lease to a previous incarnation of its parent, and the overlay
  // stays acyclic.
  const std::uint64_t seed = GetParam();
  for (auto detection : {health::DetectionPolicy::kFixedMisses,
                         health::DetectionPolicy::kPhiAccrual}) {
    AsyncConfig config;
    config.seed = seed * 17 + 3;
    config.health.detection = detection;
    config.health.failover = health::FailoverPolicy::kLadder;
    fault::FaultPlan plan;
    plan.add(fault::FaultPlan::crashes(10.0, 90.0, 0.04, 5.0))
        .add(fault::FaultPlan::crashes(110.0, 170.0, 0.06, 7.0));
    config.faults = std::make_shared<fault::FaultInjector>(plan, seed);
    WorkloadParams params;
    params.peers = 50;
    params.seed = seed;
    AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                      config);
    engine.set_sampler(2.0, [&](SimTime t) {
      const EpochAudit audit = audit_epochs(engine.overlay(), engine.epochs());
      EXPECT_TRUE(audit.stale_edges.empty())
          << audit.to_string() << " at t=" << t << " seed=" << seed;
      ASSERT_TRUE(audit.acyclic) << "cycle at t=" << t << " seed=" << seed;
    });
    engine.run_for(350.0);
    EXPECT_GT(engine.epochs().bumps(), 0u) << "plan did no damage";
    EXPECT_TRUE(audit_epochs(engine.overlay(), engine.epochs()).ok());
    engine.overlay().audit();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochFenceProperty,
                         ::testing::Values(7, 19, 53, 88));

}  // namespace
}  // namespace lagover
