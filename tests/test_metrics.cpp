// Tests for tree metrics and the experiment harness.
#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "metrics/tree_metrics.hpp"
#include "workload/adversarial.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(TreeMetricsTest, HandComputedSnapshot) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 3}},
      NodeSpec{3, Constraints{0, 4}}, NodeSpec{4, Constraints{1, 5}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);  // depth 1, slack 0
  overlay.attach(2, 1);          // depth 2, slack 1
  overlay.attach(3, 2);          // depth 3, slack 1
  // node 4 stays detached.
  const TreeMetrics m = compute_tree_metrics(overlay);
  EXPECT_EQ(m.online, 4u);
  EXPECT_EQ(m.connected, 3u);
  EXPECT_EQ(m.satisfied, 3u);
  EXPECT_EQ(m.detached_groups, 1u);
  EXPECT_EQ(m.source_children, 1u);
  EXPECT_EQ(m.max_depth, 3);
  EXPECT_DOUBLE_EQ(m.mean_depth, 2.0);
  EXPECT_EQ(m.min_slack, 0);
  EXPECT_NEAR(m.mean_slack, 2.0 / 3.0, 1e-12);
  ASSERT_EQ(m.depth_histogram.size(), 4u);
  EXPECT_EQ(m.depth_histogram[1], 1u);
  EXPECT_EQ(m.depth_histogram[2], 1u);
  EXPECT_EQ(m.depth_histogram[3], 1u);
  // fanout: node1 uses 1/2, node2 uses 1/1, node3 0/0 => 2 used, 3 total.
  EXPECT_NEAR(m.fanout_utilization, 2.0 / 3.0, 1e-12);
}

TEST(TreeMetricsTest, EmptyOverlay) {
  Population p;
  p.source_fanout = 3;
  const TreeMetrics m = compute_tree_metrics(Overlay(p));
  EXPECT_EQ(m.online, 0u);
  EXPECT_EQ(m.connected, 0u);
  EXPECT_EQ(m.max_depth, 0);
}

TEST(ExperimentTest, TrialsAreIndependentAndSeeded) {
  ExperimentSpec spec;
  spec.population = [](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = 30;
    params.seed = seed;
    return generate_workload(WorkloadKind::kRand, params);
  };
  spec.trials = 5;
  spec.max_rounds = 2000;
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.trials.size(), 5u);
  EXPECT_EQ(result.failures, 0);
  EXPECT_EQ(result.convergence_rounds.size(), 5u);
  EXPECT_GE(result.median_rounds(), 1.0);
  EXPECT_LE(result.min_rounds(), result.median_rounds());
  EXPECT_LE(result.median_rounds(), result.max_rounds_observed());
  // Deterministic when repeated.
  const auto again = run_experiment(spec);
  EXPECT_DOUBLE_EQ(result.median_rounds(), again.median_rounds());
}

TEST(ExperimentTest, FailuresReportedAsDnc) {
  ExperimentSpec spec;
  spec.population = [](std::uint64_t) { return adversarial_family(3); };
  spec.config.algorithm = AlgorithmKind::kGreedy;  // provably cannot solve
  spec.trials = 3;
  spec.max_rounds = 150;
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.failures, 3);
  EXPECT_FALSE(result.any_converged());
  EXPECT_LT(result.median_rounds(), 0.0);
  EXPECT_EQ(format_convergence_cell(result), "DNC");
}

TEST(ExperimentTest, PartialConvergenceAnnotated) {
  // Mix: hybrid solves the adversarial family, greedy cannot; fabricate
  // a partial outcome by alternating algorithm through the population
  // hook is not possible, so instead run hybrid with a tiny round budget
  // that some seeds miss. Budget chosen so at least one trial fails and
  // at least one succeeds across the seeds used.
  ExperimentSpec spec;
  spec.population = [](std::uint64_t) { return adversarial_family(2); };
  spec.config.algorithm = AlgorithmKind::kHybrid;
  spec.trials = 8;
  spec.max_rounds = 40;
  const auto result = run_experiment(spec);
  if (result.failures > 0 && result.any_converged()) {
    const std::string cell = format_convergence_cell(result);
    EXPECT_NE(cell.find('/'), std::string::npos);
  }
  // Regardless of split, accounting must be consistent.
  EXPECT_EQ(static_cast<int>(result.convergence_rounds.size()) +
                result.failures,
            8);
}

TEST(ExperimentTest, SeriesRecordingCapturesProgress) {
  ExperimentSpec spec;
  spec.population = [](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = 20;
    params.seed = seed;
    return generate_workload(WorkloadKind::kTf1, params);
  };
  spec.trials = 1;
  spec.record_series = true;
  spec.max_rounds = 500;
  const auto result = run_experiment(spec);
  ASSERT_EQ(result.trials.size(), 1u);
  const auto& series = result.trials[0].fraction_series;
  ASSERT_FALSE(series.empty());
  EXPECT_DOUBLE_EQ(series.value_at(series.size() - 1), 1.0);
}

TEST(ExperimentTest, FullHorizonKeepsRunningPastConvergence) {
  ExperimentSpec spec;
  spec.population = [](std::uint64_t seed) {
    WorkloadParams params;
    params.peers = 20;
    params.seed = seed;
    return generate_workload(WorkloadKind::kTf1, params);
  };
  spec.trials = 1;
  spec.record_series = true;
  spec.run_full_horizon = true;
  spec.max_rounds = 300;
  const auto result = run_experiment(spec);
  EXPECT_EQ(result.trials[0].fraction_series.size(), 300u);
  EXPECT_TRUE(result.trials[0].converged);
}

}  // namespace
}  // namespace lagover
