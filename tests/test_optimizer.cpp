// Tests for the slack optimizer and free-capacity profiling.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/optimizer.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(OptimizerTest, FreeSlotProfileHandComputed) {
  Population p;
  p.source_fanout = 3;
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}},
      NodeSpec{2, Constraints{1, 5}},
      NodeSpec{3, Constraints{4, 9}},  // detached: must not count
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  const auto profile = free_slot_depth_profile(overlay);
  // source: 2 free at child-depth 1; node1: 1 free at depth 2;
  // node2: 1 free at depth 3.
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_EQ(profile[1], 2u);
  EXPECT_EQ(profile[2], 1u);
  EXPECT_EQ(profile[3], 1u);
  EXPECT_EQ(shallow_free_slots(overlay, 2), 3u);
}

TEST(OptimizerTest, MovesLaxLeafDeeper) {
  // A lax leaf (l=5) parked at depth 1 should sink, freeing the source
  // slot.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{2, 5}},  // at the source; hosts node 2
      NodeSpec{2, Constraints{1, 5}},  // leaf at depth 2, slack 3
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  // Give node 2 somewhere deeper to go: a chain under node 1 is not
  // available (no other nodes), so the optimizer can't move anything —
  // everyone is already as deep as available hosts allow.
  const auto report = optimize_shallow_capacity(overlay);
  EXPECT_EQ(report.moves, 0);

  // Now with a deeper host available:
  Population q;
  q.source_fanout = 2;
  q.consumers = {
      NodeSpec{1, Constraints{1, 1}},  // strict, depth 1
      NodeSpec{2, Constraints{2, 6}},  // hosts, depth 2 under 1
      NodeSpec{3, Constraints{0, 6}},  // lax leaf parked at the source!
  };
  Overlay deep(q);
  deep.attach(1, kSourceId);
  deep.attach(2, 1);
  deep.attach(3, kSourceId);  // occupies a precious source slot
  const auto before = shallow_free_slots(deep, 1);
  const auto deep_report = optimize_shallow_capacity(deep);
  EXPECT_GE(deep_report.moves, 1);
  EXPECT_EQ(deep.parent(3), 2u);  // sank to depth 3
  EXPECT_GT(shallow_free_slots(deep, 1), before);
  EXPECT_TRUE(deep.all_satisfied());
  deep.audit();
}

TEST(OptimizerTest, PreservesSatisfactionOnConvergedTrees) {
  for (auto kind : kAllWorkloads) {
    WorkloadParams params;
    params.peers = 60;
    params.seed = 7;
    EngineConfig config;
    config.seed = 7;
    Engine engine(generate_workload(kind, params), config);
    ASSERT_TRUE(engine.run_until_converged(3000).has_value());
    const auto before_shallow = shallow_free_slots(engine.overlay(), 2);
    optimize_shallow_capacity(engine.overlay());
    engine.overlay().audit();
    EXPECT_TRUE(engine.overlay().all_satisfied()) << to_string(kind);
    EXPECT_GE(shallow_free_slots(engine.overlay(), 2), before_shallow);
  }
}

TEST(OptimizerTest, Idempotent) {
  WorkloadParams params;
  params.peers = 80;
  params.seed = 9;
  EngineConfig config;
  config.seed = 9;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  optimize_shallow_capacity(engine.overlay());
  const auto second = optimize_shallow_capacity(engine.overlay());
  EXPECT_EQ(second.moves, 0);
}

TEST(OptimizerTest, GreedyOrderPreservedWhenRequested) {
  WorkloadParams params;
  params.peers = 60;
  params.seed = 11;
  EngineConfig config;
  config.algorithm = AlgorithmKind::kGreedy;
  config.seed = 11;
  Engine engine(generate_workload(WorkloadKind::kRand, params), config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());
  optimize_shallow_capacity(engine.overlay(),
                            /*preserve_greedy_order=*/true);
  EXPECT_EQ(engine.overlay().first_greedy_order_violation(), kNoNode);
  EXPECT_TRUE(engine.overlay().all_satisfied());
}

TEST(OptimizerTest, FlashCrowdAbsorptionUnaffectedByOptimization) {
  // 70% of peers converge, then the remaining 30% join at once.
  // Measured negative result (see bench_flash_crowd / EXPERIMENTS.md):
  // pre-freeing shallow slots does NOT speed absorption, because the
  // orphaning-displacement move already reclaims shallow slots on
  // demand. This test pins that down: absorption with the optimizer
  // stays in the same ballpark, never pathologically worse.
  long rounds_plain = 0;
  long rounds_optimized = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (bool optimize : {false, true}) {
      WorkloadParams params;
      params.peers = 100;
      params.seed = seed;
      EngineConfig config;
      config.seed = seed;
      Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                    config);
      for (NodeId id = 71; id <= 100; ++id) engine.overlay().set_offline(id);
      ASSERT_TRUE(engine.run_until_converged(3000).has_value());
      if (optimize) optimize_shallow_capacity(engine.overlay());
      engine.set_churn(std::make_unique<FlashCrowdChurn>(engine.round() + 1));
      const Round before = engine.round();
      engine.run_round();  // the crowd arrives here
      ASSERT_EQ(engine.overlay().online_count(), 100u);
      const auto converged = engine.run_until_converged(3000);
      ASSERT_TRUE(converged.has_value());
      (optimize ? rounds_optimized : rounds_plain) +=
          static_cast<long>(*converged - before);
    }
  }
  EXPECT_LE(rounds_optimized, rounds_plain * 2 + 10);
  EXPECT_LE(rounds_plain, rounds_optimized * 2 + 10);
}

}  // namespace
}  // namespace lagover
