// Tests for the feed layer: source publication/pull semantics, staleness
// tracking, and end-to-end dissemination over a constructed LagOver.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/sufficiency.hpp"
#include "feed/dissemination.hpp"
#include "feed/feed.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

TEST(FeedSourceTest, PeriodicPublication) {
  Simulator sim;
  feed::SourceConfig config;
  config.publish_period = 2.0;
  feed::FeedSource source(sim, config);
  source.start();
  sim.run_until(10.0);
  EXPECT_EQ(source.published(), 5u);
  for (std::size_t i = 0; i < source.items().size(); ++i) {
    EXPECT_EQ(source.items()[i].seq, i + 1);
    EXPECT_DOUBLE_EQ(source.items()[i].published_at, 2.0 * (i + 1));
  }
}

TEST(FeedSourceTest, PoissonPublicationHasRequestedMeanRate) {
  Simulator sim;
  feed::SourceConfig config;
  config.schedule = feed::PublishSchedule::kPoisson;
  config.publish_period = 2.0;
  config.seed = 3;
  feed::FeedSource source(sim, config);
  source.start();
  sim.run_until(10000.0);
  EXPECT_NEAR(static_cast<double>(source.published()), 5000.0, 300.0);
}

TEST(FeedSourceTest, PullReturnsOnlyNewItemsAndCountsRequests) {
  Simulator sim;
  feed::FeedSource source(sim, feed::SourceConfig{});
  source.start();
  sim.run_until(10.0);  // 3 items at period 3
  auto fresh = source.pull(0);
  EXPECT_EQ(fresh.size(), 3u);
  fresh = source.pull(3);
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(source.requests(), 2u);
  EXPECT_EQ(source.empty_requests(), 1u);
  fresh = source.pull(1);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh.front().seq, 2u);
}

TEST(StalenessTrackerTest, TracksMaxAndMean) {
  feed::StalenessTracker tracker(3);
  feed::FeedItem item{1, 10.0};
  tracker.record(1, item, 11.0);
  tracker.record(1, item, 13.0);  // same item seen again (re-push)
  EXPECT_EQ(tracker.items_received(1), 2u);
  EXPECT_DOUBLE_EQ(tracker.max_staleness(1), 3.0);
  EXPECT_DOUBLE_EQ(tracker.mean_staleness(1), 2.0);
  EXPECT_EQ(tracker.items_received(2), 0u);
}

TEST(DisseminationTest, SatisfiedOverlayMeetsEveryStalenessBudget) {
  // Build a converged LagOver, then actually disseminate items over it:
  // no connected node may observe staleness above its constraint.
  WorkloadParams params;
  params.peers = 60;
  params.seed = 5;
  const Population population =
      generate_workload(WorkloadKind::kBiUnCorr, params);
  EngineConfig config;
  config.seed = 9;
  Engine engine(population, config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());

  feed::DisseminationConfig dconfig;
  dconfig.source.publish_period = 2.5;
  const auto report = feed::run_dissemination(engine.overlay(), dconfig,
                                              /*duration=*/200.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.nodes.size(), 60u);
  for (const auto& node : report.nodes) {
    EXPECT_GT(node.items, 0u) << "node " << node.node << " starved";
    EXPECT_TRUE(node.constraint_met);
  }
}

TEST(DisseminationTest, SourceLoadIsPollersOverPeriod) {
  WorkloadParams params;
  params.peers = 60;
  params.seed = 6;
  const Population population = generate_workload(WorkloadKind::kRand, params);
  EngineConfig config;
  config.seed = 10;
  Engine engine(population, config);
  ASSERT_TRUE(engine.run_until_converged(3000).has_value());

  feed::DisseminationConfig dconfig;
  const auto report =
      feed::run_dissemination(engine.overlay(), dconfig, 300.0);
  // Request rate == pollers / poll_period (each direct child polls once
  // per period, regardless of updates).
  EXPECT_NEAR(report.source_request_rate, static_cast<double>(report.pollers),
              0.15 * static_cast<double>(report.pollers));
  EXPECT_EQ(report.pollers,
            engine.overlay().children(kSourceId).size());
}

TEST(DisseminationTest, DeeperNodesSeeMoreStaleness) {
  // On a witness tree (depths known exactly), mean staleness must grow
  // with depth.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}},
      NodeSpec{2, Constraints{1, 2}},
      NodeSpec{3, Constraints{0, 3}},
  };
  const auto depths = feasible_depths(p);
  ASSERT_TRUE(depths.has_value());
  const Overlay overlay = build_witness_overlay(p, *depths);
  feed::DisseminationConfig dconfig;
  dconfig.source.publish_period = 1.7;
  const auto report = feed::run_dissemination(overlay, dconfig, 500.0);
  ASSERT_EQ(report.nodes.size(), 3u);
  EXPECT_LT(report.nodes[0].mean_staleness, report.nodes[1].mean_staleness);
  EXPECT_LT(report.nodes[1].mean_staleness, report.nodes[2].mean_staleness);
  EXPECT_EQ(report.violations, 0u);
}

TEST(DisseminationTest, PushMessageCountMatchesTreeEdges) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}},
      NodeSpec{2, Constraints{0, 2}},
      NodeSpec{3, Constraints{0, 2}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 1);
  feed::DisseminationConfig dconfig;
  dconfig.source.publish_period = 5.0;
  const auto report = feed::run_dissemination(overlay, dconfig, 100.0);
  // Every item delivered to nodes 2 and 3 crossed exactly one push edge
  // (items published right at the horizon may still be in flight, so
  // compare against deliveries, not publications).
  EXPECT_EQ(report.push_messages,
            report.nodes[1].items + report.nodes[2].items);
  EXPECT_GT(report.push_messages, 0u);
}

}  // namespace
}  // namespace lagover
