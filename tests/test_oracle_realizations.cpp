// Tests for the distributed Oracle realizations: the DHT-backed
// directory (staleness + routing costs) and the gossip random-walk
// oracle — including end-to-end construction runs using them.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/engine.hpp"
#include "dht/directory.hpp"
#include "gossip/unstructured.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population small_workload(std::uint64_t seed) {
  WorkloadParams params;
  params.peers = 40;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(DhtOracleTest, SamplesRespectFilterSemantics) {
  const Population population = small_workload(3);
  Overlay overlay(population);
  dht::DhtOracleConfig config;
  config.ring_size = 8;
  config.refresh_every_queries = 4;
  dht::DhtDirectoryOracle oracle(OracleKind::kRandomDelay, config);
  Rng rng(5);
  overlay.attach(1, kSourceId);
  for (int i = 0; i < 40; ++i) {
    const auto sample = oracle.sample(2, overlay, rng);
    if (!sample.has_value()) continue;
    EXPECT_NE(*sample, 2u);
    EXPECT_NE(*sample, kSourceId);
    // Fresh-enough records: the sampled node's snapshot delay was below
    // the querier's constraint when recorded.
    EXPECT_TRUE(overlay.online(*sample));
  }
  EXPECT_GT(oracle.costs().queries, 0u);
  EXPECT_GT(oracle.costs().publishes, 0u);
  EXPECT_GT(oracle.costs().ring_messages, 0u);
}

TEST(DhtOracleTest, AccountsRoutingHops) {
  dht::DhtOracleConfig config;
  config.ring_size = 16;
  dht::DhtDirectoryOracle oracle(OracleKind::kRandom, config);
  const Population population = small_workload(4);
  Overlay overlay(population);
  Rng rng(6);
  for (int i = 0; i < 10; ++i) oracle.sample(1, overlay, rng);
  EXPECT_GT(oracle.costs().query_hops.count(), 0u);
  EXPECT_GE(oracle.costs().query_hops.mean(), 1.0);
}

TEST(DhtOracleTest, EngineConvergesWithDhtBackedOracle) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandomDelay;
  config.seed = 21;
  Engine engine(small_workload(7), config);
  dht::DhtOracleConfig oracle_config;
  oracle_config.ring_size = 8;
  oracle_config.refresh_every_queries = 16;
  engine.set_oracle(std::make_unique<dht::DhtDirectoryOracle>(
      OracleKind::kRandomDelay, oracle_config));
  const auto converged = engine.run_until_converged(3000);
  ASSERT_TRUE(converged.has_value());
  EXPECT_TRUE(engine.overlay().all_satisfied());
}

TEST(GossipOracleTest, WalksReturnOtherLiveNodes) {
  const Population population = small_workload(8);
  Overlay overlay(population);
  gossip::GossipConfig config;
  gossip::GossipRandomOracle oracle(population.consumers.size(), config);
  Rng rng(9);
  int produced = 0;
  for (int i = 0; i < 100; ++i) {
    const auto sample = oracle.sample(1, overlay, rng);
    if (!sample.has_value()) continue;  // walk ended at its origin
    ++produced;
    EXPECT_NE(*sample, 1u);
    EXPECT_TRUE(overlay.online(*sample));
  }
  EXPECT_GT(produced, 90);
  EXPECT_GT(oracle.membership().walk_messages(), 0u);
}

TEST(GossipOracleTest, WalksAvoidOfflineNodes) {
  const Population population = small_workload(10);
  Overlay overlay(population);
  for (NodeId id = 2; id <= 20; ++id) overlay.set_offline(id);
  gossip::GossipConfig config;
  gossip::GossipRandomOracle oracle(population.consumers.size(), config);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto sample = oracle.sample(1, overlay, rng);
    if (!sample.has_value()) continue;  // walk can be stuck, that's fine
    EXPECT_TRUE(overlay.online(*sample));
  }
}

TEST(GossipOracleTest, SamplesTouchMostOfTheMembership) {
  const Population population = small_workload(11);
  Overlay overlay(population);
  gossip::GossipConfig config;
  config.walk_ttl = 10;
  gossip::GossipRandomOracle oracle(population.consumers.size(), config);
  Rng rng(11);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto sample = oracle.sample(1, overlay, rng);
    if (sample.has_value()) seen.insert(*sample);
  }
  // A healthy random walk on a connected graph reaches nearly everyone.
  EXPECT_GT(seen.size(), population.consumers.size() * 3 / 4);
}

TEST(GossipOracleTest, EngineConvergesWithGossipOracle) {
  const Population population = small_workload(12);
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.oracle = OracleKind::kRandom;
  config.seed = 23;
  Engine engine(population, config);
  engine.set_oracle(std::make_unique<gossip::GossipRandomOracle>(
      population.consumers.size(), gossip::GossipConfig{}));
  const auto converged = engine.run_until_converged(5000);
  ASSERT_TRUE(converged.has_value());
}

TEST(UnstructuredOverlayTest, ViewsHaveRequestedDegree) {
  gossip::GossipConfig config;
  config.view_size = 5;
  gossip::UnstructuredOverlay membership(30, config);
  for (NodeId id = 1; id <= 30; ++id) {
    EXPECT_EQ(membership.view(id).size(), 5u);
    for (NodeId peer : membership.view(id)) {
      EXPECT_NE(peer, id);
      EXPECT_GE(peer, 1u);
      EXPECT_LE(peer, 30u);
    }
  }
}

TEST(UnstructuredOverlayTest, ShuffleKeepsViewsValid) {
  const Population population = small_workload(13);
  Overlay overlay(population);
  gossip::GossipConfig config;
  gossip::UnstructuredOverlay membership(population.consumers.size(), config);
  Rng rng(14);
  for (int round = 0; round < 50; ++round)
    membership.shuffle_views(overlay, rng);
  for (NodeId id = 1; id <= population.consumers.size(); ++id) {
    std::set<NodeId> unique;
    for (NodeId peer : membership.view(id)) {
      EXPECT_NE(peer, id);
      unique.insert(peer);
    }
    EXPECT_EQ(unique.size(), membership.view(id).size()) << "duplicates";
  }
}

}  // namespace
}  // namespace lagover
