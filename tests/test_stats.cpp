// Tests for the statistics toolkit (summaries, samples, histograms,
// time series, bootstrap intervals).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.hpp"
#include "stats/histogram.hpp"
#include "stats/sample.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace lagover {
namespace {

TEST(RunningSummaryTest, BasicMoments) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningSummaryTest, MergeMatchesSequential) {
  RunningSummary all;
  RunningSummary left;
  RunningSummary right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningSummaryTest, EmptyIsZero) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleTest, QuantilesExactOnSmallSets) {
  Sample s;
  s.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleTest, MedianInterpolatesEvenCounts) {
  Sample s;
  s.add_all({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleTest, LazySortSurvivesInterleavedAdds) {
  Sample s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleTest, TrimmedMeanDropsExtremes) {
  Sample s;
  s.add_all({100.0, 1.0, 2.0, 3.0, -50.0});
  EXPECT_DOUBLE_EQ(s.trimmed_mean(1), 2.0);
}

TEST(SampleTest, StddevMatchesHandComputation) {
  Sample s;
  s.add_all({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(HistogramTest, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.5);
  h.add(9.9);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.count_in_bin(0), 2u);  // [0,2)
  EXPECT_EQ(h.count_in_bin(4), 1u);  // [8,10)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(HistogramTest, ExactBinBoundariesAreHalfOpen) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);   // lower edge of bin 0
  h.add(2.0);   // boundary: belongs to bin 1, not bin 0
  h.add(4.0);
  h.add(8.0);
  h.add(9.999);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  // hi itself is outside [lo, hi).
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(HistogramTest, SaturatingTailsKeepTotalExact) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) h.add(-1.0);
  for (int i = 0; i < 50; ++i) h.add(5.0);
  h.add(0.25);
  EXPECT_EQ(h.underflow(), 100u);
  EXPECT_EQ(h.overflow(), 50u);
  EXPECT_EQ(h.total(), 151u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
}

TEST(TimeSeriesTest, StepSemanticsAndQueries) {
  TimeSeries ts;
  ts.add(0.0, 0.1);
  ts.add(1.0, 0.5);
  ts.add(2.0, 0.8);
  ts.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(ts.step_value_at(0.5), 0.1);
  EXPECT_DOUBLE_EQ(ts.step_value_at(2.0), 0.8);
  EXPECT_DOUBLE_EQ(ts.step_value_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.first_time_at_least(0.8), 2.0);
  EXPECT_LT(ts.first_time_at_least(2.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(2.0), 0.9);
  EXPECT_DOUBLE_EQ(ts.min_after(1.0), 0.5);
}

TEST(TimeSeriesTest, DownsampleKeepsEndpoints) {
  TimeSeries ts;
  for (int i = 0; i <= 100; ++i) ts.add(i, i * 0.01);
  const TimeSeries small = ts.downsample(11);
  EXPECT_EQ(small.size(), 11u);
  EXPECT_DOUBLE_EQ(small.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(small.time_at(10), 100.0);
  EXPECT_DOUBLE_EQ(small.value_at(10), 1.0);
}

TEST(TimeSeriesTest, CsvHasHeaderAndRows) {
  TimeSeries ts;
  ts.add(1.0, 2.0);
  const std::string csv = ts.to_csv("fraction");
  EXPECT_NE(csv.find("t,fraction"), std::string::npos);
  EXPECT_NE(csv.find("1,2"), std::string::npos);
}

TEST(BootstrapTest, MedianCiCoversPointEstimate) {
  Rng rng(11);
  std::vector<double> values{10, 12, 9, 11, 10, 13, 10, 9, 11, 12};
  const auto ci = bootstrap_median_ci(values, 0.95, 2000, rng);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_NEAR(ci.point, 10.5, 1e-12);
}

TEST(BootstrapTest, MeanCiNarrowsWithTightData) {
  Rng rng(12);
  std::vector<double> tight(50, 5.0);
  const auto ci = bootstrap_mean_ci(tight, 0.95, 500, rng);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
}

}  // namespace
}  // namespace lagover
