// Health-layer tests: the phi-accrual failure detector, the epoch-fenced
// lease book, the validator's epoch audit, the failover ladder, and the
// failover metrics recorder — plus the acceptance "epoch storm": a run
// with heavy crash/rejoin churn during which audit_epochs must stay
// clean at every sample (zero stale-epoch attachments, zero cycles).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "health/failure_detector.hpp"
#include "health/health.hpp"
#include "health/lease.hpp"
#include "metrics/failover.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

// --- phi-accrual detector --------------------------------------------

TEST(PhiDetectorTest, UnprimedUntilMinSamples) {
  health::PhiConfig config;
  config.min_samples = 3;
  health::PhiAccrualDetector detector(4, config);
  detector.heartbeat(1, 1.0);  // first beat: no interval yet
  EXPECT_FALSE(detector.primed(1));
  detector.heartbeat(1, 2.0);
  detector.heartbeat(1, 3.0);
  EXPECT_FALSE(detector.primed(1));  // two intervals < min_samples
  detector.heartbeat(1, 4.0);
  EXPECT_TRUE(detector.primed(1));
  EXPECT_EQ(detector.interval_count(1), 3u);
  EXPECT_DOUBLE_EQ(detector.mean_interval(1), 1.0);
  // An unprimed link is never suspect.
  EXPECT_FALSE(detector.suspect(2, 100.0));
}

TEST(PhiDetectorTest, PhiGrowsWithSilence) {
  health::PhiAccrualDetector detector(2, health::PhiConfig{});
  for (int beat = 0; beat <= 6; ++beat)
    detector.heartbeat(1, static_cast<double>(beat));
  const double at_expected = detector.phi(1, 7.0);   // right on cadence
  const double late = detector.phi(1, 9.0);          // 2 periods silent
  const double very_late = detector.phi(1, 12.0);    // 5 periods silent
  EXPECT_LT(at_expected, late);
  EXPECT_LT(late, very_late);
  EXPECT_FALSE(detector.suspect(1, 6.5));
  EXPECT_TRUE(detector.suspect(1, 12.0));
}

TEST(PhiDetectorTest, ThresholdAdaptsToLinkCadence) {
  // Link 1 beats every 1.0 units, link 2 every 4.0: the same wall-clock
  // silence means very different things. Six units after the last beat
  // the fast link must look far more suspicious than the slow one.
  health::PhiAccrualDetector detector(3, health::PhiConfig{});
  for (int beat = 0; beat <= 8; ++beat) {
    detector.heartbeat(1, static_cast<double>(beat));
    detector.heartbeat(2, static_cast<double>(beat) * 4.0);
  }
  const double fast_phi = detector.phi(1, 8.0 + 6.0);
  const double slow_phi = detector.phi(2, 32.0 + 6.0);
  EXPECT_GT(fast_phi, slow_phi);
  EXPECT_TRUE(detector.suspect(1, 8.0 + 6.0));
  EXPECT_FALSE(detector.suspect(2, 32.0 + 6.0));
}

TEST(PhiDetectorTest, ResetForgetsHistory) {
  health::PhiAccrualDetector detector(2, health::PhiConfig{});
  for (int beat = 0; beat <= 5; ++beat)
    detector.heartbeat(1, static_cast<double>(beat));
  ASSERT_TRUE(detector.primed(1));
  detector.reset(1);
  EXPECT_FALSE(detector.primed(1));
  EXPECT_EQ(detector.interval_count(1), 0u);
  EXPECT_DOUBLE_EQ(detector.phi(1, 100.0), 0.0);
}

// --- epoch book -------------------------------------------------------

TEST(EpochBookTest, BumpAndLeaseLifecycle) {
  health::EpochBook book(5);
  EXPECT_EQ(book.epoch(3), 1u);  // everyone starts in epoch 1
  EXPECT_FALSE(book.has_lease(2));

  book.record_attachment(2, 3);
  EXPECT_TRUE(book.has_lease(2));
  EXPECT_EQ(book.lease_epoch(2), 1u);
  EXPECT_TRUE(book.lease_valid(2, 3));

  // Parent 3 re-incarnates: child 2's lease is now stale.
  EXPECT_EQ(book.bump(3), 2u);
  EXPECT_FALSE(book.lease_valid(2, 3));
  EXPECT_EQ(book.bumps(), 1u);

  book.clear_lease(2);
  EXPECT_FALSE(book.has_lease(2));
  // No lease recorded = treated as valid (pre-health overlays).
  EXPECT_TRUE(book.lease_valid(2, 3));

  book.note_fence();
  EXPECT_EQ(book.fences(), 1u);
}

TEST(EpochBookTest, AuditFlagsStaleEdges) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 2}},
                 NodeSpec{3, Constraints{0, 3}}};
  Overlay overlay(p);
  health::EpochBook book(overlay.node_count());
  overlay.set_attach_observer([&](NodeId child, NodeId parent) {
    book.record_attachment(child, parent);
  });
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);

  EXPECT_TRUE(audit_epochs(overlay, book).ok());
  EXPECT_TRUE(audit_epochs(overlay, book).stale_edges.empty());

  // Node 2 "re-incarnates" while 3 still holds a lease on its old life.
  book.bump(2);
  const EpochAudit audit = audit_epochs(overlay, book);
  EXPECT_FALSE(audit.ok());
  ASSERT_EQ(audit.stale_edges.size(), 1u);
  EXPECT_EQ(audit.stale_edges[0], 3u);
  EXPECT_TRUE(audit.acyclic);
}

// --- epoch storm (acceptance criterion) ------------------------------

TEST(HealthTest, EpochStormKeepsAttachmentsFencedAsync) {
  // Heavy crash/rejoin churn. At EVERY sample the overlay must hold
  // zero stale-epoch attachments and zero cycles — the fence's job.
  for (auto detection : {health::DetectionPolicy::kFixedMisses,
                         health::DetectionPolicy::kPhiAccrual}) {
    AsyncConfig config;
    config.seed = 91;
    config.health.detection = detection;
    config.health.failover = health::FailoverPolicy::kLadder;
    FaultPlan plan;
    plan.add(FaultPlan::crashes(10.0, 80.0, 0.05, 4.0))
        .add(FaultPlan::drop(50.0, 120.0, 0.2))
        .add(FaultPlan::crashes(130.0, 200.0, 0.08, 6.0));
    config.faults = std::make_shared<FaultInjector>(plan, 37);
    AsyncEngine engine(workload(60, 37), config);
    std::size_t samples = 0;
    engine.set_sampler(1.0, [&](SimTime) {
      ++samples;
      const EpochAudit audit = audit_epochs(engine.overlay(), engine.epochs());
      EXPECT_TRUE(audit.stale_edges.empty())
          << audit.to_string() << " at sample " << samples;
      EXPECT_TRUE(audit.acyclic);
      engine.overlay().audit();
    });
    engine.run_for(400.0);
    EXPECT_GT(samples, 0u);
    EXPECT_GT(engine.faults()->stats().crashes, 0u);
    EXPECT_GT(engine.epochs().bumps(), 0u);
    // Final state is clean too.
    EXPECT_TRUE(audit_epochs(engine.overlay(), engine.epochs()).ok());
  }
}

TEST(HealthTest, EpochStormKeepsAttachmentsFencedSync) {
  EngineConfig config;
  config.seed = 93;
  config.health.detection = health::DetectionPolicy::kPhiAccrual;
  config.health.failover = health::FailoverPolicy::kLadder;
  FaultPlan plan;
  plan.add(FaultPlan::crashes(10.0, 60.0, 0.05, 4.0))
      .add(FaultPlan::crashes(80.0, 140.0, 0.08, 6.0));
  config.faults = std::make_shared<FaultInjector>(plan, 41);
  Engine engine(workload(60, 41), config);
  for (int round = 0; round < 300; ++round) {
    engine.run_round();
    const EpochAudit audit = audit_epochs(engine.overlay(), engine.epochs());
    EXPECT_TRUE(audit.stale_edges.empty())
        << audit.to_string() << " at round " << round;
    EXPECT_TRUE(audit.acyclic);
  }
  EXPECT_GT(engine.epochs().bumps(), 0u);
  engine.overlay().audit();
}

// --- failover ladder --------------------------------------------------

TEST(HealthTest, LadderRecoversOrphansWithoutOracle) {
  AsyncConfig config;
  config.seed = 95;
  config.health.detection = health::DetectionPolicy::kPhiAccrual;
  config.health.failover = health::FailoverPolicy::kLadder;
  FaultPlan plan;
  plan.add(FaultPlan::crashes(20.0, 120.0, 0.04, 5.0));
  config.faults = std::make_shared<FaultInjector>(plan, 43);
  AsyncEngine engine(workload(80, 43), config);
  std::uint64_t failover_attaches = 0;
  engine.set_trace([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kFailoverAttach) ++failover_attaches;
  });
  engine.run_for(400.0);
  EXPECT_GT(engine.faults()->stats().crashes, 0u);
  // The ladder actually fired, and its count matches the core's.
  EXPECT_GT(failover_attaches, 0u);
  EXPECT_EQ(failover_attaches, engine.core().failover_attaches());
  // Ladder attaches never violated structure (audited continuously by
  // Overlay::attach preconditions; spot-check the end state).
  engine.overlay().audit();
  EXPECT_TRUE(audit_epochs(engine.overlay(), engine.epochs()).ok());
}

TEST(HealthTest, DefaultPoliciesKeepLadderIdle) {
  AsyncConfig config;  // defaults: kFixedMisses + kOracleRejoin
  config.seed = 97;
  FaultPlan plan;
  plan.add(FaultPlan::crashes(20.0, 80.0, 0.04, 5.0));
  config.faults = std::make_shared<FaultInjector>(plan, 47);
  AsyncEngine engine(workload(60, 47), config);
  engine.run_for(300.0);
  EXPECT_GT(engine.faults()->stats().crashes, 0u);
  EXPECT_EQ(engine.core().failover_attaches(), 0u);
}

// --- failover metrics recorder ---------------------------------------

TEST(FailoverRecorderTest, DerivesDetectionAndOrphanTimes) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 2}},
                 NodeSpec{3, Constraints{0, 3}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);

  metrics::FailoverRecorder recorder(overlay);
  // Node 2 crashes at t=10 (emitted BEFORE the structural change: node 3
  // is still its child). Node 3 discovers at t=12 (its first orphan-loop
  // event) and re-attaches at t=15.
  recorder.on_trace(
      {10, TraceEventType::kCrash, 2, kNoNode, false, 10.0});
  overlay.set_offline(2);  // orphans node 3, as the engines do
  recorder.on_trace(
      {12, TraceEventType::kInteractionFailed, 3, 1, false, 12.0});
  recorder.on_trace({15, TraceEventType::kFailoverAttach, 3, 1, true, 15.0});

  EXPECT_EQ(recorder.crashes(), 1u);
  EXPECT_EQ(recorder.detections(), 1u);
  ASSERT_EQ(recorder.detection_latency().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.detection_latency().mean(), 2.0);
  ASSERT_EQ(recorder.orphan_time().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.orphan_time().mean(), 5.0);
  EXPECT_EQ(recorder.failover_attaches(), 1u);
}

TEST(FailoverRecorderTest, CountsFalseSuspicions) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 2}},
                 NodeSpec{3, Constraints{0, 3}}};
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);

  metrics::FailoverRecorder recorder(overlay);
  // Node 2 suspects node 1 — which is still online: a false positive.
  recorder.on_trace({5, TraceEventType::kParentLost, 2, 1, false, 5.0});
  EXPECT_EQ(recorder.suspicions(), 1u);
  EXPECT_EQ(recorder.false_suspicions(), 1u);
  EXPECT_DOUBLE_EQ(recorder.false_positive_rate(), 1.0);

  // Node 2 re-attaches at t=9: orphan period of 4.
  recorder.on_trace({9, TraceEventType::kInteraction, 2, 1, true, 9.0});
  ASSERT_EQ(recorder.orphan_time().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.orphan_time().mean(), 4.0);
}

// --- to_string coverage ----------------------------------------------

TEST(HealthTest, PolicyNames) {
  EXPECT_EQ(to_string(health::DetectionPolicy::kFixedMisses), "fixed-misses");
  EXPECT_EQ(to_string(health::DetectionPolicy::kPhiAccrual), "phi-accrual");
  EXPECT_EQ(to_string(health::FailoverPolicy::kOracleRejoin),
            "oracle-rejoin");
  EXPECT_EQ(to_string(health::FailoverPolicy::kLadder), "ladder");
}

}  // namespace
}  // namespace lagover
