// Construction under churn (paper Section 5.3): the system must keep a
// high satisfied fraction under the paper's churn rates and reconverge
// after churn stops or after mass failures.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population bicorr(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiCorr, params);
}

TEST(ChurnEngineTest, OverlayStaysValidUnderChurn) {
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    EngineConfig config;
    config.algorithm = algorithm;
    config.seed = 71;
    Engine engine(bicorr(80, 4), config);
    engine.set_churn(std::make_unique<BernoulliChurn>(0.01, 0.2));
    for (int r = 0; r < 400; ++r) {
      engine.run_round();
      engine.overlay().audit();
    }
  }
}

TEST(ChurnEngineTest, HighSatisfactionSustainedUnderPaperChurnRates) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 5;
  Engine engine(bicorr(120, 9), config);
  engine.set_churn(std::make_unique<BernoulliChurn>(0.01, 0.2));
  engine.set_record_history(true);
  for (int r = 0; r < 600; ++r) engine.run_round();
  // After a burn-in, the steady-state satisfied fraction should be high
  // (churn at 1%/20% displaces only a few nodes per round).
  double sum = 0.0;
  int count = 0;
  for (const auto& stats : engine.history()) {
    if (stats.round <= 200) continue;
    sum += stats.satisfied_fraction;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(sum / count, 0.85);
}

TEST(ChurnEngineTest, ReconvergesAfterChurnWindowEnds) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 6;
  Engine engine(bicorr(60, 2), config);
  engine.set_churn(std::make_unique<WindowedChurn>(150, 0.02, 0.2));
  const auto converged = engine.run_until_converged(3000);
  ASSERT_TRUE(converged.has_value());
  EXPECT_TRUE(engine.overlay().all_satisfied());
}

TEST(ChurnEngineTest, RecoversFromMassFailure) {
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 7;
  Engine engine(bicorr(60, 3), config);
  engine.set_churn(std::make_unique<MassFailureChurn>(
      /*fail_round=*/50, /*fail_fraction=*/0.4, /*p_join=*/0.3));
  // Let it converge, suffer the failure, and reconverge with everyone
  // eventually back online.
  bool converged_before_failure = false;
  for (int r = 0; r < 50; ++r) {
    engine.run_round();
    if (engine.overlay().all_satisfied()) converged_before_failure = true;
  }
  EXPECT_TRUE(converged_before_failure);
  bool reconverged = false;
  for (int r = 0; r < 1000 && !reconverged; ++r) {
    engine.run_round();
    reconverged = engine.overlay().online_count() ==
                      engine.overlay().consumer_count() &&
                  engine.overlay().all_satisfied();
  }
  EXPECT_TRUE(reconverged);
  engine.overlay().audit();
}

TEST(ChurnEngineTest, MassFailureRecoveryIsBoundedWithNoPermanentOrphans) {
  // Sharper contract than RecoversFromMassFailure: once the last failed
  // node has rejoined, full reconvergence must follow within a bounded
  // number of rounds — and no online node may end the run parentless.
  for (auto algorithm : {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    EngineConfig config;
    config.algorithm = algorithm;
    config.seed = 17;
    Engine engine(bicorr(80, 11), config);
    engine.set_churn(std::make_unique<MassFailureChurn>(
        /*fail_round=*/150, /*fail_fraction=*/0.5, /*p_join=*/0.3));
    // Converge first; stop one round short of the failure round so the
    // assertion sees the healthy overlay, not the fresh damage.
    for (int r = 0; r < 149; ++r) engine.run_round();
    ASSERT_TRUE(engine.overlay().all_satisfied()) << to_string(algorithm);

    // Phase 1: everyone is back online. p_join = 0.3 rejoins half the
    // population in ~20 rounds in expectation; 300 is a generous cap.
    int all_online_round = -1;
    for (int r = 0; r < 300 && all_online_round < 0; ++r) {
      engine.run_round();
      if (engine.overlay().online_count() == engine.overlay().consumer_count())
        all_online_round = static_cast<int>(engine.round());
    }
    ASSERT_GE(all_online_round, 0)
        << to_string(algorithm) << ": nodes never all rejoined";

    // Phase 2: bounded reconvergence. The last rejoiner still has to
    // attach and propagate; 150 rounds is several times the from-scratch
    // construction time for this population.
    int reconverged_round = -1;
    for (int r = 0; r < 150 && reconverged_round < 0; ++r) {
      if (engine.overlay().all_satisfied())
        reconverged_round = static_cast<int>(engine.round());
      else
        engine.run_round();
    }
    ASSERT_GE(reconverged_round, 0)
        << to_string(algorithm) << ": no reconvergence within bound";
    EXPECT_LE(reconverged_round - all_online_round, 150);

    // No permanent orphans: every online consumer has a parent and
    // meets its constraint.
    for (NodeId id = 1; id < engine.overlay().node_count(); ++id) {
      if (!engine.overlay().online(id)) continue;
      EXPECT_TRUE(engine.overlay().has_parent(id))
          << to_string(algorithm) << ": permanent orphan " << id;
    }
    engine.overlay().audit();
  }
}

TEST(ChurnEngineTest, ChurnEventsAppearInTrace) {
  EngineConfig config;
  config.seed = 8;
  Engine engine(bicorr(60, 5), config);
  engine.set_churn(std::make_unique<BernoulliChurn>(0.05, 0.3));
  std::size_t leaves = 0;
  std::size_t joins = 0;
  engine.set_trace([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kChurnLeave) ++leaves;
    if (event.type == TraceEventType::kChurnJoin) ++joins;
  });
  for (int r = 0; r < 100; ++r) engine.run_round();
  EXPECT_GT(leaves, 0u);
  EXPECT_GT(joins, 0u);
}

}  // namespace
}  // namespace lagover
