// Tests for overlay snapshot serialization: round-trips, validation of
// malformed input, and constraint re-checking on load.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Overlay converged_overlay(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  EngineConfig config;
  config.seed = seed;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  EXPECT_TRUE(engine.run_until_converged(3000).has_value());
  return engine.overlay();
}

TEST(SnapshotTest, RoundTripPreservesStructure) {
  const Overlay original = converged_overlay(60, 3);
  const Overlay restored = from_snapshot(to_snapshot(original));
  EXPECT_TRUE(same_structure(original, restored));
  restored.audit();
  EXPECT_TRUE(restored.all_satisfied());
}

TEST(SnapshotTest, RoundTripPreservesOfflineNodesAndDetachedGroups) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 1}}, NodeSpec{2, Constraints{1, 3}},
      NodeSpec{3, Constraints{0, 4}}, NodeSpec{4, Constraints{1, 5}},
  };
  Overlay overlay(p);
  overlay.attach(1, kSourceId);
  overlay.attach(3, 2);  // detached group rooted at 2
  overlay.set_offline(4);
  const Overlay restored = from_snapshot(to_snapshot(overlay));
  EXPECT_TRUE(same_structure(overlay, restored));
  EXPECT_FALSE(restored.online(4));
  EXPECT_EQ(restored.parent(3), 2u);
  EXPECT_EQ(restored.root(3), 2u);
}

TEST(SnapshotTest, EmptyPopulation) {
  Population p;
  p.source_fanout = 5;
  const Overlay restored = from_snapshot(to_snapshot(Overlay(p)));
  EXPECT_EQ(restored.consumer_count(), 0u);
  EXPECT_EQ(restored.fanout_of(kSourceId), 5);
}

TEST(SnapshotTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# saved by test\n"
      "lagover-snapshot v1\n"
      "\n"
      "source 1\n"
      "# the only consumer\n"
      "node 1 0 2 1 0\n";
  const Overlay overlay = from_snapshot(text);
  EXPECT_EQ(overlay.parent(1), kSourceId);
  EXPECT_TRUE(overlay.satisfied(1));
}

TEST(SnapshotTest, RejectsBadHeader) {
  EXPECT_THROW(from_snapshot("not-a-snapshot\n"), InvalidArgument);
}

TEST(SnapshotTest, RejectsMissingSource) {
  EXPECT_THROW(from_snapshot("lagover-snapshot v1\nnode 1 0 1 1 -\n"),
               InvalidArgument);
}

TEST(SnapshotTest, RejectsFanoutViolationOnLoad) {
  // Source fanout 1, two children claimed.
  const std::string text =
      "lagover-snapshot v1\n"
      "source 1\n"
      "node 1 0 1 1 0\n"
      "node 2 0 1 1 0\n";
  EXPECT_THROW(from_snapshot(text), InvalidArgument);
}

TEST(SnapshotTest, RejectsParentCycle) {
  const std::string text =
      "lagover-snapshot v1\n"
      "source 1\n"
      "node 1 1 3 1 2\n"
      "node 2 1 3 1 1\n";
  EXPECT_THROW(from_snapshot(text), InvalidArgument);
}

TEST(SnapshotTest, RejectsEdgeToOfflineParent) {
  const std::string text =
      "lagover-snapshot v1\n"
      "source 1\n"
      "node 1 1 3 0 -\n"
      "node 2 1 3 1 1\n";
  EXPECT_THROW(from_snapshot(text), InvalidArgument);
}

TEST(SnapshotTest, SameStructureDetectsDifferences) {
  Population p;
  p.source_fanout = 2;
  p.consumers = {NodeSpec{1, Constraints{1, 2}},
                 NodeSpec{2, Constraints{0, 3}}};
  Overlay a(p);
  Overlay b(p);
  EXPECT_TRUE(same_structure(a, b));
  a.attach(1, kSourceId);
  EXPECT_FALSE(same_structure(a, b));
  b.attach(1, kSourceId);
  EXPECT_TRUE(same_structure(a, b));
  a.set_offline(2);
  EXPECT_FALSE(same_structure(a, b));
}

}  // namespace
}  // namespace lagover
