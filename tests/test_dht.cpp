// Tests for the Chord ring: identifier arithmetic, stabilization,
// lookup correctness, storage routing, and the DHT-backed oracle.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/chord.hpp"
#include "dht/directory.hpp"
#include "dht/hash_space.hpp"

namespace lagover::dht {
namespace {

// Builds "<prefix><k>" by append: the one-expression operator+ form
// trips a GCC 12 -Wrestrict false positive (upstream bug 105651) when
// inlined at -O3, and the tree builds with warnings as errors.
std::string numbered(const char* prefix, int k) {
  std::string s(prefix);
  s += std::to_string(k);
  return s;
}

TEST(HashSpaceTest, IntervalOpenClosed) {
  EXPECT_TRUE(in_interval_open_closed(5, 3, 7));
  EXPECT_TRUE(in_interval_open_closed(7, 3, 7));
  EXPECT_FALSE(in_interval_open_closed(3, 3, 7));
  EXPECT_FALSE(in_interval_open_closed(8, 3, 7));
  // Wrap-around.
  EXPECT_TRUE(in_interval_open_closed(1, ~0ULL - 2, 3));
  EXPECT_TRUE(in_interval_open_closed(~0ULL, ~0ULL - 2, 3));
  EXPECT_FALSE(in_interval_open_closed(100, ~0ULL - 2, 3));
  // Whole ring.
  EXPECT_TRUE(in_interval_open_closed(42, 9, 9));
}

TEST(HashSpaceTest, IntervalOpenOpen) {
  EXPECT_TRUE(in_interval_open_open(5, 3, 7));
  EXPECT_FALSE(in_interval_open_open(7, 3, 7));
  EXPECT_FALSE(in_interval_open_open(3, 3, 7));
  EXPECT_TRUE(in_interval_open_open(0, 7, 3));
}

TEST(HashSpaceTest, HashesAreStable) {
  EXPECT_EQ(hash_string("feed"), hash_string("feed"));
  EXPECT_NE(hash_string("feed-a"), hash_string("feed-b"));
  EXPECT_EQ(hash_u64(7), hash_u64(7));
  EXPECT_NE(hash_u64(7), hash_u64(8));
}

TEST(HashSpaceTest, FingerTargets) {
  EXPECT_EQ(finger_target(10, 0), 11u);
  EXPECT_EQ(finger_target(10, 3), 18u);
  // Wraps modulo 2^64.
  EXPECT_EQ(finger_target(~0ULL, 0), 0u);
}

TEST(ChordRingTest, SingleNodeOwnsEverything) {
  ChordRing ring(1, ChordConfig{}, 1);
  ring.simulator().run_until(5.0);
  EXPECT_TRUE(ring.node(0).owns(hash_string("anything")));
  const auto [owner, hops] = ring.lookup_sync(0, hash_string("key"));
  EXPECT_EQ(owner, ring.node(0).address());
  EXPECT_EQ(hops, 0);
}

TEST(ChordRingTest, RingStabilizes) {
  for (std::size_t n : {2u, 5u, 16u}) {
    ChordRing ring(n, ChordConfig{}, 7);
    EXPECT_TRUE(ring.run_until_stable(300.0)) << "n=" << n;
    EXPECT_TRUE(ring.ring_consistent());
  }
}

TEST(ChordRingTest, LookupFindsTheUniqueOwner) {
  ChordRing ring(12, ChordConfig{}, 3);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  // Let fingers converge for efficient routing.
  ring.simulator().run_until(ring.simulator().now() + 100.0);

  for (int k = 0; k < 20; ++k) {
    const Key key = hash_string(numbered("key-", k));
    // Exactly one node claims ownership.
    std::set<Address> owners;
    for (std::size_t i = 0; i < ring.size(); ++i)
      if (ring.node(i).owns(key)) owners.insert(ring.node(i).address());
    ASSERT_EQ(owners.size(), 1u) << "key " << k;
    // Every starting point resolves to that owner.
    for (std::size_t from : {0u, 5u, 11u}) {
      const auto [owner, hops] = ring.lookup_sync(from, key);
      EXPECT_EQ(owner, *owners.begin());
      EXPECT_GE(hops, 0);
    }
  }
}

TEST(ChordRingTest, LookupHopsAreLogarithmicish) {
  ChordRing ring(32, ChordConfig{}, 5);
  ASSERT_TRUE(ring.run_until_stable(500.0));
  ring.simulator().run_until(ring.simulator().now() + 200.0);
  double total_hops = 0;
  constexpr int kLookups = 50;
  for (int k = 0; k < kLookups; ++k) {
    const auto [owner, hops] = ring.lookup_sync(
        static_cast<std::size_t>(k) % 32, hash_string(numbered("q", k)));
    (void)owner;
    total_hops += hops;
  }
  // log2(32) = 5; allow generous slack but reject linear routing (~16).
  EXPECT_LT(total_hops / kLookups, 8.0);
}

TEST(ChordRingTest, PutGetRoundTrip) {
  ChordRing ring(8, ChordConfig{}, 9);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("registry");
  ring.put_sync(2, key, "alpha");
  ring.put_sync(5, key, "beta");
  const auto values = ring.get_sync(7, key);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_NE(std::find(values.begin(), values.end(), "alpha"), values.end());
  EXPECT_NE(std::find(values.begin(), values.end(), "beta"), values.end());
}

TEST(ChordRingTest, RemoveDeletesValue) {
  ChordRing ring(8, ChordConfig{}, 11);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("registry");
  ring.put_sync(0, key, "gone");
  ring.node(3).remove(key, "gone");
  ring.simulator().run_until(ring.simulator().now() + 20.0);
  EXPECT_TRUE(ring.get_sync(1, key).empty());
}

TEST(ChordRingTest, RouteNextConvergesToOwner) {
  ChordRing ring(16, ChordConfig{}, 13);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 100.0);
  const Key key = hash_string("scribe-feed");
  Address cursor = ring.node(4).address();
  int steps = 0;
  while (!ring.node(cursor).owns(key)) {
    cursor = ring.node(cursor).route_next(key);
    ASSERT_LE(++steps, 32) << "route did not converge";
  }
  const auto [owner, hops] = ring.lookup_sync(4, key);
  (void)hops;
  EXPECT_EQ(cursor, owner);
}

}  // namespace
}  // namespace lagover::dht
