// Tests for live dissemination (construction + churn + delivery in one
// timeline).
#include <gtest/gtest.h>

#include <memory>

#include "feed/live.hpp"
#include "workload/churn.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

Population workload(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(LiveDisseminationTest, StableOverlayDeliversEverythingOnTime) {
  feed::LiveConfig config;
  config.engine.seed = 3;
  config.warmup_rounds = 80;  // enough to converge before measuring
  config.measured_rounds = 300;
  const auto report = run_live_dissemination(workload(60, 3), config);
  EXPECT_GT(report.items_published, 0u);
  EXPECT_GT(report.total_deliveries, 0u);
  EXPECT_EQ(report.total_late, 0u);
  EXPECT_DOUBLE_EQ(report.on_time_fraction, 1.0);
  // Every consumer received every measured item except those still in
  // flight at the horizon (at most ceil(max_depth / publish_every)).
  for (const auto& node : report.nodes) {
    EXPECT_GE(node.deliveries + 4, report.items_published) << node.node;
    EXPECT_LE(node.deliveries, report.items_published) << node.node;
  }
  // Freshness stays at 1.0 throughout.
  EXPECT_DOUBLE_EQ(
      report.freshness.min_after(config.warmup_rounds + 20.0), 1.0);
}

TEST(LiveDisseminationTest, PaperChurnKeepsDeliveryMostlyOnTime) {
  feed::LiveConfig config;
  config.engine.seed = 5;
  config.churn = [] { return std::make_unique<BernoulliChurn>(0.01, 0.2); };
  config.warmup_rounds = 100;
  config.measured_rounds = 400;
  const auto report = run_live_dissemination(workload(100, 5), config);
  EXPECT_GT(report.total_deliveries, 0u);
  EXPECT_GT(report.on_time_fraction, 0.85);
  EXPECT_GT(report.freshness.mean_after(config.warmup_rounds + 50.0), 0.8);
}

TEST(LiveDisseminationTest, HeavierChurnDegradesTimeliness) {
  auto run_with = [&](double p_leave) {
    feed::LiveConfig config;
    config.engine.seed = 7;
    config.churn = [p_leave] {
      return std::make_unique<BernoulliChurn>(p_leave, 0.2);
    };
    config.warmup_rounds = 100;
    config.measured_rounds = 400;
    return run_live_dissemination(workload(100, 7), config);
  };
  const auto light = run_with(0.005);
  const auto heavy = run_with(0.08);
  EXPECT_GT(light.on_time_fraction, heavy.on_time_fraction);
}

TEST(LiveDisseminationTest, RejoiningNodesCatchUpThroughParents) {
  // A windowed churn phase, then quiet: every published item must
  // eventually reach every consumer (catch-up through the new parents),
  // even if some deliveries were late.
  feed::LiveConfig config;
  config.engine.seed = 9;
  config.churn = [] {
    return std::make_unique<WindowedChurn>(/*active_rounds=*/250, 0.02, 0.2);
  };
  config.warmup_rounds = 100;
  config.measured_rounds = 600;  // churn ends mid-window; tail is quiet
  const auto report = run_live_dissemination(workload(80, 9), config);
  // All but the newest items (still propagating at the horizon) arrive.
  for (const auto& node : report.nodes)
    EXPECT_GE(node.deliveries + 12, report.items_published)
        << "node " << node.node << " missed items for good";
  // And the tail of the run is fully fresh again.
  EXPECT_DOUBLE_EQ(report.freshness.value_at(report.freshness.size() - 1),
                   1.0);
}

TEST(LiveDisseminationTest, DeterministicPerSeed) {
  feed::LiveConfig config;
  config.engine.seed = 11;
  config.churn = [] { return std::make_unique<BernoulliChurn>(0.02, 0.2); };
  config.warmup_rounds = 50;
  config.measured_rounds = 200;
  const auto a = run_live_dissemination(workload(60, 11), config);
  const auto b = run_live_dissemination(workload(60, 11), config);
  EXPECT_EQ(a.total_deliveries, b.total_deliveries);
  EXPECT_EQ(a.total_late, b.total_late);
}

}  // namespace
}  // namespace lagover
