// Unit tests for the shared per-node construction behaviour
// (ConstructionCore): timeout-driven source contact, referral reuse,
// source referrals, oracle starvation, and state resets — driven by a
// scripted oracle for full control.
#include <gtest/gtest.h>

#include <deque>

#include "core/construction_core.hpp"
#include "core/greedy.hpp"
#include "core/hybrid.hpp"

namespace lagover {
namespace {

/// Oracle returning a pre-programmed sequence of answers (kNoNode
/// entries mean "no suitable partner"); an exhausted script answers
/// empty forever.
class ScriptedOracle final : public Oracle {
 public:
  explicit ScriptedOracle(std::vector<NodeId> script)
      : script_(script.begin(), script.end()) {}

  OracleKind kind() const noexcept override { return OracleKind::kRandom; }

 protected:
  std::optional<NodeId> sample_impl(NodeId, const Overlay&, Rng&) override {
    if (script_.empty()) return std::nullopt;
    const NodeId next = script_.front();
    script_.pop_front();
    if (next == kNoNode) return std::nullopt;
    return next;
  }

 private:
  std::deque<NodeId> script_;
};

Population chain_population() {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}},
      NodeSpec{2, Constraints{1, 3}},
      NodeSpec{3, Constraints{1, 5}},
  };
  return p;
}

struct Harness {
  explicit Harness(std::vector<NodeId> script,
                   int timeout_limit = 3)
      : overlay(chain_population()),
        protocol(SourceMode::kPullOnly),
        oracle(std::move(script)),
        core(overlay, protocol, oracle, timeout_limit),
        rng(7) {
    core.set_trace([this](const TraceEvent& event) {
      events.push_back(event);
    });
  }

  Overlay overlay;
  GreedyProtocol protocol;
  ScriptedOracle oracle;
  ConstructionCore core;
  Rng rng;
  std::vector<TraceEvent> events;
};

TEST(ConstructionCoreTest, TimeoutTriggersSourceContact) {
  // Oracle always empty: after timeout_limit starved steps the node
  // contacts the source directly.
  Harness h({}, /*timeout_limit=*/3);
  for (int step = 0; step < 3; ++step) h.core.orphan_step(1, h.rng, step);
  EXPECT_FALSE(h.overlay.has_parent(1));
  h.core.orphan_step(1, h.rng, 3);
  EXPECT_EQ(h.overlay.parent(1), kSourceId);
  ASSERT_FALSE(h.events.empty());
  EXPECT_EQ(h.events.back().type, TraceEventType::kSourceContact);
  EXPECT_TRUE(h.events.back().attached);
}

TEST(ConstructionCoreTest, OracleEmptyEventsEmitted) {
  Harness h({});
  h.core.orphan_step(2, h.rng, 0);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].type, TraceEventType::kOracleEmpty);
}

TEST(ConstructionCoreTest, ReferralPartnerUsedOnNextStep) {
  // Querier 4 meets the saturated node 2 (no attach or displacement is
  // legal), gets referred upstream to Parent(2) = node 1, and the next
  // step interacts with node 1 WITHOUT consulting the Oracle again.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 2}},  // chain: 0 <- 1
      NodeSpec{2, Constraints{1, 3}},  //        1 <- 2
      NodeSpec{3, Constraints{0, 3}},  //        2 <- 3 (saturates 2)
      NodeSpec{4, Constraints{2, 4}},  // querier
  };
  Overlay overlay(p);
  GreedyProtocol protocol;
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.attach(3, 2);
  // Script holds exactly ONE answer: if the second step asked the
  // Oracle it would starve instead of interacting.
  ScriptedOracle oracle({2});
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(9);
  std::vector<TraceEvent> events;
  core.set_trace([&](const TraceEvent& e) { events.push_back(e); });

  // Node 2 cannot host 4 (full; child 3 would be violated one deeper,
  // and 3 is stricter than 4 so it won't yield its slot either).
  core.orphan_step(4, rng, 0);
  EXPECT_FALSE(overlay.has_parent(4));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kInteraction);
  EXPECT_EQ(events[0].partner, 2u);

  // The referral (node 1) is the next partner.
  core.orphan_step(4, rng, 1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].type, TraceEventType::kInteraction);
  EXPECT_EQ(events[1].partner, 1u);
}

TEST(ConstructionCoreTest, UpstreamReferralChainsToSource) {
  // Node 1 (l=1) interacts with connected node 2 (delay 2): greedy
  // cannot host it there and refers it upstream; following referrals it
  // reaches a source contact and displaces the laxer chain.
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 1}},
      NodeSpec{2, Constraints{1, 2}},
      NodeSpec{3, Constraints{1, 4}},
  };
  Overlay overlay(p);
  GreedyProtocol protocol;
  overlay.attach(2, kSourceId);
  overlay.attach(3, 2);
  // Script: node 1's oracle sample is the deep node 3.
  ScriptedOracle oracle({3});
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(11);
  std::vector<TraceEvent> events;
  core.set_trace([&](const TraceEvent& e) { events.push_back(e); });

  // Step 1: interact with 3 (l=4 > l=1): tries to take 3's slot under 2,
  // but l_2 = 2 > l_1 = 1 fails the insertion delay check? delay_at(3)=2
  // > l_1=1, so referral = parent(3) = 2.
  core.orphan_step(1, rng, 0);
  EXPECT_FALSE(overlay.has_parent(1));
  // Step 2: uses referral 2; l_2=2 > l_1: try insertion above 2 (under
  // the source): delay 1 <= 1, order ok (source), fanout(1) free.
  core.orphan_step(1, rng, 1);
  EXPECT_EQ(overlay.parent(1), kSourceId);
  EXPECT_EQ(overlay.parent(2), 1u);
  EXPECT_EQ(overlay.first_greedy_order_violation(), kNoNode);
}

TEST(ConstructionCoreTest, HybridSourceReferralContactsSourceNextStep) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{0, 1}},
      NodeSpec{2, Constraints{0, 3}},
  };
  Overlay overlay(p);
  HybridProtocol protocol;
  overlay.attach(1, kSourceId);
  // Node 2 meets the source child 1 (fanout 0): nothing possible,
  // hybrid says "refer i to 0".
  ScriptedOracle oracle({1});
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(13);
  std::vector<TraceEvent> events;
  core.set_trace([&](const TraceEvent& e) { events.push_back(e); });

  core.orphan_step(2, rng, 0);
  EXPECT_FALSE(overlay.has_parent(2));
  core.orphan_step(2, rng, 1);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[1].type, TraceEventType::kSourceContact);
  // Source is full with a stricter node (l=1 < l=3): contact fails.
  EXPECT_FALSE(events[1].attached);
}

TEST(ConstructionCoreTest, StepsAreNoOpsForAttachedOrOfflineNodes) {
  Harness h({2, 2});
  h.overlay.attach(1, kSourceId);
  h.core.orphan_step(1, h.rng, 0);  // already attached
  EXPECT_TRUE(h.events.empty());

  h.overlay.set_offline(2);
  h.core.orphan_step(2, h.rng, 0);  // offline
  EXPECT_TRUE(h.events.empty());
}

TEST(ConstructionCoreTest, ResetClearsTimeoutProgress) {
  Harness h({}, /*timeout_limit=*/2);
  h.core.orphan_step(1, h.rng, 0);
  h.core.orphan_step(1, h.rng, 1);
  h.core.reset_node(1);  // e.g. the node churned out and back in
  // Two more starved steps are needed before the source contact.
  h.core.orphan_step(1, h.rng, 2);
  EXPECT_FALSE(h.overlay.has_parent(1));
  h.core.orphan_step(1, h.rng, 3);
  EXPECT_FALSE(h.overlay.has_parent(1));
  h.core.orphan_step(1, h.rng, 4);
  EXPECT_EQ(h.overlay.parent(1), kSourceId);
}

TEST(ConstructionCoreTest, MaintenanceRespectsPatience) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 5}},
      NodeSpec{2, Constraints{1, 1}},  // will be violated at depth 2
  };
  Overlay overlay(p);
  GreedyProtocol protocol;
  ScriptedOracle oracle({});
  ConstructionCore core(overlay, protocol, oracle, 10);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);  // delay 2 > l=1

  // patience 2: two violated evaluations tolerated, detach on the third.
  EXPECT_FALSE(core.maintenance_step(2, /*patience=*/2, 0));
  EXPECT_FALSE(core.maintenance_step(2, 2, 1));
  EXPECT_TRUE(core.maintenance_step(2, 2, 2));
  EXPECT_FALSE(overlay.has_parent(2));
  EXPECT_EQ(core.maintenance_detaches(), 1u);
}

TEST(ConstructionCoreTest, MaintenanceStreakResetsWhenHealthy) {
  Population p;
  p.source_fanout = 1;
  p.consumers = {
      NodeSpec{1, Constraints{1, 5}},
      NodeSpec{2, Constraints{1, 1}},
  };
  Overlay overlay(p);
  GreedyProtocol protocol;
  ScriptedOracle oracle({});
  ConstructionCore core(overlay, protocol, oracle, 10);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);

  EXPECT_FALSE(core.maintenance_step(2, 2, 0));
  EXPECT_FALSE(core.maintenance_step(2, 2, 1));
  // The violation heals (node 2 moves to the source side temporarily).
  overlay.detach(2);
  overlay.detach(1);
  overlay.attach(2, kSourceId);
  EXPECT_FALSE(core.maintenance_step(2, 2, 2));  // healthy: streak resets
  overlay.detach(2);
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  // Needs three fresh violated evaluations again.
  EXPECT_FALSE(core.maintenance_step(2, 2, 3));
  EXPECT_FALSE(core.maintenance_step(2, 2, 4));
  EXPECT_TRUE(core.maintenance_step(2, 2, 5));
}

}  // namespace
}  // namespace lagover
