// Tests for the telemetry substrate: event bus semantics, metrics
// registry (log-histogram boundaries, merge, reset), profiler
// aggregation, the per-round sampler, the exporters, and — most
// importantly — the invariant that enabling telemetry changes no
// engine decision (identical overlays for identical seeds).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "fault/fault_injector.hpp"
#include "feed/dissemination.hpp"
#include "metrics/failover.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

/// Scoped telemetry enable that restores the previous state and leaves
/// the global registries clean.
class TelemetryGuard {
 public:
  explicit TelemetryGuard(bool on) : previous_(telemetry::enabled()) {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
    telemetry::set_enabled(on);
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(previous_);
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
  }

 private:
  bool previous_;
};

// ---------------------------------------------------------------- bus

TEST(EventBusTest, FanOutToAllSubscribers) {
  telemetry::EventBus<int> bus;
  std::vector<int> a;
  std::vector<int> b;
  bus.subscribe([&](const int& v) { a.push_back(v); });
  bus.subscribe([&](const int& v) { b.push_back(v); });
  bus.publish(1);
  bus.publish(2);
  EXPECT_EQ(a, (std::vector<int>{1, 2}));
  EXPECT_EQ(b, (std::vector<int>{1, 2}));
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBusTest, UnsubscribeStopsDelivery) {
  telemetry::EventBus<int> bus;
  std::vector<int> got;
  const auto id = bus.subscribe([&](const int& v) { got.push_back(v); });
  bus.publish(1);
  EXPECT_TRUE(bus.unsubscribe(id));
  EXPECT_FALSE(bus.unsubscribe(id));  // double-unsubscribe is a no-op
  bus.publish(2);
  EXPECT_EQ(got, std::vector<int>{1});
  EXPECT_FALSE(bus.has_subscribers());
}

TEST(EventBusTest, RetentionRingKeepsNewestAndCountsOverwrites) {
  telemetry::EventBus<int> bus;
  bus.set_retention(3);
  for (int i = 1; i <= 5; ++i) bus.publish(i);
  EXPECT_EQ(bus.recent(), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(bus.overwritten(), 2u);
  bus.set_retention(2);  // shrink keeps the newest
  EXPECT_EQ(bus.recent(), (std::vector<int>{4, 5}));
  bus.set_retention(0);  // disable clears
  EXPECT_EQ(bus.retained_count(), 0u);
}

// ----------------------------------------------------------- metrics

TEST(LogHistogramTest, BucketBoundariesAreHalfOpen) {
  telemetry::LogHistogram h(1.0, 2.0, 4);  // [1,2) [2,4) [4,8) [8,16)
  h.add(1.0);   // exactly the first lower bound
  h.add(2.0);   // exactly a boundary: belongs to [2,4), not [1,2)
  h.add(3.999);
  h.add(4.0);
  h.add(15.999);
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.count_in_bucket(1), 2u);
  EXPECT_EQ(h.count_in_bucket(2), 1u);
  EXPECT_EQ(h.count_in_bucket(3), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 4.0);
}

TEST(LogHistogramTest, UnderflowAndOverflow) {
  telemetry::LogHistogram h(1.0, 2.0, 3);  // covers [1, 8)
  h.add(0.0);
  h.add(-5.0);
  h.add(0.999);
  h.add(8.0);  // first value past the top
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(LogHistogramTest, ExactAggregatesAndPercentileBounds) {
  telemetry::LogHistogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 31.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.2);
  // Quantiles are approximations, but must stay within [min, max] and
  // be monotone in q.
  const double p10 = h.percentile(0.10);
  const double p50 = h.percentile(0.50);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p10, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(LogHistogramTest, PercentileOfEmptyIsZero) {
  telemetry::LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(LogHistogramTest, MergeAndReset) {
  telemetry::LogHistogram a(1.0, 2.0, 8);
  telemetry::LogHistogram b(1.0, 2.0, 8);
  a.add(1.5);
  a.add(300.0);  // overflow for 8 buckets ([1, 256))
  b.add(3.0);
  b.add(0.5);  // underflow
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 305.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 300.0);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  EXPECT_EQ(a.underflow(), 0u);
  EXPECT_EQ(a.bucket_count(), 8u);  // geometry survives
}

TEST(MetricsRegistryTest, StableReferencesAcrossResetAndInsertions) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("a");
  c.inc(3);
  // Later insertions and reset() must not move or drop the entry.
  for (int i = 0; i < 100; ++i)
    registry.counter("filler_" + std::to_string(i));
  EXPECT_EQ(&c, &registry.counter("a"));
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(registry.has_counter("a"));
}

TEST(MetricsRegistryTest, MergeFromAddsCountersAndHistograms) {
  telemetry::MetricsRegistry a;
  telemetry::MetricsRegistry b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(5);
  b.counter("only_b").inc(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h").add(2.0);
  b.histogram("h").add(4.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("shared").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);  // last-written-wins
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(MetricsRegistryTest, MacrosAreInertWhenDisabled) {
  TelemetryGuard guard(false);
  TELEM_COUNT("macro.test_counter", 1);
  TELEM_GAUGE("macro.test_gauge", 5.0);
  TELEM_HIST("macro.test_hist", 5.0);
  auto& registry = telemetry::MetricsRegistry::instance();
  EXPECT_FALSE(registry.has_counter("macro.test_counter"));
  EXPECT_FALSE(registry.has_gauge("macro.test_gauge"));
  EXPECT_FALSE(registry.has_histogram("macro.test_hist"));
}

TEST(MetricsRegistryTest, ToJsonCarriesSchemaAndValues) {
  telemetry::MetricsRegistry registry;
  registry.counter("c").inc(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h").add(3.0);
  const std::string json = registry.to_json().dump();
  EXPECT_NE(json.find("lagover.metrics.v1"), std::string::npos);
  EXPECT_NE(json.find("\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------- profiler

TEST(ProfilerTest, ScopesAggregateWhenEnabled) {
  TelemetryGuard guard(true);
  for (int i = 0; i < 3; ++i) {
    TELEM_SCOPE("test.scope");
  }
  const telemetry::ProfileSite& site =
      telemetry::Profiler::instance().site("test.scope");
  EXPECT_EQ(site.calls, 3u);
}

TEST(ProfilerTest, ScopesFreeWhenDisabled) {
  TelemetryGuard guard(false);
  {
    TELEM_SCOPE("test.disabled_scope");
  }
  const telemetry::ProfileSite& site =
      telemetry::Profiler::instance().site("test.disabled_scope");
  EXPECT_EQ(site.calls, 0u);
}

// ----------------------------------------------------------- sampler

TEST(TimeseriesSamplerTest, SamplesAndRestartsOnClockRewind) {
  TelemetryGuard guard(true);
  auto& registry = telemetry::MetricsRegistry::instance();
  telemetry::TimeseriesSampler sampler;
  registry.counter("s.c").inc(1);
  sampler.sample(1.0);
  registry.counter("s.c").inc(1);
  sampler.sample(2.0);
  ASSERT_EQ(sampler.series().count("s.c"), 1u);
  EXPECT_EQ(sampler.series().at("s.c").size(), 2u);
  // A second trial restarts the sim clock; the series restarts too
  // (TimeSeries requires non-decreasing timestamps).
  sampler.sample(1.0);
  EXPECT_EQ(sampler.series().at("s.c").size(), 1u);
}

// --------------------------------------------------------- exporters

TEST(ExportTest, JsonlWriterStreamsEventsAndLogs) {
  TelemetryGuard guard(true);
  const std::string path = "test_telemetry_events.jsonl";
  {
    telemetry::JsonlEventWriter writer(path);
    ASSERT_TRUE(writer.ok());
    telemetry::record_event({1.5, "interaction", "", 3, 4, 1, true});
    telemetry::log_bus().publish({1.5, 10, 2, "hello \"quoted\""});
    EXPECT_EQ(writer.lines(), 2u);
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"interaction\""), std::string::npos);
  EXPECT_NE(line2.find("\"log\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, ChromeTraceWriterProducesLoadableJson) {
  TelemetryGuard guard(true);
  const std::string path = "test_telemetry_trace.json";
  {
    telemetry::ChromeTraceWriter writer;
    telemetry::record_event({2.0, "crash", "", 7, 0, 1, false});
    {
      TELEM_SCOPE("test.traced_scope");
    }
    // 3 metadata (sim/wall/item pids) + 1 instant + 1 complete
    EXPECT_EQ(writer.event_count(), 5u);
    ASSERT_TRUE(writer.write(path));
  }
  // The sink must be restored after the writer dies.
  EXPECT_EQ(telemetry::Profiler::instance().sink(), nullptr);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, MetricsSummaryJsonEmbedsProfileAndTimeseries) {
  TelemetryGuard guard(true);
  TELEM_COUNT("summary.counter", 2);
  telemetry::TimeseriesSampler sampler;
  sampler.sample(1.0);
  const std::string json =
      telemetry::metrics_summary_json(&sampler).dump();
  EXPECT_NE(json.find("lagover.metrics.v1"), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("summary.counter"), std::string::npos);
}

// ------------------------------------------------- engine integration

Population small_population(std::uint64_t seed) {
  WorkloadParams params;
  params.peers = 40;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

std::vector<NodeId> parent_snapshot(const Overlay& overlay) {
  std::vector<NodeId> parents;
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    parents.push_back(overlay.parent(id));
  return parents;
}

TEST(TelemetryIntegrationTest, EnablingTelemetryChangesNoDecision) {
  // Same seed, telemetry off vs on: the final overlay must be
  // byte-identical (telemetry consumes no RNG and gates every effect).
  std::vector<NodeId> off_parents;
  Round off_round = 0;
  {
    TelemetryGuard guard(false);
    EngineConfig config;
    config.seed = 11;
    Engine engine(small_population(11), config);
    engine.run_until_converged(500);
    off_parents = parent_snapshot(engine.overlay());
    off_round = engine.round();
  }
  {
    TelemetryGuard guard(true);
    EngineConfig config;
    config.seed = 11;
    Engine engine(small_population(11), config);
    engine.run_until_converged(500);
    EXPECT_EQ(parent_snapshot(engine.overlay()), off_parents);
    EXPECT_EQ(engine.round(), off_round);
    // And the run actually recorded something.
    EXPECT_GT(telemetry::MetricsRegistry::instance()
                  .counter("engine.rounds")
                  .value(),
              0u);
  }
}

TEST(TelemetryIntegrationTest, TraceBusFeedsMultipleSubscribers) {
  EngineConfig config;
  config.seed = 5;
  Engine engine(small_population(5), config);
  std::size_t seen_a = 0;
  std::size_t seen_b = 0;
  engine.set_trace([&](const TraceEvent&) { ++seen_a; });
  engine.trace_bus().subscribe([&](const TraceEvent&) { ++seen_b; });
  engine.run_until_converged(500);
  EXPECT_GT(seen_a, 0u);
  EXPECT_EQ(seen_a, seen_b);
}

TEST(TelemetryIntegrationTest, SetTraceReplacesPreviousObserver) {
  EngineConfig config;
  config.seed = 5;
  Engine engine(small_population(5), config);
  std::size_t old_count = 0;
  std::size_t new_count = 0;
  engine.set_trace([&](const TraceEvent&) { ++old_count; });
  engine.set_trace([&](const TraceEvent&) { ++new_count; });
  engine.run_until_converged(500);
  EXPECT_EQ(old_count, 0u);
  EXPECT_GT(new_count, 0u);
}

TEST(TelemetryIntegrationTest, AsyncTraceBusSurvivesSetOracle) {
  // Regression: AsyncEngine::set_oracle used to rebuild the core
  // without re-installing the trace observer, silently losing it.
  AsyncConfig config;
  config.seed = 9;
  AsyncEngine engine(small_population(9), config);
  std::size_t seen = 0;
  engine.trace_bus().subscribe([&](const TraceEvent&) { ++seen; });
  engine.set_oracle(make_oracle(OracleKind::kRandomDelay));
  engine.run_until_converged(500.0);
  EXPECT_GT(seen, 0u);
}

TEST(TelemetryIntegrationTest, RecorderViaBusMatchesDirectFeed) {
  // Porting FailoverRecorder from set_trace to a bus subscription must
  // not change its measurements: run the same faulty scenario both
  // ways and compare every aggregate.
  auto run = [](bool via_bus, std::uint64_t& suspicions, double& orphan_sum,
                std::uint64_t& detections) {
    fault::FaultPlan plan;
    plan.add(fault::FaultPlan::crashes(10.0, 40.0, 0.03, 5.0));
    AsyncConfig config;
    config.seed = 21;
    config.faults = std::make_shared<fault::FaultInjector>(plan, 77);
    AsyncEngine engine(small_population(21), config);
    metrics::FailoverRecorder recorder(engine.overlay());
    if (via_bus) {
      recorder.subscribe(engine.trace_bus());
    } else {
      engine.set_trace(
          [&](const TraceEvent& event) { recorder.on_trace(event); });
    }
    engine.run_for(80.0);
    suspicions = recorder.suspicions();
    orphan_sum = recorder.orphan_time().empty()
                     ? 0.0
                     : recorder.orphan_time().mean() *
                           static_cast<double>(recorder.orphan_time().size());
    detections = recorder.detections();
  };
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  double o1 = 0.0;
  double o2 = 0.0;
  run(false, s1, o1, d1);
  run(true, s2, o2, d2);
  EXPECT_EQ(s1, s2);
  EXPECT_DOUBLE_EQ(o1, o2);
  EXPECT_EQ(d1, d2);
}

TEST(TelemetryIntegrationTest, EventsCarryEpochAndCause) {
  TelemetryGuard guard(true);
  fault::FaultPlan plan;
  plan.add(fault::FaultPlan::crashes(5.0, 30.0, 0.04, 4.0))
      .add(fault::FaultPlan::drop(10.0, 50.0, 0.9));
  AsyncConfig config;
  config.seed = 33;
  config.faults = std::make_shared<fault::FaultInjector>(plan, 33);
  AsyncEngine engine(small_population(33), config);
  bool saw_cause = false;
  bool saw_epoch = false;
  engine.trace_bus().subscribe([&](const TraceEvent& event) {
    if (event.type == TraceEventType::kParentLost &&
        std::string(event.cause) == "missed_polls")
      saw_cause = true;
    if (event.epoch > health::kNoEpoch) saw_epoch = true;
  });
  engine.run_for(60.0);
  EXPECT_TRUE(saw_cause);
  EXPECT_TRUE(saw_epoch);
}

// -------------------------------------------------------------- spans

/// Scoped span-bus subscription that collects everything published and
/// guarantees the global bus is clean again when the test ends.
class SpanCollector {
 public:
  SpanCollector()
      : id_(telemetry::span_bus().subscribe(
            [this](const telemetry::ItemSpan& span) {
              spans.push_back(span);
            })) {}
  ~SpanCollector() { telemetry::span_bus().unsubscribe(id_); }
  std::vector<telemetry::ItemSpan> spans;

 private:
  telemetry::SpanBus::SubscriptionId id_;
};

/// 0 -> 1 -> 2 chain; node 2's budget (l=1) is deliberately violated by
/// its depth, so every push to it arrives late.
Population chain_population() {
  Population p;
  p.source_fanout = 1;
  p.consumers = {NodeSpec{1, Constraints{1, 2}},
                 NodeSpec{2, Constraints{0, 1}}};
  return p;
}

TEST(SpanTest, RecordSpanIsInertWhenDisabled) {
  TelemetryGuard guard(false);
  SpanCollector collector;
  telemetry::ItemSpan span;
  span.item = 1;
  span.kind = telemetry::SpanKind::kDeliver;
  span.node = 2;
  span.deadline = 1.0;
  span.ts = 5.0;
  telemetry::record_span(span);
  EXPECT_TRUE(collector.spans.empty());
  EXPECT_FALSE(telemetry::MetricsRegistry::instance().has_counter(
      "span.deliver"));
}

TEST(SpanTest, ReceiptSpansFeedDeliveryLatencyAndDeadlineMisses) {
  TelemetryGuard guard(true);
  telemetry::ItemSpan span;
  span.item = 1;
  span.kind = telemetry::SpanKind::kDeliver;
  span.node = 2;
  span.published_at = 1.0;
  span.deadline = 1.0;
  span.ts = 3.0;  // latency 2 > budget 1: a miss
  telemetry::record_span(span);
  span.ts = 1.5;  // latency 0.5: on time
  telemetry::record_span(span);
  span.kind = telemetry::SpanKind::kRelay;  // not a receipt
  span.ts = 9.0;
  telemetry::record_span(span);
  auto& registry = telemetry::MetricsRegistry::instance();
  EXPECT_EQ(registry.histogram("feed.delivery_latency").count(), 2u);
  EXPECT_EQ(registry.counter("feed.deadline_misses").value(), 1u);
  EXPECT_EQ(registry.counter("span.deliver").value(), 2u);
  EXPECT_EQ(registry.counter("span.relay").value(), 1u);
}

TEST(SpanTest, MissedDeadlineUsesFeedSlack) {
  EXPECT_FALSE(telemetry::missed_deadline(0.0, 2.0, 2.0));
  EXPECT_TRUE(telemetry::missed_deadline(0.0, 2.0 + 1e-6, 2.0));
  EXPECT_FALSE(telemetry::missed_deadline(0.0, 99.0, -1.0));  // no budget
}

TEST(SpanIntegrationTest, DisseminationEmitsCompleteChains) {
  TelemetryGuard guard(true);
  SpanCollector collector;
  Overlay overlay(chain_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  feed::DisseminationConfig config;
  const auto report = feed::run_dissemination(overlay, config, 10.0);
  ASSERT_GT(report.items_published, 0u);

  std::size_t publishes = 0;
  std::size_t polls = 0;
  std::size_t delivers = 0;
  for (const auto& span : collector.spans) {
    switch (span.kind) {
      case telemetry::SpanKind::kPublish:
        ++publishes;
        EXPECT_EQ(span.node, kSourceId);
        EXPECT_EQ(span.hop, 0u);
        break;
      case telemetry::SpanKind::kSourcePoll:
        ++polls;
        EXPECT_EQ(span.node, 1u);
        EXPECT_EQ(span.parent, kSourceId);
        EXPECT_EQ(span.hop, 1u);
        EXPECT_DOUBLE_EQ(span.deadline, 2.0);
        break;
      case telemetry::SpanKind::kDeliver:
        ++delivers;
        EXPECT_EQ(span.node, 2u);
        EXPECT_EQ(span.parent, 1u);  // parent span exists: causal chain
        EXPECT_EQ(span.hop, 2u);
        EXPECT_DOUBLE_EQ(span.deadline, 1.0);
        EXPECT_GE(span.ts, span.start);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(publishes, report.items_published);
  EXPECT_GT(polls, 0u);
  EXPECT_GT(delivers, 0u);
}

TEST(SpanIntegrationTest, ViolatedBudgetCountsDeadlineMisses) {
  TelemetryGuard guard(true);
  SpanCollector collector;
  Overlay overlay(chain_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);  // depth 2 > node 2's budget of 1
  feed::DisseminationConfig config;
  feed::run_dissemination(overlay, config, 20.0);

  // The counter must agree exactly with a re-derivation from the spans
  // themselves — this is the contract lagover_inspect laggards relies on.
  std::uint64_t expected = 0;
  for (const auto& span : collector.spans)
    if ((span.kind == telemetry::SpanKind::kSourcePoll ||
         span.kind == telemetry::SpanKind::kDeliver ||
         span.kind == telemetry::SpanKind::kRepair) &&
        telemetry::missed_deadline(span.published_at, span.ts,
                                   span.deadline))
      ++expected;
  EXPECT_GT(expected, 0u);  // the chain really does violate node 2
  EXPECT_EQ(telemetry::MetricsRegistry::instance()
                .counter("feed.deadline_misses")
                .value(),
            expected);
}

TEST(SpanIntegrationTest, DisabledTelemetryLeavesReportIdentical) {
  // The span instrumentation must not perturb the simulation: the same
  // dissemination with telemetry off and on yields the same report, and
  // with telemetry off the span bus stays silent.
  auto run = [] {
    Overlay overlay(chain_population());
    overlay.attach(1, kSourceId);
    overlay.attach(2, 1);
    feed::DisseminationConfig config;
    return feed::run_dissemination(overlay, config, 15.0);
  };
  feed::DisseminationReport off;
  feed::DisseminationReport on;
  std::size_t off_spans = 0;
  {
    TelemetryGuard guard(false);
    SpanCollector collector;
    off = run();
    off_spans = collector.spans.size();
  }
  {
    TelemetryGuard guard(true);
    on = run();
  }
  EXPECT_EQ(off_spans, 0u);
  EXPECT_EQ(off.items_published, on.items_published);
  EXPECT_EQ(off.push_messages, on.push_messages);
  EXPECT_EQ(off.source_requests, on.source_requests);
  EXPECT_EQ(off.violations, on.violations);
}

TEST(TelemetryIntegrationTest, OverlayMutatorsEmitEdgeEvents) {
  TelemetryGuard guard(true);
  std::vector<std::string> names;
  const auto sub = telemetry::event_bus().subscribe(
      [&](const telemetry::EventRecord& record) {
        names.push_back(record.name);
      });
  Overlay overlay(chain_population());
  overlay.attach(1, kSourceId);
  overlay.attach(2, 1);
  overlay.set_offline(2);  // emits the edge_detach AND node_offline
  overlay.set_online(2);
  telemetry::event_bus().unsubscribe(sub);
  EXPECT_EQ(names, (std::vector<std::string>{"edge_attach", "edge_attach",
                                             "edge_detach", "node_offline",
                                             "node_online"}));
}

TEST(TelemetryIntegrationTest, SetTraceReturnsUnsubscribableToken) {
  // Regression: set_trace used to discard the bus token, so callers
  // could replace the observer but never cleanly remove their own.
  EngineConfig config;
  config.seed = 5;
  Engine engine(small_population(5), config);
  std::size_t seen = 0;
  const auto token =
      engine.set_trace([&](const TraceEvent&) { ++seen; });
  EXPECT_NE(token, 0u);
  EXPECT_TRUE(engine.trace_bus().unsubscribe(token));
  engine.run_until_converged(500);
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(engine.set_trace(nullptr), 0u);  // disabling yields no token
}

TEST(TelemetryIntegrationTest, AsyncSetTraceReturnsUnsubscribableToken) {
  AsyncConfig config;
  config.seed = 9;
  AsyncEngine engine(small_population(9), config);
  std::size_t seen = 0;
  const auto token =
      engine.set_trace([&](const TraceEvent&) { ++seen; });
  EXPECT_NE(token, 0u);
  EXPECT_TRUE(engine.trace_bus().unsubscribe(token));
  engine.run_until_converged(500.0);
  EXPECT_EQ(seen, 0u);
}

TEST(TraceEventTest, TypeNamesAreStable) {
  EXPECT_STREQ(to_string(TraceEventType::kInteraction), "interaction");
  EXPECT_STREQ(to_string(TraceEventType::kEpochFenced), "epoch_fenced");
  EXPECT_STREQ(to_string(TraceEventType::kFailoverAttach),
               "failover_attach");
}

}  // namespace
}  // namespace lagover
