// Tests for the performance observability layer (telemetry/perf):
// PerfRecorder determinism, the invariant that an active recorder
// changes no engine decision (byte-identical overlays with perf on
// vs off, for both greedy and hybrid construction), allocation-hook
// pairing, RSS monotonicity, re-entrant phase accounting, and the
// shape of the "lagover.perf.v1" JSON section.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

/// Scoped telemetry enable that restores the previous state and leaves
/// the global registries clean (mirrors test_telemetry.cpp).
class TelemetryGuard {
 public:
  explicit TelemetryGuard(bool on) : previous_(telemetry::enabled()) {
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
    telemetry::set_enabled(on);
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(previous_);
    telemetry::MetricsRegistry::instance().reset();
    telemetry::Profiler::instance().reset();
  }

 private:
  bool previous_;
};

/// Scoped recorder activation; deactivates and detaches on exit.
class RecorderGuard {
 public:
  RecorderGuard() : recorder_(std::make_unique<telemetry::PerfRecorder>()) {
    telemetry::PerfRecorder::set_active(recorder_.get());
  }
  ~RecorderGuard() { telemetry::PerfRecorder::set_active(nullptr); }

  telemetry::PerfRecorder& recorder() { return *recorder_; }

 private:
  std::unique_ptr<telemetry::PerfRecorder> recorder_;
};

Population rand_population(std::size_t peers, std::uint64_t seed = 11) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kRand, params);
}

std::string converged_snapshot(AlgorithmKind algorithm) {
  EngineConfig config;
  config.algorithm = algorithm;
  config.seed = 23;
  Engine engine(rand_population(48), config);
  engine.run_until_converged(3000);
  return to_snapshot(engine.overlay());
}

// ------------------------------------------------------------ recorder

TEST(PerfRecorderTest, RoundAndMessageDeltasAreDeterministic) {
  std::uint64_t rounds[2] = {0, 0};
  std::uint64_t messages[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    TelemetryGuard guard(true);
    RecorderGuard active;
    EngineConfig config;
    config.seed = 5;
    Engine engine(rand_population(40), config);
    engine.run_until_converged(3000);
    active.recorder().finish();
    rounds[run] = active.recorder().total_rounds();
    messages[run] = active.recorder().total_messages();
  }
  EXPECT_GT(rounds[0], 0u);
  EXPECT_GT(messages[0], 0u);
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(messages[0], messages[1]);
}

TEST(PerfRecorderTest, ActiveRecorderChangesNoEngineDecision) {
  for (const AlgorithmKind algorithm :
       {AlgorithmKind::kGreedy, AlgorithmKind::kHybrid}) {
    std::string without;
    {
      TelemetryGuard guard(false);
      without = converged_snapshot(algorithm);
    }
    std::string with;
    {
      TelemetryGuard guard(true);
      RecorderGuard active;
      telemetry::set_alloc_tracking(true);
      with = converged_snapshot(algorithm);
      telemetry::set_alloc_tracking(false);
    }
    EXPECT_EQ(without, with) << "algorithm " << static_cast<int>(algorithm);
  }
}

TEST(PerfRecorderTest, PhasesAccumulateAcrossReentry) {
  TelemetryGuard guard(true);
  RecorderGuard active;
  telemetry::PerfRecorder& recorder = active.recorder();
  {
    // Outer and inner same-name scopes — as happens when a bench-local
    // "construction" scope wraps run_until_converged (itself marked).
    const telemetry::PerfPhase outer("construction");
    const telemetry::PerfPhase inner("construction");
    EngineConfig config;
    config.seed = 3;
    Engine engine(rand_population(24), config);
    engine.run_until_converged(2000);
  }
  recorder.finish();
  // phases() snapshots under the recorder lock; hold the copy.
  const std::vector<telemetry::PerfPhaseStats> phases = recorder.phases();
  ASSERT_EQ(phases.size(), 1u);
  const telemetry::PerfPhaseStats& phase = phases.front();
  EXPECT_EQ(phase.name, "construction");
  EXPECT_GT(phase.rounds, 0u);
  // Nested same-name scopes must count once, not twice: the phase's
  // rounds can never exceed the run total.
  EXPECT_LE(phase.rounds, recorder.total_rounds());
  EXPECT_LE(phase.messages, recorder.total_messages());
}

TEST(PerfRecorderTest, UnmatchedPhaseEndIsIgnored) {
  TelemetryGuard guard(true);
  RecorderGuard active;
  active.recorder().phase_end("never_opened");
  active.recorder().finish();
  EXPECT_TRUE(active.recorder().phases().empty());
}

TEST(PerfRecorderTest, FinishClosesOpenPhases) {
  TelemetryGuard guard(true);
  RecorderGuard active;
  active.recorder().phase_begin("construction");
  active.recorder().phase_begin("construction");  // nested, left open
  active.recorder().finish();
  ASSERT_EQ(active.recorder().phases().size(), 1u);
  EXPECT_EQ(active.recorder().phases().front().name, "construction");
}

TEST(PerfRecorderTest, PerfPhaseIsInertWithoutActiveRecorder) {
  TelemetryGuard guard(true);
  ASSERT_EQ(telemetry::PerfRecorder::active(), nullptr);
  const telemetry::PerfPhase phase("construction");  // must not crash
}

TEST(PerfRecorderTest, ToJsonCarriesSchemaAndRequiredKeys) {
  TelemetryGuard guard(true);
  RecorderGuard active;
  {
    const telemetry::PerfPhase phase("construction");
    EngineConfig config;
    config.seed = 9;
    Engine engine(rand_population(24), config);
    engine.run_until_converged(2000);
  }
  active.recorder().note_micro("BM_Example/16", 42.0, 41.0);
  const Json perf = active.recorder().to_json();
  const std::string text = perf.dump_pretty();
  for (const char* key :
       {"\"schema\": \"lagover.perf.v1\"", "\"wall_time_s\"",
        "\"peak_rss_kb\"", "\"rounds\"", "\"rounds_per_sec\"",
        "\"messages\"", "\"messages_per_round\"", "\"alloc\"",
        "\"phases\"", "\"construction\"", "\"scopes\"", "\"micro\"",
        "\"BM_Example/16\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key;
  }
}

// ---------------------------------------------------------- alloc hook

TEST(AllocHookTest, PairsAllocationsWithFrees) {
  if (!telemetry::alloc_hook_compiled()) GTEST_SKIP();
  telemetry::set_alloc_tracking(true);
  const telemetry::AllocStats before = telemetry::alloc_stats();
  {
    std::vector<std::unique_ptr<std::string>> scratch;
    for (int i = 0; i < 64; ++i)
      scratch.push_back(std::make_unique<std::string>(
          "a string long enough to defeat the small-string optimization"));
  }
  const telemetry::AllocStats after = telemetry::alloc_stats();
  telemetry::set_alloc_tracking(false);
  const std::uint64_t allocs = after.allocs - before.allocs;
  const std::uint64_t frees = after.frees - before.frees;
  EXPECT_GE(allocs, 128u);  // 64 unique_ptrs + 64 heap string buffers
  EXPECT_GE(after.bytes - before.bytes, 64u * 32u);
  // Everything allocated in the scope was freed in the scope; the
  // vector itself may add a few paired reallocations.
  EXPECT_EQ(allocs, frees);
}

TEST(AllocHookTest, TrackingOffFreezesCounters) {
  if (!telemetry::alloc_hook_compiled()) GTEST_SKIP();
  telemetry::set_alloc_tracking(false);
  const telemetry::AllocStats before = telemetry::alloc_stats();
  { const std::vector<int> scratch(1024, 7); }
  const telemetry::AllocStats after = telemetry::alloc_stats();
  EXPECT_EQ(before.allocs, after.allocs);
  EXPECT_EQ(before.bytes, after.bytes);
}

// ----------------------------------------------------------------- rss

TEST(RssTest, PeakIsMonotonicAndAboveCurrent) {
  const std::uint64_t peak_before = telemetry::peak_rss_bytes();
  if (peak_before == 0) GTEST_SKIP();  // no RSS source on this platform
  // Touch a real chunk of memory; the high-water mark must not drop.
  std::vector<char> ballast(8 << 20, 1);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 2;
  const std::uint64_t peak_after = telemetry::peak_rss_bytes();
  EXPECT_GE(peak_after, peak_before);
  const std::uint64_t current = telemetry::current_rss_bytes();
  if (current != 0) {
    EXPECT_GE(peak_after, current);
  }
}

// --------------------------------------------------- span fast path

telemetry::ItemSpan receipt_span(double ts) {
  telemetry::ItemSpan span;
  span.item = 1;
  span.kind = telemetry::SpanKind::kDeliver;
  span.node = 2;
  span.published_at = 0.0;
  span.deadline = 10.0;
  span.ts = ts;
  return span;
}

TEST(SpanFastPathTest, CachedMetricsSurviveRegistryReset) {
  // record_span caches Counter/histogram pointers once per process;
  // the registry contract (reset zeroes in place, never erases) must
  // keep them valid and rebound to the same names after a reset.
  TelemetryGuard guard(true);
  telemetry::record_span(receipt_span(1.0));
  telemetry::MetricsRegistry::instance().reset();
  telemetry::record_span(receipt_span(2.0));
  telemetry::record_span(receipt_span(3.0));
  const telemetry::MetricsRegistry& registry =
      telemetry::MetricsRegistry::instance();
  ASSERT_TRUE(registry.has_counter("span.deliver"));
  std::uint64_t delivers = 0;
  registry.for_each_counter(
      [&](const std::string& name, const telemetry::Counter& counter) {
        if (name == "span.deliver") delivers = counter.value();
      });
  EXPECT_EQ(delivers, 2u);  // the pre-reset record was zeroed away
}

}  // namespace
}  // namespace lagover
