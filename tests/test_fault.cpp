// Unit tests for the chaos layer: FaultPlan window algebra, the
// FaultInjector's message/partition/crash decisions, the Network fault
// filter (drop / latency spike / duplicate), the FaultyOracle decorator
// (outage + stale views), and the ConstructionCore failure paths
// (lost interactions, lost source contacts, the partner-cache fallback
// during Oracle outages).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/async_engine.hpp"
#include "core/construction_core.hpp"
#include "core/greedy.hpp"
#include "core/validator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_oracle.hpp"
#include "net/network.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSpec;

TEST(FaultPlanTest, EmptyPlanIsInert) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.active(0.0));
  EXPECT_TRUE(plan.effective(10.0).benign());
  EXPECT_DOUBLE_EQ(plan.last_end(), 0.0);
  EXPECT_FALSE(plan.has_oracle_faults());
}

TEST(FaultPlanTest, WindowsActivateOverHalfOpenIntervals) {
  FaultPlan plan;
  plan.add(FaultPlan::drop(10.0, 20.0, 0.5));
  EXPECT_FALSE(plan.active(9.99));
  EXPECT_TRUE(plan.active(10.0));
  EXPECT_TRUE(plan.active(19.99));
  EXPECT_FALSE(plan.active(20.0));
  EXPECT_DOUBLE_EQ(plan.effective(15.0).drop_probability, 0.5);
  EXPECT_DOUBLE_EQ(plan.last_end(), 20.0);
}

TEST(FaultPlanTest, OverlappingWindowsCombineByMax) {
  FaultPlan plan;
  plan.add(FaultPlan::drop(0.0, 100.0, 0.2))
      .add(FaultPlan::drop(50.0, 60.0, 0.8))
      .add(FaultPlan::oracle_outage(55.0, 70.0));
  EXPECT_DOUBLE_EQ(plan.effective(40.0).drop_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.effective(55.0).drop_probability, 0.8);
  EXPECT_TRUE(plan.effective(55.0).oracle_outage);
  EXPECT_FALSE(plan.effective(40.0).oracle_outage);
  EXPECT_TRUE(plan.has_oracle_faults());
}

TEST(FaultInjectorTest, EmptyPlanDeliversEverything) {
  FaultInjector injector{FaultPlan{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.deliver(1, 2, static_cast<double>(i)));
    EXPECT_DOUBLE_EQ(injector.extra_latency(static_cast<double>(i)), 0.0);
    EXPECT_FALSE(injector.duplicate(static_cast<double>(i)));
    EXPECT_FALSE(injector.oracle_down(static_cast<double>(i)));
    EXPECT_FALSE(injector.crash_roll(1, static_cast<double>(i)));
  }
  EXPECT_EQ(injector.stats().messages_dropped, 0u);
  EXPECT_EQ(injector.stats().partition_blocks, 0u);
}

TEST(FaultInjectorTest, CertainDropInsideWindowOnly) {
  FaultPlan plan;
  plan.add(FaultPlan::drop(10.0, 20.0, 1.0));
  FaultInjector injector{plan};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.deliver(1, 2, 5.0));
    EXPECT_FALSE(injector.deliver(1, 2, 15.0));
    EXPECT_TRUE(injector.deliver(1, 2, 25.0));
  }
  EXPECT_EQ(injector.stats().messages_dropped, 50u);
}

TEST(FaultInjectorTest, ProbabilisticDropIsRoughlyCalibrated) {
  FaultPlan plan;
  plan.add(FaultPlan::drop(0.0, 1.0, 0.3));
  FaultInjector injector{plan, 99};
  int dropped = 0;
  for (int i = 0; i < 10000; ++i)
    if (!injector.deliver(1, 2, 0.5)) ++dropped;
  EXPECT_GT(dropped, 2700);
  EXPECT_LT(dropped, 3300);
}

TEST(FaultInjectorTest, PartitionIsolatesAConsistentMinority) {
  FaultPlan plan;
  plan.add(FaultPlan::partition(0.0, 10.0, 0.3));
  FaultInjector injector{plan, 7};
  const int n = 200;
  int isolated = 0;
  for (NodeId id = 1; id <= n; ++id)
    if (injector.partition_isolated(id, 5.0)) ++isolated;
  EXPECT_GT(isolated, n / 10);
  EXPECT_LT(isolated, n / 2);
  // The source is always on the majority side.
  EXPECT_FALSE(injector.partition_isolated(kSourceId, 5.0));
  // Membership is stable across queries within the window...
  for (NodeId id = 1; id <= n; ++id)
    EXPECT_EQ(injector.partition_isolated(id, 2.0),
              injector.partition_isolated(id, 9.0));
  // ...and nobody is isolated outside it.
  for (NodeId id = 1; id <= n; ++id)
    EXPECT_FALSE(injector.partition_isolated(id, 10.0));
}

TEST(FaultInjectorTest, PartitionBlocksCrossSideMessagesOnly) {
  FaultPlan plan;
  plan.add(FaultPlan::partition(0.0, 10.0, 0.4));
  FaultInjector injector{plan, 21};
  NodeId inside = kNoNode;
  NodeId outside = kNoNode;
  for (NodeId id = 1; id <= 100; ++id) {
    if (injector.partition_isolated(id, 1.0)) {
      if (inside == kNoNode) inside = id;
    } else if (outside == kNoNode) {
      outside = id;
    }
  }
  ASSERT_NE(inside, kNoNode);
  ASSERT_NE(outside, kNoNode);
  EXPECT_FALSE(injector.deliver(inside, kSourceId, 1.0));
  EXPECT_FALSE(injector.deliver(outside, inside, 1.0));
  EXPECT_TRUE(injector.deliver(outside, kSourceId, 1.0));
  EXPECT_GT(injector.stats().partition_blocks, 0u);
  // After the window everyone reaches everyone.
  EXPECT_TRUE(injector.deliver(inside, kSourceId, 10.0));
}

TEST(NetworkFaultFilterTest, DropsDelaysAndDuplicates) {
  Simulator sim;
  net::Network<int> network(sim, std::make_unique<net::ConstantLatency>(1.0),
                            1);
  std::vector<double> arrivals;
  network.register_node(2, [&](net::Address, const int&) {
    arrivals.push_back(sim.now());
  });

  FaultPlan plan;
  plan.add(FaultPlan::drop(0.0, 1.0, 1.0));
  plan.add(FaultPlan::latency_spike(1.0, 2.0, 1.0, 5.0));
  plan.add(FaultPlan::duplicates(2.0, 3.0, 1.0));
  FaultInjector injector{plan, 3};
  network.set_fault_filter(
      net::make_fault_filter(injector, [&sim] { return sim.now(); }));

  network.send(1, 2, 42);  // t=0: dropped
  sim.run_until(0.5);
  network.send(1, 2, 43);  // t=0.5: dropped
  sim.run_until(1.5);
  network.send(1, 2, 44);  // t=1.5: spiked, arrives at 7.5
  sim.run_until(2.5);
  network.send(1, 2, 45);  // t=2.5: duplicated, two arrivals at 3.5
  sim.run_until(4.0);
  network.send(1, 2, 46);  // t=4: clean, arrives at 5.0
  sim.run();

  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_DOUBLE_EQ(arrivals[0], 3.5);
  EXPECT_DOUBLE_EQ(arrivals[1], 3.5);
  EXPECT_DOUBLE_EQ(arrivals[2], 5.0);
  EXPECT_DOUBLE_EQ(arrivals[3], 7.5);
  EXPECT_EQ(network.fault_dropped(), 2u);
  EXPECT_EQ(network.fault_delayed(), 1u);
  EXPECT_EQ(network.fault_duplicated(), 1u);
  EXPECT_EQ(injector.stats().messages_dropped, 2u);
  EXPECT_EQ(injector.stats().latency_spikes, 1u);
  EXPECT_EQ(injector.stats().messages_duplicated, 1u);
}

TEST(NetworkFaultFilterTest, NoFilterMeansFaultFreePath) {
  Simulator sim;
  net::Network<int> network(sim, std::make_unique<net::ConstantLatency>(1.0),
                            1);
  int received = 0;
  network.register_node(2, [&](net::Address, const int&) { ++received; });
  network.send(1, 2, 1);
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.fault_dropped(), 0u);
  EXPECT_EQ(network.fault_duplicated(), 0u);
}

Population small_population() {
  Population p;
  p.source_fanout = 2;
  p.consumers = {
      NodeSpec{1, Constraints{2, 2}},
      NodeSpec{2, Constraints{2, 3}},
      NodeSpec{3, Constraints{1, 4}},
  };
  return p;
}

TEST(FaultyOracleTest, OutageWindowAnswersEmpty) {
  Overlay overlay(small_population());
  auto faults = std::make_shared<FaultInjector>(
      FaultPlan{}.add(FaultPlan::oracle_outage(10.0, 20.0)));
  double now = 0.0;
  fault::FaultyOracle oracle(make_oracle(OracleKind::kRandom), faults,
                             [&now] { return now; });
  Rng rng(5);
  now = 15.0;
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(oracle.sample(1, overlay, rng).has_value());
  EXPECT_EQ(faults->stats().oracle_outage_queries, 20u);
  now = 25.0;
  EXPECT_TRUE(oracle.sample(1, overlay, rng).has_value());
}

TEST(FaultyOracleTest, StaleViewServesDepartedNodes) {
  Overlay overlay(small_population());
  auto faults = std::make_shared<FaultInjector>(
      FaultPlan{}.add(FaultPlan::oracle_staleness(0.0, 100.0, /*age=*/50.0)));
  double now = 1.0;
  fault::FaultyOracle oracle(make_oracle(OracleKind::kRandom), faults,
                             [&now] { return now; });
  Rng rng(5);
  // First query snapshots the all-online overlay.
  ASSERT_TRUE(oracle.sample(1, overlay, rng).has_value());
  // Everyone except the querier leaves; a live oracle would now starve,
  // but the stale view still hands out the departed nodes.
  overlay.set_offline(2);
  overlay.set_offline(3);
  now = 10.0;  // snapshot age 9 < 50: still served
  int stale_hits = 0;
  for (int i = 0; i < 20; ++i) {
    const auto sampled = oracle.sample(1, overlay, rng);
    ASSERT_TRUE(sampled.has_value());
    if (!overlay.online(*sampled)) ++stale_hits;
  }
  EXPECT_GT(stale_hits, 0);
  EXPECT_EQ(faults->stats().stale_oracle_refreshes, 1u);
}

TEST(FaultyOracleTest, SnapshotRefreshesOnceAgeExceeded) {
  Overlay overlay(small_population());
  auto faults = std::make_shared<FaultInjector>(
      FaultPlan{}.add(FaultPlan::oracle_staleness(0.0, 1000.0, /*age=*/5.0)));
  double now = 0.0;
  fault::FaultyOracle oracle(make_oracle(OracleKind::kRandom), faults,
                             [&now] { return now; });
  Rng rng(5);
  ASSERT_TRUE(oracle.sample(1, overlay, rng).has_value());
  overlay.set_offline(2);
  overlay.set_offline(3);
  now = 20.0;  // snapshot aged out: refreshed against the emptied overlay
  EXPECT_FALSE(oracle.sample(1, overlay, rng).has_value());
  EXPECT_EQ(faults->stats().stale_oracle_refreshes, 2u);
}

TEST(FaultyOracleTest, MaybeWrapOnlyWrapsWhenPlanHasOracleFaults) {
  auto no_oracle_faults = std::make_shared<FaultInjector>(
      FaultPlan{}.add(FaultPlan::drop(0.0, 10.0, 0.5)));
  auto inner = make_oracle(OracleKind::kRandomDelay);
  Oracle* inner_ptr = inner.get();
  auto unwrapped = fault::maybe_wrap_oracle(std::move(inner), no_oracle_faults,
                                            [] { return 0.0; });
  EXPECT_EQ(unwrapped.get(), inner_ptr);

  auto with_outage = std::make_shared<FaultInjector>(
      FaultPlan{}.add(FaultPlan::oracle_outage(0.0, 10.0)));
  auto wrapped = fault::maybe_wrap_oracle(
      make_oracle(OracleKind::kRandomDelay), with_outage, [] { return 0.0; });
  EXPECT_NE(dynamic_cast<fault::FaultyOracle*>(wrapped.get()), nullptr);
  EXPECT_EQ(wrapped->kind(), OracleKind::kRandomDelay);
}

/// Oracle returning a fixed partner, for scripting core failure paths.
class FixedOracle final : public Oracle {
 public:
  explicit FixedOracle(NodeId answer) : answer_(answer) {}
  OracleKind kind() const noexcept override { return OracleKind::kRandom; }

 protected:
  std::optional<NodeId> sample_impl(NodeId, const Overlay&, Rng&) override {
    if (answer_ == kNoNode) return std::nullopt;
    return answer_;
  }

 public:
  NodeId answer_;
};

TEST(ConstructionCoreFaultTest, LostInteractionCountsTowardTimeout) {
  Overlay overlay(small_population());
  GreedyProtocol protocol;
  FixedOracle oracle(2);
  ConstructionCore core(overlay, protocol, oracle, /*timeout_limit=*/3);
  std::vector<TraceEvent> events;
  core.set_trace([&](const TraceEvent& e) { events.push_back(e); });
  core.set_delivery_probe([](NodeId, NodeId) { return false; });
  Rng rng(3);

  const StepOutcome outcome = core.orphan_step(1, rng, 0);
  EXPECT_EQ(outcome.partner, 2u);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_FALSE(outcome.attached);
  EXPECT_FALSE(overlay.has_parent(1));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kInteractionFailed);

  // Three lost interactions exhaust the timeout; the 4th step goes for
  // the source — whose contact is also lost, so the referral persists.
  core.orphan_step(1, rng, 1);
  core.orphan_step(1, rng, 2);
  const StepOutcome source_try = core.orphan_step(1, rng, 3);
  EXPECT_EQ(source_try.partner, kSourceId);
  EXPECT_FALSE(source_try.delivered);
  EXPECT_EQ(events.back().type, TraceEventType::kSourceContactFailed);

  // Transport heals: the pending source referral fires immediately.
  core.set_delivery_probe(nullptr);
  const StepOutcome healed = core.orphan_step(1, rng, 4);
  EXPECT_EQ(healed.partner, kSourceId);
  EXPECT_TRUE(healed.delivered);
  EXPECT_TRUE(healed.attached);
  EXPECT_EQ(overlay.parent(1), kSourceId);
}

TEST(ConstructionCoreFaultTest, OfflinePartnerFromStaleViewFailsCleanly) {
  Overlay overlay(small_population());
  GreedyProtocol protocol;
  FixedOracle oracle(2);
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(3);
  overlay.set_offline(2);  // the oracle (stale) still returns node 2
  const StepOutcome outcome = core.orphan_step(1, rng, 0);
  EXPECT_EQ(outcome.partner, 2u);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_FALSE(overlay.has_parent(1));
}

TEST(ConstructionCoreFaultTest, PartnerCacheBridgesOracleOutage) {
  Overlay overlay(small_population());
  GreedyProtocol protocol;
  FixedOracle oracle(2);
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(3);
  bool outage = false;
  core.set_oracle_outage_probe([&outage] { return outage; });

  // Node 3 interacts with node 2 once: cache primed (3 may well attach
  // under 2 — irrelevant here, the outage strikes after a detach).
  core.orphan_step(3, rng, 0);
  ASSERT_FALSE(core.recent_partners(3).empty());
  EXPECT_EQ(core.recent_partners(3)[0], 2u);

  // Node 3 is orphaned again while the Oracle is dark. Without the
  // cache it would starve; with it, it re-interacts with node 2.
  if (overlay.has_parent(3)) overlay.detach(3);
  oracle.answer_ = kNoNode;
  outage = true;
  std::vector<TraceEvent> events;
  core.set_trace([&](const TraceEvent& e) { events.push_back(e); });
  const StepOutcome outcome = core.orphan_step(3, rng, 1);
  EXPECT_EQ(outcome.partner, 2u);
  EXPECT_TRUE(outcome.delivered);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, TraceEventType::kInteraction);

  // Outside outage windows an empty Oracle starves the node exactly as
  // before (the paper's semantics are preserved).
  outage = false;
  if (overlay.has_parent(3)) overlay.detach(3);
  events.clear();
  core.orphan_step(3, rng, 2);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().type, TraceEventType::kOracleEmpty);
}

// --- seeded end-to-end regressions ------------------------------------

TEST(FaultRegressionTest, OracleOutageDuringActivePartition) {
  // Regression: an Oracle outage overlapping an active partition. The
  // partitioned minority loses its parents AND cannot ask the Oracle
  // for new ones — nodes must ride the partner cache / failover ladder
  // through the dark window, then fully recover once both faults lift.
  WorkloadParams params;
  params.peers = 40;
  params.seed = 31;
  auto plan = fault::FaultPlan{}
                  .add(FaultPlan::partition(20.0, 60.0, 0.3))
                  .add(FaultPlan::oracle_outage(30.0, 50.0));
  AsyncConfig config;
  config.seed = 31;
  config.faults = std::make_shared<FaultInjector>(plan, 31);
  AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                     config);
  const double fraction = engine.run_for(220.0);
  // Both faults actually engaged, simultaneously at t=40.
  EXPECT_GT(engine.faults()->stats().partition_blocks, 0u);
  EXPECT_GT(engine.faults()->stats().oracle_outage_queries, 0u);
  // Full recovery after the windows close, with a clean audit.
  EXPECT_DOUBLE_EQ(fraction, 1.0);
  EXPECT_TRUE(engine.overlay().all_satisfied());
  EXPECT_EQ(engine.audit_violations(), 0u);
}

TEST(FaultRegressionTest, DuplicateDeliveryRacingACrash) {
  // Regression: the recipient of a duplicated message crashes while
  // both copies are in flight. The copies must be dropped dead (not
  // delivered to the re-incarnated node, not wedge the kernel), and a
  // post-rejoin send must flow normally — including its own duplicate.
  Simulator sim;
  net::Network<int> network(sim, std::make_unique<net::ConstantLatency>(1.0),
                            17);
  std::vector<int> arrivals;
  const auto handler = [&](net::Address, const int& value) {
    arrivals.push_back(value);
  };
  network.register_node(2, handler);

  FaultPlan plan;
  plan.add(FaultPlan::duplicates(0.0, 10.0, 1.0));
  FaultInjector injector{plan, 17};
  network.set_fault_filter(
      net::make_fault_filter(injector, [&sim] { return sim.now(); }));

  network.send(1, 2, 7);  // t=0: duplicated, both copies due at t=1.0
  sim.run_until(0.5);
  network.deregister_node(2);  // crash with both copies in flight
  sim.run_until(2.0);          // both arrive dead and are dropped
  EXPECT_TRUE(arrivals.empty());
  EXPECT_EQ(network.dropped(), 2u);

  network.register_node(2, handler);  // rejoin
  network.send(1, 2, 8);              // t=2: duplicated, arrives twice
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 8);
  EXPECT_EQ(arrivals[1], 8);
  EXPECT_EQ(network.fault_duplicated(), 2u);
  EXPECT_EQ(injector.stats().messages_duplicated, 2u);
}

TEST(FaultRegressionTest, CrashStormKeepsEpochAuditClean) {
  // Regression companion: nodes crash and re-incarnate mid-construction;
  // no child may end the run holding a lease on a stale incarnation and
  // the overlay must reconverge once the storm passes.
  WorkloadParams params;
  params.peers = 40;
  params.seed = 17;
  auto plan = fault::FaultPlan{}.add(
      FaultPlan::crashes(10.0, 60.0, 0.02, /*downtime=*/4.0));
  AsyncConfig config;
  config.seed = 17;
  config.faults = std::make_shared<FaultInjector>(plan, 17);
  AsyncEngine engine(generate_workload(WorkloadKind::kBiUnCorr, params),
                     config);
  const double fraction = engine.run_for(260.0);
  EXPECT_GT(engine.faults()->stats().crashes, 0u);
  EXPECT_GT(engine.epochs().bumps(), 0u);  // re-incarnations happened
  EXPECT_DOUBLE_EQ(fraction, 1.0);
  EXPECT_EQ(engine.audit_violations(), 0u);
  const EpochAudit audit = audit_epochs(engine.overlay(), engine.epochs());
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

TEST(ConstructionCoreFaultTest, ResetClearsPartnerCache) {
  Overlay overlay(small_population());
  GreedyProtocol protocol;
  FixedOracle oracle(2);
  ConstructionCore core(overlay, protocol, oracle, 10);
  Rng rng(3);
  core.orphan_step(3, rng, 0);
  ASSERT_FALSE(core.recent_partners(3).empty());
  core.reset_node(3);
  EXPECT_TRUE(core.recent_partners(3).empty());
}

}  // namespace
}  // namespace lagover
