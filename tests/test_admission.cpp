// Oracle admission-control tests: the windowed rate limiter's verdicts,
// the circuit breaker's trip / half-open / close hysteresis, the
// AdmittedOracle's stale-cache serving and rejection signalling, and the
// engine-level guarantees — an empty AdmissionConfig normalizes away
// (byte-identical run), a permissive one changes nothing either, and a
// tight one actually rations the Oracle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/admission.hpp"
#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "workload/constraints.hpp"

namespace lagover {
namespace {

using Verdict = AdmissionController::Verdict;

AdmissionConfig tight(double rate_limit = 1.0, bool serve_stale = false) {
  AdmissionConfig config;
  config.rate_limit = rate_limit;
  config.window = 1.0;
  config.retry_after = 2.0;
  config.breaker_trip_windows = 2;
  config.breaker_cooldown = 5.0;
  config.breaker_close_windows = 2;
  config.serve_stale = serve_stale;
  return config;
}

TEST(AdmissionControllerTest, AdmitsWithinBudgetThenServesStale) {
  AdmissionController control(tight(2.0, /*serve_stale=*/true));
  EXPECT_EQ(control.on_query(0.0), Verdict::kAdmit);
  EXPECT_EQ(control.on_query(0.1), Verdict::kAdmit);
  EXPECT_EQ(control.on_query(0.2), Verdict::kStale);
  EXPECT_EQ(control.admitted(), 2u);
  EXPECT_EQ(control.stale_verdicts(), 1u);
  EXPECT_EQ(control.rejected(), 0u);
}

TEST(AdmissionControllerTest, RejectsOutrightWithoutStaleServing) {
  AdmissionController control(tight(1.0, /*serve_stale=*/false));
  EXPECT_EQ(control.on_query(0.0), Verdict::kAdmit);
  EXPECT_EQ(control.on_query(0.1), Verdict::kReject);
  EXPECT_EQ(control.rejected(), 1u);
  EXPECT_EQ(control.stale_verdicts(), 0u);
}

TEST(AdmissionControllerTest, WindowRollRestoresTheBudget) {
  AdmissionController control(tight());
  EXPECT_EQ(control.on_query(0.0), Verdict::kAdmit);
  EXPECT_EQ(control.on_query(0.1), Verdict::kReject);
  // The next unit-time window starts with a fresh budget; one lone
  // saturated window must not trip a breaker that needs two.
  EXPECT_EQ(control.on_query(1.0), Verdict::kAdmit);
  EXPECT_EQ(control.breaker_trips(), 0u);
}

TEST(AdmissionControllerTest, BreakerTripsAfterConsecutiveSaturation) {
  AdmissionController control(tight());
  // Saturate windows [0,1) and [1,2): streak reaches trip threshold 2
  // when the roll into window 2 closes them.
  control.on_query(0.0);
  control.on_query(0.1);
  control.on_query(1.0);
  control.on_query(1.1);
  EXPECT_EQ(control.breaker_trips(), 0u);
  EXPECT_EQ(control.on_query(2.0), Verdict::kReject);
  EXPECT_EQ(control.breaker_trips(), 1u);
  EXPECT_TRUE(control.open(2.5));
  EXPECT_EQ(control.on_query(2.5), Verdict::kReject);
}

TEST(AdmissionControllerTest, HalfOpenClosesAfterCleanWindows) {
  AdmissionController control(tight());
  control.on_query(0.0);
  control.on_query(0.1);
  control.on_query(1.0);
  control.on_query(1.1);
  control.on_query(2.0);  // trips
  ASSERT_EQ(control.breaker_trips(), 1u);
  // Past the cooldown the breaker half-opens and probe traffic flows.
  EXPECT_FALSE(control.open(7.5));
  EXPECT_EQ(control.on_query(7.5), Verdict::kAdmit);
  // Two consecutive clean windows close it for good.
  EXPECT_EQ(control.on_query(8.5), Verdict::kAdmit);
  EXPECT_EQ(control.on_query(9.5), Verdict::kAdmit);
  EXPECT_EQ(control.breaker_closes(), 1u);
  EXPECT_FALSE(control.open(9.6));
}

TEST(AdmissionControllerTest, HalfOpenRetripsOnRenewedSaturation) {
  AdmissionController control(tight());
  control.on_query(0.0);
  control.on_query(0.1);
  control.on_query(1.0);
  control.on_query(1.1);
  control.on_query(2.0);  // trips, opened around t=2
  ASSERT_EQ(control.breaker_trips(), 1u);
  // The probe window saturates again: the crowd never left.
  control.on_query(7.2);
  control.on_query(7.4);
  control.on_query(8.5);  // roll closes the saturated probe window
  EXPECT_EQ(control.breaker_trips(), 2u);
  EXPECT_TRUE(control.open(8.6));
}

Population small_population(std::size_t peers, std::uint64_t seed) {
  WorkloadParams params;
  params.peers = peers;
  params.seed = seed;
  return generate_workload(WorkloadKind::kBiUnCorr, params);
}

TEST(AdmittedOracleTest, ServesStaleFromCacheWithoutRng) {
  const Population population = small_population(10, 3);
  Overlay overlay(population);
  double now = 0.0;
  auto control = std::make_shared<AdmissionController>(
      tight(1.0, /*serve_stale=*/true));
  AdmittedOracle oracle(make_oracle(OracleKind::kRandom), control,
                        [&now] { return now; });
  Rng rng(5);
  const auto fresh = oracle.sample(1, overlay, rng);
  ASSERT_TRUE(fresh.has_value());
  // Over budget in the same window: the cached partner serves and the
  // inner Oracle is not consulted (the RNG claim is checked separately
  // in StaleVerdictDrawsNoRng). The querier must differ from the cached
  // partner — a node is never a plausible answer to itself.
  const NodeId stale_querier = *fresh == 2 ? 3 : 2;
  const auto stale = oracle.sample(stale_querier, overlay, rng);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(*stale, *fresh);
  EXPECT_EQ(oracle.stale_served(), 1u);
}

TEST(AdmittedOracleTest, StaleVerdictDrawsNoRng) {
  const Population population = small_population(10, 3);
  Overlay overlay(population);
  double now = 0.0;
  auto control = std::make_shared<AdmissionController>(
      tight(1.0, /*serve_stale=*/true));
  AdmittedOracle oracle(make_oracle(OracleKind::kRandom), control,
                        [&now] { return now; });
  Rng rng_a(5);
  Rng rng_b(5);
  (void)oracle.sample(1, overlay, rng_a);  // admitted — draws
  (void)oracle.sample(2, overlay, rng_a);  // stale — must not draw
  // A twin stream that only performs the admitted draw stays in sync.
  AdmittedOracle twin(make_oracle(OracleKind::kRandom),
                      std::make_shared<AdmissionController>(
                          tight(1.0, /*serve_stale=*/true)),
                      [&now] { return now; });
  (void)twin.sample(1, overlay, rng_b);
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(AdmittedOracleTest, RejectionSetsPendingFlagOnce) {
  const Population population = small_population(10, 3);
  Overlay overlay(population);
  double now = 0.0;
  auto control = std::make_shared<AdmissionController>(
      tight(1.0, /*serve_stale=*/false));
  AdmittedOracle oracle(make_oracle(OracleKind::kRandom), control,
                        [&now] { return now; });
  Rng rng(5);
  EXPECT_TRUE(oracle.sample(1, overlay, rng).has_value());
  EXPECT_FALSE(oracle.consume_rejection());
  EXPECT_FALSE(oracle.sample(2, overlay, rng).has_value());
  EXPECT_TRUE(oracle.consume_rejection());
  EXPECT_FALSE(oracle.consume_rejection());  // reading clears it
}

std::vector<NodeId> parents_of(const Overlay& overlay) {
  std::vector<NodeId> parents;
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    parents.push_back(overlay.has_parent(id) ? overlay.parent(id) : kNoNode);
  return parents;
}

TEST(EngineAdmissionTest, EmptyConfigInstallsNothing) {
  EngineConfig config;
  config.seed = 7;
  Engine engine(small_population(30, 7), config);
  EXPECT_EQ(engine.admission(), nullptr);
  EXPECT_EQ(engine.admitted_oracle(), nullptr);
}

TEST(EngineAdmissionTest, PermissiveAdmissionIsByteIdenticalSync) {
  EngineConfig plain;
  plain.seed = 7;
  Engine baseline(small_population(30, 7), plain);
  const auto base_round = baseline.run_until_converged(400);

  // A limit no real query stream reaches: every query admits and passes
  // straight through, so the run must be byte-identical anyway.
  EngineConfig wired = plain;
  wired.admission.rate_limit = 1e9;
  Engine admitted(small_population(30, 7), wired);
  const auto wired_round = admitted.run_until_converged(400);

  EXPECT_EQ(base_round, wired_round);
  EXPECT_EQ(parents_of(baseline.overlay()), parents_of(admitted.overlay()));
  ASSERT_NE(admitted.admission(), nullptr);
  EXPECT_EQ(admitted.admission()->rejected(), 0u);
  EXPECT_EQ(admitted.admission()->stale_verdicts(), 0u);
}

TEST(EngineAdmissionTest, PermissiveAdmissionIsByteIdenticalAsync) {
  AsyncConfig plain;
  plain.seed = 11;
  AsyncEngine baseline(small_population(30, 11), plain);
  const double base_fraction = baseline.run_for(120.0);

  AsyncConfig wired = plain;
  wired.admission.rate_limit = 1e9;
  AsyncEngine admitted(small_population(30, 11), wired);
  const double wired_fraction = admitted.run_for(120.0);

  EXPECT_DOUBLE_EQ(base_fraction, wired_fraction);
  EXPECT_EQ(parents_of(baseline.overlay()), parents_of(admitted.overlay()));
}

TEST(EngineAdmissionTest, TightAdmissionRationsTheOracle) {
  AsyncConfig config;
  config.seed = 13;
  config.admission.rate_limit = 2.0;
  config.admission.window = 5.0;
  config.admission.serve_stale = true;
  AsyncEngine engine(small_population(40, 13), config);
  engine.run_for(150.0);
  ASSERT_NE(engine.admission(), nullptr);
  EXPECT_GT(engine.admission()->admitted(), 0u);
  // Forty orphans against two admits per five time units must overflow
  // the window — degraded service (stale/reject), not free rein.
  EXPECT_GT(engine.admission()->stale_verdicts() +
                engine.admission()->rejected(),
            0u);
}

}  // namespace
}  // namespace lagover
