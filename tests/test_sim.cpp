// Tests for the discrete-event kernel: ordering, cancellation, periodic
// timers, horizons.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace lagover {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilRespectsHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  const auto count = sim.run_until(5.0);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PeriodicTimerFiresRepeatedly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_periodic(1.0, [&] { ++fired; });
  sim.run_until(5.5);
  EXPECT_EQ(fired, 5);
}

TEST(SimulatorTest, PeriodicTimerCanCancelItself) {
  Simulator sim;
  int fired = 0;
  EventId id = 0;
  id = sim.schedule_periodic(1.0, [&] {
    if (++fired == 3) sim.cancel(id);
  });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step(10.0));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step(10.0));
  EXPECT_FALSE(sim.step(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

}  // namespace
}  // namespace lagover
