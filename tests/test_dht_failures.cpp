// Fault-tolerance tests for the Chord ring: fail-stop crashes, successor
// list failover, lookup retries across dead routes, and the DHT-backed
// directory oracle surviving directory-server failures.
#include <gtest/gtest.h>

#include <set>

#include "core/engine.hpp"
#include "dht/chord.hpp"
#include "dht/directory.hpp"
#include "workload/constraints.hpp"

namespace lagover::dht {
namespace {

ChordConfig fast_config() {
  ChordConfig config;
  config.stabilize_period = 0.5;
  config.fix_fingers_period = 0.25;
  config.rpc_timeout = 2.0;
  return config;
}

TEST(ChordFailureTest, RingHealsAfterSingleCrash) {
  ChordRing ring(8, fast_config(), 3);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.fail_node(3);
  EXPECT_EQ(ring.live_count(), 7u);
  EXPECT_FALSE(ring.ring_consistent());  // someone still points at 3
  EXPECT_TRUE(ring.run_until_stable(ring.simulator().now() + 300.0));
  // The predecessor of the dead node failed over via its successor list.
  std::uint64_t evictions = 0;
  for (std::size_t i = 0; i < ring.size(); ++i)
    evictions += ring.node(i).evicted_successors();
  EXPECT_GE(evictions, 1u);
}

TEST(ChordFailureTest, RingHealsAfterMultipleCrashes) {
  ChordRing ring(16, fast_config(), 5);
  ASSERT_TRUE(ring.run_until_stable(400.0));
  ring.fail_node(2);
  ring.fail_node(7);
  ring.fail_node(11);
  EXPECT_TRUE(ring.run_until_stable(ring.simulator().now() + 600.0));
  EXPECT_EQ(ring.live_count(), 13u);
}

TEST(ChordFailureTest, LookupsResolveAfterHeal) {
  ChordRing ring(12, fast_config(), 7);
  ASSERT_TRUE(ring.run_until_stable(400.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  ring.fail_node(4);
  ring.fail_node(9);
  ASSERT_TRUE(ring.run_until_stable(ring.simulator().now() + 600.0));
  ring.simulator().run_until(ring.simulator().now() + 100.0);

  for (int k = 0; k < 20; ++k) {
    const Key key = hash_string("post-failure-" + std::to_string(k));
    // Query from a live node.
    std::size_t from = k % 12;
    while (ring.node(from).crashed()) from = (from + 1) % 12;
    const auto [owner, hops] = ring.lookup_sync(from, key);
    ASSERT_GE(hops, 0) << "lookup failed after heal";
    EXPECT_FALSE(ring.node(owner).crashed());
    // Exactly one live node owns the key.
    std::set<Address> owners;
    for (std::size_t i = 0; i < ring.size(); ++i)
      if (!ring.node(i).crashed() && ring.node(i).owns(key))
        owners.insert(ring.node(i).address());
    EXPECT_EQ(owners.size(), 1u);
    EXPECT_EQ(*owners.begin(), owner);
  }
}

TEST(ChordFailureTest, LookupDuringOutageRetriesOrFails) {
  ChordRing ring(8, fast_config(), 9);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);

  // Crash half the ring and immediately issue lookups: each must either
  // resolve to a live owner (after retries, once routing heals) or
  // report failure — never hang.
  ring.fail_node(1);
  ring.fail_node(3);
  ring.fail_node(5);
  int resolved = 0;
  for (int k = 0; k < 10; ++k) {
    const auto [owner, hops] =
        ring.lookup_sync(0, hash_string("outage-" + std::to_string(k)));
    (void)owner;  // mid-outage answers may cite a not-yet-evicted corpse
    if (hops >= 0) ++resolved;
  }
  // With stabilization running during the retries, most should resolve.
  EXPECT_GE(resolved, 5);
}

TEST(ChordFailureTest, CrashedNodeStopsAnswering) {
  ChordRing ring(4, fast_config(), 11);
  ASSERT_TRUE(ring.run_until_stable(200.0));
  ring.fail_node(2);
  EXPECT_TRUE(ring.node(2).crashed());
  // Messages to it are dropped by the network.
  const auto dropped_before = ring.network().dropped();
  ring.simulator().run_until(ring.simulator().now() + 20.0);
  EXPECT_GT(ring.network().dropped(), dropped_before);
}

TEST(ChordReplicationTest, ReplicasStoredOnSuccessors) {
  ChordConfig config = fast_config();
  config.replication_factor = 3;
  ChordRing ring(8, config, 21);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("replicated");
  ring.put_sync(0, key, "payload");
  ring.simulator().run_until(ring.simulator().now() + 20.0);

  std::size_t holders = 0;
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (ring.node(i).storage().count(key) != 0) ++holders;
  EXPECT_EQ(holders, 3u);
}

TEST(ChordReplicationTest, ValueSurvivesOwnerCrash) {
  ChordConfig config = fast_config();
  config.replication_factor = 3;
  ChordRing ring(8, config, 23);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("durable");
  ring.put_sync(1, key, "survives");
  ring.simulator().run_until(ring.simulator().now() + 20.0);

  const auto [owner, hops] = ring.lookup_sync(0, key);
  ASSERT_GE(hops, 0);
  ring.fail_node(owner);
  ASSERT_TRUE(ring.run_until_stable(ring.simulator().now() + 400.0));
  ring.simulator().run_until(ring.simulator().now() + 100.0);

  std::size_t from = 0;
  while (ring.node(from).crashed()) ++from;
  const auto values = ring.get_sync(from, key);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "survives");
}

TEST(ChordReplicationTest, RemovePropagatesToReplicas) {
  ChordConfig config = fast_config();
  config.replication_factor = 3;
  ChordRing ring(8, config, 25);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("to-remove");
  ring.put_sync(2, key, "gone");
  ring.simulator().run_until(ring.simulator().now() + 20.0);
  ring.node(5).remove(key, "gone");
  ring.simulator().run_until(ring.simulator().now() + 30.0);
  for (std::size_t i = 0; i < ring.size(); ++i)
    EXPECT_EQ(ring.node(i).storage().count(key), 0u) << "node " << i;
}

TEST(ChordReplicationTest, PeriodicReReplicationRefreshesNewSuccessors) {
  // After the original replica holders crash, the owner's periodic
  // re-replication must copy values to the NEW successors.
  ChordConfig config = fast_config();
  config.replication_factor = 2;
  config.replicate_every_stabilizes = 2;
  ChordRing ring(8, config, 27);
  ASSERT_TRUE(ring.run_until_stable(300.0));
  ring.simulator().run_until(ring.simulator().now() + 50.0);
  const Key key = hash_string("refresh");
  ring.put_sync(3, key, "copied");
  ring.simulator().run_until(ring.simulator().now() + 20.0);

  const auto [owner, hops] = ring.lookup_sync(0, key);
  ASSERT_GE(hops, 0);
  // Crash the replica holder (owner's successor), not the owner.
  const Address replica_holder = ring.node(owner).successor();
  ring.fail_node(replica_holder);
  ASSERT_TRUE(ring.run_until_stable(ring.simulator().now() + 400.0));
  ring.simulator().run_until(ring.simulator().now() + 100.0);

  // The value must again exist on 2 live nodes.
  std::size_t holders = 0;
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (!ring.node(i).crashed() && ring.node(i).storage().count(key) != 0)
      ++holders;
  EXPECT_GE(holders, 2u);
}

TEST(ChordFailureTest, DirectoryOracleSurvivesServerCrash) {
  // The engine keeps converging with a DHT-backed oracle even when a
  // directory server crashes mid-construction: publishes and queries
  // route around it after failover, and the registry (held in memory by
  // the adapter at refresh time) is re-pushed on the next cycle.
  WorkloadParams params;
  params.peers = 30;
  params.seed = 13;
  EngineConfig config;
  config.algorithm = AlgorithmKind::kHybrid;
  config.seed = 13;
  Engine engine(generate_workload(WorkloadKind::kBiUnCorr, params), config);
  DhtOracleConfig oracle_config;
  oracle_config.ring_size = 6;
  oracle_config.refresh_every_queries = 8;
  oracle_config.chord = fast_config();
  auto oracle = std::make_unique<DhtDirectoryOracle>(
      OracleKind::kRandomDelay, oracle_config);
  auto* raw = oracle.get();
  engine.set_oracle(std::move(oracle));

  for (int round = 0; round < 10; ++round) engine.run_round();
  raw->fail_directory_server(raw->registry_owner());
  const auto converged = engine.run_until_converged(2000);
  ASSERT_TRUE(converged.has_value());
}

}  // namespace
}  // namespace lagover::dht
