// Tests for the deterministic RNG utilities.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace lagover {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBound)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / static_cast<int>(kBound) * 0.9);
    EXPECT_LT(c, kSamples / static_cast<int>(kBound) * 1.1);
  }
}

TEST(RngTest, UniformIntCoversClosedRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Uniform01InHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(21);
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kTrials, 2.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(RngTest, SampleIndicesAreDistinct) {
  Rng rng(3);
  const auto sample = rng.sample_indices(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (auto idx : sample) EXPECT_LT(idx, 20u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(55);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_again(55);
  parent_again.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == parent()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, SplitMix64KnownValues) {
  // SplitMix64 reference: seed 0 produces this well-known first output.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(RngTest, PickReturnsElementFromVector) {
  Rng rng(77);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace lagover
