// Structural metrics of a LagOver snapshot: depth and slack
// distributions, fanout utilization, and dissemination-tree shape.
// Used by the benches to report *why* one configuration beats another
// (e.g. hybrid's shallower trees under BiCorr).
#pragma once

#include <cstddef>
#include <vector>

#include "core/overlay.hpp"

namespace lagover {

struct TreeMetrics {
  std::size_t online = 0;
  std::size_t connected = 0;        ///< nodes with Root() == source
  std::size_t satisfied = 0;
  std::size_t detached_groups = 0;  ///< parentless roots other than source
  std::size_t source_children = 0;  ///< direct pollers (source load proxy)

  int max_depth = 0;        ///< over connected nodes
  double mean_depth = 0.0;  ///< over connected nodes
  /// depth_histogram[d] = number of connected nodes at depth d.
  std::vector<std::size_t> depth_histogram;

  /// Slack = l_i - DelayAt(i) over connected nodes; negative = violated.
  int min_slack = 0;
  double mean_slack = 0.0;

  /// Used child slots / total fanout, over connected non-leaf-capacity
  /// nodes (how much of the donated capacity the tree consumes).
  double fanout_utilization = 0.0;
};

TreeMetrics compute_tree_metrics(const Overlay& overlay);

}  // namespace lagover
