// Recovery instrumentation for chaos experiments: samples the overlay
// on a fixed cadence and, against a FaultPlan, derives per-window
// damage (peak orphans / constraint violations) and the
// time-to-reconvergence after each fault window closes. Engine
// agnostic: the async engine drives sample() from a periodic event, the
// synchronous engine once per round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/construction_core.hpp"
#include "core/overlay.hpp"
#include "fault/fault_plan.hpp"
#include "stats/timeseries.hpp"

namespace lagover {

class RecoveryRecorder {
 public:
  /// Borrows the overlay (must outlive the recorder).
  RecoveryRecorder(const Overlay& overlay, fault::FaultPlan plan);

  // Subscribed to a trace bus; moving would dangle the captured `this`.
  RecoveryRecorder(const RecoveryRecorder&) = delete;
  RecoveryRecorder& operator=(const RecoveryRecorder&) = delete;

  ~RecoveryRecorder();

  /// Subscribes to an engine's trace bus to count fault-related events
  /// (crashes, suspicions, fences). Pure counting: the recovery math
  /// stays driven exclusively by sample(), so results are identical
  /// with or without a subscription. The bus must outlive the recorder
  /// or a later unsubscribe() call.
  void subscribe(TraceBus& bus);
  void unsubscribe();

  /// Crash / suspicion / fence trace events observed via subscribe().
  std::uint64_t fault_events() const noexcept { return fault_events_; }

  /// Records one observation at time t: online orphan roots, online
  /// attached nodes violating their latency constraint, and the
  /// satisfied fraction.
  void sample(double t);

  const TimeSeries& orphan_series() const noexcept { return orphans_; }
  const TimeSeries& violation_series() const noexcept { return violations_; }
  const TimeSeries& satisfied_series() const noexcept { return satisfied_; }

  /// Damage and recovery per fault window, derived from the samples.
  struct WindowRecovery {
    std::size_t window = 0;          ///< index into plan().windows()
    double window_end = 0.0;
    std::size_t peak_orphans = 0;    ///< max during [start, end)
    std::size_t peak_violations = 0;
    bool recovered = false;
    /// First sample time >= window end with zero orphans, zero
    /// violations, and full satisfaction; meaningful when recovered.
    double recovered_at = 0.0;
    /// recovered_at - window_end (the headline metric).
    double time_to_reconverge = 0.0;
  };
  std::vector<WindowRecovery> window_recoveries() const;

  /// Time from the END of the LAST fault window to the first fully
  /// healthy sample after it; negative when the overlay never healed
  /// within the sampled horizon.
  double final_time_to_reconverge() const;

  /// Was the overlay fully healthy (no orphans, no violations, all
  /// satisfied) at the last sample?
  bool healthy_at_end() const;

  const fault::FaultPlan& plan() const noexcept { return plan_; }

 private:
  bool healthy_at(std::size_t sample_index) const;

  const Overlay& overlay_;
  fault::FaultPlan plan_;
  TraceBus* bus_ = nullptr;
  TraceBus::SubscriptionId subscription_ = 0;
  std::uint64_t fault_events_ = 0;
  TimeSeries orphans_;
  TimeSeries violations_;
  TimeSeries satisfied_;
};

}  // namespace lagover
