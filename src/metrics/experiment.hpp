// Experiment harness shared by the bench binaries: runs repeated
// construction trials (fresh seeds per trial), collects convergence
// rounds and failure counts, and reports the median-of-N statistic the
// paper uses (Section 5.1: "experiments were repeated 5 times and the
// median performance was chosen").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "stats/sample.hpp"
#include "stats/timeseries.hpp"

namespace lagover {

/// One construction run, described declaratively so trials can rebuild
/// fresh engines.
struct ExperimentSpec {
  /// Builds the (trial-specific) population; receives the trial seed.
  std::function<Population(std::uint64_t seed)> population;
  /// Engine parameters; `seed` is overridden per trial.
  EngineConfig config;
  /// Optional churn model factory (fresh per trial); null = no churn.
  std::function<std::unique_ptr<ChurnModel>()> churn;
  int trials = 5;
  Round max_rounds = 5000;
  std::uint64_t base_seed = 1;
  /// Record the satisfied-fraction time series of each trial.
  bool record_series = false;
  /// With churn the overlay is never "done"; run exactly max_rounds and
  /// measure the first round reaching full satisfaction plus steady-state
  /// behaviour instead of stopping at convergence.
  bool run_full_horizon = false;
};

struct TrialResult {
  bool converged = false;
  Round convergence_round = 0;  ///< meaningful when converged
  double final_fraction = 0.0;
  std::uint64_t maintenance_detaches = 0;
  std::uint64_t interactions = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t oracle_empty = 0;
  TimeSeries fraction_series;  ///< populated when record_series
};

struct ExperimentResult {
  std::vector<TrialResult> trials;
  Sample convergence_rounds;  ///< converged trials only
  int failures = 0;           ///< trials that never fully satisfied

  /// Median convergence round over converged trials; negative when every
  /// trial failed (the benches print "DNC" — did not converge).
  double median_rounds() const;
  double min_rounds() const;
  double max_rounds_observed() const;
  bool any_converged() const { return !convergence_rounds.empty(); }
};

ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Formats a median cell: the number, or "DNC" when no trial converged,
/// with "(k/n)" appended when only some trials converged.
std::string format_convergence_cell(const ExperimentResult& result);

}  // namespace lagover
