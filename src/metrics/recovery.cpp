#include "metrics/recovery.hpp"

#include <algorithm>

namespace lagover {

RecoveryRecorder::RecoveryRecorder(const Overlay& overlay,
                                   fault::FaultPlan plan)
    : overlay_(overlay), plan_(std::move(plan)) {}

RecoveryRecorder::~RecoveryRecorder() { unsubscribe(); }

void RecoveryRecorder::subscribe(TraceBus& bus) {
  unsubscribe();
  bus_ = &bus;
  subscription_ = bus.subscribe([this](const TraceEvent& event) {
    switch (event.type) {
      case TraceEventType::kCrash:
      case TraceEventType::kParentLost:
      case TraceEventType::kEpochFenced:
        ++fault_events_;
        break;
      default:
        break;
    }
  });
}

void RecoveryRecorder::unsubscribe() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
  subscription_ = 0;
}

void RecoveryRecorder::sample(double t) {
  std::size_t orphans = 0;
  std::size_t violations = 0;
  for (NodeId id = 1; id < overlay_.node_count(); ++id) {
    if (!overlay_.online(id)) continue;
    if (!overlay_.has_parent(id)) {
      ++orphans;
    } else if (overlay_.delay_at(id) > overlay_.latency_of(id)) {
      ++violations;
    }
  }
  orphans_.add(t, static_cast<double>(orphans));
  violations_.add(t, static_cast<double>(violations));
  satisfied_.add(t, overlay_.satisfied_fraction());
}

bool RecoveryRecorder::healthy_at(std::size_t i) const {
  return orphans_.value_at(i) == 0.0 && violations_.value_at(i) == 0.0 &&
         satisfied_.value_at(i) >= 1.0;
}

std::vector<RecoveryRecorder::WindowRecovery>
RecoveryRecorder::window_recoveries() const {
  std::vector<WindowRecovery> out;
  const auto& windows = plan_.windows();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    WindowRecovery r;
    r.window = w;
    r.window_end = windows[w].end;
    for (std::size_t i = 0; i < orphans_.size(); ++i) {
      const double t = orphans_.time_at(i);
      if (windows[w].contains(t)) {
        r.peak_orphans = std::max(
            r.peak_orphans, static_cast<std::size_t>(orphans_.value_at(i)));
        r.peak_violations = std::max(
            r.peak_violations,
            static_cast<std::size_t>(violations_.value_at(i)));
      }
      if (!r.recovered && t >= windows[w].end && healthy_at(i)) {
        r.recovered = true;
        r.recovered_at = t;
        r.time_to_reconverge = t - windows[w].end;
      }
    }
    out.push_back(r);
  }
  return out;
}

double RecoveryRecorder::final_time_to_reconverge() const {
  const double last_end = plan_.last_end();
  for (std::size_t i = 0; i < orphans_.size(); ++i) {
    const double t = orphans_.time_at(i);
    if (t >= last_end && healthy_at(i)) return t - last_end;
  }
  return -1.0;
}

bool RecoveryRecorder::healthy_at_end() const {
  return !orphans_.empty() && healthy_at(orphans_.size() - 1);
}

}  // namespace lagover
