#include "metrics/experiment.hpp"

#include "common/error.hpp"
#include "telemetry/perf.hpp"

namespace lagover {

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  const telemetry::PerfPhase perf_phase("construction");
  LAGOVER_EXPECTS(spec.population != nullptr);
  LAGOVER_EXPECTS(spec.trials >= 1);

  ExperimentResult result;
  for (int trial = 0; trial < spec.trials; ++trial) {
    const std::uint64_t seed =
        spec.base_seed + static_cast<std::uint64_t>(trial) * 7919;
    EngineConfig config = spec.config;
    config.seed = seed;

    Engine engine(spec.population(seed), config);
    if (spec.churn) engine.set_churn(spec.churn());

    TrialResult trial_result;
    bool reached_full = false;
    Round reached_round = 0;
    for (Round r = 0; r < spec.max_rounds; ++r) {
      const RoundStats stats = engine.run_round();
      if (spec.record_series)
        trial_result.fraction_series.add(static_cast<double>(stats.round),
                                         stats.satisfied_fraction);
      if (!reached_full && engine.overlay().all_satisfied() &&
          engine.overlay().online_count() > 0) {
        reached_full = true;
        reached_round = stats.round;
        if (!spec.run_full_horizon) break;
      }
    }

    trial_result.converged = reached_full;
    trial_result.convergence_round = reached_round;
    trial_result.final_fraction = engine.overlay().satisfied_fraction();
    trial_result.maintenance_detaches = engine.maintenance_detaches();
    trial_result.interactions = engine.protocol().counters().interactions;
    trial_result.oracle_queries = engine.oracle().stats().queries;
    trial_result.oracle_empty = engine.oracle().stats().empty_results;

    if (reached_full)
      result.convergence_rounds.add(static_cast<double>(reached_round));
    else
      ++result.failures;
    result.trials.push_back(std::move(trial_result));
  }
  return result;
}

double ExperimentResult::median_rounds() const {
  if (convergence_rounds.empty()) return -1.0;
  return convergence_rounds.median();
}

double ExperimentResult::min_rounds() const {
  if (convergence_rounds.empty()) return -1.0;
  return convergence_rounds.min();
}

double ExperimentResult::max_rounds_observed() const {
  if (convergence_rounds.empty()) return -1.0;
  return convergence_rounds.max();
}

std::string format_convergence_cell(const ExperimentResult& result) {
  if (!result.any_converged()) return "DNC";
  std::string cell = std::to_string(
      static_cast<long long>(result.median_rounds() + 0.5));
  if (result.failures > 0) {
    const auto total = result.trials.size();
    cell += " (" + std::to_string(total - static_cast<std::size_t>(
                                              result.failures)) +
            "/" + std::to_string(total) + ")";
  }
  return cell;
}

}  // namespace lagover
