#include "metrics/tree_metrics.hpp"

#include <algorithm>

namespace lagover {

TreeMetrics compute_tree_metrics(const Overlay& overlay) {
  TreeMetrics metrics;
  metrics.online = overlay.online_count();
  metrics.satisfied = overlay.satisfied_count();
  metrics.source_children = overlay.children(kSourceId).size();

  long depth_sum = 0;
  long slack_sum = 0;
  bool first_slack = true;
  long capacity_total = 0;
  long capacity_used = 0;

  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id)) continue;
    if (!overlay.has_parent(id)) ++metrics.detached_groups;
    if (!overlay.connected(id)) continue;
    ++metrics.connected;
    const Delay depth = overlay.delay_at(id);
    depth_sum += depth;
    metrics.max_depth = std::max(metrics.max_depth, depth);
    if (static_cast<std::size_t>(depth) >= metrics.depth_histogram.size())
      metrics.depth_histogram.resize(static_cast<std::size_t>(depth) + 1, 0);
    ++metrics.depth_histogram[static_cast<std::size_t>(depth)];

    const int slack = overlay.latency_of(id) - depth;
    slack_sum += slack;
    if (first_slack || slack < metrics.min_slack) {
      metrics.min_slack = slack;
      first_slack = false;
    }

    capacity_total += overlay.fanout_of(id);
    capacity_used += static_cast<long>(overlay.children(id).size());
  }

  if (metrics.connected > 0) {
    metrics.mean_depth =
        static_cast<double>(depth_sum) / static_cast<double>(metrics.connected);
    metrics.mean_slack =
        static_cast<double>(slack_sum) / static_cast<double>(metrics.connected);
  }
  if (capacity_total > 0)
    metrics.fanout_utilization = static_cast<double>(capacity_used) /
                                 static_cast<double>(capacity_total);
  return metrics;
}

}  // namespace lagover
