// Failure-detection / failover instrumentation for the health layer:
// consumes the construction trace (TraceEvent) and derives
//
//   * detection latency — crash of a parent -> first orphan-loop
//     activity of each child it orphaned,
//   * orphan time       — suspicion / crash-orphaning -> re-attach,
//     the headline metric bench_failover sweeps across detection
//     policies,
//   * false-positive rate — suspicions (kParentLost) raised while the
//     suspected parent was in fact still online (message loss, not
//     death),
//   * fence / failover counters.
//
// Engine agnostic: install `recorder.on_trace` (wrapped in a lambda) as
// the engine's trace observer. Borrows the overlay for ground truth —
// kCrash is emitted BEFORE the structural change, so the crashed node's
// children are still visible when the recorder snapshots them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/construction_core.hpp"
#include "core/overlay.hpp"
#include "stats/sample.hpp"

namespace lagover::metrics {

class FailoverRecorder {
 public:
  /// Borrows the overlay (must outlive the recorder).
  explicit FailoverRecorder(const Overlay& overlay);

  // Subscribed to a trace bus; moving would dangle the captured `this`.
  FailoverRecorder(const FailoverRecorder&) = delete;
  FailoverRecorder& operator=(const FailoverRecorder&) = delete;

  ~FailoverRecorder();

  /// Subscribes on_trace to an engine's trace bus (the preferred
  /// hookup: other consumers can listen concurrently). The bus must
  /// outlive the recorder or a later unsubscribe() call.
  void subscribe(TraceBus& bus);
  void unsubscribe();

  /// Feed every TraceEvent of the run, in emission order.
  void on_trace(const TraceEvent& event);

  /// Time from a parent crash to each orphaned child's first subsequent
  /// orphan-loop activity (its own discovery that the parent is gone).
  const Sample& detection_latency() const noexcept {
    return detection_latency_;
  }

  /// Time each suspicion- or crash-orphaned node spent parentless
  /// before re-attaching (anywhere).
  const Sample& orphan_time() const noexcept { return orphan_time_; }

  std::uint64_t crashes() const noexcept { return crashes_; }
  /// kParentLost + kEpochFenced events (the node acted on a suspicion).
  std::uint64_t suspicions() const noexcept { return suspicions_; }
  /// Suspicions raised while the suspected parent was still online.
  std::uint64_t false_suspicions() const noexcept {
    return false_suspicions_;
  }
  std::uint64_t fences() const noexcept { return fences_; }
  std::uint64_t failover_attaches() const noexcept {
    return failover_attaches_;
  }
  /// Completed crash-to-discovery measurements.
  std::uint64_t detections() const noexcept { return detections_; }

  /// false_suspicions / suspicions (0 when no suspicion fired).
  double false_positive_rate() const noexcept;

 private:
  void start_orphan(NodeId id, double when);
  void end_orphan(NodeId id, double when);
  void clear_node(NodeId id);

  static constexpr double kIdle = -1.0;

  const Overlay& overlay_;
  TraceBus* bus_ = nullptr;
  TraceBus::SubscriptionId subscription_ = 0;
  Sample detection_latency_;
  Sample orphan_time_;
  std::uint64_t crashes_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::uint64_t fences_ = 0;
  std::uint64_t failover_attaches_ = 0;
  std::uint64_t detections_ = 0;
  /// Per node: time its current fault-caused orphan period began
  /// (kIdle = not in one).
  std::vector<double> orphan_since_;
  /// Per node: crash time of its late parent, until the node's first
  /// own orphan-loop event completes the detection measurement.
  std::vector<double> detect_since_;
};

}  // namespace lagover::metrics
