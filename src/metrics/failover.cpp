#include "metrics/failover.hpp"

namespace lagover::metrics {

FailoverRecorder::FailoverRecorder(const Overlay& overlay)
    : overlay_(overlay),
      orphan_since_(overlay.node_count(), kIdle),
      detect_since_(overlay.node_count(), kIdle) {}

FailoverRecorder::~FailoverRecorder() { unsubscribe(); }

void FailoverRecorder::subscribe(TraceBus& bus) {
  unsubscribe();
  bus_ = &bus;
  subscription_ =
      bus.subscribe([this](const TraceEvent& event) { on_trace(event); });
}

void FailoverRecorder::unsubscribe() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
  subscription_ = 0;
}

void FailoverRecorder::start_orphan(NodeId id, double when) {
  if (orphan_since_[id] == kIdle) orphan_since_[id] = when;
}

void FailoverRecorder::end_orphan(NodeId id, double when) {
  if (orphan_since_[id] == kIdle) return;
  orphan_time_.add(when - orphan_since_[id]);
  orphan_since_[id] = kIdle;
}

void FailoverRecorder::clear_node(NodeId id) {
  orphan_since_[id] = kIdle;
  detect_since_[id] = kIdle;
}

void FailoverRecorder::on_trace(const TraceEvent& event) {
  const NodeId subject = event.subject;
  const double now = event.when;
  switch (event.type) {
    case TraceEventType::kCrash:
      ++crashes_;
      // Emitted before set_offline: the children the crash is about to
      // orphan are still attached to the subject. Each starts an orphan
      // period now (the ground truth) and a detection measurement that
      // completes at its first own orphan-loop activity.
      for (const NodeId child : overlay_.children(subject)) {
        start_orphan(child, now);
        if (detect_since_[child] == kIdle) detect_since_[child] = now;
      }
      // The crashed node's own pending measurements die with it.
      clear_node(subject);
      return;
    case TraceEventType::kParentLost:
    case TraceEventType::kEpochFenced:
      ++suspicions_;
      if (event.type == TraceEventType::kEpochFenced) ++fences_;
      // The suspected parent being alive right now means the silence
      // was message loss, not death: a false positive.
      if (event.partner != kNoNode && overlay_.online(event.partner))
        ++false_suspicions_;
      start_orphan(subject, now);
      return;
    case TraceEventType::kChurnLeave:
      clear_node(subject);
      return;
    case TraceEventType::kChurnJoin:
    case TraceEventType::kRejoin:
      // A new incarnation: its previous life's measurements are void.
      clear_node(subject);
      return;
    case TraceEventType::kFailoverAttach:
      ++failover_attaches_;
      break;  // falls through to the generic orphan-activity handling
    default:
      break;
  }

  // Any orphan-loop event by a node with a pending detection
  // measurement is its moment of discovery.
  if (detect_since_[subject] != kIdle) {
    detection_latency_.add(now - detect_since_[subject]);
    detect_since_[subject] = kIdle;
    ++detections_;
  }
  // A successful (re-)attachment ends the orphan period.
  if (event.attached) end_orphan(subject, now);
}

double FailoverRecorder::false_positive_rate() const noexcept {
  if (suspicions_ == 0) return 0.0;
  return static_cast<double>(false_suspicions_) /
         static_cast<double>(suspicions_);
}

}  // namespace lagover::metrics
