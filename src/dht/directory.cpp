#include "dht/directory.hpp"

#include "common/error.hpp"

namespace lagover::dht {

DhtDirectoryOracle::DhtDirectoryOracle(OracleKind kind, DhtOracleConfig config)
    : kind_(kind),
      config_(std::move(config)),
      feed_key_(hash_string(config_.feed_name)),
      entry_rng_(config_.seed ^ 0x0AC1EULL) {
  LAGOVER_EXPECTS(config_.ring_size >= 1);
  LAGOVER_EXPECTS(config_.refresh_every_queries >= 1);
  ring_ = std::make_unique<ChordRing>(config_.ring_size, config_.chord,
                                      config_.seed);
  const bool stable = ring_->run_until_stable(/*horizon=*/500.0);
  LAGOVER_ASSERT_MSG(stable, "directory ring failed to stabilize");
  registry_owner_ = ring_->lookup_sync(0, feed_key_).first;
}

DhtDirectoryOracle::~DhtDirectoryOracle() = default;

void DhtDirectoryOracle::fail_directory_server(Address address) {
  LAGOVER_EXPECTS(address < ring_->size());
  ring_->fail_node(address);
}

int DhtDirectoryOracle::routed_hops(std::size_t entry_index, Key key) {
  // Enter through a live gateway (clients would retry another one).
  std::size_t entry = entry_index % ring_->size();
  for (std::size_t probe = 0; probe < ring_->size(); ++probe) {
    if (!ring_->node(entry).crashed()) break;
    entry = (entry + 1) % ring_->size();
  }
  if (ring_->node(entry).crashed()) return -1;  // whole ring down
  const auto [owner, hops] = ring_->lookup_sync(entry, key);
  if (hops >= 0) registry_owner_ = owner;
  return hops;
}

void DhtDirectoryOracle::refresh_registry(const Overlay& overlay) {
  ++costs_.refreshes;
  registry_.assign(overlay.node_count(), std::nullopt);
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!overlay.online(id)) continue;
    // Each consumer routes its record to the registry owner through a
    // random ring entry point (its "OpenDHT gateway").
    const auto entry =
        static_cast<std::size_t>(entry_rng_.next_below(ring_->size()));
    const int hops = routed_hops(entry, feed_key_);
    if (hops < 0) {
      // Routing failed mid-heal: this node stays invisible to the
      // directory until the next refresh cycle.
      ++failed_operations_;
      continue;
    }
    costs_.publish_hops.add(static_cast<double>(hops + 1));
    ++costs_.publishes;
    registry_[id] = Record{overlay.delay_at(id), overlay.free_fanout(id)};
  }
  costs_.ring_messages = ring_->network().total_messages();
}

std::optional<NodeId> DhtDirectoryOracle::sample_impl(NodeId querier,
                                                      const Overlay& overlay,
                                                      Rng& rng) {
  if (registry_.size() != overlay.node_count() ||
      ++queries_since_refresh_ >= config_.refresh_every_queries) {
    refresh_registry(overlay);
    queries_since_refresh_ = 0;
  }

  // The query itself is routed to the registry owner.
  const auto entry =
      static_cast<std::size_t>(entry_rng_.next_below(ring_->size()));
  const int hops = routed_hops(entry, feed_key_);
  costs_.ring_messages = ring_->network().total_messages();
  if (hops < 0) {
    // The directory was unreachable; the peer waits and retries later
    // (counts toward its construction timeout like any empty result).
    ++failed_operations_;
    return std::nullopt;
  }
  costs_.query_hops.add(static_cast<double>(hops + 1));
  ++costs_.queries;

  // Filter the *snapshot* records with the same semantics as the
  // idealized DirectoryOracle; staleness means a record may no longer
  // reflect the node's true delay or capacity — exactly the error a
  // real deployment exhibits between refreshes. Liveness (online) is
  // checked against truth: a dead partner would simply not answer.
  const Delay querier_latency = overlay.latency_of(querier);
  std::optional<NodeId> chosen;
  std::uint64_t seen = 0;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (id == querier || !overlay.online(id)) continue;
    const auto& record = registry_[id];
    if (!record.has_value()) continue;
    bool eligible = true;
    switch (kind_) {
      case OracleKind::kRandom:
        break;
      case OracleKind::kRandomCapacity:
        eligible = record->free_fanout > 0;
        break;
      case OracleKind::kRandomDelayCapacity:
        eligible = record->free_fanout > 0 && record->delay < querier_latency;
        break;
      case OracleKind::kRandomDelay:
        eligible = record->delay < querier_latency;
        break;
    }
    if (!eligible) continue;
    ++seen;
    if (rng.next_below(seen) == 0) chosen = id;
  }
  return chosen;
}

}  // namespace lagover::dht
