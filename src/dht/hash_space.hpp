// 64-bit circular identifier space for the Chord ring (consistent
// hashing). The paper suggests realizing the directory Oracles on a DHT
// service (OpenDHT); this is the identifier arithmetic that ring needs.
#pragma once

#include <cstdint>
#include <string>

namespace lagover::dht {

using Key = std::uint64_t;

/// Stable 64-bit hash of an arbitrary string (FNV-1a).
Key hash_string(const std::string& text);

/// Stable 64-bit hash of an integer (SplitMix64 finalizer).
Key hash_u64(std::uint64_t value);

/// True iff key lies in the half-open ring interval (from, to].
/// Handles wrap-around; an empty interval (from == to) spans the whole
/// ring (Chord's single-node case).
bool in_interval_open_closed(Key key, Key from, Key to);

/// True iff key lies in the open ring interval (from, to).
bool in_interval_open_open(Key key, Key from, Key to);

/// Clockwise distance from `from` to `to` on the ring.
Key clockwise_distance(Key from, Key to);

/// from + 2^k on the ring (finger-table targets).
Key finger_target(Key from, int k);

}  // namespace lagover::dht
