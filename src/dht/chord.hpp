// Message-passing Chord ring (Stoica et al.) over the simulated network:
// recursive find_successor routing via finger tables, periodic
// stabilization and finger repair, successor lists for fault tolerance,
// and a replicated key -> string multimap as the storage layer. It is
// the substrate under the DHT-backed directory Oracle (paper Section
// 2.1.4: "can also be realized if the nodes organize as a distributed
// hash table") and the FeedTree/Scribe baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "dht/hash_space.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace lagover::dht {

using net::Address;

// --- wire messages ----------------------------------------------------

struct FindSuccessorReq {
  std::uint64_t request_id;
  Key key;
  Address reply_to;
  int hops;
};
struct FindSuccessorResp {
  std::uint64_t request_id;
  Key key;
  Address owner;
  int hops;
};
struct GetPredecessorReq {};
struct GetPredecessorResp {
  bool has_predecessor;
  Address predecessor;
  std::vector<Address> successors;  ///< piggy-backed successor list
};
struct Notify {
  Address candidate;
};
struct Put {
  Key key;
  std::string value;
};
/// Replica copy: stored as-is, never re-replicated (prevents storms).
struct Replicate {
  Key key;
  std::string value;
};
struct Remove {
  Key key;
  std::string value;
};
struct GetReq {
  std::uint64_t request_id;
  Key key;
  Address reply_to;
};
struct GetResp {
  std::uint64_t request_id;
  Key key;
  std::vector<std::string> values;
};
struct Ping {};
struct Pong {};

using Message =
    std::variant<FindSuccessorReq, FindSuccessorResp, GetPredecessorReq,
                 GetPredecessorResp, Notify, Put, Replicate, Remove, GetReq,
                 GetResp, Ping, Pong>;

using ChordNetwork = net::Network<Message>;

// --- a single ring member ---------------------------------------------

struct ChordConfig {
  int finger_bits = 64;
  int successor_list_size = 4;
  double stabilize_period = 1.0;
  double fix_fingers_period = 0.5;
  /// Lookup retry timeout: a pending lookup is re-forwarded after this
  /// long without a response (routes through crashed nodes vanish).
  double rpc_timeout = 3.0;
  /// Retries before a lookup is reported failed (hops = -1).
  int max_lookup_attempts = 4;
  /// Consecutive unanswered stabilize probes before the successor is
  /// declared dead and the successor list fails over.
  int successor_miss_threshold = 2;
  /// Copies of each stored value: 1 = owner only; r > 1 additionally
  /// pushes replicas to the owner's first r-1 successors on every put,
  /// refreshed periodically so replicas survive membership changes.
  int replication_factor = 1;
  /// Every this many stabilize ticks, an owner re-pushes its owned keys
  /// to its current successors (no-op when replication_factor == 1).
  int replicate_every_stabilizes = 4;
};

/// One Chord node: owns its routing state and storage, reacts to
/// messages, and runs periodic stabilize / fix-fingers timers.
class ChordNode {
 public:
  ChordNode(Address address, ChordNetwork& network, const ChordConfig& config,
            std::uint64_t seed);

  Address address() const noexcept { return address_; }
  Key id() const noexcept { return id_; }
  Address successor() const;
  std::optional<Address> predecessor() const noexcept { return predecessor_; }
  const std::vector<Address>& successor_list() const noexcept {
    return successors_;
  }

  /// Bootstraps the ring: the first node creates, later nodes join via
  /// any existing member.
  void create();
  void join(Address bootstrap);

  /// Starts the periodic stabilize / fix-fingers timers.
  void start_timers();
  void stop_timers();

  /// Fail-stop crash: the node stops answering (deregistered from the
  /// network) and its timers stop. Its stored keys are lost; the ring
  /// heals around it via successor-list failover. Irreversible.
  void crash();
  bool crashed() const noexcept { return crashed_; }

  /// Asynchronous lookup: resolves the owner of `key`, reporting the
  /// route length in hops. On failure (all retries exhausted) the
  /// callback receives hops = -1 and the owner value is meaningless.
  using LookupCallback = std::function<void(Address owner, int hops)>;
  void lookup(Key key, LookupCallback callback);

  std::uint64_t lookup_failures() const noexcept { return lookup_failures_; }
  std::uint64_t evicted_successors() const noexcept {
    return evicted_successors_;
  }

  /// Storage operations routed to the key's owner.
  void put(Key key, std::string value);
  void remove(Key key, std::string value);
  using GetCallback = std::function<void(std::vector<std::string> values)>;
  void get(Key key, GetCallback callback);

  /// Local storage of this node (what the ring assigned to it).
  const std::map<Key, std::vector<std::string>>& storage() const noexcept {
    return storage_;
  }

  /// True iff this node believes `key` belongs to it.
  bool owns(Key key) const;

  /// Next hop this node would route a message for `key` to (itself when
  /// it owns the key). Exposes the routing decision so Scribe-style
  /// baselines can materialize reverse-path trees.
  Address route_next(Key key) const;

  void handle(Address from, const Message& message);

 private:
  struct PendingLookup {
    LookupCallback callback;
    Key key = 0;
    int attempts = 1;
    /// Fixed first hop (used by join, whose own routing state is empty).
    std::optional<Address> via;
  };

  void on_find_successor(const FindSuccessorReq& req);
  void forward_or_answer(FindSuccessorReq req);
  Address closest_preceding(Key key) const;
  void stabilize();
  void on_stabilize_reply(Address from, const GetPredecessorResp& resp);
  void check_predecessor();
  void fix_next_finger();
  void start_pending_lookup(std::uint64_t request_id);
  void on_lookup_timeout(std::uint64_t request_id);
  void evict_successor();
  void store_and_replicate(Key key, const std::string& value);
  void replicate_owned();

  Address address_;
  Key id_;
  ChordNetwork& network_;
  ChordConfig config_;
  Rng rng_;

  std::optional<Address> predecessor_;
  std::vector<Address> successors_;  ///< [0] is the successor; never empty
  std::vector<Address> fingers_;     ///< finger_bits entries
  std::map<Key, Address> finger_keys_;  // reserved for diagnostics
  int next_finger_ = 0;

  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, PendingLookup> pending_lookups_;
  std::map<std::uint64_t, GetCallback> pending_gets_;

  std::map<Key, std::vector<std::string>> storage_;

  EventId stabilize_timer_ = 0;
  EventId fingers_timer_ = 0;
  bool timers_running_ = false;
  bool crashed_ = false;

  // Failure-detection state.
  bool awaiting_stabilize_reply_ = false;
  Address awaited_successor_ = 0;
  int successor_misses_ = 0;
  bool awaiting_pong_ = false;
  Address pinged_predecessor_ = 0;
  int predecessor_misses_ = 0;
  std::uint64_t lookup_failures_ = 0;
  std::uint64_t evicted_successors_ = 0;
  int stabilizes_since_replication_ = 0;
};

// --- whole-ring harness -------------------------------------------------

/// Owns the simulator, network, and nodes of a complete ring; the unit
/// of deployment the oracle realizations and baselines build on.
class ChordRing {
 public:
  ChordRing(std::size_t node_count, ChordConfig config, std::uint64_t seed,
            std::unique_ptr<net::LatencyModel> latency = nullptr);

  Simulator& simulator() noexcept { return sim_; }
  ChordNetwork& network() noexcept { return network_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  ChordNode& node(std::size_t index);

  /// Runs the simulator until the ring is stabilized (successor cycle
  /// covers all *live* nodes and predecessors are consistent) or
  /// `horizon`. Returns true when stabilized.
  bool run_until_stable(SimTime horizon);

  /// Crashes the node at `index` (fail-stop); the ring heals via
  /// successor-list failover on subsequent stabilize rounds.
  void fail_node(std::size_t index);
  std::size_t live_count() const;

  /// Convenience synchronous lookup: issues the lookup from the given
  /// node and drives the simulator until it resolves. Returns
  /// (owner, hops).
  std::pair<Address, int> lookup_sync(std::size_t from_index, Key key);

  /// Synchronous storage helpers (drive the simulator until quiescent).
  void put_sync(std::size_t from_index, Key key, std::string value);
  std::vector<std::string> get_sync(std::size_t from_index, Key key);

  /// True iff the successor pointers of live nodes form one consistent
  /// cycle over exactly the live membership.
  bool ring_consistent() const;

 private:
  Simulator sim_;
  ChordNetwork network_;
  ChordConfig config_;
  std::vector<std::unique_ptr<ChordNode>> nodes_;
};

}  // namespace lagover::dht
