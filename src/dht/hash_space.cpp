#include "dht/hash_space.hpp"

#include "common/error.hpp"

namespace lagover::dht {

Key hash_string(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char ch : text) {
    hash ^= ch;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Key hash_u64(std::uint64_t value) {
  std::uint64_t z = value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool in_interval_open_closed(Key key, Key from, Key to) {
  if (from == to) return true;  // whole ring
  if (from < to) return key > from && key <= to;
  return key > from || key <= to;  // wrapped
}

bool in_interval_open_open(Key key, Key from, Key to) {
  if (from == to) return key != from;  // whole ring minus the endpoint
  if (from < to) return key > from && key < to;
  return key > from || key < to;  // wrapped
}

Key clockwise_distance(Key from, Key to) { return to - from; }

Key finger_target(Key from, int k) {
  LAGOVER_EXPECTS(k >= 0 && k < 64);
  return from + (Key{1} << k);
}

}  // namespace lagover::dht
