#include "dht/chord.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace lagover::dht {

ChordNode::ChordNode(Address address, ChordNetwork& network,
                     const ChordConfig& config, std::uint64_t seed)
    : address_(address),
      id_(hash_u64(address)),
      network_(network),
      config_(config),
      rng_(seed) {
  LAGOVER_EXPECTS(config.finger_bits > 0 && config.finger_bits <= 64);
  LAGOVER_EXPECTS(config.successor_list_size >= 1);
  successors_.assign(1, address_);
  fingers_.assign(static_cast<std::size_t>(config.finger_bits), address_);
  network_.register_node(address_,
                         [this](Address from, const Message& message) {
                           handle(from, message);
                         });
}

Address ChordNode::successor() const { return successors_.front(); }

void ChordNode::create() {
  predecessor_.reset();
  successors_.assign(1, address_);
}

void ChordNode::join(Address bootstrap) {
  predecessor_.reset();
  const std::uint64_t request_id = next_request_id_++;
  PendingLookup pending;
  pending.callback = [this](Address owner, int hops) {
    if (hops >= 0) successors_.front() = owner;
  };
  pending.key = id_;
  pending.via = bootstrap;
  pending_lookups_.emplace(request_id, std::move(pending));
  start_pending_lookup(request_id);
}

void ChordNode::start_timers() {
  if (timers_running_) return;
  timers_running_ = true;
  stabilize_timer_ = network_.simulator().schedule_periodic(
      config_.stabilize_period, [this] { stabilize(); });
  fingers_timer_ = network_.simulator().schedule_periodic(
      config_.fix_fingers_period, [this] { fix_next_finger(); });
}

void ChordNode::stop_timers() {
  if (!timers_running_) return;
  timers_running_ = false;
  network_.simulator().cancel(stabilize_timer_);
  network_.simulator().cancel(fingers_timer_);
}

bool ChordNode::owns(Key key) const {
  if (!predecessor_.has_value()) return successor() == address_;
  return in_interval_open_closed(key, hash_u64(*predecessor_), id_);
}

Address ChordNode::route_next(Key key) const {
  if (owns(key)) return address_;
  if (in_interval_open_closed(key, id_, hash_u64(successor())))
    return successor();
  const Address next = closest_preceding(key);
  return next == address_ ? successor() : next;
}

void ChordNode::lookup(Key key, LookupCallback callback) {
  LAGOVER_EXPECTS(callback != nullptr);
  if (owns(key)) {
    callback(address_, 0);
    return;
  }
  const std::uint64_t request_id = next_request_id_++;
  PendingLookup pending;
  pending.callback = std::move(callback);
  pending.key = key;
  pending_lookups_.emplace(request_id, std::move(pending));
  start_pending_lookup(request_id);
}

void ChordNode::start_pending_lookup(std::uint64_t request_id) {
  const auto it = pending_lookups_.find(request_id);
  LAGOVER_ASSERT(it != pending_lookups_.end());
  const PendingLookup& pending = it->second;
  const FindSuccessorReq request{request_id, pending.key, address_, 0};
  if (pending.via.has_value()) {
    network_.send(address_, *pending.via, request);
  } else {
    forward_or_answer(request);
  }
  network_.simulator().schedule_after(
      config_.rpc_timeout,
      [this, request_id] { on_lookup_timeout(request_id); });
}

void ChordNode::on_lookup_timeout(std::uint64_t request_id) {
  const auto it = pending_lookups_.find(request_id);
  if (it == pending_lookups_.end()) return;  // resolved in time
  if (crashed_) return;
  if (it->second.attempts < config_.max_lookup_attempts) {
    ++it->second.attempts;
    // Re-forward: routing state may have healed around a crashed hop.
    start_pending_lookup(request_id);
    return;
  }
  PendingLookup pending = std::move(it->second);
  pending_lookups_.erase(it);
  ++lookup_failures_;
  pending.callback(address_, -1);
}

void ChordNode::store_and_replicate(Key key, const std::string& value) {
  auto& values = storage_[key];
  if (std::find(values.begin(), values.end(), value) == values.end())
    values.push_back(value);
  // Push replicas to the first r-1 distinct successors.
  int copies = config_.replication_factor - 1;
  for (Address successor_address : successors_) {
    if (copies <= 0) break;
    if (successor_address == address_) continue;
    network_.send(address_, successor_address, Replicate{key, value},
                  value.size());
    --copies;
  }
}

void ChordNode::replicate_owned() {
  for (const auto& [key, values] : storage_) {
    if (!owns(key)) continue;
    int copies = config_.replication_factor - 1;
    for (Address successor_address : successors_) {
      if (copies <= 0) break;
      if (successor_address == address_) continue;
      for (const std::string& value : values)
        network_.send(address_, successor_address, Replicate{key, value},
                      value.size());
      --copies;
    }
  }
}

void ChordNode::put(Key key, std::string value) {
  lookup(key, [this, key, value = std::move(value)](Address owner, int hops) {
    if (hops < 0) return;  // route failed; caller may re-publish later
    if (owner == address_) {
      store_and_replicate(key, value);
      return;
    }
    network_.send(address_, owner, Put{key, value}, value.size());
  });
}

void ChordNode::remove(Key key, std::string value) {
  lookup(key, [this, key, value = std::move(value)](Address owner, int hops) {
    if (hops < 0) return;
    if (owner == address_) {
      handle(address_, Remove{key, value});
      return;
    }
    network_.send(address_, owner, Remove{key, value}, value.size());
  });
}

void ChordNode::get(Key key, GetCallback callback) {
  LAGOVER_EXPECTS(callback != nullptr);
  lookup(key, [this, key, callback = std::move(callback)](
                  Address owner, int hops) mutable {
    if (hops < 0) {
      callback({});  // unresolvable route reads as empty
      return;
    }
    if (owner == address_) {
      const auto it = storage_.find(key);
      callback(it == storage_.end() ? std::vector<std::string>{} : it->second);
      return;
    }
    const std::uint64_t request_id = next_request_id_++;
    pending_gets_[request_id] = std::move(callback);
    network_.send(address_, owner, GetReq{request_id, key, address_});
  });
}

Address ChordNode::closest_preceding(Key key) const {
  for (auto it = fingers_.rbegin(); it != fingers_.rend(); ++it) {
    const Address finger = *it;
    if (finger == address_) continue;
    if (in_interval_open_open(hash_u64(finger), id_, key)) return finger;
  }
  return successor();
}

void ChordNode::forward_or_answer(FindSuccessorReq req) {
  const Key successor_id = hash_u64(successor());
  if (in_interval_open_closed(req.key, id_, successor_id)) {
    network_.send(address_, req.reply_to,
                  FindSuccessorResp{req.request_id, req.key, successor(),
                                    req.hops});
    return;
  }
  Address next = closest_preceding(req.key);
  if (next == address_) next = successor();
  if (next == address_) {
    // Degenerate single-node ring: we own everything.
    network_.send(address_, req.reply_to,
                  FindSuccessorResp{req.request_id, req.key, address_,
                                    req.hops});
    return;
  }
  ++req.hops;
  network_.send(address_, next, req);
}

void ChordNode::on_find_successor(const FindSuccessorReq& req) {
  forward_or_answer(req);
}

void ChordNode::evict_successor() {
  const Address dead = successors_.front();
  successors_.erase(successors_.begin());
  if (successors_.empty()) successors_.push_back(address_);
  ++evicted_successors_;
  for (Address& finger : fingers_)
    if (finger == dead) finger = successor();
  if (predecessor_.has_value() && *predecessor_ == dead) predecessor_.reset();
}

void ChordNode::check_predecessor() {
  // Standard Chord check_predecessor: ping it each stabilize tick; after
  // enough unanswered pings, forget it so a live node's Notify can take
  // the slot (without this, rings never re-close after a crash).
  if (!predecessor_.has_value() || *predecessor_ == address_) {
    awaiting_pong_ = false;
    predecessor_misses_ = 0;
    return;
  }
  if (awaiting_pong_ && pinged_predecessor_ == *predecessor_) {
    if (++predecessor_misses_ >= config_.successor_miss_threshold) {
      predecessor_.reset();
      awaiting_pong_ = false;
      predecessor_misses_ = 0;
      return;
    }
  } else {
    predecessor_misses_ = 0;
  }
  awaiting_pong_ = true;
  pinged_predecessor_ = *predecessor_;
  network_.send(address_, *predecessor_, Ping{});
}

void ChordNode::stabilize() {
  check_predecessor();
  if (config_.replication_factor > 1 &&
      ++stabilizes_since_replication_ >= config_.replicate_every_stabilizes) {
    stabilizes_since_replication_ = 0;
    replicate_owned();
  }
  if (successor() == address_) {
    // We are our own successor. If someone notified us (ring of two
    // forming), adopt them as successor; a genuine single-node ring has
    // nothing to reconcile.
    if (predecessor_.has_value() && *predecessor_ != address_)
      successors_.front() = *predecessor_;
    return;
  }
  // Failure detection: the previous probe to this same successor is
  // still unanswered when the next stabilize tick arrives.
  if (awaiting_stabilize_reply_ && awaited_successor_ == successor()) {
    if (++successor_misses_ >= config_.successor_miss_threshold) {
      evict_successor();
      awaiting_stabilize_reply_ = false;
      successor_misses_ = 0;
      if (successor() == address_) return;
    }
  } else {
    successor_misses_ = 0;
  }
  awaiting_stabilize_reply_ = true;
  awaited_successor_ = successor();
  network_.send(address_, successor(), GetPredecessorReq{});
}

void ChordNode::on_stabilize_reply(Address from,
                                   const GetPredecessorResp& resp) {
  if (from != successor()) return;  // stale reply from an old successor
  awaiting_stabilize_reply_ = false;
  successor_misses_ = 0;
  if (resp.has_predecessor && resp.predecessor != address_) {
    const Key candidate_id = hash_u64(resp.predecessor);
    if (in_interval_open_open(candidate_id, id_, hash_u64(successor())))
      successors_.front() = resp.predecessor;
  }
  // Refresh the successor list with the successor's (piggy-backed) list.
  std::vector<Address> updated;
  updated.push_back(successor());
  for (Address a : resp.successors) {
    if (a == address_) continue;
    if (std::find(updated.begin(), updated.end(), a) != updated.end())
      continue;
    updated.push_back(a);
    if (static_cast<int>(updated.size()) >= config_.successor_list_size)
      break;
  }
  successors_ = std::move(updated);
  network_.send(address_, successor(), Notify{address_});
}

void ChordNode::fix_next_finger() {
  const int k = next_finger_;
  next_finger_ = (next_finger_ + 1) % config_.finger_bits;
  lookup(finger_target(id_, k), [this, k](Address owner, int hops) {
    if (hops >= 0) fingers_[static_cast<std::size_t>(k)] = owner;
  });
}

void ChordNode::crash() {
  if (crashed_) return;
  crashed_ = true;
  stop_timers();
  network_.deregister_node(address_);
  pending_lookups_.clear();
  pending_gets_.clear();
}

void ChordNode::handle(Address from, const Message& message) {
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, FindSuccessorReq>) {
          on_find_successor(msg);
        } else if constexpr (std::is_same_v<T, FindSuccessorResp>) {
          const auto it = pending_lookups_.find(msg.request_id);
          if (it != pending_lookups_.end()) {
            LookupCallback callback = std::move(it->second.callback);
            pending_lookups_.erase(it);
            callback(msg.owner, msg.hops);
          }
        } else if constexpr (std::is_same_v<T, GetPredecessorReq>) {
          network_.send(address_, from,
                        GetPredecessorResp{predecessor_.has_value(),
                                           predecessor_.value_or(0),
                                           successors_});
        } else if constexpr (std::is_same_v<T, GetPredecessorResp>) {
          on_stabilize_reply(from, msg);
        } else if constexpr (std::is_same_v<T, Notify>) {
          if (!predecessor_.has_value() ||
              in_interval_open_open(hash_u64(msg.candidate),
                                    hash_u64(*predecessor_), id_))
            predecessor_ = msg.candidate;
        } else if constexpr (std::is_same_v<T, Put>) {
          store_and_replicate(msg.key, msg.value);
        } else if constexpr (std::is_same_v<T, Replicate>) {
          auto& values = storage_[msg.key];
          if (std::find(values.begin(), values.end(), msg.value) ==
              values.end())
            values.push_back(msg.value);
        } else if constexpr (std::is_same_v<T, Remove>) {
          const auto it = storage_.find(msg.key);
          if (it != storage_.end()) {
            auto& values = it->second;
            const auto pos =
                std::find(values.begin(), values.end(), msg.value);
            if (pos != values.end()) values.erase(pos);
            if (values.empty()) storage_.erase(it);
          }
          // The owner propagates the removal to its replicas (which do
          // not own the key, so the fan-out stops there).
          if (config_.replication_factor > 1 && owns(msg.key)) {
            int copies = config_.replication_factor - 1;
            for (Address successor_address : successors_) {
              if (copies <= 0) break;
              if (successor_address == address_) continue;
              network_.send(address_, successor_address,
                            Remove{msg.key, msg.value}, msg.value.size());
              --copies;
            }
          }
        } else if constexpr (std::is_same_v<T, GetReq>) {
          const auto it = storage_.find(msg.key);
          network_.send(address_, msg.reply_to,
                        GetResp{msg.request_id, msg.key,
                                it == storage_.end()
                                    ? std::vector<std::string>{}
                                    : it->second});
        } else if constexpr (std::is_same_v<T, GetResp>) {
          const auto it = pending_gets_.find(msg.request_id);
          if (it != pending_gets_.end()) {
            GetCallback callback = std::move(it->second);
            pending_gets_.erase(it);
            callback(msg.values);
          }
        } else if constexpr (std::is_same_v<T, Ping>) {
          network_.send(address_, from, Pong{});
        } else if constexpr (std::is_same_v<T, Pong>) {
          if (awaiting_pong_ && from == pinged_predecessor_) {
            awaiting_pong_ = false;
            predecessor_misses_ = 0;
          }
        }
      },
      message);
}

// --- ChordRing ----------------------------------------------------------

ChordRing::ChordRing(std::size_t node_count, ChordConfig config,
                     std::uint64_t seed,
                     std::unique_ptr<net::LatencyModel> latency)
    : network_(sim_,
               latency != nullptr
                   ? std::move(latency)
                   : std::make_unique<net::UniformLatency>(0.01, 0.05),
               seed),
      config_(config) {
  LAGOVER_EXPECTS(node_count >= 1);
  Rng seeder(seed ^ 0xD1E5ULL);
  for (std::size_t i = 0; i < node_count; ++i)
    nodes_.push_back(std::make_unique<ChordNode>(
        static_cast<Address>(i), network_, config_, seeder()));
  nodes_[0]->create();
  nodes_[0]->start_timers();
  // Staggered joins through node 0.
  for (std::size_t i = 1; i < node_count; ++i) {
    sim_.schedule_after(0.1 * static_cast<double>(i), [this, i] {
      nodes_[i]->join(0);
      nodes_[i]->start_timers();
    });
  }
}

ChordNode& ChordRing::node(std::size_t index) {
  LAGOVER_EXPECTS(index < nodes_.size());
  return *nodes_[index];
}

void ChordRing::fail_node(std::size_t index) {
  LAGOVER_EXPECTS(index < nodes_.size());
  nodes_[index]->crash();
}

std::size_t ChordRing::live_count() const {
  std::size_t live = 0;
  for (const auto& node : nodes_)
    if (!node->crashed()) ++live;
  return live;
}

bool ChordRing::ring_consistent() const {
  // Follow successor pointers from the first live node; the walk must
  // visit every live node exactly once and return to the start.
  std::size_t start = nodes_.size();
  std::size_t live = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->crashed()) continue;
    ++live;
    if (start == nodes_.size()) start = i;
  }
  if (live == 0) return true;
  if (live == 1)
    return nodes_[start]->successor() == nodes_[start]->address();

  std::vector<char> seen(nodes_.size(), 0);
  Address cursor = nodes_[start]->address();
  for (std::size_t steps = 0; steps < live; ++steps) {
    // Addresses are ring indices by construction.
    const ChordNode& node = *nodes_[cursor];
    if (node.crashed()) return false;  // someone points at a dead node
    if (seen[cursor]) return false;
    seen[cursor] = 1;
    if (!node.predecessor().has_value()) return false;
    cursor = node.successor();
  }
  if (cursor != nodes_[start]->address()) return false;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i]->crashed() && !seen[i]) return false;
  return true;
}

bool ChordRing::run_until_stable(SimTime horizon) {
  while (sim_.now() < horizon) {
    sim_.run_until(sim_.now() + 1.0);
    if (ring_consistent()) return true;
  }
  return ring_consistent();
}

std::pair<Address, int> ChordRing::lookup_sync(std::size_t from_index,
                                               Key key) {
  bool done = false;
  Address owner = 0;
  int hops = -1;
  node(from_index).lookup(key, [&](Address o, int h) {
    done = true;
    owner = o;
    hops = h;
  });
  const SimTime deadline = sim_.now() + 1000.0;
  while (!done && sim_.now() < deadline) sim_.run_until(sim_.now() + 0.5);
  LAGOVER_ASSERT_MSG(done, "chord lookup did not resolve");
  // hops == -1 signals a failed lookup (e.g. the route died); callers
  // that expect success assert on it themselves.
  return {owner, hops};
}

void ChordRing::put_sync(std::size_t from_index, Key key, std::string value) {
  node(from_index).put(key, std::move(value));
  sim_.run_until(sim_.now() + 20.0);
}

std::vector<std::string> ChordRing::get_sync(std::size_t from_index, Key key) {
  bool done = false;
  std::vector<std::string> result;
  node(from_index).get(key, [&](std::vector<std::string> values) {
    done = true;
    result = std::move(values);
  });
  const SimTime deadline = sim_.now() + 1000.0;
  while (!done && sim_.now() < deadline) sim_.run_until(sim_.now() + 0.5);
  LAGOVER_ASSERT_MSG(done, "chord get did not resolve");
  return result;
}

}  // namespace lagover::dht
