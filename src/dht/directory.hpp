// DHT-backed realization of the directory Oracles (paper Section 2.1.4:
// the Random-Delay / -Capacity oracles "require a directory service,
// which ... can also be realized if the nodes organize as a distributed
// hash table", ideally "a separate open service like OpenDHT ... run in
// a single trust domain using a relatively stable and dedicated
// infrastructure").
//
// Model: a small, stable Chord ring of dedicated directory servers. The
// feed's registry lives at the owner of hash(feed name). Consumers
// publish (delay, free-fanout) records periodically — so the directory
// serves *stale* state between refreshes — and every publish or query
// pays the ring's routing cost, which this adapter accounts. The core
// experiments use the idealized DirectoryOracle (as the paper's
// simulations do); this adapter quantifies what the realization costs
// and whether staleness hurts convergence (see bench_oracle_realizations).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "dht/chord.hpp"
#include "stats/summary.hpp"

namespace lagover::dht {

struct DirectoryCosts {
  std::uint64_t publishes = 0;       ///< records pushed to the registry
  std::uint64_t queries = 0;         ///< oracle samples served
  std::uint64_t refreshes = 0;       ///< snapshot refresh cycles
  RunningSummary publish_hops;       ///< chord route length per publish
  RunningSummary query_hops;         ///< chord route length per query
  std::uint64_t ring_messages = 0;   ///< total messages inside the ring
};

struct DhtOracleConfig {
  std::size_t ring_size = 16;
  /// Oracle samples served between registry refreshes; larger = staler
  /// records. One engine round issues roughly one sample per orphan.
  int refresh_every_queries = 32;
  std::string feed_name = "feed";
  ChordConfig chord;
  std::uint64_t seed = 1;
};

/// Oracle adapter: same filtering semantics as DirectoryOracle but
/// evaluated over the (possibly stale) registry snapshot, with every
/// operation routed through a real message-passing Chord ring.
class DhtDirectoryOracle final : public Oracle {
 public:
  DhtDirectoryOracle(OracleKind kind, DhtOracleConfig config);
  ~DhtDirectoryOracle() override;

  OracleKind kind() const noexcept override { return kind_; }
  const DirectoryCosts& costs() const noexcept { return costs_; }

  /// The ring node owning the feed registry (for tests).
  Address registry_owner() const noexcept { return registry_owner_; }

  /// Fail-stop crash of a directory server (fault-injection hook): the
  /// ring heals via successor failover and registry ownership moves to
  /// the next live node; records are re-pushed on the next refresh.
  void fail_directory_server(Address address);

  std::uint64_t failed_operations() const noexcept {
    return failed_operations_;
  }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  struct Record {
    Delay delay = 0;
    int free_fanout = 0;
  };

  void refresh_registry(const Overlay& overlay);
  int routed_hops(std::size_t entry_index, Key key);

  OracleKind kind_;
  DhtOracleConfig config_;
  std::unique_ptr<ChordRing> ring_;
  Key feed_key_;
  Address registry_owner_ = 0;
  int queries_since_refresh_ = 0;
  std::vector<std::optional<Record>> registry_;  // index = overlay NodeId
  DirectoryCosts costs_;
  std::uint64_t failed_operations_ = 0;
  Rng entry_rng_;
};

}  // namespace lagover::dht
