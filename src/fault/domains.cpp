#include "fault/domains.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lagover::fault {

const char* to_string(DomainFault fault) noexcept {
  switch (fault) {
    case DomainFault::kCrash: return "crash";
    case DomainFault::kPartition: return "partition";
  }
  return "unknown";
}

FailureDomains& FailureDomains::add(FailureDomain domain) {
  LAGOVER_EXPECTS(!domain.name.empty());
  for (const DomainWindow& window : domain.windows)
    LAGOVER_EXPECTS(window.start <= window.end);
  for (const NodeId member : domain.members)
    LAGOVER_EXPECTS(member != kSourceId && member != kNoNode);
  std::sort(domain.members.begin(), domain.members.end());
  domain.members.erase(
      std::unique(domain.members.begin(), domain.members.end()),
      domain.members.end());
  domains_.push_back(std::move(domain));
  return *this;
}

std::vector<NodeId> FailureDomains::hashed_members(const std::string& name,
                                                   std::size_t node_count,
                                                   double fraction,
                                                   std::uint64_t seed) {
  LAGOVER_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::uint64_t name_hash = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name)
    name_hash = (name_hash ^ static_cast<unsigned char>(c)) *
                0x100000001b3ULL;
  std::vector<NodeId> members;
  for (NodeId id = 1; id < node_count; ++id) {
    SplitMix64 sm{seed ^ name_hash ^ (id * 0x9e3779b97f4a7c15ULL)};
    const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    if (u < fraction) members.push_back(id);
  }
  return members;
}

double FailureDomains::crash_outage(NodeId node, SimTime t) const {
  double outage = 0.0;
  for (const FailureDomain& domain : domains_) {
    if (!std::binary_search(domain.members.begin(), domain.members.end(),
                            node))
      continue;
    for (const DomainWindow& window : domain.windows)
      if (window.fault == DomainFault::kCrash && window.contains(t))
        outage = std::max(outage, window.end - t);
  }
  return outage;
}

bool FailureDomains::partitioned(NodeId node, SimTime t) const {
  for (const FailureDomain& domain : domains_) {
    if (!std::binary_search(domain.members.begin(), domain.members.end(),
                            node))
      continue;
    for (const DomainWindow& window : domain.windows)
      if (window.fault == DomainFault::kPartition && window.contains(t))
        return true;
  }
  return false;
}

bool FailureDomains::any_active(SimTime t) const {
  for (const FailureDomain& domain : domains_)
    for (const DomainWindow& window : domain.windows)
      if (window.contains(t)) return true;
  return false;
}

SimTime FailureDomains::last_end() const {
  SimTime end = 0.0;
  for (const FailureDomain& domain : domains_)
    for (const DomainWindow& window : domain.windows)
      end = std::max(end, window.end);
  return end;
}

}  // namespace lagover::fault
