#include "fault/byzantine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lagover::fault {

const char* to_string(AdversaryClass cls) noexcept {
  switch (cls) {
    case AdversaryClass::kHonest: return "honest";
    case AdversaryClass::kDelayLiar: return "delay_liar";
    case AdversaryClass::kFanoutLiar: return "fanout_liar";
    case AdversaryClass::kFreeRider: return "free_rider";
    case AdversaryClass::kFlapper: return "flapper";
  }
  return "unknown";
}

namespace {

/// Unit-interval hash of (salt, node): deterministic, order-free, and
/// independent of every engine RNG stream.
double unit_hash(std::uint64_t salt, std::uint64_t node,
                 std::uint64_t stream) {
  SplitMix64 sm{salt ^ (node * 0x9e3779b97f4a7c15ULL) ^
                (stream << 48)};
  // 53 high bits -> [0, 1) exactly as Rng::uniform_real does.
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

}  // namespace

AdversaryBook::AdversaryBook(ByzantineSpec spec, std::size_t node_count)
    : spec_(spec) {
  LAGOVER_EXPECTS(spec.delay_liar_fraction >= 0.0 &&
                  spec.fanout_liar_fraction >= 0.0 &&
                  spec.free_rider_fraction >= 0.0 &&
                  spec.flapper_fraction >= 0.0);
  LAGOVER_EXPECTS(spec.delay_liar_fraction + spec.fanout_liar_fraction +
                      spec.free_rider_fraction + spec.flapper_fraction <=
                  1.0 + 1e-12);
  LAGOVER_EXPECTS(spec.delay_understatement >= 1);
  LAGOVER_EXPECTS(spec.flap_period > 0.0);
  LAGOVER_EXPECTS(spec.flap_duty > 0.0 && spec.flap_duty < 1.0);
  role_.assign(node_count, AdversaryClass::kHonest);
  flap_phase_.assign(node_count, 0.0);
  for (NodeId id = 1; id < node_count; ++id) {
    const double u = unit_hash(spec.salt, id, 1);
    double edge = spec.delay_liar_fraction;
    if (u < edge) {
      role_[id] = AdversaryClass::kDelayLiar;
    } else if (u < (edge += spec.fanout_liar_fraction)) {
      role_[id] = AdversaryClass::kFanoutLiar;
    } else if (u < (edge += spec.free_rider_fraction)) {
      role_[id] = AdversaryClass::kFreeRider;
    } else if (u < (edge += spec.flapper_fraction)) {
      role_[id] = AdversaryClass::kFlapper;
      flap_phase_[id] = unit_hash(spec.salt, id, 2) * spec.flap_period;
    }
    if (role_[id] != AdversaryClass::kHonest) ++adversaries_;
  }
}

AdversaryClass AdversaryBook::role(NodeId id) const {
  if (id >= role_.size()) return AdversaryClass::kHonest;
  return role_[id];
}

std::size_t AdversaryBook::count(AdversaryClass cls) const {
  return static_cast<std::size_t>(
      std::count(role_.begin(), role_.end(), cls));
}

Delay AdversaryBook::claimed_delay(NodeId id, Delay true_delay) const {
  if (role(id) != AdversaryClass::kDelayLiar) return true_delay;
  return std::max<Delay>(1, true_delay - spec_.delay_understatement);
}

int AdversaryBook::claimed_free_fanout(NodeId id, int true_free) const {
  if (role(id) != AdversaryClass::kFanoutLiar) return true_free;
  return std::max(true_free, 1);
}

bool AdversaryBook::flapping_down(NodeId id, SimTime now) const {
  if (role(id) != AdversaryClass::kFlapper) return false;
  const double pos =
      std::fmod(now + flap_phase_[id], spec_.flap_period);
  return pos >= spec_.flap_duty * spec_.flap_period;
}

double AdversaryBook::flap_remaining(NodeId id, SimTime now) const {
  if (!flapping_down(id, now)) return 0.0;
  const double pos =
      std::fmod(now + flap_phase_[id], spec_.flap_period);
  return spec_.flap_period - pos;
}

ByzantineOracle::ByzantineOracle(OracleKind kind,
                                 std::shared_ptr<const AdversaryBook> book)
    : kind_(kind), book_(std::move(book)) {
  LAGOVER_EXPECTS(book_ != nullptr);
}

bool ByzantineOracle::eligible_claimed(NodeId querier, NodeId candidate,
                                       const Overlay& overlay) {
  if (candidate == querier || candidate == kSourceId) return false;
  if (!overlay.online(candidate)) return false;
  if (barred_ && barred_(candidate)) {
    ++barred_skips_;
    return false;
  }
  const Delay claimed =
      book_->claimed_delay(candidate, overlay.delay_at(candidate));
  // Plausibility filter (defense): a connected candidate is at least one
  // hop deeper than its parent, so its claim must be >= the parent's
  // claim + 1. A claim below that bound is structurally impossible;
  // skip the candidate and report it. (A chain of colluding liars is
  // internally consistent and passes — documented limitation.)
  if (plausibility_ && overlay.connected(candidate)) {
    const NodeId parent = overlay.parent(candidate);
    const Delay floor =
        parent == kSourceId
            ? 1
            : book_->claimed_delay(parent, overlay.delay_at(parent)) + 1;
    if (claimed < floor) {
      ++implausible_skips_;
      if (reporter_) reporter_(candidate, "implausible_delay");
      return false;
    }
  }
  switch (kind_) {
    case OracleKind::kRandom:
      return true;
    case OracleKind::kRandomCapacity:
      return book_->claimed_free_fanout(candidate,
                                        overlay.free_fanout(candidate)) > 0;
    case OracleKind::kRandomDelayCapacity:
      return book_->claimed_free_fanout(candidate,
                                        overlay.free_fanout(candidate)) > 0 &&
             claimed < overlay.latency_of(querier);
    case OracleKind::kRandomDelay:
      return claimed < overlay.latency_of(querier);
  }
  return false;
}

std::optional<NodeId> ByzantineOracle::sample_impl(NodeId querier,
                                                   const Overlay& overlay,
                                                   Rng& rng) {
  // Reservoir-of-one over claim-eligible candidates: the exact sampling
  // discipline of DirectoryOracle, so an all-honest book draws the same
  // RNG sequence and returns the same partners.
  std::optional<NodeId> chosen;
  std::uint64_t seen = 0;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (!eligible_claimed(querier, id, overlay)) continue;
    ++seen;
    if (rng.next_below(seen) == 0) chosen = id;
  }
  return chosen;
}

}  // namespace lagover::fault
