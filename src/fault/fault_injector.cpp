#include "fault/fault_injector.hpp"

#include <cmath>

namespace lagover::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed), rng_(seed) {}

bool FaultInjector::partition_isolated(NodeId node, SimTime t) const noexcept {
  if (node == kSourceId) return false;
  const FaultSpec spec = plan_.effective(t);
  if (spec.partition_fraction <= 0.0) return false;
  // Deterministic membership: hash (seed, window epoch, node) to [0, 1).
  // Same node + same window => same side, across all queries.
  const SimTime epoch = plan_.partition_epoch(t);
  const auto epoch_bits =
      static_cast<std::uint64_t>(std::llround(epoch * 1024.0));
  SplitMix64 h{seed_ ^ (epoch_bits * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<std::uint64_t>(node) << 32)};
  const double u =
      static_cast<double>(h.next() >> 11) * 0x1.0p-53;
  return u < spec.partition_fraction;
}

bool FaultInjector::reachable(NodeId a, NodeId b, SimTime t) const noexcept {
  if (partition_isolated(a, t) != partition_isolated(b, t)) return false;
  // Correlated-domain partitions compose on top of the plan's
  // address-space partition: either kind of cut severs the link.
  return domains_ == nullptr || domains_->reachable(a, b, t);
}

bool FaultInjector::deliver(NodeId from, NodeId to, SimTime t) {
  const FaultSpec spec = plan_.effective(t);
  if ((spec.partition_fraction > 0.0 || domains_ != nullptr) &&
      !reachable(from, to, t)) {
    ++stats_.partition_blocks;
    return false;
  }
  if (spec.drop_probability > 0.0 && rng_.bernoulli(spec.drop_probability)) {
    ++stats_.messages_dropped;
    return false;
  }
  return true;
}

double FaultInjector::extra_latency(SimTime t) {
  const FaultSpec spec = plan_.effective(t);
  if (spec.delay_probability <= 0.0 || !rng_.bernoulli(spec.delay_probability))
    return 0.0;
  ++stats_.latency_spikes;
  return spec.delay_amount;
}

bool FaultInjector::duplicate(SimTime t) {
  const FaultSpec spec = plan_.effective(t);
  if (spec.duplicate_probability <= 0.0 ||
      !rng_.bernoulli(spec.duplicate_probability))
    return false;
  ++stats_.messages_duplicated;
  return true;
}

bool FaultInjector::oracle_down(SimTime t) noexcept {
  if (!plan_.effective(t).oracle_outage) return false;
  ++stats_.oracle_outage_queries;
  return true;
}

bool FaultInjector::crash_roll(NodeId node, SimTime t) {
  (void)node;
  const FaultSpec spec = plan_.effective(t);
  if (spec.crash_probability <= 0.0 ||
      !rng_.bernoulli(spec.crash_probability))
    return false;
  ++stats_.crashes;
  return true;
}

}  // namespace lagover::fault
