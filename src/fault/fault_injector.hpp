// Interprets a FaultPlan against a clock: every engine-facing fault
// decision (drop this message? spike its latency? crash this node?
// is the Oracle down?) is answered here. The injector draws from its
// OWN RNG stream, never the engine's, so installing an injector with an
// empty plan perturbs nothing — engines stay byte-identical to a run
// without any fault layer.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "core/types.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

/// Everything the injector did, for experiment reports and tests.
struct FaultStats {
  std::uint64_t messages_dropped = 0;    ///< lost to drop_probability
  std::uint64_t partition_blocks = 0;    ///< lost to a partition
  std::uint64_t latency_spikes = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t oracle_outage_queries = 0;
  std::uint64_t stale_oracle_refreshes = 0;
  std::uint64_t crashes = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0x5eed);

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultStats& stats() const noexcept { return stats_; }
  FaultStats& stats() noexcept { return stats_; }

  /// Any fault window active at t? (Cheap pre-check for hot paths.)
  bool active(SimTime t) const noexcept { return plan_.active(t); }

  // --- partitions -----------------------------------------------------
  /// Is `node` on the isolated side of the partition active at t?
  /// The source (node 0) is always on the majority side. Membership is
  /// a deterministic per-window hash, so it is stable for the window's
  /// duration and independent of query order.
  bool partition_isolated(NodeId node, SimTime t) const noexcept;

  /// Can a message flow between a and b at t? False iff exactly one of
  /// them is isolated (isolated nodes still reach each other).
  bool reachable(NodeId a, NodeId b, SimTime t) const noexcept;

  // --- message fate ---------------------------------------------------
  /// Decides whether a message from -> to sent at t gets through;
  /// counts drops and partition blocks. Consumes injector RNG only when
  /// a drop probability is active.
  bool deliver(NodeId from, NodeId to, SimTime t);

  /// Extra delivery latency for a message sent at t (0 when no spike).
  double extra_latency(SimTime t);

  /// Should a message sent at t be delivered twice?
  bool duplicate(SimTime t);

  // --- Oracle ---------------------------------------------------------
  bool oracle_down(SimTime t) noexcept;
  double oracle_staleness(SimTime t) const noexcept {
    return plan_.effective(t).oracle_staleness;
  }

  // --- crashes ---------------------------------------------------------
  /// Rolls the mid-interaction crash die for `node` at t; counts a
  /// crash on success.
  bool crash_roll(NodeId node, SimTime t);
  double crash_downtime(SimTime t) const noexcept {
    return plan_.effective(t).crash_downtime;
  }

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace lagover::fault
