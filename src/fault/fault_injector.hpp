// Interprets a FaultPlan against a clock: every engine-facing fault
// decision (drop this message? spike its latency? crash this node?
// is the Oracle down?) is answered here. The injector draws from its
// OWN RNG stream, never the engine's, so installing an injector with an
// empty plan perturbs nothing — engines stay byte-identical to a run
// without any fault layer.
#pragma once

#include <cstdint>
#include <functional>

#include <memory>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/types.hpp"
#include "fault/domains.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

/// Everything the injector did, for experiment reports and tests.
struct FaultStats {
  std::uint64_t messages_dropped = 0;    ///< lost to drop_probability
  std::uint64_t partition_blocks = 0;    ///< lost to a partition
  std::uint64_t latency_spikes = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t oracle_outage_queries = 0;
  std::uint64_t stale_oracle_refreshes = 0;
  std::uint64_t crashes = 0;
  /// Nodes taken down by a correlated failure-domain window.
  std::uint64_t domain_crashes = 0;
};

class LAGOVER_THREAD_HOSTILE FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0x5eed);

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultStats& stats() const noexcept { return stats_; }
  FaultStats& stats() noexcept { return stats_; }

  /// Installs correlated failure domains (rack/AS blast radii); null or
  /// an empty schedule is normalized to "no domains" so the composed
  /// queries below stay byte-identical to a plan-only injector.
  void set_domains(std::shared_ptr<FailureDomains> domains) {
    domains_ = (domains && !domains->empty()) ? std::move(domains) : nullptr;
  }
  const FailureDomains* domains() const noexcept { return domains_.get(); }

  /// Any fault window (plan or domain) active at t? (Cheap pre-check
  /// for hot paths.)
  bool active(SimTime t) const noexcept {
    return plan_.active(t) || (domains_ != nullptr && domains_->any_active(t));
  }

  // --- partitions -----------------------------------------------------
  /// Is `node` on the isolated side of the partition active at t?
  /// The source (node 0) is always on the majority side. Membership is
  /// a deterministic per-window hash, so it is stable for the window's
  /// duration and independent of query order.
  bool partition_isolated(NodeId node, SimTime t) const noexcept;

  /// Can a message flow between a and b at t? False iff exactly one of
  /// them is isolated (isolated nodes still reach each other).
  bool reachable(NodeId a, NodeId b, SimTime t) const noexcept;

  // --- message fate ---------------------------------------------------
  /// Decides whether a message from -> to sent at t gets through;
  /// counts drops and partition blocks. Consumes injector RNG only when
  /// a drop probability is active.
  bool deliver(NodeId from, NodeId to, SimTime t);

  /// Extra delivery latency for a message sent at t (0 when no spike).
  double extra_latency(SimTime t);

  /// Should a message sent at t be delivered twice?
  bool duplicate(SimTime t);

  // --- Oracle ---------------------------------------------------------
  bool oracle_down(SimTime t) noexcept;
  double oracle_staleness(SimTime t) const noexcept {
    return plan_.effective(t).oracle_staleness;
  }

  // --- crashes ---------------------------------------------------------
  /// Rolls the mid-interaction crash die for `node` at t; counts a
  /// crash on success.
  bool crash_roll(NodeId node, SimTime t);
  double crash_downtime(SimTime t) const noexcept {
    return plan_.effective(t).crash_downtime;
  }

  // --- correlated domains ----------------------------------------------
  /// Remaining downtime for `node` if a failure domain containing it has
  /// an active crash window at t (0 = none). Counts a domain crash;
  /// engines call this once per node per blast radius (they take the
  /// node offline for the returned duration).
  double domain_crash_outage(NodeId node, SimTime t) noexcept {
    if (domains_ == nullptr) return 0.0;
    const double outage = domains_->crash_outage(node, t);
    if (outage > 0.0) ++stats_.domain_crashes;
    return outage;
  }

 private:
  FaultPlan plan_;
  std::shared_ptr<FailureDomains> domains_;
  std::uint64_t seed_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace lagover::fault
