// Byzantine adversary models (ROADMAP "meaner worlds"): node classes
// that *lie* instead of merely crashing. The paper's convergence results
// assume every node reports DelayAt, free fanout, and liveness honestly;
// this layer breaks each assumption separately:
//
//   delay-liars   understate DelayAt to the Oracle and in protocol
//                 admission checks, attracting children whose true delay
//                 then violates their latency bound;
//   fanout-liars  advertise free capacity but reject every attach
//                 request that reaches them (wasted interactions);
//   free-riders   accept children but never relay feed items;
//   flappers      oscillate on/off on a fixed duty cycle, churning
//                 their subtree with them.
//
// Role assignment is a deterministic per-node hash of the spec's salt —
// no RNG stream is consumed, and an empty spec assigns every node
// kHonest, so installing an empty AdversaryBook leaves engines
// byte-identical to an adversary-free run (engines normalize an empty
// book away entirely).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

enum class AdversaryClass {
  kHonest,
  kDelayLiar,
  kFanoutLiar,
  kFreeRider,
  kFlapper,
};

/// Stable lower_snake name ("honest", "delay_liar", ...).
const char* to_string(AdversaryClass cls) noexcept;

/// Declarative adversary mix. Fractions are of the consumer population
/// (node 0, the source, is always honest); they are cumulative class
/// buckets over a per-node uniform hash, so they must sum to <= 1.
struct ByzantineSpec {
  double delay_liar_fraction = 0.0;
  double fanout_liar_fraction = 0.0;
  double free_rider_fraction = 0.0;
  double flapper_fraction = 0.0;
  /// Delay-liars claim max(1, DelayAt - understatement).
  Delay delay_understatement = 2;
  /// Flappers cycle with this period, online for the first
  /// flap_duty fraction of it (per-node phase offsets desynchronize).
  double flap_period = 30.0;
  double flap_duty = 0.5;
  /// Salts the role-assignment hash: different salts, different liars.
  std::uint64_t salt = 0xb12a5;

  /// True when no adversary class has a positive fraction.
  bool empty() const noexcept {
    return delay_liar_fraction <= 0.0 && fanout_liar_fraction <= 0.0 &&
           free_rider_fraction <= 0.0 && flapper_fraction <= 0.0;
  }
};

/// Materialized role table: the spec hashed over a concrete population.
/// Shared (const) between the engine, the Oracle, and the feed layer.
class AdversaryBook {
 public:
  AdversaryBook(ByzantineSpec spec, std::size_t node_count);

  const ByzantineSpec& spec() const noexcept { return spec_; }
  std::size_t node_count() const noexcept { return role_.size(); }

  AdversaryClass role(NodeId id) const;
  std::size_t count(AdversaryClass cls) const;

  /// True when the book assigns no adversarial role at all — engines
  /// normalize such a book to "no adversary layer installed".
  bool empty() const noexcept { return adversaries_ == 0; }

  /// What `id` tells peers its delay is (truth unless a delay-liar).
  Delay claimed_delay(NodeId id, Delay true_delay) const;

  /// What `id` advertises as free fanout (fanout-liars always claim at
  /// least one free slot).
  int claimed_free_fanout(NodeId id, int true_free) const;

  /// Does `id` reject an attach request despite advertising capacity?
  bool rejects_child(NodeId id) const {
    return role(id) == AdversaryClass::kFanoutLiar;
  }

  /// Does `id` swallow feed items instead of relaying them?
  bool withholds_feed(NodeId id) const {
    return role(id) == AdversaryClass::kFreeRider;
  }

  /// Is flapper `id` in the down phase of its duty cycle at `now`?
  bool flapping_down(NodeId id, SimTime now) const;

  /// Time from `now` until flapper `id` comes back up (0 when up).
  double flap_remaining(NodeId id, SimTime now) const;

 private:
  ByzantineSpec spec_;
  std::vector<AdversaryClass> role_;
  std::vector<double> flap_phase_;  ///< per-flapper phase offset
  std::size_t adversaries_ = 0;
};

/// Directory Oracle over *claimed* values: candidates are filtered by
/// what they advertise (claimed delay / claimed free fanout), not the
/// overlay's ground truth — the paper's idealized Oracle has no way to
/// audit reports. With defenses on, the owning engine installs
///
///   * a barred() predicate (quarantined/blacklisted nodes are skipped),
///   * the plausibility filter: a connected candidate claiming a delay
///     below its own parent's claim + 1 is structurally impossible —
///     it is skipped and reported to the suspicion book. Colluding
///     liar *chains* evade this check (each link is self-consistent);
///     they are caught by child-side delay verification instead.
class ByzantineOracle final : public Oracle {
 public:
  ByzantineOracle(OracleKind kind, std::shared_ptr<const AdversaryBook> book);

  OracleKind kind() const noexcept override { return kind_; }

  void set_barred(std::function<bool(NodeId)> barred) {
    barred_ = std::move(barred);
  }
  void set_plausibility_reporter(
      std::function<void(NodeId suspect, const char* cause)> reporter) {
    reporter_ = std::move(reporter);
  }
  void enable_plausibility_filter(bool on) noexcept { plausibility_ = on; }

  std::uint64_t barred_skips() const noexcept { return barred_skips_; }
  std::uint64_t implausible_skips() const noexcept {
    return implausible_skips_;
  }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  bool eligible_claimed(NodeId querier, NodeId candidate,
                        const Overlay& overlay);

  OracleKind kind_;
  std::shared_ptr<const AdversaryBook> book_;
  std::function<bool(NodeId)> barred_;
  std::function<void(NodeId, const char*)> reporter_;
  bool plausibility_ = false;
  std::uint64_t barred_skips_ = 0;
  std::uint64_t implausible_skips_ = 0;
};

}  // namespace lagover::fault
