// Declarative fault schedules for chaos experiments. A FaultPlan is a
// list of time windows, each activating a set of fault modes (message
// drop/delay/duplication, Oracle outage or staleness, node crashes,
// address-space partitions). The plan itself is pure data; the
// FaultInjector interprets it against a clock and an independent RNG
// stream so that an empty plan leaves every engine byte-identical to a
// fault-free run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

/// The fault modes a window can activate. All probabilities are per
/// message / per attempt; zero (the default) disables the mode.
struct FaultSpec {
  // --- message-level faults (interaction requests, polls, network) ---
  /// Probability that a message is silently dropped.
  double drop_probability = 0.0;
  /// Probability that a message suffers a latency spike.
  double delay_probability = 0.0;
  /// Extra delivery delay (time units) applied to a spiked message.
  double delay_amount = 0.0;
  /// Probability that a message is delivered twice.
  double duplicate_probability = 0.0;

  // --- Oracle faults ---
  /// The Oracle answers no query during the window.
  bool oracle_outage = false;
  /// When > 0, the Oracle serves views from a snapshot refreshed only
  /// once its age exceeds this many time units (stale candidates may be
  /// offline or violate the filter by the time they are returned).
  double oracle_staleness = 0.0;

  // --- node faults ---
  /// Probability that a node crashes mid-interaction (per interaction
  /// attempt it initiates during the window).
  double crash_probability = 0.0;
  /// Time units a crashed node stays down before rejoining.
  double crash_downtime = 5.0;

  // --- partitions ---
  /// Fraction of the consumer address space isolated from the
  /// source-side majority for the duration of the window. Isolated
  /// nodes can still reach each other.
  double partition_fraction = 0.0;

  /// True when no mode is active (the all-defaults spec).
  bool benign() const noexcept;
};

/// One fault window: `spec` is active over the half-open interval
/// [start, end).
struct FaultWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  FaultSpec spec;

  bool contains(SimTime t) const noexcept { return t >= start && t < end; }
};

/// An ordered schedule of fault windows. Windows may overlap; the
/// effective spec at time t combines all active windows (max of each
/// probability/amount, OR of outage) so that layered chaos composes
/// predictably.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends a window (start <= end required; throws InvalidArgument
  /// otherwise). Returns *this for chaining.
  FaultPlan& add(FaultWindow window);

  const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }
  bool empty() const noexcept { return windows_.empty(); }

  /// Any window active at t?
  bool active(SimTime t) const noexcept;

  /// Combined spec of all windows active at t (benign when none).
  FaultSpec effective(SimTime t) const noexcept;

  /// End of the last window (0 for an empty plan): after this instant
  /// the system is fault-free and must reconverge.
  SimTime last_end() const noexcept;

  /// True when any window uses an Oracle fault mode — only then does an
  /// engine need to interpose on its Oracle.
  bool has_oracle_faults() const noexcept;

  /// Start of the first partition window active at t, or a negative
  /// value when none — used to salt the per-window partition assignment
  /// so membership is stable within a window but reshuffles across
  /// windows.
  SimTime partition_epoch(SimTime t) const noexcept;

  std::string to_string() const;

  // --- convenience window builders -----------------------------------
  static FaultWindow drop(SimTime start, SimTime end, double probability);
  static FaultWindow latency_spike(SimTime start, SimTime end,
                                   double probability, double amount);
  static FaultWindow duplicates(SimTime start, SimTime end,
                                double probability);
  static FaultWindow oracle_outage(SimTime start, SimTime end);
  static FaultWindow oracle_staleness(SimTime start, SimTime end,
                                      double age);
  static FaultWindow crashes(SimTime start, SimTime end, double probability,
                             double downtime = 5.0);
  static FaultWindow partition(SimTime start, SimTime end, double fraction);

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace lagover::fault
