// Oracle decorator realizing the two Oracle fault modes of a FaultPlan:
// outage windows (every query answered empty) and staleness windows
// (queries answered against a snapshot of the overlay refreshed only
// once its age exceeds the configured bound — returned candidates may
// have gone offline or acquired disqualifying delays since). Outside
// fault windows the decorator is a pure pass-through.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/oracle.hpp"
#include "core/overlay.hpp"
#include "fault/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

class FaultyOracle final : public Oracle {
 public:
  /// `clock` supplies the current simulated time (sim.now() for the
  /// async engine, the round number for the synchronous one).
  FaultyOracle(std::unique_ptr<Oracle> inner,
               std::shared_ptr<FaultInjector> faults,
               std::function<SimTime()> clock);

  OracleKind kind() const noexcept override { return inner_->kind(); }
  const Oracle& inner() const noexcept { return *inner_; }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  std::unique_ptr<Oracle> inner_;
  std::shared_ptr<FaultInjector> faults_;
  std::function<SimTime()> clock_;
  /// Snapshot served during staleness windows (copy of the overlay as
  /// it was at snapshot_time_).
  std::unique_ptr<Overlay> stale_view_;
  SimTime snapshot_time_ = 0.0;
};

/// Wraps `inner` when (and only when) the plan carries Oracle faults;
/// returns `inner` unchanged otherwise, so fault-free configurations
/// keep their exact Oracle object.
std::unique_ptr<Oracle> maybe_wrap_oracle(std::unique_ptr<Oracle> inner,
                                          std::shared_ptr<FaultInjector> faults,
                                          std::function<SimTime()> clock);

}  // namespace lagover::fault
