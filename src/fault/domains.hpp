// Correlated failure domains: rack/AS-level groups whose members crash
// or partition *together* on a shared blast-radius schedule, instead of
// the i.i.d. per-node faults of FaultPlan. Motivated by locality-aware
// streaming studies: real outages take out whole racks, not random
// samples.
//
// A domain is a named member set plus a list of fault windows. Members
// are either explicit or derived by a deterministic hash of the domain
// name (a stable pseudo-rack assignment). Pure data + pure queries: no
// RNG stream is consumed, so an empty FailureDomains leaves engines
// byte-identical to a domain-free run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lagover::fault {

/// What happens to a domain's members during one of its windows.
enum class DomainFault {
  kCrash,      ///< every member goes offline until the window ends
  kPartition,  ///< members can only reach each other (and one another)
};

const char* to_string(DomainFault fault) noexcept;

/// One blast-radius window: the domain's fault is active over the
/// half-open interval [start, end).
struct DomainWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  DomainFault fault = DomainFault::kCrash;

  bool contains(SimTime t) const noexcept { return t >= start && t < end; }
};

/// A named correlated-failure group with its schedule.
struct FailureDomain {
  std::string name;
  std::vector<NodeId> members;  ///< consumer ids (never the source)
  std::vector<DomainWindow> windows;
};

/// The full domain schedule of a run.
class FailureDomains {
 public:
  FailureDomains() = default;

  /// Appends a domain (validates windows and members; members are
  /// sorted and deduplicated). Returns *this for chaining.
  FailureDomains& add(FailureDomain domain);

  bool empty() const noexcept { return domains_.empty(); }
  const std::vector<FailureDomain>& domains() const noexcept {
    return domains_;
  }

  /// Deterministic pseudo-rack membership: the `fraction` of consumers
  /// [1, node_count) whose (name, seed, id) hash falls below it. Stable
  /// across runs and query orders.
  static std::vector<NodeId> hashed_members(const std::string& name,
                                            std::size_t node_count,
                                            double fraction,
                                            std::uint64_t seed);

  /// Remaining downtime for `node` if some domain containing it has an
  /// active crash window at t (0 = none): the engine takes the node
  /// offline until the *latest* such window ends, so overlapping blast
  /// radii compose like FaultPlan windows (max of the effects).
  double crash_outage(NodeId node, SimTime t) const;

  /// Is `node` inside an active partition window of any of its domains?
  bool partitioned(NodeId node, SimTime t) const;

  /// Can a message flow between a and b at t under the domain
  /// partitions? False iff exactly one endpoint is partitioned away.
  bool reachable(NodeId a, NodeId b, SimTime t) const {
    return partitioned(a, t) == partitioned(b, t);
  }

  /// Any window (crash or partition) active at t?
  bool any_active(SimTime t) const;

  /// End of the last window over all domains (0 when empty).
  SimTime last_end() const;

 private:
  std::vector<FailureDomain> domains_;
};

}  // namespace lagover::fault
