#include "fault/faulty_oracle.hpp"

#include "common/error.hpp"

namespace lagover::fault {

FaultyOracle::FaultyOracle(std::unique_ptr<Oracle> inner,
                           std::shared_ptr<FaultInjector> faults,
                           std::function<SimTime()> clock)
    : inner_(std::move(inner)),
      faults_(std::move(faults)),
      clock_(std::move(clock)) {
  LAGOVER_EXPECTS(inner_ != nullptr);
  LAGOVER_EXPECTS(faults_ != nullptr);
  LAGOVER_EXPECTS(clock_ != nullptr);
}

std::optional<NodeId> FaultyOracle::sample_impl(NodeId querier,
                                                const Overlay& overlay,
                                                Rng& rng) {
  const SimTime now = clock_();
  if (faults_->oracle_down(now)) return std::nullopt;
  const double max_age = faults_->oracle_staleness(now);
  if (max_age > 0.0) {
    if (stale_view_ == nullptr || now - snapshot_time_ > max_age) {
      stale_view_ = std::make_unique<Overlay>(overlay);
      snapshot_time_ = now;
      ++faults_->stats().stale_oracle_refreshes;
    }
    return inner_->sample(querier, *stale_view_, rng);
  }
  // Leaving a staleness window invalidates the snapshot.
  stale_view_.reset();
  return inner_->sample(querier, overlay, rng);
}

std::unique_ptr<Oracle> maybe_wrap_oracle(std::unique_ptr<Oracle> inner,
                                          std::shared_ptr<FaultInjector> faults,
                                          std::function<SimTime()> clock) {
  if (faults == nullptr || !faults->plan().has_oracle_faults()) return inner;
  return std::make_unique<FaultyOracle>(std::move(inner), std::move(faults),
                                        std::move(clock));
}

}  // namespace lagover::fault
