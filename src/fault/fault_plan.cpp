#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace lagover::fault {

bool FaultSpec::benign() const noexcept {
  return drop_probability == 0.0 && delay_probability == 0.0 &&
         duplicate_probability == 0.0 && !oracle_outage &&
         oracle_staleness == 0.0 && crash_probability == 0.0 &&
         partition_fraction == 0.0;
}

FaultPlan& FaultPlan::add(FaultWindow window) {
  LAGOVER_EXPECTS(window.start <= window.end);
  LAGOVER_EXPECTS(window.spec.drop_probability >= 0.0 &&
                  window.spec.drop_probability <= 1.0);
  LAGOVER_EXPECTS(window.spec.delay_probability >= 0.0 &&
                  window.spec.delay_probability <= 1.0);
  LAGOVER_EXPECTS(window.spec.duplicate_probability >= 0.0 &&
                  window.spec.duplicate_probability <= 1.0);
  LAGOVER_EXPECTS(window.spec.crash_probability >= 0.0 &&
                  window.spec.crash_probability <= 1.0);
  LAGOVER_EXPECTS(window.spec.partition_fraction >= 0.0 &&
                  window.spec.partition_fraction < 1.0);
  windows_.push_back(window);
  return *this;
}

bool FaultPlan::active(SimTime t) const noexcept {
  for (const auto& w : windows_)
    if (w.contains(t)) return true;
  return false;
}

FaultSpec FaultPlan::effective(SimTime t) const noexcept {
  FaultSpec combined;
  for (const auto& w : windows_) {
    if (!w.contains(t)) continue;
    const FaultSpec& s = w.spec;
    combined.drop_probability =
        std::max(combined.drop_probability, s.drop_probability);
    combined.delay_probability =
        std::max(combined.delay_probability, s.delay_probability);
    combined.delay_amount = std::max(combined.delay_amount, s.delay_amount);
    combined.duplicate_probability =
        std::max(combined.duplicate_probability, s.duplicate_probability);
    combined.oracle_outage = combined.oracle_outage || s.oracle_outage;
    combined.oracle_staleness =
        std::max(combined.oracle_staleness, s.oracle_staleness);
    combined.crash_probability =
        std::max(combined.crash_probability, s.crash_probability);
    if (s.crash_probability > 0.0)
      combined.crash_downtime = std::max(combined.crash_downtime,
                                         s.crash_downtime);
    combined.partition_fraction =
        std::max(combined.partition_fraction, s.partition_fraction);
  }
  return combined;
}

SimTime FaultPlan::last_end() const noexcept {
  SimTime end = 0.0;
  for (const auto& w : windows_) end = std::max(end, w.end);
  return end;
}

bool FaultPlan::has_oracle_faults() const noexcept {
  for (const auto& w : windows_)
    if (w.spec.oracle_outage || w.spec.oracle_staleness > 0.0) return true;
  return false;
}

SimTime FaultPlan::partition_epoch(SimTime t) const noexcept {
  for (const auto& w : windows_)
    if (w.contains(t) && w.spec.partition_fraction > 0.0) return w.start;
  return -1.0;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "FaultPlan{" << windows_.size() << " windows";
  for (const auto& w : windows_) {
    os << "; [" << w.start << "," << w.end << ")";
    const FaultSpec& s = w.spec;
    if (s.drop_probability > 0) os << " drop=" << s.drop_probability;
    if (s.delay_probability > 0)
      os << " delay=" << s.delay_probability << "x" << s.delay_amount;
    if (s.duplicate_probability > 0) os << " dup=" << s.duplicate_probability;
    if (s.oracle_outage) os << " oracle-outage";
    if (s.oracle_staleness > 0) os << " oracle-stale=" << s.oracle_staleness;
    if (s.crash_probability > 0)
      os << " crash=" << s.crash_probability << "/" << s.crash_downtime;
    if (s.partition_fraction > 0)
      os << " partition=" << s.partition_fraction;
  }
  os << "}";
  return os.str();
}

FaultWindow FaultPlan::drop(SimTime start, SimTime end, double probability) {
  FaultWindow w{start, end, {}};
  w.spec.drop_probability = probability;
  return w;
}

FaultWindow FaultPlan::latency_spike(SimTime start, SimTime end,
                                     double probability, double amount) {
  FaultWindow w{start, end, {}};
  w.spec.delay_probability = probability;
  w.spec.delay_amount = amount;
  return w;
}

FaultWindow FaultPlan::duplicates(SimTime start, SimTime end,
                                  double probability) {
  FaultWindow w{start, end, {}};
  w.spec.duplicate_probability = probability;
  return w;
}

FaultWindow FaultPlan::oracle_outage(SimTime start, SimTime end) {
  FaultWindow w{start, end, {}};
  w.spec.oracle_outage = true;
  return w;
}

FaultWindow FaultPlan::oracle_staleness(SimTime start, SimTime end,
                                        double age) {
  FaultWindow w{start, end, {}};
  w.spec.oracle_staleness = age;
  return w;
}

FaultWindow FaultPlan::crashes(SimTime start, SimTime end, double probability,
                               double downtime) {
  FaultWindow w{start, end, {}};
  w.spec.crash_probability = probability;
  w.spec.crash_downtime = downtime;
  return w;
}

FaultWindow FaultPlan::partition(SimTime start, SimTime end,
                                 double fraction) {
  FaultWindow w{start, end, {}};
  w.spec.partition_fraction = fraction;
  return w;
}

}  // namespace lagover::fault
