// Minimal JSON value: a writer plus a strict RFC 8259 parser, enough
// to emit experiment results and read them back (post-mortem bundles,
// JSONL telemetry dumps) without a third-party dependency. Values are
// built bottom-up; serialization escapes strings per RFC 8259 and
// renders non-finite doubles as null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lagover {

/// A JSON value (object keys stay in insertion order).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null();
  static Json boolean(bool value);
  static Json number(double value);
  static Json integer(std::int64_t value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Returns false on malformed input, leaving
  /// `out` null and — when given — `error` describing the failure.
  static bool parse(const std::string& text, Json& out,
                    std::string* error = nullptr);

  /// Array append (precondition: this is an array).
  Json& push_back(Json value);

  /// Object insert/overwrite (precondition: this is an object).
  Json& set(const std::string& key, Json value);

  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Lenient readers: a kind mismatch yields the fallback rather than a
  // crash, so inspector queries degrade gracefully on foreign input.
  bool as_bool(bool fallback = false) const noexcept;
  double as_number(double fallback = 0.0) const noexcept;
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  const std::string& as_string() const noexcept;

  /// Element/member count (0 for scalars).
  std::size_t size() const noexcept;

  /// Array element (precondition: array and in range).
  const Json& at(std::size_t index) const;

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const noexcept;

  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }

  /// Array elements (empty for non-arrays).
  const std::vector<Json>& elements() const noexcept { return elements_; }

  /// Compact serialization.
  std::string dump() const;

  /// Pretty serialization with 2-space indentation.
  std::string dump_pretty() const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void write(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  std::int64_t integer_value_ = 0;
  std::string string_value_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string json_escape(const std::string& text);

}  // namespace lagover
