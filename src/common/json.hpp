// Minimal JSON writer (no parsing): enough to emit experiment results
// for downstream tooling without a third-party dependency. Values are
// built bottom-up; serialization escapes strings per RFC 8259 and
// renders non-finite doubles as null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lagover {

/// A JSON value (object keys stay in insertion order).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null();
  static Json boolean(bool value);
  static Json number(double value);
  static Json integer(std::int64_t value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  /// Array append (precondition: this is an array).
  Json& push_back(Json value);

  /// Object insert/overwrite (precondition: this is an object).
  Json& set(const std::string& key, Json value);

  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Compact serialization.
  std::string dump() const;

  /// Pretty serialization with 2-space indentation.
  std::string dump_pretty() const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void write(std::string& out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_value_ = false;
  double number_value_ = 0.0;
  std::int64_t integer_value_ = 0;
  std::string string_value_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string json_escape(const std::string& text);

}  // namespace lagover
