// Fixed-width console table and CSV emission. The bench binaries print
// each paper figure/table as an aligned console table and can mirror the
// same rows into a CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lagover {

/// Accumulates rows of string cells and renders them either as an aligned
/// console table or as CSV. Cheap by design; benches build a handful of
/// tables per run.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return header_.size(); }

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders an aligned, pipe-separated table with a rule under the header.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing separators).
  std::string to_csv() const;

  /// JSON form: {"header": [...], "rows": [[...], ...]}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// Writes the CSV form to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to a compact form.
std::string format_double(double value, int precision = 2);

/// Formats "value1 / value2" style cells used in figure tables.
std::string format_pair(double a, double b, int precision = 2);

}  // namespace lagover
