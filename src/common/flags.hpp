// A tiny command-line flag parser for the bench and example binaries.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lagover {

/// Parses argv into a name->value map. Unknown positional arguments are
/// collected separately so binaries can reject typos explicitly.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lagover
