// Clang thread-safety annotation macros (LAGOVER_CAPABILITY,
// LAGOVER_GUARDED_BY, LAGOVER_REQUIRES, ...) plus the repo's two
// concurrency-contract markers (LAGOVER_THREAD_SAFE /
// LAGOVER_THREAD_HOSTILE) that scripts/lagover_lint.py keys on.
//
// The macros expand to clang's capability attributes, so a build with
// -Wthread-safety -Wthread-safety-beta (CMake option
// LAGOVER_THREAD_SAFETY, CI job `thread-safety`) turns the locking
// discipline documented here into compiler-checked fact: reading a
// LAGOVER_GUARDED_BY member without holding its mutex is a -Werror
// diagnostic, not a latent race. Under GCC (which has no capability
// analysis) every macro expands to nothing, so the annotations cost
// non-clang builds exactly zero.
//
// See docs/STATIC_ANALYSIS.md ("Concurrency readiness") for the full
// contract and how to read the analysis' diagnostics.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LAGOVER_TSA_(x) __attribute__((x))
#else
#define LAGOVER_TSA_(x)  // no-op outside clang
#endif

/// A type that IS a synchronization capability (e.g. the Mutex wrapper
/// in common/mutex.hpp). `x` is the capability kind ("mutex").
#define LAGOVER_CAPABILITY(x) LAGOVER_TSA_(capability(x))

/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor (e.g. MutexLock).
#define LAGOVER_SCOPED_CAPABILITY LAGOVER_TSA_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define LAGOVER_GUARDED_BY(x) LAGOVER_TSA_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define LAGOVER_PT_GUARDED_BY(x) LAGOVER_TSA_(pt_guarded_by(x))

/// Function that acquires the capability (and does not release it).
#define LAGOVER_ACQUIRE(...) LAGOVER_TSA_(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define LAGOVER_RELEASE(...) LAGOVER_TSA_(release_capability(__VA_ARGS__))

/// Function that may acquire the capability; `...` starts with the
/// success value returned when it did.
#define LAGOVER_TRY_ACQUIRE(...) \
  LAGOVER_TSA_(try_acquire_capability(__VA_ARGS__))

/// Function whose caller must already hold the capability.
#define LAGOVER_REQUIRES(...) LAGOVER_TSA_(requires_capability(__VA_ARGS__))

/// Function whose caller must NOT hold the capability (it acquires the
/// lock itself, so a holding caller would self-deadlock).
#define LAGOVER_EXCLUDES(...) LAGOVER_TSA_(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its
/// result.
#define LAGOVER_RETURN_CAPABILITY(x) LAGOVER_TSA_(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to
/// the analysis. Use only with a comment explaining why.
#define LAGOVER_NO_THREAD_SAFETY_ANALYSIS \
  LAGOVER_TSA_(no_thread_safety_analysis)

// ---------------------------------------------------------------------
// Concurrency-contract markers. These expand to nothing on every
// compiler — they exist for humans and for scripts/lagover_lint.py,
// which collects the marked type names and enforces:
//
//   * mutable-global: a non-const static may only exist if it is a
//     std::atomic, a LAGOVER_THREAD_SAFE type, or (inside
//     src/telemetry/ only) a LAGOVER_THREAD_HOSTILE type.
//   * hostile-escape: a LAGOVER_THREAD_HOSTILE type must not be placed
//     in static storage outside src/telemetry/ and must not appear at
//     all in src/parallel/ (the future multi-threaded round engine).

/// The type is internally synchronized: every public member function
/// is safe to call from any thread concurrently. Apply only when the
/// clang thread-safety build proves the claim.
#define LAGOVER_THREAD_SAFE

/// The type is DELIBERATELY single-threaded (per-run simulation state,
/// deterministic RNG streams, ...). Instances must stay confined to
/// one thread; the lint bans them from static storage outside
/// src/telemetry/ and from src/parallel/ entirely.
#define LAGOVER_THREAD_HOSTILE
