// Error-handling helpers: contract checks that abort with a readable
// message. Following C++ Core Guidelines I.6/E.12 we use explicit
// precondition checks at API boundaries; internal invariants use
// LAGOVER_ASSERT which can be compiled out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lagover {

/// Thrown when a user-facing API receives arguments that violate its
/// documented preconditions (e.g. negative fanout).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation cannot proceed because the object is in an
/// incompatible state (e.g. attaching a node that already has a parent).
class InvalidState : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_check(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::fprintf(stderr, "[lagover] %s failed: %s at %s:%d%s%s\n", kind, expr,
               file, line, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace lagover

/// Precondition check at public API boundaries; always on.
#define LAGOVER_EXPECTS(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::lagover::fail_check("precondition", #cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Internal invariant check; always on (simulation code is not hot enough
/// to justify compiling these out, and silent corruption is worse).
#define LAGOVER_ASSERT(cond)                                            \
  do {                                                                  \
    if (!(cond))                                                        \
      ::lagover::fail_check("invariant", #cond, __FILE__, __LINE__, ""); \
  } while (false)

#define LAGOVER_ASSERT_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond))                                                          \
      ::lagover::fail_check("invariant", #cond, __FILE__, __LINE__, msg); \
  } while (false)
