// Deterministic pseudo-random number generation for reproducible
// simulations. We implement SplitMix64 (seeding / cheap streams) and
// xoshiro256** (main generator) rather than depend on std::mt19937's
// platform-invariant-but-heavy state, and expose distribution helpers
// whose results are identical across platforms (std::uniform_*
// distributions are not guaranteed to be).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace lagover {

/// SplitMix64: tiny, passes BigCrush, ideal for expanding one 64-bit seed
/// into generator state or for independent low-cost streams.
class LAGOVER_THREAD_HOSTILE SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// standard algorithms, though the helpers below are preferred for
/// cross-platform determinism.
class LAGOVER_THREAD_HOSTILE Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
  /// method (unbiased, deterministic across platforms).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    LAGOVER_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    LAGOVER_ASSERT(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    LAGOVER_ASSERT(rate > 0);
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  /// Fisher-Yates shuffle, deterministic for a given seed.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    LAGOVER_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    LAGOVER_EXPECTS(k <= n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::size_t>(next_below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  /// Derive an independent child generator (e.g. one per simulated node).
  Rng split() noexcept { return Rng{(*this)()}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lagover
