// Minimal leveled logger. Simulation code logs through this so tests can
// silence output and benches can raise verbosity with a flag.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace lagover {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logger. Not thread-safe by design: the simulators are
/// single-threaded and the benches run sequentially.
class Logger {
 public:
  static Logger& instance() noexcept {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (!enabled(level)) return;
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[%s] ", name(level));
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
  }

 private:
  Logger() = default;

  static const char* name(LogLevel level) noexcept {
    switch (level) {
      case LogLevel::kTrace: return "trace";
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
};

}  // namespace lagover

#define LAGOVER_LOG(level, ...)                                      \
  do {                                                               \
    if (::lagover::Logger::instance().enabled(level))                \
      ::lagover::Logger::instance().log(level, __VA_ARGS__);         \
  } while (false)

#define LAGOVER_TRACE(...) LAGOVER_LOG(::lagover::LogLevel::kTrace, __VA_ARGS__)
#define LAGOVER_DEBUG(...) LAGOVER_LOG(::lagover::LogLevel::kDebug, __VA_ARGS__)
#define LAGOVER_INFO(...) LAGOVER_LOG(::lagover::LogLevel::kInfo, __VA_ARGS__)
#define LAGOVER_WARN(...) LAGOVER_LOG(::lagover::LogLevel::kWarn, __VA_ARGS__)
#define LAGOVER_ERROR(...) LAGOVER_LOG(::lagover::LogLevel::kError, __VA_ARGS__)
