// Minimal leveled logger. Simulation code logs through this so tests can
// silence output and benches can raise verbosity with a flag.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "common/thread_annotations.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logger. Thread-safe: the level is a relaxed atomic
/// (coordinators can retune verbosity while workers log), each
/// emission builds its line in a stack buffer, fprintf(stderr) is
/// atomic per call under POSIX, and the log-bus mirror is an
/// internally-locked EventBus publish. Lines from concurrent threads
/// interleave whole, never torn.
class LAGOVER_THREAD_SAFE Logger {
 public:
  static Logger& instance() noexcept {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const noexcept { return level >= this->level(); }

  void log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    // kOff is a threshold, not an emission level: a direct call with it
    // must never print (enabled(kOff) is trivially true at any
    // threshold, so it needs its own check).
    if (level == LogLevel::kOff || !enabled(level)) return;
    char message[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof(message), fmt, args);
    va_end(args);
    const double sim_time = telemetry::sim_now();
    const std::uint64_t wall_ns = telemetry::wall_nanos();
    std::fprintf(stderr, "[t=%.2f w=%lluus %s] %s\n", sim_time,
                 static_cast<unsigned long long>(wall_ns / 1000),
                 name(level), message);
    if (telemetry::enabled())
      telemetry::log_bus().publish(
          {sim_time, wall_ns, static_cast<int>(level), message});
  }

 private:
  Logger() = default;

  static const char* name(LogLevel level) noexcept {
    switch (level) {
      case LogLevel::kTrace: return "trace";
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "?";
  }

  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

/// Parses a --log-level flag value ("trace", "debug", "info", "warn",
/// "error", "off"); unknown names fall back to kWarn (the default).
inline LogLevel parse_log_level(const std::string& name) noexcept {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace lagover

#define LAGOVER_LOG(level, ...)                                      \
  do {                                                               \
    if (::lagover::Logger::instance().enabled(level))                \
      ::lagover::Logger::instance().log(level, __VA_ARGS__);         \
  } while (false)

#define LAGOVER_TRACE(...) LAGOVER_LOG(::lagover::LogLevel::kTrace, __VA_ARGS__)
#define LAGOVER_DEBUG(...) LAGOVER_LOG(::lagover::LogLevel::kDebug, __VA_ARGS__)
#define LAGOVER_INFO(...) LAGOVER_LOG(::lagover::LogLevel::kInfo, __VA_ARGS__)
#define LAGOVER_WARN(...) LAGOVER_LOG(::lagover::LogLevel::kWarn, __VA_ARGS__)
#define LAGOVER_ERROR(...) LAGOVER_LOG(::lagover::LogLevel::kError, __VA_ARGS__)
