#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace lagover {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LAGOVER_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LAGOVER_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string Table::to_json() const {
  Json header = Json::array();
  for (const auto& cell : header_) header.push_back(Json::string(cell));
  Json rows = Json::array();
  for (const auto& row : rows_) {
    Json json_row = Json::array();
    for (const auto& cell : row) json_row.push_back(Json::string(cell));
    rows.push_back(std::move(json_row));
  }
  Json root = Json::object();
  root.set("header", std::move(header));
  root.set("rows", std::move(rows));
  return root.dump_pretty();
}

bool Table::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_pair(double a, double b, int precision) {
  return format_double(a, precision) + " / " + format_double(b, precision);
}

}  // namespace lagover
