// Annotated mutex wrapper. libstdc++'s std::mutex carries no clang
// capability attributes, so guarding data with it leaves the
// -Wthread-safety analysis blind; lagover::Mutex is the same
// std::mutex wearing LAGOVER_CAPABILITY, and lagover::MutexLock is the
// scoped acquire/release the analysis can follow. All guarded state in
// the tree uses these (the `unannotated-mutex` lint rule flags a raw
// or unguarding mutex member).
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace lagover {

/// std::mutex as a clang capability. Prefer MutexLock over manual
/// lock()/unlock() pairs so the analysis sees balanced scopes.
class LAGOVER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LAGOVER_ACQUIRE() { mutex_.lock(); }
  void unlock() LAGOVER_RELEASE() { mutex_.unlock(); }
  bool try_lock() LAGOVER_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII scope holding a Mutex for its lifetime.
class LAGOVER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) LAGOVER_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() LAGOVER_RELEASE() { mutex_->unlock(); }

 private:
  Mutex* const mutex_;
};

}  // namespace lagover
