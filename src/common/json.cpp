#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace lagover {

std::string json_escape(const std::string& text) {
  std::string out = "\"";
  for (unsigned char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  out += '"';
  return out;
}

Json Json::null() { return Json(); }

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_value_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_value_ = value;
  return json;
}

Json Json::integer(std::int64_t value) {
  Json json;
  json.kind_ = Kind::kInteger;
  json.integer_value_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_value_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json& Json::push_back(Json value) {
  LAGOVER_EXPECTS(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

Json& Json::set(const std::string& key, Json value) {
  LAGOVER_EXPECTS(kind_ == Kind::kObject);
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

void Json::write(std::string& out, int indent, bool pretty) const {
  const std::string pad(pretty ? static_cast<std::size_t>(indent) * 2 : 0,
                        ' ');
  const std::string inner_pad(
      pretty ? (static_cast<std::size_t>(indent) + 1) * 2 : 0, ' ');
  const char* newline = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_value_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(integer_value_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_value_)) {
        out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.10g", number_value_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += json_escape(string_value_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += inner_pad;
        elements_[i].write(out, indent + 1, pretty);
        if (i + 1 < elements_.size()) out += ',';
        out += newline;
      }
      out += pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        out += json_escape(members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.write(out, indent + 1, pretty);
        if (i + 1 < members_.size()) out += ',';
        out += newline;
      }
      out += pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, false);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 0, true);
  return out;
}

}  // namespace lagover
