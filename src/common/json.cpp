#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace lagover {

std::string json_escape(const std::string& text) {
  std::string out = "\"";
  for (unsigned char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  out += '"';
  return out;
}

Json Json::null() { return Json(); }

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_value_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_value_ = value;
  return json;
}

Json Json::integer(std::int64_t value) {
  Json json;
  json.kind_ = Kind::kInteger;
  json.integer_value_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_value_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json& Json::push_back(Json value) {
  LAGOVER_EXPECTS(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

bool Json::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::kBool ? bool_value_ : fallback;
}

double Json::as_number(double fallback) const noexcept {
  if (kind_ == Kind::kNumber) return number_value_;
  if (kind_ == Kind::kInteger) return static_cast<double>(integer_value_);
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const noexcept {
  if (kind_ == Kind::kInteger) return integer_value_;
  if (kind_ == Kind::kNumber) return static_cast<std::int64_t>(number_value_);
  return fallback;
}

const std::string& Json::as_string() const noexcept {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_value_ : kEmpty;
}

std::size_t Json::size() const noexcept {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  LAGOVER_EXPECTS(kind_ == Kind::kArray && index < elements_.size());
  return elements_[index];
}

const Json* Json::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a [begin, end) byte range. Strict
/// RFC 8259 except that it accepts any \uXXXX escape verbatim as a
/// UTF-8 encoded code point without surrogate-pair pairing (telemetry
/// strings are ASCII; this keeps the decoder small).
class Parser {
 public:
  Parser(const char* begin, const char* end) : cursor_(begin), end_(end) {}

  bool parse_document(Json& out, std::string* error) {
    skip_whitespace();
    if (!parse_value(out, 0)) {
      fail(error);
      return false;
    }
    skip_whitespace();
    if (cursor_ != end_) {
      message_ = "trailing characters after document";
      fail(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void skip_whitespace() {
    while (cursor_ != end_ &&
           (*cursor_ == ' ' || *cursor_ == '\t' || *cursor_ == '\n' ||
            *cursor_ == '\r'))
      ++cursor_;
  }

  bool consume_literal(const char* literal) {
    const char* probe = cursor_;
    for (; *literal != '\0'; ++literal, ++probe) {
      if (probe == end_ || *probe != *literal) return false;
    }
    cursor_ = probe;
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) {
      message_ = "nesting too deep";
      return false;
    }
    if (cursor_ == end_) {
      message_ = "unexpected end of input";
      return false;
    }
    switch (*cursor_) {
      case 'n':
        if (!consume_literal("null")) break;
        out = Json::null();
        return true;
      case 't':
        if (!consume_literal("true")) break;
        out = Json::boolean(true);
        return true;
      case 'f':
        if (!consume_literal("false")) break;
        out = Json::boolean(false);
        return true;
      case '"':
        return parse_string_value(out);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
    message_ = "invalid literal";
    return false;
  }

  bool parse_number(Json& out) {
    const char* start = cursor_;
    if (cursor_ != end_ && *cursor_ == '-') ++cursor_;
    bool digits = false;
    while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') {
      ++cursor_;
      digits = true;
    }
    bool integral = true;
    if (cursor_ != end_ && *cursor_ == '.') {
      integral = false;
      ++cursor_;
      bool fraction = false;
      while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') {
        ++cursor_;
        fraction = true;
      }
      if (!fraction) digits = false;
    }
    if (cursor_ != end_ && (*cursor_ == 'e' || *cursor_ == 'E')) {
      integral = false;
      ++cursor_;
      if (cursor_ != end_ && (*cursor_ == '+' || *cursor_ == '-')) ++cursor_;
      bool exponent = false;
      while (cursor_ != end_ && *cursor_ >= '0' && *cursor_ <= '9') {
        ++cursor_;
        exponent = true;
      }
      if (!exponent) digits = false;
    }
    if (!digits) {
      message_ = "invalid number";
      return false;
    }
    const std::string text(start, cursor_);
    if (integral) {
      errno = 0;
      char* parse_end = nullptr;
      const long long value = std::strtoll(text.c_str(), &parse_end, 10);
      if (errno == 0 && parse_end != nullptr && *parse_end == '\0') {
        out = Json::integer(value);
        return true;
      }
      // Out-of-range integers fall through to double precision.
    }
    out = Json::number(std::strtod(text.c_str(), nullptr));
    return true;
  }

  bool parse_string_value(Json& out) {
    std::string value;
    if (!parse_string(value)) return false;
    out = Json::string(std::move(value));
    return true;
  }

  bool parse_string(std::string& out) {
    ++cursor_;  // opening quote
    while (cursor_ != end_) {
      const unsigned char ch = static_cast<unsigned char>(*cursor_);
      if (ch == '"') {
        ++cursor_;
        return true;
      }
      if (ch < 0x20) {
        message_ = "unescaped control character in string";
        return false;
      }
      if (ch != '\\') {
        out += static_cast<char>(ch);
        ++cursor_;
        continue;
      }
      ++cursor_;
      if (cursor_ == end_) break;
      switch (*cursor_) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++cursor_;
            if (cursor_ == end_) {
              message_ = "truncated \\u escape";
              return false;
            }
            const char hex = *cursor_;
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              message_ = "invalid \\u escape";
              return false;
            }
          }
          append_utf8(out, code);
          break;
        }
        default:
          message_ = "invalid escape";
          return false;
      }
      ++cursor_;
    }
    message_ = "unterminated string";
    return false;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  bool parse_array(Json& out, int depth) {
    ++cursor_;  // '['
    out = Json::array();
    skip_whitespace();
    if (cursor_ != end_ && *cursor_ == ']') {
      ++cursor_;
      return true;
    }
    while (true) {
      skip_whitespace();
      Json element;
      if (!parse_value(element, depth + 1)) return false;
      out.push_back(std::move(element));
      skip_whitespace();
      if (cursor_ == end_) break;
      if (*cursor_ == ',') {
        ++cursor_;
        continue;
      }
      if (*cursor_ == ']') {
        ++cursor_;
        return true;
      }
      message_ = "expected ',' or ']' in array";
      return false;
    }
    message_ = "unterminated array";
    return false;
  }

  bool parse_object(Json& out, int depth) {
    ++cursor_;  // '{'
    out = Json::object();
    skip_whitespace();
    if (cursor_ != end_ && *cursor_ == '}') {
      ++cursor_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (cursor_ == end_ || *cursor_ != '"') {
        message_ = "expected string key in object";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (cursor_ == end_ || *cursor_ != ':') {
        message_ = "expected ':' in object";
        return false;
      }
      ++cursor_;
      skip_whitespace();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(key, std::move(value));
      skip_whitespace();
      if (cursor_ == end_) break;
      if (*cursor_ == ',') {
        ++cursor_;
        continue;
      }
      if (*cursor_ == '}') {
        ++cursor_;
        return true;
      }
      message_ = "expected ',' or '}' in object";
      return false;
    }
    message_ = "unterminated object";
    return false;
  }

  void fail(std::string* error) const {
    if (error != nullptr)
      *error = message_.empty() ? "malformed JSON" : message_;
  }

  const char* cursor_;
  const char* end_;
  std::string message_;
};

}  // namespace

bool Json::parse(const std::string& text, Json& out, std::string* error) {
  Parser parser(text.data(), text.data() + text.size());
  Json parsed;
  if (!parser.parse_document(parsed, error)) {
    out = Json::null();
    return false;
  }
  out = std::move(parsed);
  return true;
}

Json& Json::set(const std::string& key, Json value) {
  LAGOVER_EXPECTS(kind_ == Kind::kObject);
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

void Json::write(std::string& out, int indent, bool pretty) const {
  const std::string pad(pretty ? static_cast<std::size_t>(indent) * 2 : 0,
                        ' ');
  const std::string inner_pad(
      pretty ? (static_cast<std::size_t>(indent) + 1) * 2 : 0, ' ');
  const char* newline = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_value_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(integer_value_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_value_)) {
        out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.10g", number_value_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += json_escape(string_value_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += inner_pad;
        elements_[i].write(out, indent + 1, pretty);
        if (i + 1 < elements_.size()) out += ',';
        out += newline;
      }
      out += pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        out += json_escape(members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.write(out, indent + 1, pretty);
        if (i + 1 < members_.size()) out += ',';
        out += newline;
      }
      out += pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, false);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 0, true);
  return out;
}

}  // namespace lagover
