#include "health/health.hpp"

namespace lagover::health {

std::string to_string(DetectionPolicy policy) {
  switch (policy) {
    case DetectionPolicy::kFixedMisses: return "fixed-misses";
    case DetectionPolicy::kPhiAccrual: return "phi-accrual";
  }
  return "?";
}

std::string to_string(FailoverPolicy policy) {
  switch (policy) {
    case FailoverPolicy::kOracleRejoin: return "oracle-rejoin";
    case FailoverPolicy::kLadder: return "ladder";
  }
  return "?";
}

}  // namespace lagover::health
