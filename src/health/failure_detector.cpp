#include "health/failure_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lagover::health {

PhiAccrualDetector::PhiAccrualDetector(std::size_t node_count,
                                       PhiConfig config) {
  resize(node_count, config);
}

void PhiAccrualDetector::resize(std::size_t node_count, PhiConfig config) {
  LAGOVER_EXPECTS(config.threshold > 0.0);
  LAGOVER_EXPECTS(config.window >= 2);
  LAGOVER_EXPECTS(config.min_std_fraction > 0.0);
  LAGOVER_EXPECTS(config.acceptable_pause >= 0.0);
  LAGOVER_EXPECTS(config.min_samples >= 2);
  config_ = config;
  links_.assign(node_count, Link{});
  for (auto& link : links_) link.intervals.assign(config_.window, 0.0);
}

void PhiAccrualDetector::heartbeat(NodeId link, double now) {
  LAGOVER_EXPECTS(link < links_.size());
  Link& state = links_[link];
  if (state.last_heartbeat >= 0.0) {
    const double interval = now - state.last_heartbeat;
    if (interval > 0.0) {
      if (state.count == state.intervals.size()) {
        const double evicted = state.intervals[state.next];
        state.sum -= evicted;
        state.sum_sq -= evicted * evicted;
      } else {
        ++state.count;
      }
      state.intervals[state.next] = interval;
      state.next = (state.next + 1) % state.intervals.size();
      state.sum += interval;
      state.sum_sq += interval * interval;
    }
  }
  state.last_heartbeat = now;
}

bool PhiAccrualDetector::primed(NodeId link) const {
  LAGOVER_EXPECTS(link < links_.size());
  return links_[link].count >= config_.min_samples;
}

double PhiAccrualDetector::phi(NodeId link, double now) const {
  LAGOVER_EXPECTS(link < links_.size());
  const Link& state = links_[link];
  if (state.count < config_.min_samples || state.last_heartbeat < 0.0)
    return 0.0;
  const double elapsed =
      now - state.last_heartbeat - config_.acceptable_pause;
  if (elapsed <= 0.0) return 0.0;
  const double n = static_cast<double>(state.count);
  const double mean = state.sum / n;
  const double variance =
      std::max(0.0, state.sum_sq / n - mean * mean);
  const double sigma =
      std::max(std::sqrt(variance), config_.min_std_fraction * mean);
  // P(silence this long is benign) under the fitted normal; phi is its
  // negative decimal log, clamped so a dead link cannot overflow.
  const double z = (elapsed - mean) / (sigma * std::sqrt(2.0));
  const double p_later = 0.5 * std::erfc(z);
  if (p_later <= 1e-30) return 30.0;
  return -std::log10(p_later);
}

bool PhiAccrualDetector::suspect(NodeId link, double now) const {
  return phi(link, now) >= config_.threshold;
}

void PhiAccrualDetector::reset(NodeId link) {
  LAGOVER_EXPECTS(link < links_.size());
  Link& state = links_[link];
  state.next = 0;
  state.count = 0;
  state.last_heartbeat = -1.0;
  state.sum = 0.0;
  state.sum_sq = 0.0;
}

std::size_t PhiAccrualDetector::interval_count(NodeId link) const {
  LAGOVER_EXPECTS(link < links_.size());
  return links_[link].count;
}

double PhiAccrualDetector::mean_interval(NodeId link) const {
  LAGOVER_EXPECTS(link < links_.size());
  const Link& state = links_[link];
  if (state.count == 0) return 0.0;
  return state.sum / static_cast<double>(state.count);
}

}  // namespace lagover::health
