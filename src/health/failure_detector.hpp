// Phi-accrual-style adaptive failure detection (Hayashibara et al.,
// "The phi accrual failure detector", as deployed in Cassandra/Akka
// membership). Each parent-child link keeps a sliding window of
// inter-heartbeat intervals; instead of a binary alive/dead verdict
// after a fixed number of missed polls, the detector outputs a
// continuous suspicion level
//
//   phi(t) = -log10( P(next heartbeat arrives later than t) )
//
// under a normal model fitted to the windowed intervals. A link that
// heartbeats every 1.0 time units reaches a given phi far sooner after
// silence than a link that legitimately heartbeats every 4.0 units, so
// one threshold adapts across heterogeneous poll cadences and message
// -loss regimes without per-link tuning.
//
// The detector is pure bookkeeping: it consumes no RNG and schedules
// nothing, so attaching it to an engine cannot perturb a fault-free run.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace lagover::health {

/// Tuning knobs for the phi-accrual detector.
struct PhiConfig {
  /// Suspicion threshold: the link is suspected once phi >= threshold.
  /// phi = 1 means ~10% chance the silence is benign, phi = 2 ~1%, etc.
  /// 8 is the Akka/Cassandra production default: with the stddev floor
  /// below it fires after ~3 clean poll periods (on par with the fixed
  /// 3-miss rule) but backs off once loss-stretched intervals widen the
  /// window — adaptive tolerance instead of a hair trigger.
  double threshold = 8.0;
  /// Sliding window of inter-heartbeat intervals per link.
  std::size_t window = 16;
  /// Floor on the fitted standard deviation, as a fraction of the mean
  /// interval — guards against a perfectly regular history making the
  /// detector hair-triggered.
  double min_std_fraction = 0.35;
  /// Grace period added to the expected arrival (absorbs benign jitter,
  /// e.g. a single GC pause or latency spike).
  double acceptable_pause = 0.0;
  /// Intervals required before phi is meaningful; until then callers
  /// should fall back to their fixed-miss policy.
  std::size_t min_samples = 3;
};

/// Per-link phi-accrual estimator. Links are indexed by the child's
/// NodeId (each child monitors exactly one parent at a time).
class PhiAccrualDetector {
 public:
  PhiAccrualDetector() = default;
  PhiAccrualDetector(std::size_t node_count, PhiConfig config);

  void resize(std::size_t node_count, PhiConfig config);

  /// Records a heartbeat (successfully delivered poll) on `link` at `now`.
  void heartbeat(NodeId link, double now);

  /// True once the link has at least min_samples intervals of history.
  bool primed(NodeId link) const;

  /// Current suspicion level; 0 when unprimed or heartbeat just arrived.
  double phi(NodeId link, double now) const;

  /// phi(link, now) >= threshold (always false while unprimed).
  bool suspect(NodeId link, double now) const;

  /// Forgets the link's history (detach, crash, new parent).
  void reset(NodeId link);

  std::size_t interval_count(NodeId link) const;
  double mean_interval(NodeId link) const;

  const PhiConfig& config() const noexcept { return config_; }

 private:
  struct Link {
    std::vector<double> intervals;  ///< ring buffer of size config.window
    std::size_t next = 0;           ///< ring write position
    std::size_t count = 0;          ///< valid entries (<= window)
    double last_heartbeat = -1.0;
    double sum = 0.0;
    double sum_sq = 0.0;
  };

  PhiConfig config_;
  std::vector<Link> links_;
};

}  // namespace lagover::health
