// Umbrella for the self-healing membership layer: the detection /
// failover policy knobs shared by both construction engines, plus the
// adaptive failure detector and the epoch-fenced lease book.
//
// Design invariant (mirrors the fault layer's): the health layer is
// pure bookkeeping on the fault-free path. It consumes no engine RNG
// and schedules no events of its own, so enabling it with no faults
// active leaves a run byte-identical to the seed behavior
// (pinned by ChaosRecoveryTest.EmptyPlanIsByteIdentical*).
#pragma once

#include <string>

#include "health/failure_detector.hpp"
#include "health/lease.hpp"

namespace lagover::health {

/// How an attached node decides its parent is dead.
enum class DetectionPolicy {
  /// Legacy rule: `parent_poll_miss_limit` consecutive undeliverable
  /// polls. Simple, but one threshold cannot serve both lossy and
  /// clean links: hair-triggered under heavy loss, slow under none.
  kFixedMisses,
  /// Phi-accrual over the link's observed inter-heartbeat intervals
  /// (see failure_detector.hpp). Falls back to the fixed rule until
  /// the link has enough history.
  kPhiAccrual,
};

/// What a node does the instant it suspects its parent.
enum class FailoverPolicy {
  /// Legacy rule: re-enter the orphan loop (Oracle-driven rejoin).
  kOracleRejoin,
  /// Failover ladder: first try the grandparent learned from poll
  /// replies, then the recent-partner cache, each gated by epoch and
  /// latency-constraint checks — only then fall back to the Oracle.
  /// Bounds orphan time even during Oracle outages.
  kLadder,
};

std::string to_string(DetectionPolicy policy);
std::string to_string(FailoverPolicy policy);

/// Health-layer configuration embedded in EngineConfig / AsyncConfig.
/// The defaults reproduce the pre-health engines exactly.
struct HealthConfig {
  DetectionPolicy detection = DetectionPolicy::kFixedMisses;
  FailoverPolicy failover = FailoverPolicy::kOracleRejoin;
  PhiConfig phi;
};

}  // namespace lagover::health
