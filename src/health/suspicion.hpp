// Defense ladder against Byzantine peers: per-node suspicion scores
// accrued from child-side delay verification, receipt audits, rejected
// attach grants, and the Oracle's plausibility filter. Scores drive the
// trust ladder
//
//   trusted -> probation -> quarantined -> blacklisted
//
// Quarantined and blacklisted nodes are "barred": the Oracle stops
// serving them and children of barred parents re-orphan themselves.
// Evidence is fenced by the epoch leases of health/lease.hpp — reports
// observed against a *previous* incarnation of a node are void — but
// accrued scores survive re-incarnation: a peer cannot launder
// suspicion by restarting (the flapper adversary would otherwise reset
// its score on every down/up cycle). A side effect worth knowing: an
// honest node that crashes often accrues "unstable_parent" evidence
// and can end up barred too — deliberate, since an unreliable parent
// is a poor parent regardless of intent.
//
// Pure bookkeeping: no RNG, no scheduling. An engine that sizes a
// SuspicionBook but never reports into it cannot perturb a fault-free
// run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "health/lease.hpp"

namespace lagover::health {

/// Trust ladder states, in escalation order.
enum class TrustState {
  kTrusted,      ///< no (or below-threshold) evidence
  kProbation,    ///< suspicious: still served, but watched
  kQuarantined,  ///< barred: Oracle skips it, children detach
  kBlacklisted,  ///< barred permanently, across re-incarnations
};

/// Stable lower_snake name ("trusted", "probation", ...).
const char* to_string(TrustState state) noexcept;

/// Defense-ladder tuning. `enabled = false` (the default) leaves every
/// defense hook uninstalled: adversarial runs then show the undefended
/// collapse, and fault-free runs stay byte-identical.
struct DefenseConfig {
  bool enabled = false;
  /// Score thresholds for the ladder transitions (score >= threshold).
  double probation_threshold = 2.0;
  double quarantine_threshold = 5.0;
  double blacklist_threshold = 12.0;
  /// Oracle-side plausibility filter: cross-check a candidate's claimed
  /// delay against the tree-depth lower bound implied by its parent's
  /// claim (see fault::ByzantineOracle).
  bool oracle_plausibility = true;
  /// Child-side verification of the delay promised at attach time
  /// against the delay the parent's chain actually provides.
  bool delay_verification = true;
  /// Child-side receipt audit: a parent that relays no feed items over
  /// a full poll period accrues suspicion.
  bool receipt_audit = true;
};

/// Per-node suspicion scores and ladder states. Indexed by NodeId; the
/// source (node 0) is never suspected.
class SuspicionBook {
 public:
  SuspicionBook() = default;
  SuspicionBook(std::size_t node_count, const DefenseConfig& config) {
    resize(node_count, config);
  }

  /// (Re)initializes for `node_count` nodes, all trusted with score 0.
  void resize(std::size_t node_count, const DefenseConfig& config);

  bool enabled() const noexcept { return config_.enabled && !entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  const DefenseConfig& config() const noexcept { return config_; }

  TrustState state(NodeId id) const;
  double score(NodeId id) const;

  /// Barred = quarantined or blacklisted: excluded from Oracle answers,
  /// referrals, the failover ladder, and abandoned by children.
  bool barred(NodeId id) const { return state(id) >= TrustState::kQuarantined; }

  /// Accrues `weight` of evidence against `suspect`, recorded under the
  /// suspect's current incarnation `epoch`. Evidence from an older
  /// incarnation than the last recorded one is fenced (dropped); a newer
  /// epoch advances the fence first. Returns the resulting state.
  TrustState report(NodeId suspect, double weight, Epoch epoch,
                    const char* cause);

  /// Like report(), but counts at most once per (suspect, cause, epoch)
  /// — for deterministic evidence sources that would otherwise re-fire
  /// on every observation (e.g. the Oracle plausibility filter, which
  /// re-examines every candidate on every query).
  TrustState report_once(NodeId suspect, double weight, Epoch epoch,
                         const char* cause);

  /// Epoch fence: `id` re-incarnated. Older-epoch reports are void from
  /// now on; the accrued score and ladder state persist (no suspicion
  /// laundering by restart).
  void note_epoch(NodeId id, Epoch epoch);

  /// All currently barred nodes, ascending by id (deterministic).
  std::vector<NodeId> barred_nodes() const;

  // --- counters for metrics / bench summaries -------------------------
  std::uint64_t reports() const noexcept { return reports_; }
  std::uint64_t fenced_reports() const noexcept { return fenced_reports_; }
  std::uint64_t probations() const noexcept { return probations_; }
  std::uint64_t quarantines() const noexcept { return quarantines_; }
  std::uint64_t blacklists() const noexcept { return blacklists_; }

 private:
  struct Entry {
    double score = 0.0;
    Epoch epoch = kNoEpoch;  ///< incarnation the evidence belongs to
    TrustState state = TrustState::kTrusted;
    /// Cause tags already counted via report_once() this incarnation.
    std::vector<const char*> once_causes;
  };

  /// Applies the thresholds to `entry` after a score change, counting
  /// (and telemetering) ladder escalations.
  void escalate(NodeId id, Entry& entry);

  DefenseConfig config_;
  std::vector<Entry> entries_;
  std::uint64_t reports_ = 0;
  std::uint64_t fenced_reports_ = 0;
  std::uint64_t probations_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t blacklists_ = 0;
};

}  // namespace lagover::health
