#include "health/suspicion.hpp"

#include <cstring>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace lagover::health {

const char* to_string(TrustState state) noexcept {
  switch (state) {
    case TrustState::kTrusted: return "trusted";
    case TrustState::kProbation: return "probation";
    case TrustState::kQuarantined: return "quarantined";
    case TrustState::kBlacklisted: return "blacklisted";
  }
  return "unknown";
}

void SuspicionBook::resize(std::size_t node_count,
                           const DefenseConfig& config) {
  LAGOVER_EXPECTS(config.probation_threshold > 0.0);
  LAGOVER_EXPECTS(config.quarantine_threshold >= config.probation_threshold);
  LAGOVER_EXPECTS(config.blacklist_threshold >= config.quarantine_threshold);
  config_ = config;
  entries_.assign(node_count, Entry{});
  reports_ = fenced_reports_ = 0;
  probations_ = quarantines_ = blacklists_ = 0;
}

TrustState SuspicionBook::state(NodeId id) const {
  if (id >= entries_.size()) return TrustState::kTrusted;
  return entries_[id].state;
}

double SuspicionBook::score(NodeId id) const {
  if (id >= entries_.size()) return 0.0;
  return entries_[id].score;
}

void SuspicionBook::escalate(NodeId id, Entry& entry) {
  (void)id;
  TrustState next = TrustState::kTrusted;
  if (entry.score >= config_.blacklist_threshold) {
    next = TrustState::kBlacklisted;
  } else if (entry.score >= config_.quarantine_threshold) {
    next = TrustState::kQuarantined;
  } else if (entry.score >= config_.probation_threshold) {
    next = TrustState::kProbation;
  }
  // The ladder only climbs: scores never decay and re-incarnation does
  // not reset them, so a state once reached is permanent.
  if (next <= entry.state) return;
  if (next >= TrustState::kProbation && entry.state < TrustState::kProbation) {
    ++probations_;
    TELEM_COUNT("defense.probations", 1);
  }
  if (next >= TrustState::kQuarantined &&
      entry.state < TrustState::kQuarantined) {
    ++quarantines_;
    TELEM_COUNT("defense.quarantines", 1);
  }
  if (next == TrustState::kBlacklisted) {
    ++blacklists_;
    TELEM_COUNT("defense.blacklists", 1);
  }
  entry.state = next;
}

TrustState SuspicionBook::report(NodeId suspect, double weight, Epoch epoch,
                                 const char* cause) {
  (void)cause;
  if (suspect >= entries_.size() || suspect == kSourceId)
    return TrustState::kTrusted;
  Entry& entry = entries_[suspect];
  if (entry.state == TrustState::kBlacklisted) return entry.state;
  // Epoch fence: evidence observed against a previous incarnation is
  // void (it may describe behaviour the restart already ended).
  if (epoch != kNoEpoch && entry.epoch != kNoEpoch) {
    if (epoch < entry.epoch) {
      ++fenced_reports_;
      TELEM_COUNT("defense.fenced_reports", 1);
      return entry.state;
    }
    if (epoch > entry.epoch) note_epoch(suspect, epoch);
  }
  if (entry.epoch == kNoEpoch) entry.epoch = epoch;
  ++reports_;
  TELEM_COUNT("defense.reports", 1);
  entry.score += weight;
  escalate(suspect, entry);
  return entry.state;
}

TrustState SuspicionBook::report_once(NodeId suspect, double weight,
                                      Epoch epoch, const char* cause) {
  if (suspect >= entries_.size() || suspect == kSourceId)
    return TrustState::kTrusted;
  Entry& entry = entries_[suspect];
  if (entry.state == TrustState::kBlacklisted) return entry.state;
  // Advance the incarnation first (resetting the dedup set) so
  // membership is checked against the *current* one.
  if (epoch != kNoEpoch && entry.epoch != kNoEpoch && epoch > entry.epoch)
    note_epoch(suspect, epoch);
  for (const char* seen : entry.once_causes)
    if (std::strcmp(seen, cause) == 0) return entry.state;
  entry.once_causes.push_back(cause);
  return report(suspect, weight, epoch, cause);
}

void SuspicionBook::note_epoch(NodeId id, Epoch epoch) {
  if (id >= entries_.size()) return;
  Entry& entry = entries_[id];
  if (entry.epoch == epoch) return;
  entry.epoch = epoch;
  // Evidence and ladder state deliberately survive re-incarnation: a
  // peer must not be able to launder suspicion by restarting (flappers
  // would otherwise wipe their score on every down/up cycle). The epoch
  // is tracked purely to fence *stale* reports about a previous life;
  // only the once-per-incarnation dedup set starts fresh.
  entry.once_causes.clear();
}

std::vector<NodeId> SuspicionBook::barred_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < entries_.size(); ++id)
    if (entries_[id].state >= TrustState::kQuarantined) out.push_back(id);
  return out;
}

}  // namespace lagover::health
