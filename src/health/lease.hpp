// Epoch-fenced parent leases. Every node carries a generation number
// (epoch) bumped each time it rejoins after a crash or churn departure.
// When a child attaches, the grant it received is a *lease* on a
// specific incarnation of the parent: the parent's epoch at attach
// time. Any piece of state naming another node — the lease itself, a
// referral, a cached partner, a grandparent hint — is stamped with the
// epoch it was learned under, and is rejected ("fenced") when the named
// node has since re-incarnated. Fencing makes ghost children, duplicate
// attachments, and post-rejoin cycles structurally impossible: stale
// grants cannot survive their grantor's death.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace lagover::health {

/// Incarnation number. 0 is reserved as "no epoch known".
using Epoch = std::uint32_t;
inline constexpr Epoch kNoEpoch = 0;

/// Authoritative epoch table plus the per-child parent lease. Pure
/// bookkeeping (no RNG, no scheduling): keeping it attached to an
/// engine cannot perturb a fault-free run.
class EpochBook {
 public:
  EpochBook() = default;
  explicit EpochBook(std::size_t node_count) { resize(node_count); }

  /// (Re)initializes for `node_count` nodes: every node starts in
  /// epoch 1 with no lease.
  void resize(std::size_t node_count);

  std::size_t size() const noexcept { return epoch_.size(); }

  Epoch epoch(NodeId id) const;

  /// New incarnation of `id` (crash rejoin / churn rejoin). Returns the
  /// new epoch.
  Epoch bump(NodeId id);

  /// Records the lease taken by `child` on `parent`'s current epoch.
  void record_attachment(NodeId child, NodeId parent);

  /// Drops child's lease (detach / orphaning).
  void clear_lease(NodeId child);

  bool has_lease(NodeId child) const;
  Epoch lease_epoch(NodeId child) const;

  /// True iff child's lease names parent's *current* incarnation. A
  /// child with no recorded lease is treated as valid (pre-health
  /// attachments and manually built overlays).
  bool lease_valid(NodeId child, NodeId parent) const;

  /// Records that a fence fired (stale lease / grant rejected).
  void note_fence() noexcept { ++fences_; }

  std::uint64_t bumps() const noexcept { return bumps_; }
  std::uint64_t fences() const noexcept { return fences_; }

 private:
  std::vector<Epoch> epoch_;        ///< current incarnation per node
  std::vector<Epoch> lease_;        ///< epoch of child's parent at attach
  std::uint64_t bumps_ = 0;
  std::uint64_t fences_ = 0;
};

}  // namespace lagover::health
