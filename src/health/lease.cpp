#include "health/lease.hpp"

#include "common/error.hpp"

namespace lagover::health {

void EpochBook::resize(std::size_t node_count) {
  epoch_.assign(node_count, 1);
  lease_.assign(node_count, kNoEpoch);
}

Epoch EpochBook::epoch(NodeId id) const {
  LAGOVER_EXPECTS(id < epoch_.size());
  return epoch_[id];
}

Epoch EpochBook::bump(NodeId id) {
  LAGOVER_EXPECTS(id < epoch_.size());
  ++bumps_;
  return ++epoch_[id];
}

void EpochBook::record_attachment(NodeId child, NodeId parent) {
  LAGOVER_EXPECTS(child < lease_.size());
  LAGOVER_EXPECTS(parent < epoch_.size());
  lease_[child] = epoch_[parent];
}

void EpochBook::clear_lease(NodeId child) {
  LAGOVER_EXPECTS(child < lease_.size());
  lease_[child] = kNoEpoch;
}

bool EpochBook::has_lease(NodeId child) const {
  LAGOVER_EXPECTS(child < lease_.size());
  return lease_[child] != kNoEpoch;
}

Epoch EpochBook::lease_epoch(NodeId child) const {
  LAGOVER_EXPECTS(child < lease_.size());
  return lease_[child];
}

bool EpochBook::lease_valid(NodeId child, NodeId parent) const {
  LAGOVER_EXPECTS(child < lease_.size());
  LAGOVER_EXPECTS(parent < epoch_.size());
  return lease_[child] == kNoEpoch || lease_[child] == epoch_[parent];
}

}  // namespace lagover::health
