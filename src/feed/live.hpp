// Live dissemination: feed delivery over an overlay that is being
// built and churned AT THE SAME TIME — the end-to-end situation a real
// RSS swarm lives in, which the paper's evaluation splits into separate
// construction and (implicit) dissemination phases.
//
// Time advances in ticks; one tick = one construction round = one
// latency unit. Every tick: churn + construction act, the source
// publishes on its schedule, direct children poll the source, and every
// other connected node catches up to the items its *current* parent had
// one tick ago (one-hop store-and-forward, exactly the delay model the
// constraints are written against). A node that is detached or offline
// stops receiving and catches up through its next parent after
// reattaching — the staleness spike is the cost of the reconfiguration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "feed/overload.hpp"
#include "stats/timeseries.hpp"

namespace lagover::feed {

struct LiveConfig {
  EngineConfig engine;
  /// Optional churn factory (fresh model per run).
  std::function<std::unique_ptr<ChurnModel>()> churn;
  /// One new item every `publish_every` ticks.
  Round publish_every = 3;
  Round warmup_rounds = 50;  ///< construction before measurement starts
  Round measured_rounds = 400;
  /// Per-relay capacity limits + degradation policy. Empty = the
  /// unlimited pre-capacity behaviour, byte-identical. With limits set,
  /// a relay transfers at most budget_at(tick) items per tick; with
  /// `capacity.shedding` on it sheds deadline-aware (most slack first),
  /// reduces fanout while degraded (with hysteresis on recovery), and
  /// persistently starved children re-parent through the engine's
  /// suspicion/failover ladder.
  CapacityConfig capacity;
  /// Consumers set offline before the first tick (flash-crowd
  /// experiments park the crowd until a FlashCrowdChurn in `churn`
  /// joins them all at once). Empty = no change.
  std::vector<NodeId> park_offline;
};

struct LiveNodeStats {
  NodeId node = kNoNode;
  std::uint64_t deliveries = 0;       ///< measured items received
  std::uint64_t late_deliveries = 0;  ///< staleness above the budget
  double max_staleness = 0.0;
};

struct LiveReport {
  std::uint64_t items_published = 0;  ///< during the measured window
  std::vector<LiveNodeStats> nodes;
  /// Fraction of (item, node) deliveries within the node's budget,
  /// over the measured window.
  double on_time_fraction = 0.0;
  std::uint64_t total_deliveries = 0;
  std::uint64_t total_late = 0;
  /// Per-tick fraction of online nodes whose newest item is within
  /// their staleness budget ("freshness"), for timelines.
  TimeSeries freshness;
  /// Capacity model: item transfers deferred by an exhausted relay
  /// budget or fanout gate (the child falls behind; the items stay
  /// fetchable) and pending items dropped permanently by the per-child
  /// backlog bound.
  std::uint64_t shed_items = 0;
  std::uint64_t queue_drops = 0;
  /// Children the degradation ladder detached from a starving parent.
  std::uint64_t starvation_detaches = 0;
  /// Relay-ticks spent in the degraded (reduced-fanout) state.
  std::uint64_t degraded_relay_ticks = 0;
  /// Largest per-child pending backlog observed.
  std::uint64_t max_backlog = 0;
  /// Oracle admission layer (0 when the engine config declares none).
  std::uint64_t oracle_rejected = 0;
  std::uint64_t oracle_stale_served = 0;
  std::uint64_t oracle_breaker_trips = 0;
  /// Paper-invariant violations seen by the engine's periodic audit
  /// (always 0 in builds without LAGOVER_AUDIT).
  std::uint64_t audit_violations = 0;
};

/// Runs construction + churn + dissemination in one timeline.
LiveReport run_live_dissemination(const Population& population,
                                  const LiveConfig& config);

}  // namespace lagover::feed
