// Live dissemination: feed delivery over an overlay that is being
// built and churned AT THE SAME TIME — the end-to-end situation a real
// RSS swarm lives in, which the paper's evaluation splits into separate
// construction and (implicit) dissemination phases.
//
// Time advances in ticks; one tick = one construction round = one
// latency unit. Every tick: churn + construction act, the source
// publishes on its schedule, direct children poll the source, and every
// other connected node catches up to the items its *current* parent had
// one tick ago (one-hop store-and-forward, exactly the delay model the
// constraints are written against). A node that is detached or offline
// stops receiving and catches up through its next parent after
// reattaching — the staleness spike is the cost of the reconfiguration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "stats/timeseries.hpp"

namespace lagover::feed {

struct LiveConfig {
  EngineConfig engine;
  /// Optional churn factory (fresh model per run).
  std::function<std::unique_ptr<ChurnModel>()> churn;
  /// One new item every `publish_every` ticks.
  Round publish_every = 3;
  Round warmup_rounds = 50;  ///< construction before measurement starts
  Round measured_rounds = 400;
};

struct LiveNodeStats {
  NodeId node = kNoNode;
  std::uint64_t deliveries = 0;       ///< measured items received
  std::uint64_t late_deliveries = 0;  ///< staleness above the budget
  double max_staleness = 0.0;
};

struct LiveReport {
  std::uint64_t items_published = 0;  ///< during the measured window
  std::vector<LiveNodeStats> nodes;
  /// Fraction of (item, node) deliveries within the node's budget,
  /// over the measured window.
  double on_time_fraction = 0.0;
  std::uint64_t total_deliveries = 0;
  std::uint64_t total_late = 0;
  /// Per-tick fraction of online nodes whose newest item is within
  /// their staleness budget ("freshness"), for timelines.
  TimeSeries freshness;
};

/// Runs construction + churn + dissemination in one timeline.
LiveReport run_live_dissemination(const Population& population,
                                  const LiveConfig& config);

}  // namespace lagover::feed
