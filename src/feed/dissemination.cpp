#include "feed/dissemination.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

namespace lagover::feed {

namespace {

/// Transient simulation state for one dissemination run.
class Dissemination {
 public:
  Dissemination(const Overlay& overlay, const DisseminationConfig& config)
      : overlay_(overlay),
        config_(config),
        source_(sim_, config.source),
        tracker_(overlay.node_count()),
        rng_(config.seed ^ 0xFEEDULL) {
    LAGOVER_EXPECTS(config.poll_period > 0.0);
    LAGOVER_EXPECTS(config.hop_delay >= 0.0);
  }

  DisseminationReport run(SimTime duration) {
    source_.start();
    last_pulled_.assign(overlay_.node_count(), 0);

    if (config_.push_source) {
      // Push-capable source: every published item is pushed straight to
      // the direct children (no poll-period staleness, no empty
      // requests); each delivery still costs a hop delay.
      source_.set_on_publish([this](const FeedItem& item) {
        for (NodeId child : overlay_.children(kSourceId)) {
          if (!overlay_.online(child)) continue;
          ++push_messages_;
          sim_.schedule_after(config_.hop_delay,
                              [this, child, item] { deliver(child, item); });
        }
      });
    } else {
      // Pull-only source (RSS): each direct child polls with period T
      // at a random phase (real aggregators are not synchronized).
      for (NodeId poller : overlay_.children(kSourceId)) {
        if (!overlay_.online(poller)) continue;
        ++pollers_;
        const double phase = rng_.uniform_real(0.0, config_.poll_period);
        sim_.schedule_after(phase, [this, poller] { poll(poller); });
      }
    }

    sim_.run_until(duration);
    return build_report(duration);
  }

 private:
  void poll(NodeId poller) {
    for (const FeedItem& item : source_.pull(last_pulled_[poller])) {
      last_pulled_[poller] = item.seq;
      deliver(poller, item);
    }
    sim_.schedule_after(config_.poll_period, [this, poller] { poll(poller); });
  }

  void deliver(NodeId node, FeedItem item) {
    tracker_.record(node, item, sim_.now());
    TELEM_COUNT("feed.deliveries", 1);
    for (NodeId child : overlay_.children(node)) {
      if (!overlay_.online(child)) continue;
      ++push_messages_;
      TELEM_COUNT("feed.push_messages", 1);
      sim_.schedule_after(config_.hop_delay,
                          [this, child, item] { deliver(child, item); });
    }
  }

  DisseminationReport build_report(SimTime duration) const {
    DisseminationReport report;
    report.duration = duration;
    report.items_published = source_.published();
    TELEM_COUNT("feed.items_published", source_.published());
    TELEM_COUNT("feed.source_requests", source_.requests());
    report.source_requests = source_.requests();
    report.source_empty_requests = source_.empty_requests();
    report.source_request_rate =
        duration > 0.0 ? static_cast<double>(source_.requests()) / duration
                       : 0.0;
    report.push_messages = push_messages_;
    report.pollers = pollers_;

    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id) || !overlay_.connected(id)) continue;
      NodeDeliveryStats stats;
      stats.node = id;
      stats.items = tracker_.items_received(static_cast<std::uint32_t>(id));
      stats.max_staleness =
          tracker_.max_staleness(static_cast<std::uint32_t>(id));
      stats.mean_staleness =
          tracker_.mean_staleness(static_cast<std::uint32_t>(id));
      stats.latency_constraint = overlay_.latency_of(id);
      // Small epsilon: the staleness bound is exactly l in the idealized
      // unit model; floating-point scheduling noise must not flag it.
      stats.constraint_met =
          stats.max_staleness <=
          static_cast<double>(stats.latency_constraint) + 1e-9;
      if (!stats.constraint_met) ++report.violations;
      report.nodes.push_back(stats);
    }
    return report;
  }

  const Overlay& overlay_;
  DisseminationConfig config_;
  Simulator sim_;
  FeedSource source_;
  StalenessTracker tracker_;
  Rng rng_;
  std::vector<std::uint64_t> last_pulled_;
  std::uint64_t push_messages_ = 0;
  std::size_t pollers_ = 0;
};

}  // namespace

DisseminationReport run_dissemination(const Overlay& overlay,
                                      const DisseminationConfig& config,
                                      SimTime duration) {
  Dissemination dissemination(overlay, config);
  return dissemination.run(duration);
}

}  // namespace lagover::feed
