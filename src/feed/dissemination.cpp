#include "feed/dissemination.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/span.hpp"

namespace lagover::feed {

namespace {

/// Transient simulation state for one dissemination run.
class Dissemination {
 public:
  Dissemination(const Overlay& overlay, const DisseminationConfig& config)
      : overlay_(overlay),
        config_(config),
        source_(sim_, config.source),
        tracker_(overlay.node_count()),
        rng_(config.seed ^ 0xFEEDULL) {
    LAGOVER_EXPECTS(config.poll_period > 0.0);
    LAGOVER_EXPECTS(config.hop_delay >= 0.0);
    if (!config_.capacity.empty()) {
      sent_window_.assign(overlay_.node_count(), {-1, 0});
      pending_.assign(overlay_.node_count(), 0);
    }
  }

  DisseminationReport run(SimTime duration) {
    source_.start();
    last_pulled_.assign(overlay_.node_count(), 0);

    if (config_.push_source) {
      // Push-capable source: every published item is pushed straight to
      // the direct children (no poll-period staleness, no empty
      // requests); each delivery still costs a hop delay.
      source_.set_on_publish([this](const FeedItem& item) {
        const SimTime sent_at = sim_.now();
        for (NodeId child : forward_targets(kSourceId)) {
          if (!config_.capacity.empty() &&
              !admit_forward(kSourceId, child, item))
            continue;
          ++push_messages_;
          sim_.schedule_after(config_.hop_delay,
                              [this, child, item, sent_at] {
                                on_arrival(child);
                                deliver(child, item, kSourceId, 1, sent_at);
                              });
        }
      });
    } else {
      // Pull-only source (RSS): each direct child polls with period T
      // at a random phase (real aggregators are not synchronized).
      for (NodeId poller : overlay_.children(kSourceId)) {
        if (!overlay_.online(poller)) continue;
        ++pollers_;
        const double phase = rng_.uniform_real(0.0, config_.poll_period);
        sim_.schedule_after(phase, [this, poller] { poll(poller); });
      }
    }

    sim_.run_until(duration);
    return build_report(duration);
  }

 private:
  void poll(NodeId poller) {
    for (const FeedItem& item : source_.pull(last_pulled_[poller])) {
      last_pulled_[poller] = item.seq;
      // The poll hop "starts" at publication: the item sat at the
      // source from then until this poll fired.
      deliver(poller, item, kSourceId, 1, item.published_at);
    }
    sim_.schedule_after(config_.poll_period, [this, poller] { poll(poller); });
  }

  /// Receipt of `item` at `node`, pushed (or polled) from `from`, the
  /// node's `hop`-th overlay hop; `sent_at` is the hop's send instant.
  void deliver(NodeId node, FeedItem item, NodeId from, std::uint32_t hop,
               SimTime sent_at) {
    tracker_.record(node, item, sim_.now());
    TELEM_COUNT("feed.deliveries", 1);
    if (telemetry::enabled()) {
      telemetry::ItemSpan span;
      span.item = item.seq;
      span.kind = from == kSourceId && !config_.push_source
                      ? telemetry::SpanKind::kSourcePoll
                      : telemetry::SpanKind::kDeliver;
      span.node = node;
      span.parent = from;
      span.hop = hop;
      span.published_at = item.published_at;
      span.start = sent_at;
      span.ts = sim_.now();
      span.deadline = static_cast<double>(overlay_.latency_of(node));
      telemetry::record_span(span);
    }
    const SimTime forward_at = sim_.now();
    bool forwarded = false;
    for (NodeId child : forward_targets(node)) {
      if (!config_.capacity.empty() && !admit_forward(node, child, item))
        continue;
      forwarded = true;
      ++push_messages_;
      TELEM_COUNT("feed.push_messages", 1);
      sim_.schedule_after(config_.hop_delay,
                          [this, child, item, node, hop, forward_at] {
                            on_arrival(child);
                            deliver(child, item, node, hop + 1, forward_at);
                          });
    }
    if (forwarded && telemetry::enabled()) {
      telemetry::ItemSpan span;
      span.item = item.seq;
      span.kind = telemetry::SpanKind::kRelay;
      span.node = node;
      span.parent = from;
      span.hop = hop;
      span.published_at = item.published_at;
      span.start = span.ts = forward_at;
      telemetry::record_span(span);
    }
  }

  /// Online children of `node`, in forwarding order. Deadline-aware
  /// shedding serves the tightest latency constraints first, so when
  /// the budget runs out it is the children with the most slack l_i
  /// (who can absorb staleness) that get shed; ties break by id, so the
  /// order — and everything downstream of it — stays deterministic.
  std::vector<NodeId> forward_targets(NodeId node) const {
    std::vector<NodeId> order;
    for (NodeId child : overlay_.children(node))
      if (overlay_.online(child)) order.push_back(child);
    if (!config_.capacity.empty() && config_.capacity.shedding &&
        order.size() > 1)
      std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
        return overlay_.latency_of(a) < overlay_.latency_of(b);
      });
    return order;
  }

  /// Capacity admission for one forward of `item` to `child`: charges
  /// the relay's windowed budget and reserves a slot in the child's
  /// pending queue; records the drop span on refusal.
  bool admit_forward(NodeId node, NodeId child, const FeedItem& item) {
    const std::uint32_t budget = config_.capacity.budget_at(sim_.now());
    if (budget != 0) {
      auto& state = sent_window_[node];
      const auto window = static_cast<std::int64_t>(sim_.now());
      if (state.first != window) state = {window, 0};
      if (state.second >= budget) {
        ++shed_pushes_;
        record_drop(node, child, item, "shed");
        return false;
      }
      ++state.second;
    }
    if (config_.capacity.queue_limit != 0) {
      if (pending_[child] >= config_.capacity.queue_limit) {
        ++queue_drops_;
        record_drop(node, child, item, "queue_full");
        return false;
      }
      ++pending_[child];
      TELEM_GAUGE("feed.queue_depth", static_cast<double>(pending_[child]));
    }
    return true;
  }

  /// Releases `child`'s pending-queue slot when a forward lands.
  void on_arrival(NodeId child) {
    if (config_.capacity.queue_limit == 0) return;
    if (pending_[child] > 0) --pending_[child];
    TELEM_GAUGE("feed.queue_depth", static_cast<double>(pending_[child]));
  }

  void record_drop(NodeId node, NodeId child, const FeedItem& item,
                   const char* cause) {
    if (cause[0] == 's') {
      TELEM_COUNT("feed.shed", 1);
    } else {
      TELEM_COUNT("feed.queue_dropped", 1);
    }
    if (!telemetry::enabled()) return;
    telemetry::ItemSpan span;
    span.item = item.seq;
    span.kind = telemetry::SpanKind::kDrop;
    span.node = child;
    span.parent = node;
    span.published_at = item.published_at;
    span.start = span.ts = sim_.now();
    span.cause = cause;
    telemetry::record_span(span);
  }

  DisseminationReport build_report(SimTime duration) const {
    DisseminationReport report;
    report.duration = duration;
    report.items_published = source_.published();
    TELEM_COUNT("feed.items_published", source_.published());
    TELEM_COUNT("feed.source_requests", source_.requests());
    report.source_requests = source_.requests();
    report.source_empty_requests = source_.empty_requests();
    report.source_request_rate =
        duration > 0.0 ? static_cast<double>(source_.requests()) / duration
                       : 0.0;
    report.push_messages = push_messages_;
    report.pollers = pollers_;
    report.shed_pushes = shed_pushes_;
    report.queue_drops = queue_drops_;

    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id) || !overlay_.connected(id)) continue;
      NodeDeliveryStats stats;
      stats.node = id;
      stats.items = tracker_.items_received(static_cast<std::uint32_t>(id));
      stats.max_staleness =
          tracker_.max_staleness(static_cast<std::uint32_t>(id));
      stats.mean_staleness =
          tracker_.mean_staleness(static_cast<std::uint32_t>(id));
      stats.latency_constraint = overlay_.latency_of(id);
      // Small epsilon: the staleness bound is exactly l in the idealized
      // unit model; floating-point scheduling noise must not flag it.
      stats.constraint_met =
          stats.max_staleness <=
          static_cast<double>(stats.latency_constraint) + 1e-9;
      if (!stats.constraint_met) ++report.violations;
      report.nodes.push_back(stats);
    }
    return report;
  }

  const Overlay& overlay_;
  DisseminationConfig config_;
  Simulator sim_;
  FeedSource source_;
  StalenessTracker tracker_;
  Rng rng_;
  std::vector<std::uint64_t> last_pulled_;
  std::uint64_t push_messages_ = 0;
  std::size_t pollers_ = 0;
  /// Capacity bookkeeping (sized only when limits are configured):
  /// per-relay (window index, forwards in it) and per-child pending
  /// (scheduled but undelivered) forwards.
  std::vector<std::pair<std::int64_t, std::uint32_t>> sent_window_;
  std::vector<std::uint32_t> pending_;
  std::uint64_t shed_pushes_ = 0;
  std::uint64_t queue_drops_ = 0;
};

}  // namespace

DisseminationReport run_dissemination(const Overlay& overlay,
                                      const DisseminationConfig& config,
                                      SimTime duration) {
  const telemetry::PerfPhase perf_phase("dissemination");
  Dissemination dissemination(overlay, config);
  return dissemination.run(duration);
}

}  // namespace lagover::feed
