// Feed dissemination over a constructed LagOver: the source's direct
// children poll it with period T (staggered phases, as real aggregators
// would), everything downstream receives pushes, one overlay hop costing
// `hop_delay`. With T = hop_delay = 1 a node at depth d observes
// staleness at most d — the delay model the construction algorithms
// optimize against — so a satisfied overlay should show zero
// staleness-budget violations here (verified by tests).
#pragma once

#include <cstdint>
#include <vector>

#include "core/overlay.hpp"
#include "feed/feed.hpp"
#include "feed/overload.hpp"
#include "sim/simulator.hpp"

namespace lagover::feed {

struct DisseminationConfig {
  double poll_period = 1.0;  ///< T at the depth-1 pollers
  double hop_delay = 1.0;    ///< per overlay hop push delay
  /// Pull-only source (RSS, the paper's focus): depth-1 nodes poll with
  /// period T. With a push-capable source (Section 2.1.2's alternative)
  /// the source pushes each item to its children directly, removing the
  /// poll-period staleness component and all empty polls.
  bool push_source = false;
  SourceConfig source;
  /// Per-node capacity limits (empty = the unlimited pre-capacity
  /// behaviour, byte-identical).
  CapacityConfig capacity;
  std::uint64_t seed = 1;
};

struct NodeDeliveryStats {
  NodeId node = kNoNode;
  std::uint64_t items = 0;
  double max_staleness = 0.0;
  double mean_staleness = 0.0;
  Delay latency_constraint = 0;
  bool constraint_met = true;  ///< max staleness <= l (+ float slack)
};

struct DisseminationReport {
  SimTime duration = 0.0;
  std::uint64_t items_published = 0;
  std::uint64_t source_requests = 0;
  std::uint64_t source_empty_requests = 0;
  double source_request_rate = 0.0;  ///< requests per time unit
  std::uint64_t push_messages = 0;
  std::size_t pollers = 0;  ///< direct children of the source
  std::vector<NodeDeliveryStats> nodes;
  std::size_t violations = 0;  ///< nodes whose staleness budget broke
  /// Capacity-model drops: forwards shed at the relay's budget and
  /// forwards refused by a child's full pending queue.
  std::uint64_t shed_pushes = 0;
  std::uint64_t queue_drops = 0;
};

/// Runs the pull-then-push dissemination over a (typically converged)
/// overlay snapshot. Only connected nodes participate; the report
/// contains one entry per connected consumer.
DisseminationReport run_dissemination(const Overlay& overlay,
                                      const DisseminationConfig& config,
                                      SimTime duration);

}  // namespace lagover::feed
