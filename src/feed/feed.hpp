// RSS-style feed model: a pull-only source (paper Section 2.1.2 — "the
// information source can support only pulls from clients, as is
// currently for RSS") publishing small items on a schedule, plus the
// staleness bookkeeping shared by the dissemination simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace lagover::feed {

struct FeedItem {
  std::uint64_t seq = 0;
  SimTime published_at = 0.0;
};

enum class PublishSchedule {
  kPeriodic,  ///< one item every `publish_period`
  kPoisson,   ///< exponential inter-arrival with mean `publish_period`
};

struct SourceConfig {
  PublishSchedule schedule = PublishSchedule::kPeriodic;
  double publish_period = 3.0;
  std::uint64_t seed = 1;
};

/// The pull-only feed server. Publishes via the simulator; answers
/// pull(since_seq) and counts every request — the "bandwidth overload"
/// metric is the request count at this object.
class FeedSource {
 public:
  FeedSource(Simulator& sim, SourceConfig config);

  /// Starts the publication schedule (idempotent).
  void start();

  /// Publish hook (push-capable sources): invoked synchronously for
  /// every newly published item.
  void set_on_publish(std::function<void(const FeedItem&)> hook) {
    on_publish_ = std::move(hook);
  }

  /// RSS GET: all items newer than `since_seq`. Counts one request
  /// regardless of whether anything new exists (the paper's complaint:
  /// "clients poll the source irrespective of whether there are any new
  /// updates").
  std::vector<FeedItem> pull(std::uint64_t since_seq);

  std::uint64_t requests() const noexcept { return requests_; }
  std::uint64_t empty_requests() const noexcept { return empty_requests_; }
  std::uint64_t published() const noexcept { return items_.size(); }
  const std::vector<FeedItem>& items() const noexcept { return items_; }

 private:
  void publish_next();

  Simulator& sim_;
  SourceConfig config_;
  Rng rng_;
  bool started_ = false;
  std::vector<FeedItem> items_;
  std::function<void(const FeedItem&)> on_publish_;
  std::uint64_t requests_ = 0;
  std::uint64_t empty_requests_ = 0;
};

/// Per-consumer staleness accounting: staleness of an item at a node is
/// receipt time minus publication time.
class StalenessTracker {
 public:
  explicit StalenessTracker(std::size_t node_count);

  void record(std::uint32_t node, const FeedItem& item, SimTime received_at);

  std::uint64_t items_received(std::uint32_t node) const;
  double max_staleness(std::uint32_t node) const;
  double mean_staleness(std::uint32_t node) const;

 private:
  struct PerNode {
    std::uint64_t count = 0;
    double max = 0.0;
    double sum = 0.0;
  };
  std::vector<PerNode> per_node_;
};

}  // namespace lagover::feed
