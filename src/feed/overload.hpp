// Per-node feed capacity model (the overload-resilience layer's knobs).
// LagOver's founding premise is the bandwidth overload problem: no relay
// can forward unboundedly many items per unit time, and a reproduction
// that models infinite capacity never exercises the one failure class
// the overlay exists to prevent. CapacityConfig bounds a relay's
// forwarding budget per unit-time window and each child's pending
// backlog; CapacitySqueeze windows shrink the budget on a schedule
// (overload fault injection — a background job stealing the relay's
// cycles).
//
// The limits are physics — enforced whenever configured. The `shedding`
// flag is policy: with it on, an over-budget relay sheds deadline-aware
// (children with the most slack l_i are served last, since they can
// absorb staleness), temporarily reduces fanout while degraded, and
// persistently starved children escalate through the suspicion/failover
// ladder to re-parent; with it off the same budget produces arbitrary
// tail drops and no recovery — the undefended collapse benches measure.
//
// An empty config (no budget, no queue bound, no squeezes) leaves every
// feed path byte-identical to the pre-capacity code.
#pragma once

#include <cstdint>
#include <vector>

namespace lagover::feed {

/// One capacity-squeeze window: while active, relay budgets are scaled
/// by `factor` (< 1 squeezes, e.g. 0.5 halves the budget).
struct CapacitySqueeze {
  double start = 0.0;
  double end = 0.0;
  double factor = 0.5;
};

struct CapacityConfig {
  /// Items a relay (or a push-capable source) may forward per unit-time
  /// window; 0 = unlimited.
  std::uint32_t relay_budget = 0;
  /// Pending (scheduled but undelivered) items per child before new
  /// forwards to it are refused; 0 = unbounded.
  std::uint32_t queue_limit = 0;
  /// Graceful-degradation policy (see file comment). Off = undefended:
  /// the budget still binds, but drops are arbitrary and unrecovered.
  bool shedding = false;
  /// While degraded, a relay serves at most
  /// max(1, ceil(children * fanout_factor)) distinct children per item.
  double fanout_factor = 0.5;
  /// Consecutive budget-clean ticks before a degraded relay returns to
  /// full fanout — hysteresis so recovery does not flap.
  int recovery_ticks = 3;
  /// Consecutive starved ticks before a child escalates through the
  /// suspicion/failover ladder (shedding policy only). Deliberately
  /// chronic: during a transient squeeze every backlogged child starves
  /// for a few ticks, and eager re-parenting turns that into a detach
  /// storm that outdamages the overload itself (a detached relay
  /// starves its whole subtree while it queues at the admission-limited
  /// Oracle). Escalation is the remedy for a persistently dead parent,
  /// not a busy one.
  int starve_limit = 30;
  /// Scheduled budget squeezes (inert without a relay_budget).
  std::vector<CapacitySqueeze> squeezes;

  bool empty() const noexcept {
    return relay_budget == 0 && queue_limit == 0;
  }

  /// Effective relay budget at `now`: the configured budget scaled by
  /// every active squeeze, floored at 1 (a squeezed relay trickles, it
  /// does not halt). 0 = unlimited (no budget configured).
  std::uint32_t budget_at(double now) const noexcept {
    if (relay_budget == 0) return 0;
    double budget = static_cast<double>(relay_budget);
    for (const CapacitySqueeze& squeeze : squeezes)
      if (now >= squeeze.start && now < squeeze.end) budget *= squeeze.factor;
    const auto scaled = static_cast<std::uint32_t>(budget);
    return scaled == 0 ? 1U : scaled;
  }
};

}  // namespace lagover::feed
