#include "feed/reliability.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "feed/feed.hpp"
#include "metrics/tree_metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/span.hpp"

namespace lagover::feed {

namespace {

class LossyDissemination {
 public:
  LossyDissemination(const Overlay& overlay, const LossyConfig& config)
      : overlay_(overlay),
        config_(config),
        source_(sim_, config.base.source),
        rng_(config.seed_mix()) {
    // An empty book holds no free-riders; normalize so the hot path has
    // a single null check.
    if (config_.adversary != nullptr && config_.adversary->empty())
      config_.adversary.reset();
    if (!config_.base.capacity.empty())
      sent_window_.assign(overlay_.node_count(), {-1, 0});
  }

  LossyReport run(SimTime duration) {
    source_.start();
    last_polled_.assign(overlay_.node_count(), 0);
    received_.assign(overlay_.node_count(), {});
    delivery_time_.assign(overlay_.node_count(), {});

    for (NodeId poller : overlay_.children(kSourceId)) {
      if (!overlay_.online(poller)) continue;
      const double phase = rng_.uniform_real(0.0, config_.base.poll_period);
      sim_.schedule_after(phase, [this, poller] { poll(poller); });
    }
    if (config_.enable_recovery) {
      for (NodeId id = 1; id < overlay_.node_count(); ++id) {
        if (!overlay_.online(id) || !overlay_.connected(id)) continue;
        if (overlay_.parent(id) == kSourceId) continue;  // polls are reliable
        const double phase =
            rng_.uniform_real(0.0, config_.recovery_period);
        sim_.schedule_after(phase, [this, id] { recover(id); });
      }
    }
    sim_.run_until(duration);
    return build_report(duration);
  }

 private:
  bool has(NodeId node, std::uint64_t seq) const {
    const auto& got = received_[node];
    return seq < got.size() && got[seq] != 0;
  }

  void mark(NodeId node, std::uint64_t seq, SimTime when) {
    auto& got = received_[node];
    auto& times = delivery_time_[node];
    if (seq >= got.size()) {
      got.resize(seq + 1, 0);
      times.resize(seq + 1, -1.0);
    }
    got[seq] = 1;
    times[seq] = when;
  }

  /// Emits a receipt/drop/duplicate span; all identity comes from the
  /// threaded (from, hop, sent_at) so the exported chain is exact even
  /// under loss, duplication, and repair.
  void record_hop(telemetry::SpanKind kind, NodeId node, const FeedItem& item,
                  NodeId from, std::uint32_t hop, SimTime sent_at,
                  const char* cause) {
    if (!telemetry::enabled()) return;
    telemetry::ItemSpan span;
    span.item = item.seq;
    span.kind = kind;
    span.node = node;
    span.parent = from;
    span.hop = hop;
    span.published_at = item.published_at;
    span.start = sent_at;
    span.ts = sim_.now();
    if (kind == telemetry::SpanKind::kSourcePoll ||
        kind == telemetry::SpanKind::kDeliver ||
        kind == telemetry::SpanKind::kRepair)
      span.deadline = static_cast<double>(overlay_.latency_of(node));
    span.cause = cause;
    telemetry::record_span(span);
  }

  void deliver(NodeId node, FeedItem item, bool via_recovery, NodeId from,
               std::uint32_t hop, SimTime sent_at, const char* cause = "") {
    // Duplicate suppression: the sequence number is the identity, so a
    // copy of an already-applied item is dropped (and counted) here —
    // each consumer applies every item at most once.
    if (has(node, item.seq)) {
      ++suppressed_;
      record_hop(telemetry::SpanKind::kDuplicate, node, item, from, hop,
                 sent_at, cause[0] != '\0' ? cause : "suppressed");
      return;
    }
    mark(node, item.seq, sim_.now());
    if (via_recovery)
      ++recovered_;
    else
      ++pushed_;
    record_hop(via_recovery ? telemetry::SpanKind::kRepair
               : from == kSourceId ? telemetry::SpanKind::kSourcePoll
                                   : telemetry::SpanKind::kDeliver,
               node, item, from, hop, sent_at, cause);
    // First receipt: forward downstream (lossy), regardless of how the
    // item arrived — recovered items keep flowing.
    const SimTime forward_at = sim_.now();
    // Free-rider (adversary layer): the node applies the item for
    // itself but never relays it — its whole subtree starves on pushes
    // and must live off repair pulls from... this same node, which
    // ignores those too (see recover()).
    if (config_.adversary != nullptr &&
        config_.adversary->withholds_feed(node)) {
      for (NodeId child : overlay_.children(node)) {
        if (!overlay_.online(child)) continue;
        ++withheld_;
        record_hop(telemetry::SpanKind::kDrop, child, item, node, hop + 1,
                   forward_at, "free_ride");
      }
      return;
    }
    bool forwarded = false;
    // Capacity budget for this relay's unit-time window. The shed check
    // runs BEFORE the loss roll, so a shed child costs no RNG draw and
    // capacity-free runs stay byte-identical. Shed items are not gone:
    // the repair loop recovers them later — overload costs staleness,
    // not items (graceful degradation).
    const std::uint32_t budget = config_.base.capacity.empty()
                                     ? 0
                                     : config_.base.capacity.budget_at(
                                           sim_.now());
    for (NodeId child : forward_targets(node)) {
      if (budget != 0) {
        auto& state = sent_window_[node];
        const auto window = static_cast<std::int64_t>(sim_.now());
        if (state.first != window) state = {window, 0};
        if (state.second >= budget) {
          ++shed_pushes_;
          record_hop(telemetry::SpanKind::kDrop, child, item, node, hop + 1,
                     forward_at, "shed");
          continue;
        }
        ++state.second;
      }
      if (rng_.bernoulli(config_.push_loss)) {
        ++lost_;
        record_hop(telemetry::SpanKind::kDrop, child, item, node, hop + 1,
                   forward_at, "push_loss");
        continue;
      }
      forwarded = true;
      sim_.schedule_after(config_.base.hop_delay,
                          [this, child, item, node, hop, forward_at] {
        deliver(child, item, /*via_recovery=*/false, node, hop + 1,
                forward_at);
      });
      // Duplicate injection (at-least-once transport): the guard comes
      // first so duplicate_probability == 0 draws no extra RNG and
      // legacy runs stay byte-identical.
      if (config_.duplicate_probability > 0.0 &&
          rng_.bernoulli(config_.duplicate_probability)) {
        ++duplicate_pushes_;
        sim_.schedule_after(config_.base.hop_delay,
                            [this, child, item, node, hop, forward_at] {
          deliver(child, item, /*via_recovery=*/false, node, hop + 1,
                  forward_at, "duplicate_push");
        });
      }
    }
    if (forwarded)
      record_hop(telemetry::SpanKind::kRelay, node, item, from, hop,
                 forward_at, "");
  }

  /// Online children of `node`, in forwarding order. Mirrors the base
  /// dissemination: deadline-aware shedding serves the tightest latency
  /// constraints first, so an exhausted budget sheds the children with
  /// the most slack l_i; stable sort keeps id tie-breaks deterministic.
  /// With no capacity configured this is exactly the plain child walk.
  std::vector<NodeId> forward_targets(NodeId node) const {
    std::vector<NodeId> order;
    for (NodeId child : overlay_.children(node))
      if (overlay_.online(child)) order.push_back(child);
    if (!config_.base.capacity.empty() && config_.base.capacity.shedding &&
        order.size() > 1)
      std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
        return overlay_.latency_of(a) < overlay_.latency_of(b);
      });
    return order;
  }

  void poll(NodeId poller) {
    for (const FeedItem& item : source_.pull(last_polled_[poller])) {
      last_polled_[poller] = item.seq;
      // The poll hop starts at publication: the item sat at the source
      // from then until this poll fired.
      deliver(poller, item, /*via_recovery=*/false, kSourceId, 1,
              item.published_at);
    }
    sim_.schedule_after(config_.base.poll_period,
                        [this, poller] { poll(poller); });
  }

  void recover(NodeId node) {
    const NodeId parent = overlay_.parent(node);
    LAGOVER_ASSERT(parent != kNoNode && parent != kSourceId);
    // A free-riding parent ignores repair requests as well: the pull is
    // sent (and counted) but never answered.
    if (config_.adversary != nullptr &&
        config_.adversary->withholds_feed(parent)) {
      ++recovery_pulls_;
      sim_.schedule_after(config_.recovery_period,
                          [this, node] { recover(node); });
      return;
    }
    const auto& parent_got = received_[parent];
    if (config_.repair == RepairMode::kNack) {
      // Gap detection: scan the sequence space up to the parent's
      // high-water mark and NACK exactly the missing numbers — but only
      // when there is something to ask for. Identical repair set to the
      // blanket pull, strictly fewer repair messages.
      std::vector<std::uint64_t> gaps;
      for (std::uint64_t seq = 1; seq < parent_got.size(); ++seq)
        if (parent_got[seq] != 0 && !has(node, seq)) gaps.push_back(seq);
      if (!gaps.empty()) {
        ++recovery_pulls_;
        nacked_items_ += gaps.size();
        const std::uint32_t hop =
            static_cast<std::uint32_t>(overlay_.delay_at(node));
        const SimTime sent_at = sim_.now();
        for (const std::uint64_t seq : gaps) {
          const FeedItem item = source_.items()[seq - 1];
          sim_.schedule_after(config_.base.hop_delay,
                              [this, node, item, parent, hop, sent_at] {
            deliver(node, item, /*via_recovery=*/true, parent, hop, sent_at,
                    "nack");
          });
        }
      }
    } else {
      // Blanket anti-entropy: one pull per tick, the parent answers
      // with everything it has that we lack, after one hop delay.
      ++recovery_pulls_;
      const std::uint32_t hop =
          static_cast<std::uint32_t>(overlay_.delay_at(node));
      const SimTime sent_at = sim_.now();
      for (std::uint64_t seq = 1; seq < parent_got.size(); ++seq) {
        if (parent_got[seq] == 0 || has(node, seq)) continue;
        const FeedItem item = source_.items()[seq - 1];
        sim_.schedule_after(config_.base.hop_delay,
                            [this, node, item, parent, hop, sent_at] {
          deliver(node, item, /*via_recovery=*/true, parent, hop, sent_at,
                  "anti_entropy");
        });
      }
    }
    sim_.schedule_after(config_.recovery_period,
                        [this, node] { recover(node); });
  }

  LossyReport build_report(SimTime duration) const {
    LossyReport report;
    report.duration = duration;
    report.items_published = source_.published();
    report.push_deliveries = pushed_;
    report.recovered_deliveries = recovered_;
    report.lost_pushes = lost_;
    report.recovery_pulls = recovery_pulls_;
    report.applications = pushed_ + recovered_;
    report.duplicate_pushes = duplicate_pushes_;
    report.duplicates_suppressed = suppressed_;
    report.nacked_items = nacked_items_;
    report.withheld_pushes = withheld_;
    report.shed_pushes = shed_pushes_;

    // Exclude the tail window where deliveries may still be in flight.
    const TreeMetrics metrics = compute_tree_metrics(overlay_);
    const double settle = config_.base.poll_period +
                          metrics.max_depth * config_.base.hop_delay +
                          2.0 * config_.recovery_period;
    const double cutoff = duration - settle;

    std::uint64_t counted_items = 0;
    for (const FeedItem& item : source_.items())
      if (item.published_at <= cutoff) ++counted_items;

    std::uint64_t delivered = 0;
    for (NodeId id = 1; id < overlay_.node_count(); ++id) {
      if (!overlay_.online(id) || !overlay_.connected(id)) continue;
      ++report.connected_consumers;
      const double budget = static_cast<double>(overlay_.latency_of(id));
      for (const FeedItem& item : source_.items()) {
        if (item.published_at > cutoff) break;
        if (!has(id, item.seq)) continue;
        ++delivered;
        const double staleness =
            delivery_time_[id][item.seq] - item.published_at;
        if (staleness > budget + 1e-9) ++report.late_deliveries;
      }
    }
    report.expected_deliveries =
        counted_items * report.connected_consumers;
    report.delivery_ratio =
        report.expected_deliveries == 0
            ? 1.0
            : static_cast<double>(delivered) /
                  static_cast<double>(report.expected_deliveries);
    return report;
  }

  const Overlay& overlay_;
  LossyConfig config_;
  Simulator sim_;
  FeedSource source_;
  Rng rng_;
  std::vector<std::uint64_t> last_polled_;
  std::vector<std::vector<char>> received_;       // [node][seq]
  std::vector<std::vector<double>> delivery_time_;  // [node][seq]
  std::uint64_t pushed_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t recovery_pulls_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t duplicate_pushes_ = 0;
  std::uint64_t nacked_items_ = 0;
  std::uint64_t withheld_ = 0;
  /// Capacity bookkeeping (sized only when limits are configured):
  /// per-relay (window index, forwards in it).
  std::vector<std::pair<std::int64_t, std::uint32_t>> sent_window_;
  std::uint64_t shed_pushes_ = 0;
};

}  // namespace

LossyReport run_lossy_dissemination(const Overlay& overlay,
                                    const LossyConfig& config,
                                    SimTime duration) {
  const telemetry::PerfPhase perf_phase("dissemination");
  LAGOVER_EXPECTS(config.push_loss >= 0.0 && config.push_loss < 1.0);
  LAGOVER_EXPECTS(config.recovery_period > 0.0);
  LAGOVER_EXPECTS(config.duplicate_probability >= 0.0 &&
                  config.duplicate_probability < 1.0);
  LossyDissemination dissemination(overlay, config);
  return dissemination.run(duration);
}

}  // namespace lagover::feed
