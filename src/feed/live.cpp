#include "feed/live.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/span.hpp"

namespace lagover::feed {

LiveReport run_live_dissemination(const Population& population,
                                  const LiveConfig& config) {
  LAGOVER_EXPECTS(config.publish_every >= 1);
  Engine engine(population, config.engine);
  if (config.churn) engine.set_churn(config.churn());
  const Overlay& overlay = engine.overlay();

  // Item seq s (1-based) was published at published_at[s].
  std::vector<Round> published_at{0};  // index 0 unused
  std::vector<std::uint64_t> last_seq(overlay.node_count(), 0);
  std::uint64_t source_seq = 0;

  LiveReport report;
  report.nodes.resize(overlay.consumer_count());
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    report.nodes[id - 1].node = id;

  const Round total_rounds = config.warmup_rounds + config.measured_rounds;
  for (Round tick = 1; tick <= total_rounds; ++tick) {
    engine.run_round();

    // Items visible to the source's pollers this tick: everything
    // published strictly earlier (one poll period of delay).
    const std::uint64_t source_seq_prev = source_seq;
    if (tick % config.publish_every == 0) {
      ++source_seq;
      published_at.push_back(tick);
      if (tick > config.warmup_rounds) ++report.items_published;
      if (telemetry::enabled()) {
        telemetry::ItemSpan span;
        span.item = source_seq;
        span.kind = telemetry::SpanKind::kPublish;
        span.node = kSourceId;
        span.published_at = static_cast<double>(tick);
        span.start = span.ts = static_cast<double>(tick);
        telemetry::record_span(span);
      }
    }

    // Synchronous one-hop propagation over the *current* tree.
    std::vector<std::uint64_t> previous = last_seq;
    for (NodeId id = 1; id < overlay.node_count(); ++id) {
      if (!overlay.online(id)) continue;
      const NodeId parent = overlay.parent(id);
      if (parent == kNoNode) continue;
      const std::uint64_t target =
          parent == kSourceId ? source_seq_prev : previous[parent];
      for (std::uint64_t seq = previous[id] + 1; seq <= target; ++seq) {
        const Round staleness = tick - published_at[seq];
        if (published_at[seq] > config.warmup_rounds) {
          auto& stats = report.nodes[id - 1];
          ++stats.deliveries;
          ++report.total_deliveries;
          if (static_cast<Delay>(staleness) > overlay.latency_of(id)) {
            ++stats.late_deliveries;
            ++report.total_late;
          }
          stats.max_staleness =
              std::max(stats.max_staleness, static_cast<double>(staleness));
        }
        if (telemetry::enabled()) {
          telemetry::ItemSpan span;
          span.item = seq;
          span.kind = parent == kSourceId ? telemetry::SpanKind::kSourcePoll
                                          : telemetry::SpanKind::kDeliver;
          span.node = id;
          span.parent = parent;
          span.hop = static_cast<std::uint32_t>(overlay.delay_at(id));
          span.published_at = static_cast<double>(published_at[seq]);
          span.start = static_cast<double>(tick - 1);
          span.ts = static_cast<double>(tick);
          span.deadline = static_cast<double>(overlay.latency_of(id));
          span.epoch = engine.epochs().epoch(id);
          telemetry::record_span(span);
        }
      }
      if (target > last_seq[id]) last_seq[id] = target;
    }

    // Freshness: a node is fresh when it already has every item old
    // enough that its budget requires it.
    if (tick > config.warmup_rounds && overlay.online_count() > 0) {
      std::size_t fresh = 0;
      for (NodeId id = 1; id < overlay.node_count(); ++id) {
        if (!overlay.online(id)) continue;
        // Newest seq whose age is at least the node's budget.
        std::uint64_t due = 0;
        for (std::uint64_t seq = source_seq; seq >= 1; --seq) {
          if (published_at[seq] + overlay.latency_of(id) <= tick) {
            due = seq;
            break;
          }
        }
        if (last_seq[id] >= due) ++fresh;
      }
      report.freshness.add(static_cast<double>(tick),
                           static_cast<double>(fresh) /
                               static_cast<double>(overlay.online_count()));
    }
  }

  report.on_time_fraction =
      report.total_deliveries == 0
          ? 1.0
          : 1.0 - static_cast<double>(report.total_late) /
                      static_cast<double>(report.total_deliveries);
  return report;
}

}  // namespace lagover::feed
