#include "feed/live.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/span.hpp"

namespace lagover::feed {

namespace {

/// Children a degraded relay still serves per tick:
/// max(1, ceil(children * fanout_factor)).
std::size_t degraded_fanout(const Overlay& overlay, NodeId relay,
                            double factor) {
  const auto children = static_cast<double>(overlay.children(relay).size());
  const auto cap = static_cast<std::size_t>(std::ceil(children * factor));
  return std::max<std::size_t>(1, cap);
}

}  // namespace

LiveReport run_live_dissemination(const Population& population,
                                  const LiveConfig& config) {
  const telemetry::PerfPhase perf_phase("dissemination");
  LAGOVER_EXPECTS(config.publish_every >= 1);
  Engine engine(population, config.engine);
  if (config.churn) engine.set_churn(config.churn());
  for (NodeId parked : config.park_offline)
    engine.overlay().set_offline(parked);
  const Overlay& overlay = engine.overlay();

  // Item seq s (1-based) was published at published_at[s].
  std::vector<Round> published_at{0};  // index 0 unused
  std::vector<std::uint64_t> last_seq(overlay.node_count(), 0);
  std::uint64_t source_seq = 0;

  LiveReport report;
  report.nodes.resize(overlay.consumer_count());
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    report.nodes[id - 1].node = id;

  // Capacity-model state (all inert when no limits are configured; the
  // propagation loop below then runs exactly the unlimited code path).
  const CapacityConfig& capacity = config.capacity;
  const bool capacity_on = !capacity.empty();
  // Per-relay item transfers this tick, children served this tick,
  // degraded flag + consecutive clean ticks (recovery hysteresis), and
  // per-child consecutive starved ticks.
  std::vector<std::uint32_t> sent_this_tick;
  std::vector<std::uint32_t> served_children;
  std::vector<char> relay_exhausted;
  std::vector<char> degraded;
  std::vector<int> clean_ticks;
  std::vector<int> starved_ticks;
  if (capacity_on) {
    sent_this_tick.assign(overlay.node_count(), 0);
    served_children.assign(overlay.node_count(), 0);
    relay_exhausted.assign(overlay.node_count(), 0);
    degraded.assign(overlay.node_count(), 0);
    clean_ticks.assign(overlay.node_count(), 0);
    starved_ticks.assign(overlay.node_count(), 0);
  }

  const Round total_rounds = config.warmup_rounds + config.measured_rounds;
  for (Round tick = 1; tick <= total_rounds; ++tick) {
    engine.run_round();

    // Items visible to the source's pollers this tick: everything
    // published strictly earlier (one poll period of delay).
    const std::uint64_t source_seq_prev = source_seq;
    if (tick % config.publish_every == 0) {
      ++source_seq;
      published_at.push_back(tick);
      if (tick > config.warmup_rounds) ++report.items_published;
      if (telemetry::enabled()) {
        telemetry::ItemSpan span;
        span.item = source_seq;
        span.kind = telemetry::SpanKind::kPublish;
        span.node = kSourceId;
        span.published_at = static_cast<double>(tick);
        span.start = span.ts = static_cast<double>(tick);
        telemetry::record_span(span);
      }
    }

    // Synchronous one-hop propagation over the *current* tree. With
    // capacity limits, each relay transfers at most budget_at(tick)
    // items this tick; the visit order decides who gets served before
    // the budget runs out — deadline-aware (tightest l_i first) under
    // the shedding policy, plain id order (arbitrary tail drops) when
    // undefended.
    std::vector<std::uint64_t> previous = last_seq;
    const std::uint32_t tick_budget =
        capacity_on ? capacity.budget_at(static_cast<double>(tick)) : 0;
    if (capacity_on) {
      std::fill(sent_this_tick.begin(), sent_this_tick.end(), 0);
      std::fill(served_children.begin(), served_children.end(), 0);
      std::fill(relay_exhausted.begin(), relay_exhausted.end(), 0);
    }
    std::vector<NodeId> visit;
    visit.reserve(overlay.node_count() - 1);
    for (NodeId id = 1; id < overlay.node_count(); ++id) visit.push_back(id);
    if (capacity_on && capacity.shedding) {
      // Deadline-aware (EDF) shedding order. A node's urgency is the
      // slack of its next pending item: published_at + l_i - now. Nodes
      // whose next item can still arrive on time go first (tightest
      // slack first) so scarce budget buys on-time deliveries; nodes
      // already past their deadline — a joined crowd catching up — go
      // last (least-late first): their misses are sunk either way, so
      // they absorb the staleness. This is what makes degradation
      // graceful: overload costs the slack-rich staleness, not the
      // slack-poor their deadlines.
      constexpr double kLateBase = 1e9;   // already-late band
      constexpr double kNoPending = 2e9;  // nothing to send: order moot
      std::vector<double> urgency(overlay.node_count(), kNoPending);
      for (NodeId id = 1; id < overlay.node_count(); ++id) {
        const std::uint64_t next = previous[id] + 1;
        if (next >= published_at.size()) continue;
        const double slack =
            static_cast<double>(published_at[next]) +
            static_cast<double>(overlay.latency_of(id)) -
            static_cast<double>(tick);
        urgency[id] = slack >= 0.0 ? slack : kLateBase - slack;
      }
      // A relay is as urgent as the most urgent node in its subtree:
      // a backlogged relay looks hopeless by its own slack, but serving
      // it is exactly what unblocks an on-time delivery downstream of
      // it. Propagate the minimum deep-to-shallow (one pass, since
      // depth strictly decreases parent-ward).
      std::vector<NodeId> by_depth = visit;
      std::stable_sort(by_depth.begin(), by_depth.end(),
                       [&](NodeId a, NodeId b) {
                         return overlay.delay_at(a) > overlay.delay_at(b);
                       });
      for (NodeId id : by_depth) {
        const NodeId parent = overlay.parent(id);
        if (parent == kNoNode || parent == kSourceId) continue;
        urgency[parent] = std::min(urgency[parent], urgency[id]);
      }
      std::stable_sort(visit.begin(), visit.end(), [&](NodeId a, NodeId b) {
        return urgency[a] < urgency[b];
      });
    }
    for (NodeId id : visit) {
      if (!overlay.online(id)) continue;
      const NodeId parent = overlay.parent(id);
      if (parent == kNoNode) continue;
      const std::uint64_t target =
          parent == kSourceId ? source_seq_prev : previous[parent];
      // Fanout gate: a degraded relay serves fewer distinct children
      // per tick, concentrating its budget on the tightest deadlines.
      bool cut_off = false;
      std::uint64_t deliver_to = target;
      if (capacity_on && capacity.shedding && degraded[parent] != 0 &&
          target > previous[id] &&
          served_children[parent] >=
              degraded_fanout(overlay, parent, capacity.fanout_factor)) {
        deliver_to = previous[id];
        cut_off = true;
      }
      std::uint64_t delivered_to = previous[id];
      for (std::uint64_t seq = previous[id] + 1; seq <= deliver_to; ++seq) {
        if (capacity_on && tick_budget != 0) {
          if (sent_this_tick[parent] >= tick_budget) {
            cut_off = true;
            relay_exhausted[parent] = 1;
            break;
          }
          ++sent_this_tick[parent];
        }
        const Round staleness = tick - published_at[seq];
        if (published_at[seq] > config.warmup_rounds) {
          auto& stats = report.nodes[id - 1];
          ++stats.deliveries;
          ++report.total_deliveries;
          if (static_cast<Delay>(staleness) > overlay.latency_of(id)) {
            ++stats.late_deliveries;
            ++report.total_late;
          }
          stats.max_staleness =
              std::max(stats.max_staleness, static_cast<double>(staleness));
        }
        if (telemetry::enabled()) {
          telemetry::ItemSpan span;
          span.item = seq;
          span.kind = parent == kSourceId ? telemetry::SpanKind::kSourcePoll
                                          : telemetry::SpanKind::kDeliver;
          span.node = id;
          span.parent = parent;
          span.hop = static_cast<std::uint32_t>(overlay.delay_at(id));
          span.published_at = static_cast<double>(published_at[seq]);
          span.start = static_cast<double>(tick - 1);
          span.ts = static_cast<double>(tick);
          span.deadline = static_cast<double>(overlay.latency_of(id));
          span.epoch = engine.epochs().epoch(id);
          telemetry::record_span(span);
        }
        delivered_to = seq;
      }
      if (delivered_to > last_seq[id]) last_seq[id] = delivered_to;
      if (!capacity_on) continue;

      if (delivered_to > previous[id]) ++served_children[parent];
      const std::uint64_t backlog =
          target > last_seq[id] ? target - last_seq[id] : 0;
      report.max_backlog = std::max(report.max_backlog, backlog);
      TELEM_GAUGE("feed.queue_depth", static_cast<double>(backlog));
      if (cut_off && backlog > 0) {
        // Deferred, not lost: the child is behind and will catch up
        // when capacity allows — every deferred transfer costs
        // staleness, which is exactly graceful degradation.
        report.shed_items += backlog;
        if (telemetry::enabled()) {
          telemetry::ItemSpan span;
          span.item = last_seq[id] + 1;
          span.kind = telemetry::SpanKind::kDrop;
          span.node = id;
          span.parent = parent;
          span.published_at =
              static_cast<double>(published_at[last_seq[id] + 1]);
          span.start = span.ts = static_cast<double>(tick);
          span.cause = "shed";
          telemetry::record_span(span);
        }
      }
      // Starvation escalation: a child that wanted items and received
      // none for starve_limit consecutive ticks abandons its overloaded
      // parent through the suspicion/failover ladder (policy only —
      // undefended children just sit and starve).
      if (backlog > 0 && delivered_to == previous[id]) {
        if (++starved_ticks[id] >= capacity.starve_limit &&
            capacity.shedding) {
          engine.escalate_starvation(id);
          starved_ticks[id] = 0;
        }
      } else {
        starved_ticks[id] = 0;
      }
      // Bounded backlog: beyond queue_limit the oldest pending items
      // are dropped permanently (the child will never fetch them).
      if (capacity.queue_limit != 0 && backlog > capacity.queue_limit) {
        const std::uint64_t drop = backlog - capacity.queue_limit;
        report.queue_drops += drop;
        TELEM_COUNT("feed.queue_dropped", drop);
        if (telemetry::enabled()) {
          for (std::uint64_t seq = last_seq[id] + 1;
               seq <= last_seq[id] + drop; ++seq) {
            telemetry::ItemSpan span;
            span.item = seq;
            span.kind = telemetry::SpanKind::kDrop;
            span.node = id;
            span.parent = parent;
            span.published_at = static_cast<double>(published_at[seq]);
            span.start = span.ts = static_cast<double>(tick);
            span.cause = "queue_full";
            telemetry::record_span(span);
          }
        }
        last_seq[id] += drop;
      }
    }

    // Degradation bookkeeping with recovery hysteresis: one exhausted
    // tick degrades a relay; only recovery_ticks consecutive clean
    // ticks restore full fanout.
    if (capacity_on && capacity.shedding) {
      for (NodeId relay = 0; relay < overlay.node_count(); ++relay) {
        if (relay_exhausted[relay] != 0) {
          if (degraded[relay] == 0) TELEM_COUNT("feed.relay_degraded", 1);
          degraded[relay] = 1;
          clean_ticks[relay] = 0;
        } else if (degraded[relay] != 0 &&
                   ++clean_ticks[relay] >= capacity.recovery_ticks) {
          degraded[relay] = 0;
          clean_ticks[relay] = 0;
        }
        if (degraded[relay] != 0) ++report.degraded_relay_ticks;
      }
    }

    // Freshness: a node is fresh when it already has every item old
    // enough that its budget requires it.
    if (tick > config.warmup_rounds && overlay.online_count() > 0) {
      std::size_t fresh = 0;
      for (NodeId id = 1; id < overlay.node_count(); ++id) {
        if (!overlay.online(id)) continue;
        // Newest seq whose age is at least the node's budget.
        std::uint64_t due = 0;
        for (std::uint64_t seq = source_seq; seq >= 1; --seq) {
          if (published_at[seq] + overlay.latency_of(id) <= tick) {
            due = seq;
            break;
          }
        }
        if (last_seq[id] >= due) ++fresh;
      }
      report.freshness.add(static_cast<double>(tick),
                           static_cast<double>(fresh) /
                               static_cast<double>(overlay.online_count()));
    }
  }

  report.on_time_fraction =
      report.total_deliveries == 0
          ? 1.0
          : 1.0 - static_cast<double>(report.total_late) /
                      static_cast<double>(report.total_deliveries);
  report.starvation_detaches = engine.starvation_detaches();
  if (const AdmissionController* control = engine.admission()) {
    report.oracle_rejected = control->rejected();
    report.oracle_breaker_trips = control->breaker_trips();
  }
  if (const AdmittedOracle* oracle = engine.admitted_oracle())
    report.oracle_stale_served = oracle->stale_served();
  report.audit_violations = engine.audit_violations();
  return report;
}

}  // namespace lagover::feed
