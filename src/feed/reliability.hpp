// Lossy dissemination and recovery. The base dissemination model
// assumes perfect push delivery; real overlay links drop messages. This
// module adds per-push loss, duplicate injection, and two repair
// strategies over the feed's sequence numbers:
//
//   * kAntiEntropy — blanket repair: every recovery tick the child asks
//     its parent for *everything* the parent holds that it lacks. One
//     repair request per tick, whether or not anything is missing.
//   * kNack — gap detection: the child scans the sequence space against
//     the parent's high-water mark and sends a NACK naming exactly the
//     missing sequence numbers — and only on ticks where gaps exist.
//     Same repair set as blanket (so the same delivery ratio), strictly
//     fewer repair messages.
//
// Duplicate suppression is sequence-number based: an item already
// applied is counted and dropped, so each consumer applies every item
// at most once even under duplicate injection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/overlay.hpp"
#include "fault/byzantine.hpp"
#include "feed/dissemination.hpp"

namespace lagover::feed {

/// Repair strategy run on each child-from-parent recovery tick.
enum class RepairMode {
  kAntiEntropy,  ///< blanket "send all I lack" pull every tick
  kNack,         ///< sequence-gap NACK, sent only when gaps exist
};

struct LossyConfig {
  DisseminationConfig base;
  double push_loss = 0.1;        ///< per-push drop probability
  bool enable_recovery = true;   ///< repair loop on/off
  double recovery_period = 2.0;  ///< child-from-parent repair interval
  RepairMode repair = RepairMode::kAntiEntropy;
  /// Per-push probability that the link delivers a second copy of the
  /// item (models retransmit storms / at-least-once transports). 0
  /// draws no extra RNG, keeping legacy runs byte-identical.
  double duplicate_probability = 0.0;
  /// Byzantine adversary layer: free-riders accept the feed but never
  /// relay it downstream (pushes withheld, repair pulls ignored). Null
  /// or an empty book changes nothing — no extra RNG is drawn either
  /// way (withholding is a pure role lookup).
  std::shared_ptr<const fault::AdversaryBook> adversary;

  /// RNG stream for loss decisions, derived from the base seed.
  std::uint64_t seed_mix() const noexcept {
    return base.seed ^ 0x1055E5ULL;
  }
};

struct LossyReport {
  SimTime duration = 0.0;
  std::uint64_t items_published = 0;
  std::size_t connected_consumers = 0;
  std::uint64_t expected_deliveries = 0;  ///< published x connected
  std::uint64_t push_deliveries = 0;
  std::uint64_t lost_pushes = 0;
  std::uint64_t recovered_deliveries = 0;  ///< via repair
  std::uint64_t recovery_pulls = 0;        ///< repair requests sent
  double delivery_ratio = 0.0;             ///< all deliveries / expected
  /// Deliveries later than the node's staleness budget (recovered items
  /// typically are; this is the price of losing the original push).
  std::uint64_t late_deliveries = 0;
  /// Items applied (first receipt) across all consumers — dedup means
  /// applications == push_deliveries + recovered_deliveries always.
  std::uint64_t applications = 0;
  /// Extra copies injected by duplicate_probability.
  std::uint64_t duplicate_pushes = 0;
  /// Received copies of already-applied items dropped by suppression.
  std::uint64_t duplicates_suppressed = 0;
  /// Individual sequence numbers requested via NACK (kNack mode only).
  std::uint64_t nacked_items = 0;
  /// Pushes a free-riding relay swallowed instead of forwarding
  /// (adversary layer; includes repair answers it refused to give).
  std::uint64_t withheld_pushes = 0;
  /// Pushes shed at a relay's capacity budget (base.capacity). Shed
  /// items stay recoverable through the repair loop — capacity overload
  /// degrades freshness, it does not permanently lose items.
  std::uint64_t shed_pushes = 0;
};

/// Runs lossy dissemination over a (typically converged) overlay.
/// Items published in the final max-staleness window are excluded from
/// the expected-delivery accounting (they may legitimately still be in
/// flight at the horizon).
LossyReport run_lossy_dissemination(const Overlay& overlay,
                                    const LossyConfig& config,
                                    SimTime duration);

}  // namespace lagover::feed
