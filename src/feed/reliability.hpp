// Lossy dissemination and recovery. The base dissemination model
// assumes perfect push delivery; real overlay links drop messages. This
// module adds per-push loss and an anti-entropy repair loop: every
// child periodically pulls from its parent the items the parent holds
// and it lacks (each edge heals itself, so repairs cascade downstream).
// This quantifies the robustness a deployed LagOver client would need
// beyond the paper's idealized model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/overlay.hpp"
#include "feed/dissemination.hpp"

namespace lagover::feed {

struct LossyConfig {
  DisseminationConfig base;
  double push_loss = 0.1;        ///< per-push drop probability
  bool enable_recovery = true;   ///< anti-entropy repair on/off
  double recovery_period = 2.0;  ///< child-from-parent repair interval

  /// RNG stream for loss decisions, derived from the base seed.
  std::uint64_t seed_mix() const noexcept {
    return base.seed ^ 0x1055E5ULL;
  }
};

struct LossyReport {
  SimTime duration = 0.0;
  std::uint64_t items_published = 0;
  std::size_t connected_consumers = 0;
  std::uint64_t expected_deliveries = 0;  ///< published x connected
  std::uint64_t push_deliveries = 0;
  std::uint64_t lost_pushes = 0;
  std::uint64_t recovered_deliveries = 0;  ///< via anti-entropy
  std::uint64_t recovery_pulls = 0;        ///< repair requests sent
  double delivery_ratio = 0.0;             ///< all deliveries / expected
  /// Deliveries later than the node's staleness budget (recovered items
  /// typically are; this is the price of losing the original push).
  std::uint64_t late_deliveries = 0;
};

/// Runs lossy dissemination over a (typically converged) overlay.
/// Items published in the final max-staleness window are excluded from
/// the expected-delivery accounting (they may legitimately still be in
/// flight at the horizon).
LossyReport run_lossy_dissemination(const Overlay& overlay,
                                    const LossyConfig& config,
                                    SimTime duration);

}  // namespace lagover::feed
