#include "feed/feed.hpp"

#include <algorithm>

#include "telemetry/span.hpp"

namespace lagover::feed {

FeedSource::FeedSource(Simulator& sim, SourceConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {
  LAGOVER_EXPECTS(config.publish_period > 0.0);
}

void FeedSource::start() {
  if (started_) return;
  started_ = true;
  publish_next();
}

void FeedSource::publish_next() {
  const double gap = config_.schedule == PublishSchedule::kPeriodic
                         ? config_.publish_period
                         : rng_.exponential(1.0 / config_.publish_period);
  sim_.schedule_after(gap, [this] {
    items_.push_back(FeedItem{items_.size() + 1, sim_.now()});
    if (telemetry::enabled()) {
      telemetry::ItemSpan span;
      span.item = items_.back().seq;
      span.kind = telemetry::SpanKind::kPublish;
      span.node = 0;  // the source
      span.published_at = items_.back().published_at;
      span.start = span.ts = items_.back().published_at;
      telemetry::record_span(span);
    }
    if (on_publish_) on_publish_(items_.back());
    publish_next();
  });
}

std::vector<FeedItem> FeedSource::pull(std::uint64_t since_seq) {
  ++requests_;
  std::vector<FeedItem> fresh;
  for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
    if (it->seq <= since_seq) break;
    fresh.push_back(*it);
  }
  if (fresh.empty()) ++empty_requests_;
  std::reverse(fresh.begin(), fresh.end());
  return fresh;
}

StalenessTracker::StalenessTracker(std::size_t node_count)
    : per_node_(node_count) {}

void StalenessTracker::record(std::uint32_t node, const FeedItem& item,
                              SimTime received_at) {
  LAGOVER_EXPECTS(node < per_node_.size());
  LAGOVER_EXPECTS(received_at >= item.published_at);
  auto& entry = per_node_[node];
  const double staleness = received_at - item.published_at;
  ++entry.count;
  entry.sum += staleness;
  if (staleness > entry.max) entry.max = staleness;
}

std::uint64_t StalenessTracker::items_received(std::uint32_t node) const {
  LAGOVER_EXPECTS(node < per_node_.size());
  return per_node_[node].count;
}

double StalenessTracker::max_staleness(std::uint32_t node) const {
  LAGOVER_EXPECTS(node < per_node_.size());
  return per_node_[node].max;
}

double StalenessTracker::mean_staleness(std::uint32_t node) const {
  LAGOVER_EXPECTS(node < per_node_.size());
  const auto& entry = per_node_[node];
  return entry.count == 0 ? 0.0 : entry.sum / static_cast<double>(entry.count);
}

}  // namespace lagover::feed
