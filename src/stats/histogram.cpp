#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace lagover {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  LAGOVER_EXPECTS(hi > lo);
  LAGOVER_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::uint64_t Histogram::count_in_bin(std::size_t bin) const {
  LAGOVER_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lower(std::size_t bin) const {
  LAGOVER_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin) + width_;
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  char label[96];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof label, "[%8.1f, %8.1f) ", bin_lower(b),
                  bin_upper(b));
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    out << label << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << '\n';
  if (overflow_ != 0) out << "overflow: " << overflow_ << '\n';
  return out.str();
}

}  // namespace lagover
