#include "stats/summary.hpp"

#include <cmath>

namespace lagover {

double RunningSummary::stddev() const noexcept {
  return std::sqrt(sample_variance());
}

}  // namespace lagover
