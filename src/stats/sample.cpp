#include "stats/sample.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace lagover {

void Sample::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Sample::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Sample::mean() const {
  LAGOVER_EXPECTS(!values_.empty());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Sample::min() const {
  LAGOVER_EXPECTS(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  LAGOVER_EXPECTS(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::quantile(double q) const {
  LAGOVER_EXPECTS(!values_.empty());
  LAGOVER_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : values_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Sample::trimmed_mean(std::size_t trim_each) const {
  LAGOVER_EXPECTS(values_.size() > 2 * trim_each);
  ensure_sorted();
  const auto first = sorted_.begin() + static_cast<std::ptrdiff_t>(trim_each);
  const auto last = sorted_.end() - static_cast<std::ptrdiff_t>(trim_each);
  return std::accumulate(first, last, 0.0) /
         static_cast<double>(last - first);
}

std::vector<double> Sample::sorted() const {
  ensure_sorted();
  return sorted_;
}

void Sample::clear() noexcept {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Sample::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

}  // namespace lagover
