// Streaming summary statistics (Welford's algorithm): count, mean,
// variance, min, max — used by metrics recorders that cannot afford to
// retain every observation.
#pragma once

#include <cstdint>
#include <limits>

namespace lagover {

/// Numerically stable streaming mean/variance with min/max tracking.
class RunningSummary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningSummary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double sample_variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const noexcept;

  void reset() noexcept { *this = RunningSummary{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace lagover
