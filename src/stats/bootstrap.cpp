#include "stats/bootstrap.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "stats/sample.hpp"

namespace lagover {

namespace {

template <typename Statistic>
ConfidenceInterval bootstrap_ci(const std::vector<double>& values,
                                double confidence, int resamples, Rng& rng,
                                Statistic statistic) {
  LAGOVER_EXPECTS(!values.empty());
  LAGOVER_EXPECTS(confidence > 0.0 && confidence < 1.0);
  LAGOVER_EXPECTS(resamples > 0);

  Sample stats;
  std::vector<double> resample(values.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& x : resample)
      x = values[static_cast<std::size_t>(rng.next_below(values.size()))];
    stats.add(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  return ConfidenceInterval{stats.quantile(alpha), statistic(values),
                            stats.quantile(1.0 - alpha)};
}

double median_of(std::vector<double> xs) {
  const auto mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double upper = xs[mid];
  if (xs.size() % 2 == 1) return upper;
  const double lower = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

double mean_of(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

}  // namespace

ConfidenceInterval bootstrap_median_ci(const std::vector<double>& values,
                                       double confidence, int resamples,
                                       Rng& rng) {
  return bootstrap_ci(
      values, confidence, resamples, rng,
      [](const std::vector<double>& xs) { return median_of(xs); });
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& values,
                                     double confidence, int resamples,
                                     Rng& rng) {
  return bootstrap_ci(values, confidence, resamples, rng, mean_of);
}

}  // namespace lagover
