// Fixed-width histogram used for convergence-time distributions
// (paper Figure 2 reports the spread of construction latency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lagover {

/// Histogram over [lo, hi) with uniform bin width; values outside the
/// range land in saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count_in_bin(std::size_t bin) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

  /// ASCII rendering ("[lo, hi) ###### n") for bench output.
  std::string to_string(std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace lagover
