// Retained-sample statistics: exact quantiles, median, trimmed means.
// Experiments in the paper report the *median of 5 repetitions*
// (Section 5.1), so quantile support is a first-class need.
#pragma once

#include <cstddef>
#include <vector>

namespace lagover {

/// Collects observations and answers exact order statistics. Values are
/// kept unsorted until queried; queries sort lazily and cache.
class Sample {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;

  /// Quantile with linear interpolation between order statistics,
  /// q in [0, 1]. Precondition: non-empty.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  /// Standard deviation (sample, n-1 denominator); 0 for n < 2.
  double stddev() const;

  /// Mean after dropping the lowest and highest `trim_each` observations.
  double trimmed_mean(std::size_t trim_each) const;

  const std::vector<double>& values() const noexcept { return values_; }
  std::vector<double> sorted() const;

  void clear() noexcept;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace lagover
