// Bootstrap confidence intervals for the small-sample experiment
// summaries (the paper uses the median of 5 runs; we additionally report
// uncertainty so shape comparisons are honest).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace lagover {

struct ConfidenceInterval {
  double lower;
  double point;
  double upper;
};

/// Percentile-bootstrap CI for the median of `values`.
ConfidenceInterval bootstrap_median_ci(const std::vector<double>& values,
                                       double confidence, int resamples,
                                       Rng& rng);

/// Percentile-bootstrap CI for the mean of `values`.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& values,
                                     double confidence, int resamples,
                                     Rng& rng);

}  // namespace lagover
