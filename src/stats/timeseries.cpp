#include "stats/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace lagover {

void TimeSeries::add(double t, double value) {
  LAGOVER_EXPECTS(points_.empty() || t >= points_.back().t);
  points_.push_back({t, value});
}

double TimeSeries::time_at(std::size_t i) const {
  LAGOVER_EXPECTS(i < points_.size());
  return points_[i].t;
}

double TimeSeries::value_at(std::size_t i) const {
  LAGOVER_EXPECTS(i < points_.size());
  return points_[i].value;
}

double TimeSeries::mean_after(double t_from) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= t_from) {
      acc += p.value;
      ++n;
    }
  }
  LAGOVER_EXPECTS(n > 0);
  return acc / static_cast<double>(n);
}

double TimeSeries::min_after(double t_from) const {
  bool found = false;
  double best = 0.0;
  for (const auto& p : points_) {
    if (p.t >= t_from && (!found || p.value < best)) {
      best = p.value;
      found = true;
    }
  }
  LAGOVER_EXPECTS(found);
  return best;
}

double TimeSeries::first_time_at_least(double threshold) const {
  for (const auto& p : points_)
    if (p.value >= threshold) return p.t;
  return -1.0;
}

double TimeSeries::step_value_at(double t) const {
  LAGOVER_EXPECTS(!points_.empty());
  LAGOVER_EXPECTS(t >= points_.front().t);
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const Point& rhs) { return lhs < rhs.t; });
  return (it - 1)->value;
}

TimeSeries TimeSeries::downsample(std::size_t max_points) const {
  LAGOVER_EXPECTS(max_points >= 2);
  if (points_.size() <= max_points) return *this;
  TimeSeries out;
  const double t0 = points_.front().t;
  const double t1 = points_.back().t;
  for (std::size_t i = 0; i < max_points; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                              static_cast<double>(max_points - 1);
    out.add(t, step_value_at(t));
  }
  return out;
}

std::string TimeSeries::to_csv(const std::string& value_name) const {
  std::ostringstream out;
  out << "t," << value_name << '\n';
  for (const auto& p : points_) out << p.t << ',' << p.value << '\n';
  return out.str();
}

}  // namespace lagover
