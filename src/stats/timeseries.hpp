// (time, value) series with resampling helpers. Used for
// satisfied-fraction-over-time curves in the churn experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lagover {

/// Append-only time series with non-decreasing timestamps.
class TimeSeries {
 public:
  void add(double t, double value);

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  double time_at(std::size_t i) const;
  double value_at(std::size_t i) const;

  /// Mean of values with t >= t_from (e.g. steady-state mean after
  /// a burn-in period). Precondition: at least one qualifying point.
  double mean_after(double t_from) const;

  /// Minimum value with t >= t_from.
  double min_after(double t_from) const;

  /// First time at which value >= threshold; negative if never.
  double first_time_at_least(double threshold) const;

  /// Value at the latest point with time <= t (step interpolation);
  /// precondition: series non-empty and t >= first timestamp.
  double step_value_at(double t) const;

  /// Down-samples to at most `max_points` evenly spaced points
  /// (step semantics) for compact printing.
  TimeSeries downsample(std::size_t max_points) const;

  /// CSV body ("t,value" lines).
  std::string to_csv(const std::string& value_name = "value") const;

 private:
  struct Point {
    double t;
    double value;
  };
  std::vector<Point> points_;
};

}  // namespace lagover
