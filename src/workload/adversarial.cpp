#include "workload/adversarial.hpp"

#include "common/error.hpp"

namespace lagover {

Population paper_printed_counterexample() {
  Population population;
  population.source_fanout = 1;
  population.consumers = {
      NodeSpec{1, Constraints{1, 1}},  // 1_1^1
      NodeSpec{2, Constraints{1, 2}},  // 2_1^2
      NodeSpec{3, Constraints{2, 4}},  // 3_2^4
      NodeSpec{4, Constraints{1, 3}},  // 4_1^3
      NodeSpec{5, Constraints{0, 3}},  // 5_0^3
  };
  return population;
}

Population corrected_counterexample() {
  Population population;
  population.source_fanout = 1;
  population.consumers = {
      NodeSpec{1, Constraints{1, 1}},  // the gate: must poll the source
      NodeSpec{2, Constraints{2, 4}},  // the hub: lax latency, the fanout
      NodeSpec{3, Constraints{0, 3}},  // must sit under the hub
      NodeSpec{4, Constraints{1, 3}},  // must sit under the hub
      NodeSpec{5, Constraints{0, 4}},  // fits under node 4
  };
  return population;
}

Population adversarial_family(int k) {
  LAGOVER_EXPECTS(k >= 1);
  Population population;
  population.source_fanout = 1;
  population.consumers.push_back(NodeSpec{1, Constraints{1, 1}});  // gate
  population.consumers.push_back(NodeSpec{2, Constraints{k, 4}});  // hub
  for (int i = 0; i < k; ++i) {
    const auto id = static_cast<NodeId>(3 + i);
    population.consumers.push_back(NodeSpec{id, Constraints{0, 3}});
  }
  return population;
}

}  // namespace lagover
