// Membership-dynamics models (paper Section 5.3: "online peers leave
// the network with a probability 0.01, while offline peers re-join with
// a probability 0.2" per time step).
#pragma once

#include <cstdint>

#include "core/engine.hpp"

namespace lagover {

/// Independent per-node Bernoulli churn each round.
class BernoulliChurn final : public ChurnModel {
 public:
  explicit BernoulliChurn(double p_leave = 0.01, double p_join = 0.2);

  Decision decide(Round round, const Overlay& overlay, Rng& rng) override;

  double p_leave() const noexcept { return p_leave_; }
  double p_join() const noexcept { return p_join_; }

 private:
  double p_leave_;
  double p_join_;
};

/// Failure-injection model: at `fail_round` a uniformly chosen fraction
/// of the online population leaves at once; afterwards offline nodes
/// rejoin with p_join per round. Used to study recovery from correlated
/// failures (an extension beyond the paper's steady churn).
class MassFailureChurn final : public ChurnModel {
 public:
  MassFailureChurn(Round fail_round, double fail_fraction,
                   double p_join = 0.2);

  Decision decide(Round round, const Overlay& overlay, Rng& rng) override;

 private:
  Round fail_round_;
  double fail_fraction_;
  double p_join_;
};

/// Flash crowd: every offline node joins at once at `join_round`
/// (experiments pre-set part of the population offline). Measures how
/// fast an established LagOver absorbs a burst of arrivals.
class FlashCrowdChurn final : public ChurnModel {
 public:
  explicit FlashCrowdChurn(Round join_round);

  Decision decide(Round round, const Overlay& overlay, Rng& rng) override;

 private:
  Round join_round_;
};

/// Churn that stops after `active_rounds` rounds — lets experiments
/// measure reconvergence time after a churn phase ends.
class WindowedChurn final : public ChurnModel {
 public:
  WindowedChurn(Round active_rounds, double p_leave = 0.01,
                double p_join = 0.2);

  Decision decide(Round round, const Overlay& overlay, Rng& rng) override;

 private:
  Round active_rounds_;
  BernoulliChurn inner_;
};

}  // namespace lagover
