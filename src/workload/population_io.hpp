// Text format for populations, so experiments can be specified in
// files and shipped as repro cases (the CLI consumes these):
//
//   # comment
//   source <fanout>
//   peer <fanout> <latency>        # one line per consumer, ids implicit
//   peers <count> <fanout> <latency>   # shorthand for a block of equals
//
// plus serialization back to the same format.
#pragma once

#include <iosfwd>
#include <string>

#include "core/types.hpp"

namespace lagover {

/// Parses the population format; throws InvalidArgument on malformed
/// input (unknown keywords, missing source, out-of-range values).
Population parse_population(std::istream& in);
Population parse_population_text(const std::string& text);

/// Loads from a file; throws InvalidArgument if unreadable.
Population load_population(const std::string& path);

/// Serializes (uses `peers` shorthand for runs of identical specs).
std::string to_population_text(const Population& population);
bool save_population(const Population& population, const std::string& path);

}  // namespace lagover
