#include "workload/constraints.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/sufficiency.hpp"

namespace lagover {

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTf1: return "Tf1";
    case WorkloadKind::kRand: return "Rand";
    case WorkloadKind::kBiCorr: return "BiCorr";
    case WorkloadKind::kBiUnCorr: return "BiUnCorr";
  }
  return "?";
}

namespace {

int auto_source_fanout(WorkloadKind kind, const WorkloadParams& params) {
  if (params.source_fanout > 0) return params.source_fanout;
  if (kind == WorkloadKind::kTf1) return params.tf1_fanout;
  return std::max<int>(3, static_cast<int>(params.peers / 8));
}

Population generate_tf1(const WorkloadParams& params) {
  // Level l holds up to f^l nodes (all fanout f), so the whole fanout of
  // level l-1 is needed to host level l: with 120 peers and f = 3 this
  // is exactly the paper's 3 / 9 / 27 / 81 at l = 1..4.
  Population population;
  population.source_fanout = auto_source_fanout(WorkloadKind::kTf1, params);
  const int f = params.tf1_fanout;
  LAGOVER_EXPECTS(f >= 1);
  NodeId next = 1;
  Delay level = 1;
  // Capacity of the current level given everything above is full.
  long level_capacity = population.source_fanout;
  while (population.consumers.size() < params.peers) {
    long remaining = level_capacity;
    level_capacity = 0;
    while (remaining-- > 0 && population.consumers.size() < params.peers) {
      population.consumers.push_back(
          NodeSpec{next++, Constraints{f, level}});
      level_capacity += f;
    }
    ++level;
  }
  return population;
}

int draw_bimodal_fanout(Rng& rng, const WorkloadParams& params, bool high) {
  return high ? static_cast<int>(rng.uniform_int(params.high_fanout_min,
                                                 params.high_fanout_max))
              : static_cast<int>(rng.uniform_int(params.low_fanout_min,
                                                 params.low_fanout_max));
}

Population draw_once(WorkloadKind kind, const WorkloadParams& params,
                     Rng& rng) {
  Population population;
  population.source_fanout = auto_source_fanout(kind, params);
  population.consumers.reserve(params.peers);
  for (NodeId id = 1; id <= params.peers; ++id) {
    const auto latency =
        static_cast<Delay>(rng.uniform_int(1, params.max_latency));
    int fanout = 0;
    switch (kind) {
      case WorkloadKind::kRand:
        fanout = static_cast<int>(rng.uniform_int(0, params.rand_fanout_max));
        break;
      case WorkloadKind::kBiCorr:
        // Worst case: strict-latency peers are also the low-capacity
        // (modem) peers.
        fanout = draw_bimodal_fanout(
            rng, params,
            latency >= params.bicorr_strict_threshold &&
                rng.bernoulli(params.high_fanout_probability));
        break;
      case WorkloadKind::kBiUnCorr:
        fanout = draw_bimodal_fanout(
            rng, params, rng.bernoulli(params.high_fanout_probability));
        break;
      case WorkloadKind::kTf1:
        LAGOVER_ASSERT_MSG(false, "Tf1 is deterministic");
    }
    population.consumers.push_back(NodeSpec{id, Constraints{fanout, latency}});
  }
  return population;
}

}  // namespace

Population generate_workload(WorkloadKind kind, const WorkloadParams& params) {
  LAGOVER_EXPECTS(params.peers >= 1);
  if (kind == WorkloadKind::kTf1) {
    Population population = generate_tf1(params);
    LAGOVER_ASSERT_MSG(sufficiency_condition(population).holds,
                       "Tf1 violates its own sufficiency by construction");
    return population;
  }
  Rng rng(params.seed);
  for (int attempt = 0; attempt < params.max_retries; ++attempt) {
    Population population = draw_once(kind, params, rng);
    if (sufficiency_condition(population).holds) return population;
  }
  throw InvalidState("no sufficient " + to_string(kind) +
                     " instance found within retry budget; raise "
                     "source_fanout or max_retries");
}

}  // namespace lagover
