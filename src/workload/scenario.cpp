#include "workload/scenario.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/async_engine.hpp"
#include "core/engine.hpp"
#include "feed/reliability.hpp"
#include "workload/churn.hpp"

namespace lagover::workload {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Rejects members of `json` whose key is not in `allowed` — scenario
/// typos must fail loudly, not silently fall back to defaults.
bool check_keys(const Json& json, const char* section,
                std::initializer_list<const char*> allowed,
                std::string* error) {
  for (const auto& [key, value] : json.members()) {
    (void)value;
    bool known = false;
    for (const char* name : allowed)
      if (key == name) {
        known = true;
        break;
      }
    if (!known) {
      set_error(error, std::string("unknown key \"") + key + "\" in " +
                           section);
      return false;
    }
  }
  return true;
}

bool read_number(const Json& json, const char* key, double& out,
                 const char* section, std::string* error) {
  const Json* value = json.find(key);
  if (value == nullptr) return true;  // optional, keep default
  if (!value->is_number()) {
    set_error(error, std::string(section) + "." + key + " must be a number");
    return false;
  }
  out = value->as_number();
  return true;
}

bool read_fraction(const Json& json, const char* key, double& out,
                   const char* section, std::string* error) {
  if (!read_number(json, key, out, section, error)) return false;
  if (out < 0.0 || out > 1.0) {
    set_error(error, std::string(section) + "." + key + " must be in [0, 1]");
    return false;
  }
  return true;
}

bool read_bool(const Json& json, const char* key, bool& out,
               const char* section, std::string* error) {
  const Json* value = json.find(key);
  if (value == nullptr) return true;
  if (!value->is_bool()) {
    set_error(error, std::string(section) + "." + key + " must be a boolean");
    return false;
  }
  out = value->as_bool();
  return true;
}

bool parse_algorithm(const std::string& name, AlgorithmKind& out) {
  if (name == "greedy") out = AlgorithmKind::kGreedy;
  else if (name == "hybrid") out = AlgorithmKind::kHybrid;
  else if (name == "fanout_greedy") out = AlgorithmKind::kFanoutGreedy;
  else return false;
  return true;
}

bool parse_oracle(const std::string& name, OracleKind& out) {
  if (name == "random") out = OracleKind::kRandom;
  else if (name == "random_capacity") out = OracleKind::kRandomCapacity;
  else if (name == "random_delay_capacity")
    out = OracleKind::kRandomDelayCapacity;
  else if (name == "random_delay") out = OracleKind::kRandomDelay;
  else return false;
  return true;
}

bool parse_workload_kind(const std::string& name, WorkloadKind& out) {
  if (name == "tf1") out = WorkloadKind::kTf1;
  else if (name == "rand") out = WorkloadKind::kRand;
  else if (name == "bi_corr") out = WorkloadKind::kBiCorr;
  else if (name == "bi_uncorr") out = WorkloadKind::kBiUnCorr;
  else return false;
  return true;
}

bool parse_workload_section(const Json& json, Scenario& out,
                            std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"workload\" must be an object");
    return false;
  }
  if (!check_keys(json, "workload",
                  {"kind", "peers", "max_latency", "source_fanout",
                   "tf1_fanout", "rand_fanout_max"},
                  error))
    return false;
  if (const Json* kind = json.find("kind")) {
    if (!parse_workload_kind(kind->as_string(), out.workload)) {
      set_error(error, "workload.kind must be one of tf1 | rand | bi_corr |"
                       " bi_uncorr");
      return false;
    }
  }
  if (const Json* peers = json.find("peers")) {
    if (peers->as_int() < 2) {
      set_error(error, "workload.peers must be >= 2");
      return false;
    }
    out.workload_params.peers = static_cast<std::size_t>(peers->as_int());
  }
  if (const Json* latency = json.find("max_latency")) {
    if (latency->as_int() < 1) {
      set_error(error, "workload.max_latency must be >= 1");
      return false;
    }
    out.workload_params.max_latency = static_cast<Delay>(latency->as_int());
  }
  if (const Json* fanout = json.find("source_fanout"))
    out.workload_params.source_fanout = static_cast<int>(fanout->as_int());
  if (const Json* fanout = json.find("tf1_fanout"))
    out.workload_params.tf1_fanout = static_cast<int>(fanout->as_int());
  if (const Json* fanout = json.find("rand_fanout_max"))
    out.workload_params.rand_fanout_max = static_cast<int>(fanout->as_int());
  return true;
}

bool parse_churn_section(const Json& json, Scenario& out,
                         std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"churn\" must be an object");
    return false;
  }
  if (!check_keys(json, "churn", {"leave_probability", "rejoin_probability"},
                  error))
    return false;
  out.has_churn = true;
  return read_fraction(json, "leave_probability", out.churn_leave, "churn",
                       error) &&
         read_fraction(json, "rejoin_probability", out.churn_join, "churn",
                       error);
}

bool parse_fault_window(const Json& json, fault::FaultWindow& window,
                        std::string* error) {
  if (!json.is_object()) {
    set_error(error, "each faults[] entry must be an object");
    return false;
  }
  if (!check_keys(json, "faults[]",
                  {"start", "end", "drop_probability", "delay_probability",
                   "delay_amount", "duplicate_probability", "oracle_outage",
                   "oracle_staleness", "crash_probability", "crash_downtime",
                   "partition_fraction"},
                  error))
    return false;
  if (json.find("start") == nullptr || json.find("end") == nullptr) {
    set_error(error, "faults[] windows need \"start\" and \"end\"");
    return false;
  }
  if (!read_number(json, "start", window.start, "faults[]", error) ||
      !read_number(json, "end", window.end, "faults[]", error))
    return false;
  if (window.start < 0.0 || window.end < window.start) {
    set_error(error, "faults[] windows need 0 <= start <= end");
    return false;
  }
  fault::FaultSpec& spec = window.spec;
  return read_fraction(json, "drop_probability", spec.drop_probability,
                       "faults[]", error) &&
         read_fraction(json, "delay_probability", spec.delay_probability,
                       "faults[]", error) &&
         read_number(json, "delay_amount", spec.delay_amount, "faults[]",
                     error) &&
         read_fraction(json, "duplicate_probability",
                       spec.duplicate_probability, "faults[]", error) &&
         read_bool(json, "oracle_outage", spec.oracle_outage, "faults[]",
                   error) &&
         read_number(json, "oracle_staleness", spec.oracle_staleness,
                     "faults[]", error) &&
         read_fraction(json, "crash_probability", spec.crash_probability,
                       "faults[]", error) &&
         read_number(json, "crash_downtime", spec.crash_downtime, "faults[]",
                     error) &&
         read_fraction(json, "partition_fraction", spec.partition_fraction,
                       "faults[]", error);
}

bool parse_domain(const Json& json, ScenarioDomain& domain,
                  std::string* error) {
  if (!json.is_object()) {
    set_error(error, "each domains[] entry must be an object");
    return false;
  }
  if (!check_keys(json, "domains[]", {"name", "fraction", "members", "windows"},
                  error))
    return false;
  const Json* name = json.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    set_error(error, "domains[] entries need a non-empty \"name\"");
    return false;
  }
  domain.name = name->as_string();
  const char* section = "domains[]";
  if (!read_fraction(json, "fraction", domain.fraction, section, error))
    return false;
  if (const Json* members = json.find("members")) {
    if (!members->is_array()) {
      set_error(error, "domains[].members must be an array of node ids");
      return false;
    }
    for (const Json& member : members->elements()) {
      if (!member.is_number() || member.as_int() < 1) {
        set_error(error, "domains[].members must be consumer ids (>= 1)");
        return false;
      }
      domain.members.push_back(static_cast<NodeId>(member.as_int()));
    }
  }
  if (domain.fraction > 0.0 && !domain.members.empty()) {
    set_error(error,
              "domains[] entries take \"fraction\" or \"members\", not both");
    return false;
  }
  if (domain.fraction <= 0.0 && domain.members.empty()) {
    set_error(error, "domains[] entries need \"fraction\" or \"members\"");
    return false;
  }
  const Json* windows = json.find("windows");
  if (windows == nullptr || !windows->is_array() || windows->size() == 0) {
    set_error(error, "domains[] entries need a non-empty \"windows\" array");
    return false;
  }
  for (const Json& entry : windows->elements()) {
    if (!entry.is_object() ||
        !check_keys(entry, "domains[].windows[]", {"start", "end", "fault"},
                    error))
      return false;
    fault::DomainWindow window;
    if (!read_number(entry, "start", window.start, "domains[].windows[]",
                     error) ||
        !read_number(entry, "end", window.end, "domains[].windows[]", error))
      return false;
    if (window.start < 0.0 || window.end < window.start) {
      set_error(error, "domains[].windows[] need 0 <= start <= end");
      return false;
    }
    const Json* fault_kind = entry.find("fault");
    const std::string kind =
        fault_kind == nullptr ? "crash" : fault_kind->as_string();
    if (kind == "crash") window.fault = fault::DomainFault::kCrash;
    else if (kind == "partition") window.fault = fault::DomainFault::kPartition;
    else {
      set_error(error,
                "domains[].windows[].fault must be \"crash\" or \"partition\"");
      return false;
    }
    domain.windows.push_back(window);
  }
  return true;
}

bool parse_adversary_section(const Json& json, Scenario& out,
                             std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"adversary\" must be an object");
    return false;
  }
  if (!check_keys(json, "adversary",
                  {"delay_liar_fraction", "fanout_liar_fraction",
                   "free_rider_fraction", "flapper_fraction",
                   "delay_understatement", "flap_period", "flap_duty", "salt"},
                  error))
    return false;
  fault::ByzantineSpec& spec = out.adversary;
  if (!read_fraction(json, "delay_liar_fraction", spec.delay_liar_fraction,
                     "adversary", error) ||
      !read_fraction(json, "fanout_liar_fraction", spec.fanout_liar_fraction,
                     "adversary", error) ||
      !read_fraction(json, "free_rider_fraction", spec.free_rider_fraction,
                     "adversary", error) ||
      !read_fraction(json, "flapper_fraction", spec.flapper_fraction,
                     "adversary", error))
    return false;
  if (spec.delay_liar_fraction + spec.fanout_liar_fraction +
          spec.free_rider_fraction + spec.flapper_fraction >
      1.0 + 1e-9) {
    set_error(error, "adversary fractions must sum to <= 1");
    return false;
  }
  if (const Json* understatement = json.find("delay_understatement")) {
    if (understatement->as_int() < 1) {
      set_error(error, "adversary.delay_understatement must be >= 1");
      return false;
    }
    spec.delay_understatement = static_cast<Delay>(understatement->as_int());
  }
  if (!read_number(json, "flap_period", spec.flap_period, "adversary",
                   error) ||
      !read_fraction(json, "flap_duty", spec.flap_duty, "adversary", error))
    return false;
  if (spec.flap_period <= 0.0) {
    set_error(error, "adversary.flap_period must be > 0");
    return false;
  }
  if (const Json* salt = json.find("salt"))
    spec.salt = static_cast<std::uint64_t>(salt->as_int());
  return true;
}

bool parse_defense_section(const Json& json, Scenario& out,
                           std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"defense\" must be an object");
    return false;
  }
  if (!check_keys(json, "defense",
                  {"enabled", "probation_threshold", "quarantine_threshold",
                   "blacklist_threshold", "oracle_plausibility",
                   "delay_verification", "receipt_audit"},
                  error))
    return false;
  health::DefenseConfig& defense = out.defense;
  if (!read_bool(json, "enabled", defense.enabled, "defense", error) ||
      !read_number(json, "probation_threshold", defense.probation_threshold,
                   "defense", error) ||
      !read_number(json, "quarantine_threshold", defense.quarantine_threshold,
                   "defense", error) ||
      !read_number(json, "blacklist_threshold", defense.blacklist_threshold,
                   "defense", error) ||
      !read_bool(json, "oracle_plausibility", defense.oracle_plausibility,
                 "defense", error) ||
      !read_bool(json, "delay_verification", defense.delay_verification,
                 "defense", error) ||
      !read_bool(json, "receipt_audit", defense.receipt_audit, "defense",
                 error))
    return false;
  if (!(defense.probation_threshold <= defense.quarantine_threshold &&
        defense.quarantine_threshold <= defense.blacklist_threshold)) {
    set_error(error, "defense thresholds must be ordered probation <="
                     " quarantine <= blacklist");
    return false;
  }
  return true;
}

bool parse_feed_section(const Json& json, Scenario& out, std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"feed\" must be an object");
    return false;
  }
  if (!check_keys(json, "feed",
                  {"duration", "push_loss", "recovery", "recovery_period",
                   "publish_period"},
                  error))
    return false;
  ScenarioFeed& feed = out.feed;
  feed.enabled = true;
  if (!read_number(json, "duration", feed.duration, "feed", error) ||
      !read_fraction(json, "push_loss", feed.push_loss, "feed", error) ||
      !read_bool(json, "recovery", feed.recovery, "feed", error) ||
      !read_number(json, "recovery_period", feed.recovery_period, "feed",
                   error) ||
      !read_number(json, "publish_period", feed.publish_period, "feed", error))
    return false;
  if (feed.duration <= 0.0 || feed.recovery_period <= 0.0 ||
      feed.publish_period <= 0.0) {
    set_error(error, "feed durations and periods must be > 0");
    return false;
  }
  if (feed.push_loss >= 1.0) {
    set_error(error, "feed.push_loss must be < 1");
    return false;
  }
  return true;
}

bool parse_admission_subsection(const Json& json, AdmissionConfig& out,
                                std::string* error) {
  if (!json.is_object()) {
    set_error(error, "overload.admission must be an object");
    return false;
  }
  if (!check_keys(json, "overload.admission",
                  {"rate_limit", "window", "retry_after",
                   "breaker_trip_windows", "breaker_cooldown",
                   "breaker_close_windows", "serve_stale"},
                  error))
    return false;
  const char* section = "overload.admission";
  if (!read_number(json, "rate_limit", out.rate_limit, section, error) ||
      !read_number(json, "window", out.window, section, error) ||
      !read_number(json, "retry_after", out.retry_after, section, error) ||
      !read_number(json, "breaker_cooldown", out.breaker_cooldown, section,
                   error) ||
      !read_bool(json, "serve_stale", out.serve_stale, section, error))
    return false;
  if (out.rate_limit <= 0.0) {
    set_error(error, "overload.admission.rate_limit must be > 0");
    return false;
  }
  if (out.window <= 0.0 || out.retry_after <= 0.0 ||
      out.breaker_cooldown <= 0.0) {
    set_error(error, "overload.admission windows and waits must be > 0");
    return false;
  }
  if (const Json* trip = json.find("breaker_trip_windows")) {
    if (trip->as_int() < 1) {
      set_error(error, "overload.admission.breaker_trip_windows must be >= 1");
      return false;
    }
    out.breaker_trip_windows = static_cast<int>(trip->as_int());
  }
  if (const Json* close = json.find("breaker_close_windows")) {
    if (close->as_int() < 1) {
      set_error(error,
                "overload.admission.breaker_close_windows must be >= 1");
      return false;
    }
    out.breaker_close_windows = static_cast<int>(close->as_int());
  }
  return true;
}

bool parse_capacity_subsection(const Json& json, feed::CapacityConfig& out,
                               std::string* error) {
  if (!json.is_object()) {
    set_error(error, "overload.capacity must be an object");
    return false;
  }
  if (!check_keys(json, "overload.capacity",
                  {"relay_budget", "queue_limit", "shedding", "fanout_factor",
                   "recovery_ticks", "starve_limit", "squeezes"},
                  error))
    return false;
  const char* section = "overload.capacity";
  if (const Json* budget = json.find("relay_budget")) {
    if (budget->as_int() < 0) {
      set_error(error, "overload.capacity.relay_budget must be >= 0");
      return false;
    }
    out.relay_budget = static_cast<std::uint32_t>(budget->as_int());
  }
  if (const Json* limit = json.find("queue_limit")) {
    if (limit->as_int() < 0) {
      set_error(error, "overload.capacity.queue_limit must be >= 0");
      return false;
    }
    out.queue_limit = static_cast<std::uint32_t>(limit->as_int());
  }
  if (!read_bool(json, "shedding", out.shedding, section, error) ||
      !read_fraction(json, "fanout_factor", out.fanout_factor, section,
                     error))
    return false;
  if (out.fanout_factor <= 0.0) {
    set_error(error, "overload.capacity.fanout_factor must be in (0, 1]");
    return false;
  }
  if (const Json* ticks = json.find("recovery_ticks")) {
    if (ticks->as_int() < 1) {
      set_error(error, "overload.capacity.recovery_ticks must be >= 1");
      return false;
    }
    out.recovery_ticks = static_cast<int>(ticks->as_int());
  }
  if (const Json* starve = json.find("starve_limit")) {
    if (starve->as_int() < 1) {
      set_error(error, "overload.capacity.starve_limit must be >= 1");
      return false;
    }
    out.starve_limit = static_cast<int>(starve->as_int());
  }
  if (const Json* squeezes = json.find("squeezes")) {
    if (!squeezes->is_array()) {
      set_error(error, "overload.capacity.squeezes must be an array");
      return false;
    }
    for (const Json& entry : squeezes->elements()) {
      if (!entry.is_object() ||
          !check_keys(entry, "overload.capacity.squeezes[]",
                      {"start", "end", "factor"}, error))
        return false;
      feed::CapacitySqueeze squeeze;
      if (!read_number(entry, "start", squeeze.start,
                       "overload.capacity.squeezes[]", error) ||
          !read_number(entry, "end", squeeze.end,
                       "overload.capacity.squeezes[]", error) ||
          !read_number(entry, "factor", squeeze.factor,
                       "overload.capacity.squeezes[]", error))
        return false;
      if (squeeze.start < 0.0 || squeeze.end < squeeze.start) {
        set_error(error,
                  "overload.capacity.squeezes[] need 0 <= start <= end");
        return false;
      }
      if (squeeze.factor <= 0.0 || squeeze.factor > 1.0) {
        set_error(error,
                  "overload.capacity.squeezes[].factor must be in (0, 1]");
        return false;
      }
      out.squeezes.push_back(squeeze);
    }
  }
  return true;
}

bool parse_overload_section(const Json& json, Scenario& out,
                            std::string* error) {
  if (!json.is_object()) {
    set_error(error, "\"overload\" must be an object");
    return false;
  }
  if (!check_keys(json, "overload", {"admission", "capacity", "join_storm"},
                  error))
    return false;
  if (const Json* admission = json.find("admission"))
    if (!parse_admission_subsection(*admission, out.overload.admission, error))
      return false;
  if (const Json* capacity = json.find("capacity"))
    if (!parse_capacity_subsection(*capacity, out.overload.capacity, error))
      return false;
  if (const Json* storm = json.find("join_storm")) {
    if (!storm->is_object() ||
        !check_keys(*storm, "overload.join_storm", {"at", "fraction"}, error))
      return false;
    // A join storm needs the parked crowd intact until it fires and a
    // clean absorption read afterwards; background churn would blur
    // both, so the two are mutually exclusive.
    if (out.has_churn) {
      set_error(error,
                "overload.join_storm and \"churn\" are mutually exclusive");
      return false;
    }
    out.overload.has_join_storm = true;
    if (!read_number(*storm, "at", out.overload.join_storm_at,
                     "overload.join_storm", error) ||
        !read_fraction(*storm, "fraction", out.overload.join_storm_fraction,
                       "overload.join_storm", error))
      return false;
    if (out.overload.join_storm_at < 1.0) {
      set_error(error, "overload.join_storm.at must be >= 1");
      return false;
    }
    if (out.overload.join_storm_fraction <= 0.0 ||
        out.overload.join_storm_fraction >= 1.0) {
      set_error(error,
                "overload.join_storm.fraction must be in (0, 1)");
      return false;
    }
  }
  if (out.overload.empty()) {
    set_error(error, "\"overload\" must declare admission, capacity, or"
                     " join_storm");
    return false;
  }
  return true;
}

}  // namespace

bool parse_scenario(const Json& json, Scenario& out, std::string* error) {
  out = Scenario{};
  if (!json.is_object()) {
    set_error(error, "scenario document must be a JSON object");
    return false;
  }
  if (!check_keys(json, "scenario",
                  {"schema", "name", "engine", "algorithm", "oracle", "seed",
                   "trials", "horizon", "workload", "churn", "faults",
                   "domains", "adversary", "defense", "feed", "overload"},
                  error))
    return false;
  const Json* schema = json.find("schema");
  if (schema == nullptr || schema->as_string() != "lagover.scenario.v1") {
    set_error(error, "\"schema\" must be \"lagover.scenario.v1\"");
    return false;
  }
  const Json* name = json.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    set_error(error, "scenario needs a non-empty \"name\"");
    return false;
  }
  out.name = name->as_string();
  if (const Json* engine = json.find("engine")) {
    if (engine->as_string() == "async") out.async = true;
    else if (engine->as_string() == "rounds") out.async = false;
    else {
      set_error(error, "\"engine\" must be \"async\" or \"rounds\"");
      return false;
    }
  }
  if (const Json* algorithm = json.find("algorithm")) {
    if (!parse_algorithm(algorithm->as_string(), out.algorithm)) {
      set_error(error,
                "\"algorithm\" must be greedy | hybrid | fanout_greedy");
      return false;
    }
  }
  if (const Json* oracle = json.find("oracle")) {
    if (!parse_oracle(oracle->as_string(), out.oracle)) {
      set_error(error, "\"oracle\" must be random | random_capacity |"
                       " random_delay_capacity | random_delay");
      return false;
    }
  }
  if (const Json* seed = json.find("seed"))
    out.seed = static_cast<std::uint64_t>(seed->as_int(1));
  if (const Json* trials = json.find("trials")) {
    if (trials->as_int() < 1) {
      set_error(error, "\"trials\" must be >= 1");
      return false;
    }
    out.trials = static_cast<int>(trials->as_int());
  }
  if (!read_number(json, "horizon", out.horizon, "scenario", error))
    return false;
  if (out.horizon <= 0.0) {
    set_error(error, "\"horizon\" must be > 0");
    return false;
  }
  if (const Json* workload = json.find("workload"))
    if (!parse_workload_section(*workload, out, error)) return false;
  if (const Json* churn = json.find("churn"))
    if (!parse_churn_section(*churn, out, error)) return false;
  if (const Json* faults = json.find("faults")) {
    if (!faults->is_array()) {
      set_error(error, "\"faults\" must be an array of windows");
      return false;
    }
    for (const Json& entry : faults->elements()) {
      fault::FaultWindow window;
      if (!parse_fault_window(entry, window, error)) return false;
      out.fault_plan.add(window);
    }
  }
  if (const Json* domains = json.find("domains")) {
    if (!domains->is_array()) {
      set_error(error, "\"domains\" must be an array");
      return false;
    }
    for (const Json& entry : domains->elements()) {
      ScenarioDomain domain;
      if (!parse_domain(entry, domain, error)) return false;
      out.domains.push_back(std::move(domain));
    }
  }
  if (const Json* adversary = json.find("adversary"))
    if (!parse_adversary_section(*adversary, out, error)) return false;
  if (const Json* defense = json.find("defense"))
    if (!parse_defense_section(*defense, out, error)) return false;
  if (const Json* feed = json.find("feed"))
    if (!parse_feed_section(*feed, out, error)) return false;
  if (const Json* overload = json.find("overload"))
    if (!parse_overload_section(*overload, out, error)) return false;
  return true;
}

bool load_scenario_file(const std::string& path, Scenario& out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Json json;
  std::string parse_error;
  if (!Json::parse(text.str(), json, &parse_error)) {
    set_error(error, path + ": " + parse_error);
    return false;
  }
  if (!parse_scenario(json, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::shared_ptr<fault::FailureDomains> build_domains(
    const Scenario& scenario, std::size_t node_count) {
  if (scenario.domains.empty()) return nullptr;
  auto domains = std::make_shared<fault::FailureDomains>();
  for (const ScenarioDomain& declared : scenario.domains) {
    fault::FailureDomain domain;
    domain.name = declared.name;
    domain.windows = declared.windows;
    domain.members =
        declared.fraction > 0.0
            ? fault::FailureDomains::hashed_members(
                  declared.name, node_count, declared.fraction, scenario.seed)
            : declared.members;
    domains->add(std::move(domain));
  }
  return domains;
}

std::shared_ptr<fault::FaultInjector> build_fault_injector(
    const Scenario& scenario, std::size_t node_count, std::uint64_t seed) {
  if (!scenario.has_faults()) return nullptr;
  auto injector =
      std::make_shared<fault::FaultInjector>(scenario.fault_plan, seed);
  injector->set_domains(build_domains(scenario, node_count));
  return injector;
}

std::shared_ptr<fault::AdversaryBook> build_adversary(
    const Scenario& scenario, std::size_t node_count) {
  if (scenario.adversary.empty()) return nullptr;
  return std::make_shared<fault::AdversaryBook>(scenario.adversary,
                                                node_count);
}

namespace {

/// Feed phase shared by both engine paths: lossy dissemination (with the
/// adversary's free-riders, when present) over the final overlay.
void run_feed_phase(const Scenario& scenario, const Overlay& overlay,
                    std::shared_ptr<const fault::AdversaryBook> adversary,
                    std::uint64_t seed, ScenarioTrialResult& result) {
  feed::LossyConfig config;
  config.base.seed = seed;
  config.base.source.seed = seed;
  config.base.source.publish_period = scenario.feed.publish_period;
  config.base.capacity = scenario.overload.capacity;
  config.push_loss = scenario.feed.push_loss;
  config.enable_recovery = scenario.feed.recovery;
  config.recovery_period = scenario.feed.recovery_period;
  config.adversary = std::move(adversary);
  const feed::LossyReport report = feed::run_lossy_dissemination(
      overlay, config, scenario.feed.duration);
  result.feed_delivery_ratio = report.delivery_ratio;
  const std::uint64_t applications =
      report.push_deliveries + report.recovered_deliveries;
  result.feed_late_fraction =
      applications == 0 ? 0.0
                        : static_cast<double>(report.late_deliveries) /
                              static_cast<double>(applications);
  result.feed_withheld_pushes = report.withheld_pushes;
  result.feed_shed_pushes = report.shed_pushes;
}

/// Consumers parked offline for the join storm: the tail of the id
/// space, so membership is deterministic and independent of the engine.
NodeId storm_crowd_size(const Scenario& scenario, std::size_t peers) {
  const auto crowd = static_cast<NodeId>(
      static_cast<double>(peers) * scenario.overload.join_storm_fraction);
  return std::min<NodeId>(std::max<NodeId>(crowd, 1),
                          static_cast<NodeId>(peers) - 1);
}

template <typename EngineT>
void collect_overload_counters(const EngineT& engine,
                               ScenarioTrialResult& result) {
  if (const AdmissionController* control = engine.admission()) {
    result.oracle_admitted = control->admitted();
    result.oracle_rejected = control->rejected();
    result.oracle_breaker_trips = control->breaker_trips();
  }
  if (const AdmittedOracle* oracle = engine.admitted_oracle())
    result.oracle_stale_served = oracle->stale_served();
  result.starvation_detaches = engine.starvation_detaches();
}

template <typename EngineT>
void collect_defense_counters(const EngineT& engine,
                              ScenarioTrialResult& result) {
  const health::SuspicionBook& suspicion = engine.suspicion();
  result.suspicion_reports = suspicion.reports();
  result.fenced_reports = suspicion.fenced_reports();
  result.probations = suspicion.probations();
  result.quarantines = suspicion.quarantines();
  result.blacklists = suspicion.blacklists();
  result.quarantine_detaches = engine.quarantine_detaches();
  if (const fault::ByzantineOracle* oracle = engine.byzantine_oracle()) {
    result.oracle_barred_skips = oracle->barred_skips();
    result.oracle_implausible_skips = oracle->implausible_skips();
  }
}

}  // namespace

ScenarioTrialResult run_scenario_trial(const Scenario& scenario, int trial) {
  const std::uint64_t seed =
      scenario.seed + static_cast<std::uint64_t>(trial) * 7919;
  WorkloadParams params = scenario.workload_params;
  params.seed = seed;
  Population population = generate_workload(scenario.workload, params);
  const std::size_t node_count = params.peers + 1;

  ScenarioTrialResult result;
  result.horizon = scenario.horizon;
  auto adversary = build_adversary(scenario, node_count);
  auto faults = build_fault_injector(scenario, node_count, seed ^ 0xFA17);

  if (scenario.async) {
    AsyncConfig config;
    config.algorithm = scenario.algorithm;
    config.oracle = scenario.oracle;
    config.seed = seed;
    config.faults = faults;
    config.adversary = adversary;
    config.defense = scenario.defense;
    config.admission = scenario.overload.admission;
    AsyncEngine engine(std::move(population), config);
    if (scenario.has_churn)
      engine.set_churn(std::make_unique<BernoulliChurn>(scenario.churn_leave,
                                                        scenario.churn_join));
    if (scenario.overload.has_join_storm) {
      const NodeId crowd = storm_crowd_size(scenario, params.peers);
      result.storm_joiners = crowd;
      for (NodeId id = static_cast<NodeId>(params.peers) - crowd + 1;
           id <= static_cast<NodeId>(params.peers); ++id)
        engine.park_offline(id);
      engine.set_churn(std::make_unique<FlashCrowdChurn>(
          static_cast<Round>(scenario.overload.join_storm_at)));
    }
    result.satisfied_fraction = engine.run_for(scenario.horizon);
    result.converged = engine.overlay().all_satisfied();
    result.audit_violations = engine.audit_violations();
    collect_defense_counters(engine, result);
    collect_overload_counters(engine, result);
    if (faults != nullptr)
      result.domain_crashes = faults->stats().domain_crashes;
    if (scenario.feed.enabled)
      run_feed_phase(scenario, engine.overlay(), adversary, seed, result);
  } else {
    EngineConfig config;
    config.algorithm = scenario.algorithm;
    config.oracle = scenario.oracle;
    config.seed = seed;
    config.faults = faults;
    config.adversary = adversary;
    config.defense = scenario.defense;
    config.admission = scenario.overload.admission;
    Engine engine(std::move(population), config);
    if (scenario.has_churn)
      engine.set_churn(std::make_unique<BernoulliChurn>(scenario.churn_leave,
                                                        scenario.churn_join));
    if (scenario.overload.has_join_storm) {
      const NodeId crowd = storm_crowd_size(scenario, params.peers);
      result.storm_joiners = crowd;
      for (NodeId id = static_cast<NodeId>(params.peers) - crowd + 1;
           id <= static_cast<NodeId>(params.peers); ++id)
        engine.overlay().set_offline(id);
      engine.set_churn(std::make_unique<FlashCrowdChurn>(
          static_cast<Round>(scenario.overload.join_storm_at)));
    }
    const Round rounds =
        std::max<Round>(1, static_cast<Round>(std::ceil(scenario.horizon)));
    RoundStats stats;
    for (Round r = 0; r < rounds; ++r) stats = engine.run_round();
    result.satisfied_fraction = stats.satisfied_fraction;
    result.converged = engine.overlay().all_satisfied();
    result.audit_violations = engine.audit_violations();
    collect_defense_counters(engine, result);
    collect_overload_counters(engine, result);
    if (faults != nullptr)
      result.domain_crashes = faults->stats().domain_crashes;
    if (scenario.feed.enabled)
      run_feed_phase(scenario, engine.overlay(), adversary, seed, result);
  }
  return result;
}

}  // namespace lagover::workload
