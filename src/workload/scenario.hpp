// Declarative experiment scenarios ("lagover.scenario.v1"): one JSON
// document composes a topology workload, latency/feed settings, churn,
// a fault plan, correlated failure domains, a Byzantine adversary mix,
// and the defense ladder — everything an adversarial-robustness run
// needs — so experiments are data, not bespoke bench binaries. A single
// driver (bench_scenario) loads a file, runs it, and emits the usual
// "lagover.bench.v1" summary.
//
// The schema (all sections optional except "name"; unknown keys are
// rejected so typos fail loudly in CI):
//
//   {
//     "schema": "lagover.scenario.v1",
//     "name": "rack-outage",
//     "engine": "async" | "rounds",            // default "async"
//     "algorithm": "greedy" | "hybrid" | "fanout_greedy",
//     "oracle": "random" | "random_capacity" |
//               "random_delay_capacity" | "random_delay",
//     "seed": 1, "trials": 3,
//     "horizon": 600.0,                        // time units / rounds
//     "workload": {"kind": "tf1" | "rand" | "bi_corr" | "bi_uncorr",
//                  "peers": 120, "max_latency": 10},
//     "churn": {"leave_probability": 0.01, "rejoin_probability": 0.2},
//     "faults": [{"start": 100, "end": 200,    // FaultPlan windows
//                 "drop_probability": 0.2, "crash_probability": 0.01,
//                 "crash_downtime": 5, "partition_fraction": 0.3,
//                 "oracle_outage": true, "oracle_staleness": 30,
//                 "delay_probability": 0.1, "delay_amount": 2.0,
//                 "duplicate_probability": 0.05}],
//     "domains": [{"name": "rack-a",           // correlated blast radii
//                  "fraction": 0.25,           // or "members": [ids]
//                  "windows": [{"start": 150, "end": 220,
//                               "fault": "crash" | "partition"}]}],
//     "adversary": {"delay_liar_fraction": 0.05,
//                   "fanout_liar_fraction": 0.0,
//                   "free_rider_fraction": 0.0,
//                   "flapper_fraction": 0.0,
//                   "delay_understatement": 2,
//                   "flap_period": 30.0, "flap_duty": 0.5,
//                   "salt": 726693},
//     "defense": {"enabled": true,
//                 "probation_threshold": 2.0,
//                 "quarantine_threshold": 5.0,
//                 "blacklist_threshold": 12.0,
//                 "oracle_plausibility": true,
//                 "delay_verification": true, "receipt_audit": true},
//     "feed": {"duration": 300.0, "push_loss": 0.05,
//              "recovery": true, "recovery_period": 2.0,
//              "publish_period": 3.0},
//     "overload": {                             // overload resilience
//       "admission": {"rate_limit": 20, "window": 5.0,
//                     "retry_after": 2.0, "breaker_trip_windows": 3,
//                     "breaker_cooldown": 20.0,
//                     "breaker_close_windows": 2, "serve_stale": true},
//       "capacity": {"relay_budget": 4, "queue_limit": 16,
//                    "shedding": true, "fanout_factor": 0.5,
//                    "recovery_ticks": 3, "starve_limit": 3,
//                    "squeezes": [{"start": 100, "end": 200,
//                                  "factor": 0.5}]},
//       "join_storm": {"at": 50, "fraction": 0.5}  // excludes "churn"
//     }
//   }
//
// Determinism: a scenario names every seed it uses, so two runs of the
// same file produce byte-identical results (CI asserts this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/admission.hpp"
#include "core/types.hpp"
#include "fault/byzantine.hpp"
#include "feed/overload.hpp"
#include "fault/domains.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "health/suspicion.hpp"
#include "workload/constraints.hpp"

namespace lagover::workload {

/// Correlated-failure domain as declared (membership may be a fraction
/// that is only materialized once the population size is known).
struct ScenarioDomain {
  std::string name;
  double fraction = 0.0;              ///< hashed membership when > 0
  std::vector<NodeId> members;        ///< explicit membership otherwise
  std::vector<fault::DomainWindow> windows;
};

/// Optional feed phase run over the final overlay.
struct ScenarioFeed {
  bool enabled = false;
  double duration = 300.0;
  double push_loss = 0.0;
  bool recovery = false;
  double recovery_period = 2.0;
  double publish_period = 3.0;
};

/// Optional overload section: Oracle admission control, per-relay feed
/// capacity limits, and/or a flash-crowd join storm (a fraction of the
/// consumers parked offline until they all join at once).
struct ScenarioOverload {
  AdmissionConfig admission;      ///< empty() when not declared
  feed::CapacityConfig capacity;  ///< empty() when not declared
  bool has_join_storm = false;
  double join_storm_at = 0.0;        ///< ticks/rounds into the run
  double join_storm_fraction = 0.5;  ///< consumers parked offline

  bool empty() const noexcept {
    return admission.empty() && capacity.empty() && !has_join_storm;
  }
};

/// A parsed "lagover.scenario.v1" document.
struct Scenario {
  std::string name;
  bool async = true;  ///< "engine": "async" (event-driven) or "rounds"
  AlgorithmKind algorithm = AlgorithmKind::kHybrid;
  OracleKind oracle = OracleKind::kRandomDelay;
  std::uint64_t seed = 1;
  int trials = 1;
  double horizon = 600.0;  ///< simulated time units (async) / rounds
  WorkloadKind workload = WorkloadKind::kBiUnCorr;
  WorkloadParams workload_params;
  bool has_churn = false;
  double churn_leave = 0.01;
  double churn_join = 0.2;
  fault::FaultPlan fault_plan;
  std::vector<ScenarioDomain> domains;
  fault::ByzantineSpec adversary;  ///< empty() when no adversary section
  health::DefenseConfig defense;
  ScenarioFeed feed;
  ScenarioOverload overload;

  bool has_faults() const noexcept {
    return !fault_plan.empty() || !domains.empty();
  }
};

/// Parses a scenario document. Returns false (with `error` set when
/// given) on schema violations: wrong "schema" tag, unknown keys,
/// out-of-range values, malformed sections.
bool parse_scenario(const Json& json, Scenario& out,
                    std::string* error = nullptr);

/// Reads + parses a scenario file. Returns false on I/O or schema
/// errors, with `error` describing the failure.
bool load_scenario_file(const std::string& path, Scenario& out,
                        std::string* error = nullptr);

/// Materializes the declared domains for a concrete population size
/// (null when the scenario declares none).
std::shared_ptr<fault::FailureDomains> build_domains(
    const Scenario& scenario, std::size_t node_count);

/// Builds the composed fault injector (plan + domains; null when the
/// scenario is fault-free). `seed` salts the injector's own RNG stream.
std::shared_ptr<fault::FaultInjector> build_fault_injector(
    const Scenario& scenario, std::size_t node_count, std::uint64_t seed);

/// Builds the adversary role table (null when no adversary declared).
std::shared_ptr<fault::AdversaryBook> build_adversary(
    const Scenario& scenario, std::size_t node_count);

/// One trial's outcome, aggregated by the scenario driver.
struct ScenarioTrialResult {
  bool converged = false;        ///< every online consumer satisfied
  double satisfied_fraction = 0.0;
  double horizon = 0.0;
  std::uint64_t audit_violations = 0;
  // Defense-ladder counters (0 when defenses are off).
  std::uint64_t suspicion_reports = 0;
  std::uint64_t fenced_reports = 0;
  std::uint64_t probations = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t blacklists = 0;
  std::uint64_t quarantine_detaches = 0;
  std::uint64_t oracle_barred_skips = 0;
  std::uint64_t oracle_implausible_skips = 0;
  std::uint64_t domain_crashes = 0;
  // Feed phase (negative ratios = no feed phase ran).
  double feed_delivery_ratio = -1.0;
  double feed_late_fraction = -1.0;
  std::uint64_t feed_withheld_pushes = 0;
  // Overload counters (0 when the scenario has no overload section).
  std::uint64_t oracle_admitted = 0;
  std::uint64_t oracle_rejected = 0;
  std::uint64_t oracle_stale_served = 0;
  std::uint64_t oracle_breaker_trips = 0;
  std::uint64_t starvation_detaches = 0;
  std::uint64_t feed_shed_pushes = 0;
  std::uint64_t storm_joiners = 0;
};

/// Runs one trial of the scenario (trial index shifts the seed
/// deterministically: seed + trial * 7919). Deterministic: same
/// scenario + trial, same result, byte for byte.
ScenarioTrialResult run_scenario_trial(const Scenario& scenario, int trial);

}  // namespace lagover::workload
