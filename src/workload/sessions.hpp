// Session-length churn: instead of the paper's memoryless per-round
// coin flips, each peer alternates between online sessions and offline
// gaps with drawn durations. Measurement studies of P2P systems report
// heavy-tailed session lengths, so both exponential and Pareto
// lifetimes are supported; the Bernoulli model of Section 5.3
// corresponds to exponential sessions with mean 1/p.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace lagover {

struct SessionChurnConfig {
  double mean_online = 100.0;   ///< mean session length, rounds
  double mean_offline = 5.0;    ///< mean downtime, rounds
  /// Heavy-tailed sessions: Pareto with this shape (alpha > 1 keeps the
  /// mean finite); 0 = exponential sessions.
  double pareto_alpha = 0.0;
};

/// Alternating online/offline sessions per peer. Durations are drawn
/// from the engine's RNG stream, so runs stay deterministic per seed.
class SessionChurn final : public ChurnModel {
 public:
  explicit SessionChurn(SessionChurnConfig config);

  Decision decide(Round round, const Overlay& overlay, Rng& rng) override;

 private:
  double draw_online(Rng& rng) const;

  SessionChurnConfig config_;
  /// Rounds remaining in each node's current state; lazily initialized
  /// on the first decide() call (index = NodeId).
  std::vector<double> remaining_;
  bool initialized_ = false;
};

}  // namespace lagover
