#include "workload/churn.hpp"

#include "common/error.hpp"

namespace lagover {

BernoulliChurn::BernoulliChurn(double p_leave, double p_join)
    : p_leave_(p_leave), p_join_(p_join) {
  LAGOVER_EXPECTS(p_leave >= 0.0 && p_leave <= 1.0);
  LAGOVER_EXPECTS(p_join >= 0.0 && p_join <= 1.0);
}

ChurnModel::Decision BernoulliChurn::decide(Round /*round*/,
                                            const Overlay& overlay,
                                            Rng& rng) {
  Decision decision;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    if (overlay.online(id)) {
      if (rng.bernoulli(p_leave_)) decision.leave.push_back(id);
    } else {
      if (rng.bernoulli(p_join_)) decision.join.push_back(id);
    }
  }
  return decision;
}

MassFailureChurn::MassFailureChurn(Round fail_round, double fail_fraction,
                                   double p_join)
    : fail_round_(fail_round), fail_fraction_(fail_fraction), p_join_(p_join) {
  LAGOVER_EXPECTS(fail_fraction >= 0.0 && fail_fraction <= 1.0);
  LAGOVER_EXPECTS(p_join >= 0.0 && p_join <= 1.0);
}

ChurnModel::Decision MassFailureChurn::decide(Round round,
                                              const Overlay& overlay,
                                              Rng& rng) {
  Decision decision;
  if (round == fail_round_) {
    std::vector<NodeId> online;
    for (NodeId id = 1; id < overlay.node_count(); ++id)
      if (overlay.online(id)) online.push_back(id);
    rng.shuffle(online);
    const auto kill = static_cast<std::size_t>(
        fail_fraction_ * static_cast<double>(online.size()));
    decision.leave.assign(online.begin(),
                          online.begin() + static_cast<std::ptrdiff_t>(kill));
    return decision;
  }
  if (round > fail_round_) {
    for (NodeId id = 1; id < overlay.node_count(); ++id)
      if (!overlay.online(id) && rng.bernoulli(p_join_))
        decision.join.push_back(id);
  }
  return decision;
}

FlashCrowdChurn::FlashCrowdChurn(Round join_round)
    : join_round_(join_round) {}

ChurnModel::Decision FlashCrowdChurn::decide(Round round,
                                             const Overlay& overlay,
                                             Rng& /*rng*/) {
  Decision decision;
  if (round != join_round_) return decision;
  for (NodeId id = 1; id < overlay.node_count(); ++id)
    if (!overlay.online(id)) decision.join.push_back(id);
  return decision;
}

WindowedChurn::WindowedChurn(Round active_rounds, double p_leave,
                             double p_join)
    : active_rounds_(active_rounds), inner_(p_leave, p_join) {}

ChurnModel::Decision WindowedChurn::decide(Round round, const Overlay& overlay,
                                           Rng& rng) {
  if (round > active_rounds_) {
    // Churn phase over: everyone still offline rejoins so the system can
    // reconverge with the full population.
    Decision decision;
    for (NodeId id = 1; id < overlay.node_count(); ++id)
      if (!overlay.online(id)) decision.join.push_back(id);
    return decision;
  }
  return inner_.decide(round, overlay, rng);
}

}  // namespace lagover
