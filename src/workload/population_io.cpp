#include "workload/population_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace lagover {

Population parse_population(std::istream& in) {
  Population population;
  bool have_source = false;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;

    auto malformed = [&](const std::string& detail) -> void {
      throw InvalidArgument("population line " + std::to_string(line_number) +
                            ": " + detail);
    };

    if (keyword == "source") {
      if (!(fields >> population.source_fanout))
        malformed("expected 'source <fanout>'");
      if (population.source_fanout < 0) malformed("negative source fanout");
      have_source = true;
    } else if (keyword == "peer") {
      int fanout = 0;
      int latency = 0;
      if (!(fields >> fanout >> latency))
        malformed("expected 'peer <fanout> <latency>'");
      population.consumers.push_back(
          NodeSpec{static_cast<NodeId>(population.consumers.size() + 1),
                   Constraints{fanout, latency}});
    } else if (keyword == "peers") {
      long count = 0;
      int fanout = 0;
      int latency = 0;
      if (!(fields >> count >> fanout >> latency))
        malformed("expected 'peers <count> <fanout> <latency>'");
      if (count < 0) malformed("negative peer count");
      for (long k = 0; k < count; ++k)
        population.consumers.push_back(
            NodeSpec{static_cast<NodeId>(population.consumers.size() + 1),
                     Constraints{fanout, latency}});
    } else {
      malformed("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_source)
    throw InvalidArgument("population file missing 'source' line");
  validate(population);  // range checks (latency >= 1 etc.)
  return population;
}

Population parse_population_text(const std::string& text) {
  std::istringstream in(text);
  return parse_population(in);
}

Population load_population(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot read population file: " + path);
  return parse_population(in);
}

std::string to_population_text(const Population& population) {
  std::ostringstream out;
  out << "source " << population.source_fanout << '\n';
  std::size_t i = 0;
  const auto& consumers = population.consumers;
  while (i < consumers.size()) {
    std::size_t j = i;
    while (j < consumers.size() &&
           consumers[j].constraints == consumers[i].constraints)
      ++j;
    const auto run = j - i;
    if (run >= 3) {
      out << "peers " << run << ' ' << consumers[i].constraints.fanout << ' '
          << consumers[i].constraints.latency << '\n';
    } else {
      for (std::size_t k = i; k < j; ++k)
        out << "peer " << consumers[k].constraints.fanout << ' '
            << consumers[k].constraints.latency << '\n';
    }
    i = j;
  }
  return out.str();
}

bool save_population(const Population& population, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_population_text(population);
  return static_cast<bool>(out);
}

}  // namespace lagover
