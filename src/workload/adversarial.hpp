// Adversarial workloads (paper Section 3.3.1): instances that are
// feasible — a LagOver satisfying every latency and fanout constraint
// exists — yet violate the sufficient condition, and whose only feasible
// configurations place a lax-latency, high-fanout node upstream of
// stricter-latency nodes. The greedy algorithm's ordering invariant
// (parents at least as strict as children) makes such configurations
// unreachable; the hybrid algorithm finds them.
//
// Note on the paper's printed instance {0_1, 1_1^1, 2_1^2, 3_2^4, 4_1^3,
// 5_0^3}: under the paper's own delay-equals-depth accounting
// (established by the Section 3.2 toy example) its claimed configuration
// 0->1->2->3->{4,5} puts nodes 4 and 5 at delay 4 against l = 3, so the
// instance as printed is infeasible — an off-by-one slip. We keep the
// printed instance for regression tests of the exact feasibility checker
// and provide a corrected instance with the same fanout multiset that
// preserves the intended phenomenon.
#pragma once

#include "core/types.hpp"

namespace lagover {

/// The Section 3.3.1 instance exactly as printed (infeasible under
/// delay-equals-depth; see header comment).
Population paper_printed_counterexample();

/// Corrected 5-consumer instance, fanouts {1, 2, 0, 1, 0} like the
/// paper's: 1_1^1, 2_2^4, 3_0^3, 4_1^3, 5_0^4. Unique feasible shape is
/// 0 -> 1 -> 2 -> {3, 4}, 5 under 4 — node 2 (l = 4) must parent nodes
/// 3 and 4 (l = 3), which greedy can never establish.
Population corrected_counterexample();

/// Scalable family: a latency-1 gate at the source, one hub with fanout
/// k but lax latency 4, and k zero-fanout leaves with latency 3. The
/// only feasible shape is 0 -> gate -> hub -> leaves; greedy cannot
/// converge for any k >= 1, hybrid can.
Population adversarial_family(int k);

}  // namespace lagover
