// Topological-constraint workload generators (paper Section 4.1).
//
//   Tf1      "Use full available capacity": uniform fanout f, and the
//            latency classes sized f, f^2, f^3, ... so every upstream
//            slot is needed (3/9/27/81 at 120 peers with f = 3).
//   Rand     uncorrelated random latency and fanout.
//   BiCorr   bimodal fanout (modem vs broadband) where the
//            latency-strict peers (l below a threshold) are also the
//            low-fanout ones — the adversarial correlation.
//   BiUnCorr bimodal fanout uncorrelated with latency.
//
// The paper assumes generated populations meet the Section 3.3
// sufficiency condition; generators resample until it holds (and the
// exact feasibility witness exists), so every experiment starts from a
// constructible instance.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace lagover {

enum class WorkloadKind { kTf1, kRand, kBiCorr, kBiUnCorr };

std::string to_string(WorkloadKind kind);

/// All four workload kinds, in the paper's presentation order.
inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kTf1, WorkloadKind::kRand, WorkloadKind::kBiCorr,
    WorkloadKind::kBiUnCorr};

struct WorkloadParams {
  std::size_t peers = 120;  ///< paper Section 5.2 population
  /// Source fanout; 0 = automatic (Tf1: tf1_fanout; others:
  /// max(3, peers/8), enough to host the expected latency-1 class).
  int source_fanout = 0;
  Delay max_latency = 10;  ///< Rand/Bi* draw l uniformly in [1, max]
  int tf1_fanout = 3;
  int rand_fanout_max = 8;  ///< Rand draws f uniformly in [0, max]
  int low_fanout_min = 1;   ///< "modem" class
  int low_fanout_max = 2;
  int high_fanout_min = 7;  ///< "broadband" class
  int high_fanout_max = 8;
  /// BiCorr: peers with l < this threshold are forced low-fanout.
  Delay bicorr_strict_threshold = 3;
  double high_fanout_probability = 0.5;
  std::uint64_t seed = 1;
  /// Resampling budget for meeting the sufficiency condition.
  int max_retries = 10000;
};

/// Generates a population of the given kind; deterministic in
/// params.seed. Throws InvalidState if no sufficient instance is found
/// within max_retries resamples.
Population generate_workload(WorkloadKind kind, const WorkloadParams& params);

}  // namespace lagover
