#include "workload/sessions.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lagover {

SessionChurn::SessionChurn(SessionChurnConfig config) : config_(config) {
  LAGOVER_EXPECTS(config.mean_online > 0.0);
  LAGOVER_EXPECTS(config.mean_offline > 0.0);
  LAGOVER_EXPECTS(config.pareto_alpha == 0.0 || config.pareto_alpha > 1.0);
}

double SessionChurn::draw_online(Rng& rng) const {
  if (config_.pareto_alpha == 0.0)
    return rng.exponential(1.0 / config_.mean_online);
  // Pareto with shape alpha and mean = x_m * alpha / (alpha - 1); choose
  // x_m so the configured mean holds.
  const double alpha = config_.pareto_alpha;
  const double x_m = config_.mean_online * (alpha - 1.0) / alpha;
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m * std::pow(u, -1.0 / alpha);
}

ChurnModel::Decision SessionChurn::decide(Round /*round*/,
                                          const Overlay& overlay, Rng& rng) {
  if (!initialized_) {
    remaining_.assign(overlay.node_count(), 0.0);
    for (NodeId id = 1; id < overlay.node_count(); ++id)
      remaining_[id] = overlay.online(id)
                           ? draw_online(rng)
                           : rng.exponential(1.0 / config_.mean_offline);
    initialized_ = true;
  }

  Decision decision;
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    remaining_[id] -= 1.0;
    if (remaining_[id] > 0.0) continue;
    if (overlay.online(id)) {
      decision.leave.push_back(id);
      remaining_[id] = rng.exponential(1.0 / config_.mean_offline);
    } else {
      decision.join.push_back(id);
      remaining_[id] = draw_online(rng);
    }
  }
  return decision;
}

}  // namespace lagover
