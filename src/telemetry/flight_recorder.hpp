// Flight recorder: a bounded black box for post-mortems. While armed it
// rides the global telemetry buses and retains the most recent N
// events, item spans, and log records, plus caller-provided overlay
// snapshot deltas and invariant violations. On the first violation (or
// on explicit request) it dumps a self-contained post-mortem bundle —
// schema "lagover.postmortem.v1" — carrying everything needed to
// understand and REPRODUCE the failure offline: the retained streams,
// the snapshots, a metrics summary, the fault-plan digest, and the
// seed/flags of the run. `lagover_inspect` (src/tools/) answers
// time-travel queries against the bundle.
//
// Layering: this lives in telemetry/, below core/, so overlay snapshots
// arrive pre-serialized (core/snapshot.hpp text) and violations arrive
// as plain ViolationNotes; core/validator.hpp provides the AuditBus →
// FlightRecorder adapter (attach_flight_recorder).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// An invariant violation as the recorder stores it (decoupled from
/// core's InvariantViolation so telemetry stays below core).
struct ViolationNote {
  double ts = 0.0;
  std::string invariant;
  std::string cause;
  std::uint32_t node = 0;
  std::uint32_t parent = 0;
  std::string detail;
};

/// Bounded retention ring over the global event/span/log buses plus
/// snapshot and violation intakes; dumps "lagover.postmortem.v1"
/// bundles. Subscribes on construction, unsubscribes on destruction.
///
/// Internally locked: the bus handlers may fire from any publishing
/// thread, so every ring sits behind the recorder's mutex. The
/// violation auto-dump decides under the lock but WRITES the bundle
/// outside it (the dump reads the rings through to_json's own lock and
/// the metrics registry through its own — holding ours across that
/// would nest three locks for no benefit).
class LAGOVER_THREAD_SAFE FlightRecorder {
 public:
  struct Config {
    std::size_t event_capacity = 4096;
    std::size_t span_capacity = 8192;
    std::size_t log_capacity = 1024;
    std::size_t snapshot_capacity = 8;
    std::size_t violation_capacity = 256;
    std::size_t health_capacity = 64;
  };

  FlightRecorder();
  explicit FlightRecorder(Config config);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- repro metadata (embedded verbatim in the bundle) ---------------
  void set_repro(std::uint64_t seed, std::string flags)
      LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    seed_ = seed;
    flags_ = std::move(flags);
  }
  /// Human-readable fault-plan digest (FaultPlan::to_string()).
  void set_fault_plan(std::string digest) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    fault_plan_ = std::move(digest);
  }

  // --- intakes --------------------------------------------------------
  /// Retains an overlay snapshot (core/snapshot.hpp text) taken at sim
  /// time t. Consecutive identical snapshots are collapsed (delta
  /// retention): only state changes consume ring slots.
  void note_snapshot(double t, const std::string& snapshot_text)
      LAGOVER_EXCLUDES(mutex_);

  /// Retains a violation; on the FIRST one, triggers the auto-dump when
  /// armed via set_dump_on_violation().
  void note_violation(const ViolationNote& note) LAGOVER_EXCLUDES(mutex_);

  /// Retains an overlay-health sample line ("lagover.health.v1",
  /// OverlayHealthRecorder::set_sample_mirror feeds this) so bundles
  /// carry the last K structural snapshots leading up to a failure.
  void note_health(const Json& sample) LAGOVER_EXCLUDES(mutex_);

  /// Arms auto-dump: the first note_violation() writes the bundle to
  /// `path` (empty disarms).
  void set_dump_on_violation(std::string path) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    dump_path_ = std::move(path);
  }

  // --- state ----------------------------------------------------------
  bool violation_seen() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return violations_total_ > 0;
  }
  std::uint64_t violations_total() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return violations_total_;
  }
  std::size_t retained_events() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return events_.size();
  }
  std::size_t retained_spans() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return spans_.size();
  }
  std::size_t retained_logs() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return logs_.size();
  }
  std::size_t retained_snapshots() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return snapshots_.size();
  }
  std::size_t retained_health() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return health_.size();
  }
  /// Did the armed auto-dump fire (and succeed)?
  bool dumped() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return dumped_;
  }

  // --- bundle ---------------------------------------------------------
  /// The full "lagover.postmortem.v1" document. `reason` is typically
  /// "invariant_violation" or "explicit".
  Json to_json(const std::string& reason) const LAGOVER_EXCLUDES(mutex_);

  /// Writes the bundle; false on I/O failure.
  bool dump(const std::string& path, const std::string& reason) const
      LAGOVER_EXCLUDES(mutex_);

 private:
  struct SnapshotRecord {
    double t = 0.0;
    std::string text;
  };

  template <typename T>
  static void retain(std::deque<T>& ring, std::size_t capacity, T value) {
    if (capacity == 0) return;
    if (ring.size() == capacity) ring.pop_front();
    ring.push_back(std::move(value));
  }

  // Set once in the constructor, then immutable.
  Config config_;
  EventBus<EventRecord>::SubscriptionId event_sub_ = 0;
  SpanBus::SubscriptionId span_sub_ = 0;
  EventBus<LogRecord>::SubscriptionId log_sub_ = 0;

  mutable Mutex mutex_;
  std::deque<EventRecord> events_ LAGOVER_GUARDED_BY(mutex_);
  std::deque<ItemSpan> spans_ LAGOVER_GUARDED_BY(mutex_);
  std::deque<LogRecord> logs_ LAGOVER_GUARDED_BY(mutex_);
  std::deque<SnapshotRecord> snapshots_ LAGOVER_GUARDED_BY(mutex_);
  std::deque<ViolationNote> violations_ LAGOVER_GUARDED_BY(mutex_);
  std::deque<Json> health_ LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t violations_total_ LAGOVER_GUARDED_BY(mutex_) = 0;

  std::uint64_t seed_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::string flags_ LAGOVER_GUARDED_BY(mutex_);
  std::string fault_plan_ LAGOVER_GUARDED_BY(mutex_);
  std::string dump_path_ LAGOVER_GUARDED_BY(mutex_);
  bool dumped_ LAGOVER_GUARDED_BY(mutex_) = false;
};

/// Serializers shared by the JSONL exporter and the bundle writer, so
/// both speak the same "lagover.spans.v1" line schema.
Json event_to_json(const EventRecord& record);
Json span_to_json(const ItemSpan& span);
Json log_to_json(const LogRecord& record);

}  // namespace lagover::telemetry
