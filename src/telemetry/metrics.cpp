#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace lagover::telemetry {

LogHistogram::LogHistogram(double lo, double base, std::size_t buckets)
    : lo_(lo), base_(base), num_buckets_(buckets), counts_(buckets, 0) {
  LAGOVER_EXPECTS(lo > 0.0);
  LAGOVER_EXPECTS(base > 1.0);
  LAGOVER_EXPECTS(buckets > 0);
}

LogHistogram::LogHistogram(const LogHistogram& other)
    : lo_(other.lo_), base_(other.base_), num_buckets_(other.num_buckets_) {
  State s = other.snapshot();
  counts_ = std::move(s.counts);
  underflow_ = s.underflow;
  overflow_ = s.overflow;
  count_ = s.count;
  sum_ = s.sum;
  min_ = s.min;
  max_ = s.max;
}

LogHistogram::State LogHistogram::snapshot() const {
  MutexLock lock(&mutex_);
  State s;
  s.counts = counts_;
  s.underflow = underflow_;
  s.overflow = overflow_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

void LogHistogram::add(double x) noexcept {
  MutexLock lock(&mutex_);
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  // bucket = floor(log_base(x / lo)); computed in log space, then
  // nudged down when floating-point error lands a boundary value one
  // bucket high (x exactly equal to a bucket lower bound must fall in
  // that bucket).
  auto bucket = static_cast<std::size_t>(std::log(x / lo_) / std::log(base_));
  if (bucket < num_buckets_ && x < bucket_lower(bucket)) --bucket;
  if (bucket >= num_buckets_) {
    ++overflow_;
    return;
  }
  ++counts_[bucket];
}

std::uint64_t LogHistogram::count_in_bucket(std::size_t bucket) const {
  LAGOVER_EXPECTS(bucket < num_buckets_);
  MutexLock lock(&mutex_);
  return counts_[bucket];
}

double LogHistogram::bucket_lower(std::size_t bucket) const {
  LAGOVER_EXPECTS(bucket < num_buckets_);
  return lo_ * std::pow(base_, static_cast<double>(bucket));
}

double LogHistogram::bucket_upper(std::size_t bucket) const {
  LAGOVER_EXPECTS(bucket < num_buckets_);
  return lo_ * std::pow(base_, static_cast<double>(bucket + 1));
}

double LogHistogram::percentile(double q) const {
  MutexLock lock(&mutex_);
  return percentile_locked(q);
}

double LogHistogram::percentile_locked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  // Underflow values are only known to lie below lo_: anchor them at
  // the exact recorded minimum.
  if (target <= cumulative) return min_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double in_bucket = static_cast<double>(counts_[b]);
    if (in_bucket > 0.0 && target <= cumulative + in_bucket) {
      const double fraction = (target - cumulative) / in_bucket;
      const double value =
          bucket_lower(b) + (bucket_upper(b) - bucket_lower(b)) * fraction;
      // The interpolation cannot honestly exceed the recorded extremes.
      return std::clamp(value, min_, max_);
    }
    cumulative += in_bucket;
  }
  // Remaining mass is overflow: anchor at the exact recorded maximum.
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  LAGOVER_EXPECTS(other.lo_ == lo_ && other.base_ == base_ &&
                  other.num_buckets_ == num_buckets_);
  // Snapshot under other's lock, apply under ours: the two locks are
  // never held together, so merging in both directions concurrently
  // cannot deadlock (and self-merge degenerates safely).
  const State s = other.snapshot();
  if (s.count == 0) return;
  MutexLock lock(&mutex_);
  if (count_ == 0) {
    min_ = s.min;
    max_ = s.max;
  } else {
    min_ = std::min(min_, s.min);
    max_ = std::max(max_, s.max);
  }
  count_ += s.count;
  sum_ += s.sum;
  underflow_ += s.underflow;
  overflow_ += s.overflow;
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += s.counts[b];
}

void LogHistogram::reset() noexcept {
  MutexLock lock(&mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  return gauges_[name];
}

LogHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                         double base, std::size_t buckets) {
  MutexLock lock(&mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, LogHistogram(lo, base, buckets))
      .first->second;
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  MutexLock lock(&mutex_);
  return counters_.count(name) != 0;
}
bool MetricsRegistry::has_gauge(const std::string& name) const {
  MutexLock lock(&mutex_);
  return gauges_.count(name) != 0;
}
bool MetricsRegistry::has_histogram(const std::string& name) const {
  MutexLock lock(&mutex_);
  return histograms_.count(name) != 0;
}

void MetricsRegistry::reset() {
  MutexLock lock(&mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Snapshot `other` under its lock, then apply under ours. Sequential
  // (never nested) locking means two registries merging into each
  // other concurrently cannot deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LogHistogram>> histograms;
  {
    MutexLock lock(&other.mutex_);
    for (const auto& [name, c] : other.counters_)
      counters.emplace_back(name, c.value());
    for (const auto& [name, g] : other.gauges_)
      gauges.emplace_back(name, g.value());
    for (const auto& [name, h] : other.histograms_)
      histograms.emplace_back(name, h);
  }
  MutexLock lock(&mutex_);
  for (const auto& [name, v] : counters) counters_[name].inc(v);
  for (const auto& [name, v] : gauges) gauges_[name].set(v);
  for (const auto& [name, h] : histograms) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn)
    const {
  MutexLock lock(&mutex_);
  for (const auto& [name, c] : counters_) fn(name, c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  MutexLock lock(&mutex_);
  for (const auto& [name, g] : gauges_) fn(name, g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const LogHistogram&)>& fn)
    const {
  MutexLock lock(&mutex_);
  for (const auto& [name, h] : histograms_) fn(name, h);
}

Json MetricsRegistry::to_json(bool include_buckets) const {
  MutexLock lock(&mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, Json::integer(static_cast<std::int64_t>(c.value())));
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_)
    gauges.set(name, Json::number(g.value()));
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry.set("count", Json::integer(static_cast<std::int64_t>(h.count())));
    entry.set("sum", Json::number(h.sum()));
    entry.set("min", Json::number(h.min()));
    entry.set("max", Json::number(h.max()));
    entry.set("mean", Json::number(h.mean()));
    entry.set("p50", Json::number(h.percentile(0.5)));
    entry.set("p90", Json::number(h.percentile(0.9)));
    entry.set("p99", Json::number(h.percentile(0.99)));
    entry.set("underflow",
              Json::integer(static_cast<std::int64_t>(h.underflow())));
    entry.set("overflow",
              Json::integer(static_cast<std::int64_t>(h.overflow())));
    if (include_buckets) {
      Json buckets = Json::array();
      for (std::size_t b = 0; b < h.bucket_count(); ++b) {
        if (h.count_in_bucket(b) == 0) continue;  // sparse encoding
        Json bucket = Json::object();
        bucket.set("lo", Json::number(h.bucket_lower(b)));
        bucket.set("hi", Json::number(h.bucket_upper(b)));
        bucket.set("count", Json::integer(static_cast<std::int64_t>(
                                h.count_in_bucket(b))));
        buckets.push_back(std::move(bucket));
      }
      entry.set("buckets", std::move(buckets));
    }
    histograms.set(name, std::move(entry));
  }
  Json root = Json::object();
  root.set("schema", Json::string("lagover.metrics.v1"));
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

}  // namespace lagover::telemetry
