#include "telemetry/export.hpp"

#include "telemetry/flight_recorder.hpp"

namespace lagover::telemetry {

void TimeseriesSampler::sample(double t) {
  // Benches run trials back-to-back and every trial's clock starts at
  // zero: a non-advancing timestamp means a new run began.
  if (samples_ > 0 && t <= last_t_) clear();
  last_t_ = t;
  ++samples_;
  registry_.for_each_counter(
      [&](const std::string& name, const Counter& counter) {
        series_[name].add(t, static_cast<double>(counter.value()));
      });
  registry_.for_each_gauge([&](const std::string& name, const Gauge& gauge) {
    series_[name].add(t, gauge.value());
  });
}

void TimeseriesSampler::clear() {
  series_.clear();
  samples_ = 0;
  last_t_ = 0.0;
}

Json TimeseriesSampler::to_json(std::size_t max_points) const {
  Json root = Json::object();
  for (const auto& [name, series] : series_) {
    const TimeSeries compact = series.downsample(max_points);
    Json points = Json::array();
    for (std::size_t i = 0; i < compact.size(); ++i) {
      Json point = Json::array();
      point.push_back(Json::number(compact.time_at(i)));
      point.push_back(Json::number(compact.value_at(i)));
      points.push_back(std::move(point));
    }
    root.set(name, std::move(points));
  }
  return root;
}

JsonlEventWriter::JsonlEventWriter(const std::string& path, bool spans_only)
    : out_(path) {
  span_sub_ =
      span_bus().subscribe([this](const ItemSpan& span) { on_span(span); });
  if (spans_only) return;
  subscribed_events_ = true;
  event_sub_ = event_bus().subscribe(
      [this](const EventRecord& record) { on_event(record); });
  log_sub_ =
      log_bus().subscribe([this](const LogRecord& record) { on_log(record); });
}

JsonlEventWriter::~JsonlEventWriter() {
  span_bus().unsubscribe(span_sub_);
  if (subscribed_events_) {
    event_bus().unsubscribe(event_sub_);
    log_bus().unsubscribe(log_sub_);
  }
}

void JsonlEventWriter::on_event(const EventRecord& record) {
  MutexLock lock(&mutex_);
  if (!out_) return;
  out_ << event_to_json(record).dump() << '\n';
  ++lines_;
}

void JsonlEventWriter::on_span(const ItemSpan& span) {
  MutexLock lock(&mutex_);
  if (!out_) return;
  out_ << span_to_json(span).dump() << '\n';
  ++lines_;
}

void JsonlEventWriter::on_log(const LogRecord& record) {
  MutexLock lock(&mutex_);
  if (!out_) return;
  out_ << log_to_json(record).dump() << '\n';
  ++lines_;
}

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;
constexpr int kItemPid = 3;

/// Chrome trace timestamps are microseconds; one simulated time unit
/// maps to one second so Perfetto's zoom levels stay usable.
double sim_to_us(double sim_time) { return sim_time * 1e6; }

Json process_name_metadata(int pid, const char* name) {
  Json args = Json::object();
  args.set("name", Json::string(name));
  Json event = Json::object();
  event.set("name", Json::string("process_name"));
  event.set("ph", Json::string("M"));
  event.set("pid", Json::integer(pid));
  event.set("tid", Json::integer(0));
  event.set("args", std::move(args));
  return event;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter() {
  events_.push_back(process_name_metadata(kSimPid, "sim (1 unit = 1s)"));
  events_.push_back(process_name_metadata(kWallPid, "wall (profiler)"));
  events_.push_back(process_name_metadata(kItemPid, "items (1 row = 1 item)"));
  event_sub_ = event_bus().subscribe(
      [this](const EventRecord& record) { on_event(record); });
  span_sub_ =
      span_bus().subscribe([this](const ItemSpan& span) { on_span(span); });
  log_sub_ =
      log_bus().subscribe([this](const LogRecord& record) { on_log(record); });
  previous_sink_ = Profiler::instance().sink();
  Profiler::instance().set_sink(this);
}

ChromeTraceWriter::~ChromeTraceWriter() {
  event_bus().unsubscribe(event_sub_);
  span_bus().unsubscribe(span_sub_);
  log_bus().unsubscribe(log_sub_);
  if (Profiler::instance().sink() == this)
    Profiler::instance().set_sink(previous_sink_);
}

void ChromeTraceWriter::on_event(const EventRecord& record) {
  MutexLock lock(&mutex_);
  Json args = Json::object();
  args.set("node", Json::integer(record.subject));
  args.set("partner", Json::integer(record.partner));
  if (record.epoch != 0) args.set("epoch", Json::integer(record.epoch));
  if (record.cause[0] != '\0') args.set("cause", Json::string(record.cause));
  args.set("attached", Json::boolean(record.attached));
  Json event = Json::object();
  event.set("name", Json::string(record.name));
  event.set("cat", Json::string("overlay"));
  event.set("ph", Json::string("i"));
  event.set("s", Json::string("t"));  // thread-scoped instant
  event.set("ts", Json::number(sim_to_us(record.ts)));
  event.set("pid", Json::integer(kSimPid));
  event.set("tid", Json::integer(record.subject));
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::on_span(const ItemSpan& span) {
  MutexLock lock(&mutex_);
  Json args = Json::object();
  args.set("trace_id", Json::integer(static_cast<std::int64_t>(span.item)));
  args.set("node", Json::integer(span.node));
  if (span.parent != 0xffffffffu) {
    args.set("parent", Json::integer(span.parent));
    // Parent span id mirrors the JSONL schema: span (item, node)'s
    // parent span is (item, parent).
    args.set("parent_span", Json::string(std::to_string(span.item) + ":" +
                                         std::to_string(span.parent)));
  }
  args.set("hop", Json::integer(span.hop));
  if (span.feed != 0) args.set("feed", Json::integer(span.feed));
  if (span.deadline >= 0.0) args.set("deadline", Json::number(span.deadline));
  if (span.epoch != 0) args.set("epoch", Json::integer(span.epoch));
  if (span.cause[0] != '\0') args.set("cause", Json::string(span.cause));
  Json event = Json::object();
  event.set("name", Json::string(std::string(to_string(span.kind)) + " @" +
                                 std::to_string(span.node)));
  event.set("cat", Json::string("item"));
  const bool instant = span.ts <= span.start;
  if (instant) {
    event.set("ph", Json::string("i"));
    event.set("s", Json::string("t"));
    event.set("ts", Json::number(sim_to_us(span.ts)));
  } else {
    // One X slice per hop: rows keyed by item render a dissemination
    // wave as a flame of hops.
    event.set("ph", Json::string("X"));
    event.set("ts", Json::number(sim_to_us(span.start)));
    event.set("dur", Json::number(sim_to_us(span.ts - span.start)));
  }
  event.set("pid", Json::integer(kItemPid));
  event.set("tid", Json::integer(static_cast<std::int64_t>(span.item)));
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::on_log(const LogRecord& record) {
  MutexLock lock(&mutex_);
  Json args = Json::object();
  args.set("message", Json::string(record.message));
  args.set("level", Json::integer(record.level));
  Json event = Json::object();
  event.set("name", Json::string("log"));
  event.set("cat", Json::string("log"));
  event.set("ph", Json::string("i"));
  event.set("s", Json::string("g"));  // global instant: full-height line
  event.set("ts", Json::number(sim_to_us(record.sim_time)));
  event.set("pid", Json::integer(kSimPid));
  event.set("tid", Json::integer(0));
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void ChromeTraceWriter::scope_complete(const ProfileSite& site,
                                       std::uint64_t start_wall_ns,
                                       std::uint64_t duration_ns,
                                       double sim_time) {
  MutexLock lock(&mutex_);
  Json args = Json::object();
  args.set("sim_time", Json::number(sim_time));
  Json event = Json::object();
  event.set("name", Json::string(site.name));
  event.set("cat", Json::string("profile"));
  event.set("ph", Json::string("X"));  // complete (duration) event
  event.set("ts", Json::number(static_cast<double>(start_wall_ns) / 1e3));
  event.set("dur", Json::number(static_cast<double>(duration_ns) / 1e3));
  event.set("pid", Json::integer(kWallPid));
  event.set("tid", Json::integer(0));
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

bool ChromeTraceWriter::write(const std::string& path) const {
  MutexLock lock(&mutex_);
  std::ofstream out(path);
  if (!out) return false;
  Json trace_events = Json::array();
  for (const Json& event : events_) trace_events.push_back(event);
  Json root = Json::object();
  root.set("traceEvents", std::move(trace_events));
  root.set("displayTimeUnit", Json::string("ms"));
  out << root.dump() << '\n';
  return static_cast<bool>(out);
}

Json metrics_summary_json(const TimeseriesSampler* sampler,
                          bool include_buckets) {
  Json root = MetricsRegistry::instance().to_json(include_buckets);
  root.set("profile", Profiler::instance().to_json());
  if (sampler != nullptr && sampler->samples() > 0)
    root.set("timeseries", sampler->to_json());
  return root;
}

}  // namespace lagover::telemetry
