// Scoped profiler: TELEM_SCOPE("oracle.sample") aggregates call counts
// and wall-clock nanoseconds per named site, and stamps each scope with
// the simulated time it ran at. This is the perf baseline for later
// optimization PRs: hot paths (oracle sampling, maintenance rounds,
// plan application, message delivery) carry a scope, and the bench
// summary embeds the aggregate so regressions are diffable.
//
// Cost model: telemetry off = one predicted branch per scope; on = two
// steady_clock reads plus a handful of relaxed atomic adds — scopes on
// parallel shards never contend on a lock. A scope sink (the Chrome
// trace writer) can additionally capture every individual scope as a
// duration event.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// Aggregate for one profiled site. The counters are relaxed atomics:
/// concurrent scopes on the same site lose no calls or nanoseconds,
/// though a reader can observe calls/total_ns from slightly different
/// moments (fine for aggregate reporting).
struct LAGOVER_THREAD_SAFE ProfileSite {
  std::string name;  ///< set once at registration, immutable after
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
};

/// Receives every completed scope when attached (exporters implement
/// this to emit per-scope duration events). May be called from any
/// thread that runs a TELEM_SCOPE, so implementations must be
/// internally synchronized.
class ScopeSink {
 public:
  virtual ~ScopeSink() = default;
  virtual void scope_complete(const ProfileSite& site,
                              std::uint64_t start_wall_ns,
                              std::uint64_t duration_ns, double sim_time) = 0;
};

/// Name -> aggregate registry for profiled scopes.
class LAGOVER_THREAD_SAFE Profiler {
 public:
  static Profiler& instance();

  /// Finds or creates; addresses are stable (reset() zeroes, never
  /// erases), so TELEM_SCOPE can cache them in function-local statics.
  ProfileSite& site(const std::string& name) LAGOVER_EXCLUDES(mutex_);

  void reset() LAGOVER_EXCLUDES(mutex_);

  /// Runs under the profiler lock; `fn` must not call back into the
  /// profiler (site/reset) or it will self-deadlock.
  void for_each(
      const std::function<void(const ProfileSite&)>& fn) const
      LAGOVER_EXCLUDES(mutex_);

  /// {"<site>": {"calls": N, "total_ns": N, "mean_ns": x, "max_ns": N}}
  Json to_json() const LAGOVER_EXCLUDES(mutex_);

  /// Installs (or clears, with nullptr) the per-scope sink.
  /// Release/acquire so the sink's setup is visible to whichever
  /// thread's scope first fires it.
  void set_sink(ScopeSink* sink) noexcept {
    sink_.store(sink, std::memory_order_release);
  }
  ScopeSink* sink() const noexcept {
    return sink_.load(std::memory_order_acquire);
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, ProfileSite> sites_ LAGOVER_GUARDED_BY(mutex_);
  std::atomic<ScopeSink*> sink_{nullptr};
};

/// RAII scope: records into `site` on destruction. A null site (the
/// telemetry-off path) makes construction and destruction free.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileSite* site) noexcept
      : site_(site), start_ns_(site == nullptr ? 0 : wall_nanos()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (site_ == nullptr) return;
    const std::uint64_t end_ns = wall_nanos();
    const std::uint64_t duration = end_ns - start_ns_;
    site_->calls.fetch_add(1, std::memory_order_relaxed);
    site_->total_ns.fetch_add(duration, std::memory_order_relaxed);
    // Monotonic max via CAS: only ever raises, so concurrent scopes
    // settle on the true maximum.
    std::uint64_t seen = site_->max_ns.load(std::memory_order_relaxed);
    while (duration > seen &&
           !site_->max_ns.compare_exchange_weak(seen, duration,
                                                std::memory_order_relaxed)) {
    }
    if (ScopeSink* sink = Profiler::instance().sink())
      sink->scope_complete(*site_, start_ns_, duration, sim_now());
  }

 private:
  ProfileSite* site_;
  std::uint64_t start_ns_;
};

}  // namespace lagover::telemetry

#define TELEM_CAT2_(a, b) a##b
#define TELEM_CAT_(a, b) TELEM_CAT2_(a, b)

/// Profiles the enclosing scope under `name`. The site reference is
/// resolved once per call site; the timer only arms while telemetry is
/// enabled.
#define TELEM_SCOPE(name)                                                 \
  static ::lagover::telemetry::ProfileSite& TELEM_CAT_(                   \
      telem_site_, __LINE__) =                                            \
      ::lagover::telemetry::Profiler::instance().site(name);              \
  ::lagover::telemetry::ScopedTimer TELEM_CAT_(telem_timer_, __LINE__){   \
      ::lagover::telemetry::enabled() ? &TELEM_CAT_(telem_site_,          \
                                                    __LINE__)             \
                                      : nullptr}
