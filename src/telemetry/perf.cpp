#include "telemetry/perf.hpp"

#include <atomic>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace lagover::telemetry {
namespace {

/// Reads one "Vm...:  N kB" line of /proc/self/status, in bytes.
/// Returns 0 off Linux or when the field is absent.
std::uint64_t proc_status_bytes(const std::string& field) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) != 0) continue;
    std::istringstream fields(line.substr(field.size()));
    std::uint64_t kilobytes = 0;
    fields >> kilobytes;
    return kilobytes * 1024;
  }
  return 0;
}

/// The counters that make up "simulated rounds": synchronous engine
/// rounds plus asynchronous wake-ups.
constexpr const char* kRoundCounters[] = {"engine.rounds", "async.wakes"};

/// The counters that make up "protocol messages" — the per-round
/// message-complexity numerator: overlay maintenance traffic, feed
/// pushes, source polls, and Oracle queries.
constexpr const char* kMessageCounters[] = {
    "net.messages_sent",
    "feed.push_messages",
    "feed.source_requests",
    "oracle.queries",
};

std::uint64_t counters_total(const char* const* names, std::size_t count) {
  std::uint64_t total = 0;
  const MetricsRegistry& registry = MetricsRegistry::instance();
  // for_each avoids find-or-create: snapshotting must not add entries
  // to the registry (the metrics JSON lists every registered name).
  registry.for_each_counter(
      [&](const std::string& name, const Counter& counter) {
        for (std::size_t i = 0; i < count; ++i)
          if (name == names[i]) total += counter.value();
      });
  return total;
}

std::uint64_t rounds_total() {
  return counters_total(kRoundCounters, std::size(kRoundCounters));
}

std::uint64_t messages_total() {
  return counters_total(kMessageCounters, std::size(kMessageCounters));
}

double per_second(std::uint64_t count, std::uint64_t wall_ns) {
  if (wall_ns == 0) return 0.0;
  return static_cast<double>(count) /
         (static_cast<double>(wall_ns) * 1e-9);
}

double per_round(std::uint64_t count, std::uint64_t rounds) {
  if (rounds == 0) return 0.0;
  return static_cast<double>(count) / static_cast<double>(rounds);
}

Json integer_json(std::uint64_t value) {
  return Json::integer(static_cast<std::int64_t>(value));
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t peak = proc_status_bytes("VmHWM:"); peak != 0)
    return peak;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_bytes() { return proc_status_bytes("VmRSS:"); }

// ------------------------------------------------------------ recorder

namespace {

std::atomic<PerfRecorder*>& active_recorder() noexcept {
  static std::atomic<PerfRecorder*> recorder{nullptr};
  return recorder;
}

}  // namespace

PerfRecorder* PerfRecorder::active() noexcept {
  return active_recorder().load(std::memory_order_acquire);
}

void PerfRecorder::set_active(PerfRecorder* recorder) noexcept {
  active_recorder().store(recorder, std::memory_order_release);
}

PerfRecorder::Mark PerfRecorder::mark_now() {
  Mark mark;
  mark.wall_ns = wall_nanos();
  mark.rounds = rounds_total();
  mark.messages = messages_total();
  mark.alloc = alloc_stats();
  return mark;
}

PerfRecorder::PerfRecorder() : start_(mark_now()) {}

PerfRecorder::~PerfRecorder() {
  // Only deactivate if we are still the active recorder (another one
  // may have been installed since).
  PerfRecorder* expected = this;
  active_recorder().compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
}

PerfPhaseStats& PerfRecorder::phase_slot_locked(const std::string& name) {
  for (PerfPhaseStats& phase : phases_)
    if (phase.name == name) return phase;
  phases_.push_back(PerfPhaseStats{name, 0, 0, 0, 0, 0});
  return phases_.back();
}

void PerfRecorder::phase_begin(const std::string& name) {
  // mark_now() reads the metrics registry; taken before our own lock
  // would invert the perf -> registry order, so it runs inside.
  MutexLock lock(&mutex_);
  if (finished_) return;
  phase_slot_locked(name);  // reserve the display slot in first-open order
  OpenPhase& open = open_[name];
  if (++open.depth == 1) open.mark = mark_now();
}

void PerfRecorder::phase_end(const std::string& name) {
  MutexLock lock(&mutex_);
  phase_end_locked(name);
}

void PerfRecorder::phase_end_locked(const std::string& name) {
  const auto it = open_.find(name);
  if (it == open_.end()) return;  // unmatched end: ignore
  if (--it->second.depth > 0) return;  // inner same-name scope
  const Mark begin = it->second.mark;
  const Mark end = mark_now();
  PerfPhaseStats& phase = phase_slot_locked(name);
  phase.wall_ns += end.wall_ns - begin.wall_ns;
  phase.rounds += end.rounds - begin.rounds;
  phase.messages += end.messages - begin.messages;
  phase.allocs += end.alloc.allocs - begin.alloc.allocs;
  phase.alloc_bytes += end.alloc.bytes - begin.alloc.bytes;
  // Erase last: `name` may alias the key (see finish()).
  open_.erase(it);
}

void PerfRecorder::note_micro(const std::string& name, double real_ns,
                              double cpu_ns) {
  MutexLock lock(&mutex_);
  micro_[name] = {real_ns, cpu_ns};
}

void PerfRecorder::finish() {
  MutexLock lock(&mutex_);
  finish_locked();
}

void PerfRecorder::finish_locked() {
  if (finished_) return;
  while (!open_.empty()) {
    auto it = open_.begin();
    it->second.depth = 1;  // force the close whatever the nesting
    phase_end_locked(it->first);
  }
  const Mark end = mark_now();
  total_wall_ns_ = end.wall_ns - start_.wall_ns;
  total_rounds_ = end.rounds - start_.rounds;
  total_messages_ = end.messages - start_.messages;
  total_alloc_.allocs = end.alloc.allocs - start_.alloc.allocs;
  total_alloc_.frees = end.alloc.frees - start_.alloc.frees;
  total_alloc_.bytes = end.alloc.bytes - start_.alloc.bytes;
  peak_rss_ = peak_rss_bytes();
  finished_ = true;
}

Json PerfRecorder::to_json(bool include_scopes) {
  MutexLock lock(&mutex_);
  finish_locked();
  Json perf = Json::object();
  perf.set("schema", Json::string("lagover.perf.v1"));
  perf.set("wall_time_s",
           Json::number(static_cast<double>(total_wall_ns_) * 1e-9));
  perf.set("peak_rss_kb", integer_json(peak_rss_ / 1024));
  perf.set("rounds", integer_json(total_rounds_));
  perf.set("rounds_per_sec",
           Json::number(per_second(total_rounds_, total_wall_ns_)));
  perf.set("messages", integer_json(total_messages_));
  perf.set("messages_per_round",
           Json::number(per_round(total_messages_, total_rounds_)));

  Json alloc = Json::object();
  alloc.set("supported", Json::boolean(alloc_hook_compiled()));
  alloc.set("count", integer_json(total_alloc_.allocs));
  alloc.set("bytes", integer_json(total_alloc_.bytes));
  alloc.set("frees", integer_json(total_alloc_.frees));
  perf.set("alloc", std::move(alloc));

  Json phases = Json::object();
  for (const PerfPhaseStats& phase : phases_) {
    Json entry = Json::object();
    entry.set("wall_s",
              Json::number(static_cast<double>(phase.wall_ns) * 1e-9));
    entry.set("rounds", integer_json(phase.rounds));
    entry.set("rounds_per_sec",
              Json::number(per_second(phase.rounds, phase.wall_ns)));
    entry.set("messages", integer_json(phase.messages));
    entry.set("messages_per_round",
              Json::number(per_round(phase.messages, phase.rounds)));
    entry.set("allocs", integer_json(phase.allocs));
    entry.set("alloc_bytes", integer_json(phase.alloc_bytes));
    phases.set(phase.name, std::move(entry));
  }
  perf.set("phases", std::move(phases));

  // TELEM_SCOPE totals, so the Chrome-trace hotspots and the JSON
  // trajectory agree on where the time goes.
  perf.set("scopes",
           include_scopes ? Profiler::instance().to_json() : Json::object());

  if (!micro_.empty()) {
    Json micro = Json::object();
    for (const auto& [name, times] : micro_) {
      Json entry = Json::object();
      entry.set("real_ns", Json::number(times.first));
      entry.set("cpu_ns", Json::number(times.second));
      micro.set(name, std::move(entry));
    }
    perf.set("micro", std::move(micro));
  }
  return perf;
}

}  // namespace lagover::telemetry
