// Header-only base of the telemetry substrate: the process-wide enable
// switch, the simulated/wall clocks, and the global event + log buses.
// Everything here is inline (function-local statics) so even
// lagover_common — which the telemetry library itself links against —
// can publish without a link-time dependency.
//
// The contract of the whole layer: telemetry OFF (the default) means
// ZERO behavior change. No RNG is consumed, no simulation state is
// touched, and every recording site collapses to one predicted branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "telemetry/event_bus.hpp"

namespace lagover::telemetry {

// ---------------------------------------------------------------------
// Enable switch. An atomic so a coordinator thread can flip telemetry
// on/off while workers are mid-round; relaxed order suffices because
// the flag gates only whether sites record, never what they record.

inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Is the telemetry layer recording? All TELEM_* macros and publishing
/// helpers early-return when this is false.
inline bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Clocks. Simulated time is pushed by whichever engine is currently
// running (a plain atomic double — no callback, so no dangling
// captures); wall time is monotonic nanoseconds since the first use in
// the process.

inline std::atomic<double>& sim_now_ref() noexcept {
  static std::atomic<double> now{0.0};
  return now;
}

/// Latest simulated time any instrumented engine reported.
inline double sim_now() noexcept {
  return sim_now_ref().load(std::memory_order_relaxed);
}

/// Engines call this (guarded by enabled()) at round / wake boundaries
/// so log lines and profiler scopes can carry simulated timestamps.
/// With several engines running in parallel "latest" is last-writer-
/// wins — fine for timestamping, which only needs a plausible now.
inline void note_sim_time(double t) noexcept {
  sim_now_ref().store(t, std::memory_order_relaxed);
}

inline std::chrono::steady_clock::time_point wall_origin() noexcept {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

/// Monotonic wall clock, nanoseconds since process telemetry start.
inline std::uint64_t wall_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_origin())
          .count());
}

// ---------------------------------------------------------------------
// Global event stream. Engines flatten their typed TraceEvents into
// this engine-agnostic record so exporters (JSONL, Chrome trace) can
// capture a whole bench run — including benches that drive engines
// through helpers and never see a trace hook.

struct EventRecord {
  double ts = 0.0;          ///< simulated time
  const char* name = "";    ///< event type, e.g. "interaction"
  const char* cause = "";   ///< cause tag, e.g. "stale_lease"
  std::uint32_t subject = 0;
  std::uint32_t partner = 0;
  std::int64_t epoch = 0;   ///< subject's incarnation (0 = unknown)
  bool attached = false;
};

inline EventBus<EventRecord>& event_bus() {
  static EventBus<EventRecord> bus;
  return bus;
}

/// Publishes to the global event bus; no-op while telemetry is off.
inline void record_event(const EventRecord& record) {
  if (!enabled()) return;
  event_bus().publish(record);
}

// ---------------------------------------------------------------------
// Global log stream. The Logger mirrors every emitted line here (at
// trace granularity) so log lines and trace events interleave
// coherently in the exported timeline.

struct LogRecord {
  double sim_time = 0.0;
  std::uint64_t wall_ns = 0;
  int level = 0;  ///< LogLevel as int (logging.hpp owns the enum)
  std::string message;
};

inline EventBus<LogRecord>& log_bus() {
  static EventBus<LogRecord> bus;
  return bus;
}

}  // namespace lagover::telemetry
