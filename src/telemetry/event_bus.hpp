// Multi-subscriber event bus with a bounded ring-buffer retention
// window. This is the fan-out point of the telemetry substrate: the
// construction engines publish every TraceEvent to their bus, and any
// number of recorders, validators, and exporters listen without the
// engine knowing about them. Publishing with no subscribers and no
// retention is a two-branch no-op, so instrumented hot paths stay cheap
// when nobody is watching.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lagover::telemetry {

/// Fan-out bus for one event type. Subscribers are invoked in
/// subscription order; the optional retention ring keeps the most
/// recent `capacity` events for late-coming consumers (e.g. a crash
/// dump of the last N events). Not thread-safe by design: the
/// simulators are single-threaded and the benches run sequentially.
template <typename Event>
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using SubscriptionId = std::uint64_t;

  /// Registers a handler; returns an id usable with unsubscribe().
  SubscriptionId subscribe(Handler handler) {
    const SubscriptionId id = next_id_++;
    subscribers_.push_back({id, std::move(handler)});
    return id;
  }

  /// Removes a subscription; unknown ids are a no-op (returns false).
  bool unsubscribe(SubscriptionId id) {
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
      if (subscribers_[i].id != id) continue;
      subscribers_.erase(subscribers_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return true;
    }
    return false;
  }

  bool has_subscribers() const noexcept { return !subscribers_.empty(); }
  std::size_t subscriber_count() const noexcept {
    return subscribers_.size();
  }

  /// Delivers `event` to every subscriber, then retains it in the ring
  /// (when retention is enabled).
  void publish(const Event& event) {
    ++published_;
    for (const Subscriber& s : subscribers_) s.handler(event);
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[head_] = event;
      head_ = (head_ + 1) % capacity_;
      ++overwritten_;
    }
  }

  /// Bounds the retention ring to `capacity` events (0 disables and
  /// clears). Shrinking keeps the newest events.
  void set_retention(std::size_t capacity) {
    std::vector<Event> keep = recent();
    if (keep.size() > capacity)
      keep.erase(keep.begin(),
                 keep.end() - static_cast<std::ptrdiff_t>(capacity));
    capacity_ = capacity;
    ring_ = std::move(keep);
    // Preallocate the whole ring up front: once retention is set,
    // publish() reuses slots by assignment and never reallocates on
    // the hot path.
    ring_.reserve(capacity_);
    head_ = 0;
    // A full ring restarts overwriting at slot 0, which is the oldest
    // retained event — exactly the ring invariant.
  }

  std::size_t retention() const noexcept { return capacity_; }
  std::size_t retained_count() const noexcept { return ring_.size(); }
  std::uint64_t published() const noexcept { return published_; }
  /// Events pushed out of the ring by newer ones (ring overflow).
  std::uint64_t overwritten() const noexcept { return overwritten_; }

  /// Retained events, oldest first.
  std::vector<Event> recent() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
  }

  void clear_retained() {
    ring_.clear();
    head_ = 0;
  }

 private:
  struct Subscriber {
    SubscriptionId id;
    Handler handler;
  };

  std::vector<Subscriber> subscribers_;
  SubscriptionId next_id_ = 1;
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t overwritten_ = 0;
};

}  // namespace lagover::telemetry
