// Multi-subscriber event bus with a bounded ring-buffer retention
// window. This is the fan-out point of the telemetry substrate: the
// construction engines publish every TraceEvent to their bus, and any
// number of recorders, validators, and exporters listen without the
// engine knowing about them.
//
// Concurrency: the bus is internally synchronized (one Mutex per bus
// guards the subscriber list, the retention ring, and the counters),
// so the process-global buses in telemetry.hpp/span.hpp can take
// publishes from parallel construction shards without losing events.
// Handlers run under the bus lock — publishes are totally ordered and
// a handler never races another handler on the same bus — which also
// means a handler must never publish to (or mutate subscriptions of)
// ITS OWN bus: that self-reentry deadlocks, exactly where the old
// single-threaded bus would have recursed forever. Handlers touching
// other buses or the metrics registry are fine (lock order is always
// bus -> subscriber state -> registry, never backwards).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace lagover::telemetry {

/// Fan-out bus for one event type. Subscribers are invoked in
/// subscription order; the optional retention ring keeps the most
/// recent `capacity` events for late-coming consumers (e.g. a crash
/// dump of the last N events). Publishing with no subscribers and no
/// retention is a lock plus two branches, so instrumented hot paths
/// stay cheap when nobody is watching.
template <typename Event>
class LAGOVER_THREAD_SAFE EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using SubscriptionId = std::uint64_t;

  /// Registers a handler; returns an id usable with unsubscribe().
  SubscriptionId subscribe(Handler handler) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    const SubscriptionId id = next_id_++;
    subscribers_.push_back({id, std::move(handler)});
    return id;
  }

  /// Removes a subscription; unknown ids are a no-op (returns false).
  bool unsubscribe(SubscriptionId id) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
      if (subscribers_[i].id != id) continue;
      subscribers_.erase(subscribers_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return true;
    }
    return false;
  }

  bool has_subscribers() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return !subscribers_.empty();
  }
  std::size_t subscriber_count() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return subscribers_.size();
  }

  /// Delivers `event` to every subscriber, then retains it in the ring
  /// (when retention is enabled). Must not be called from a handler of
  /// this same bus (self-reentry deadlocks; see the header comment).
  void publish(const Event& event) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    ++published_;
    for (const Subscriber& s : subscribers_) s.handler(event);
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[head_] = event;
      head_ = (head_ + 1) % capacity_;
      ++overwritten_;
    }
  }

  /// Bounds the retention ring to `capacity` events (0 disables and
  /// clears). Shrinking keeps the newest events.
  void set_retention(std::size_t capacity) LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    std::vector<Event> keep = recent_locked();
    if (keep.size() > capacity)
      keep.erase(keep.begin(),
                 keep.end() - static_cast<std::ptrdiff_t>(capacity));
    capacity_ = capacity;
    ring_ = std::move(keep);
    // Preallocate the whole ring up front: once retention is set,
    // publish() reuses slots by assignment and never reallocates on
    // the hot path.
    ring_.reserve(capacity_);
    head_ = 0;
    // A full ring restarts overwriting at slot 0, which is the oldest
    // retained event — exactly the ring invariant.
  }

  std::size_t retention() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return capacity_;
  }
  std::size_t retained_count() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return ring_.size();
  }
  std::uint64_t published() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return published_;
  }
  /// Events pushed out of the ring by newer ones (ring overflow).
  std::uint64_t overwritten() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return overwritten_;
  }

  /// Retained events, oldest first.
  std::vector<Event> recent() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return recent_locked();
  }

  void clear_retained() LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    ring_.clear();
    head_ = 0;
  }

 private:
  struct Subscriber {
    SubscriptionId id;
    Handler handler;
  };

  std::vector<Event> recent_locked() const LAGOVER_REQUIRES(mutex_) {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
  }

  mutable Mutex mutex_;
  std::vector<Subscriber> subscribers_ LAGOVER_GUARDED_BY(mutex_);
  SubscriptionId next_id_ LAGOVER_GUARDED_BY(mutex_) = 1;
  std::vector<Event> ring_ LAGOVER_GUARDED_BY(mutex_);
  std::size_t head_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::size_t capacity_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t published_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t overwritten_ LAGOVER_GUARDED_BY(mutex_) = 0;
};

}  // namespace lagover::telemetry
