#include "telemetry/flight_recorder.hpp"

#include <fstream>
#include <utility>

#include "telemetry/export.hpp"

namespace lagover::telemetry {

Json event_to_json(const EventRecord& record) {
  Json line = Json::object();
  line.set("kind", Json::string("event"));
  line.set("ts", Json::number(record.ts));
  line.set("type", Json::string(record.name));
  if (record.cause[0] != '\0') line.set("cause", Json::string(record.cause));
  line.set("node", Json::integer(record.subject));
  line.set("partner", Json::integer(record.partner));
  if (record.epoch != 0) line.set("epoch", Json::integer(record.epoch));
  line.set("attached", Json::boolean(record.attached));
  return line;
}

Json span_to_json(const ItemSpan& span) {
  Json line = Json::object();
  line.set("kind", Json::string("span"));
  line.set("schema", Json::string("lagover.spans.v1"));
  line.set("item", Json::integer(static_cast<std::int64_t>(span.item)));
  line.set("span", Json::string(to_string(span.kind)));
  line.set("node", Json::integer(span.node));
  if (span.parent != 0xffffffffu)
    line.set("parent", Json::integer(span.parent));
  line.set("hop", Json::integer(span.hop));
  if (span.feed != 0) line.set("feed", Json::integer(span.feed));
  line.set("published_at", Json::number(span.published_at));
  line.set("start", Json::number(span.start));
  line.set("ts", Json::number(span.ts));
  if (span.deadline >= 0.0) line.set("deadline", Json::number(span.deadline));
  if (span.epoch != 0) line.set("epoch", Json::integer(span.epoch));
  if (span.cause[0] != '\0') line.set("cause", Json::string(span.cause));
  return line;
}

Json log_to_json(const LogRecord& record) {
  Json line = Json::object();
  line.set("kind", Json::string("log"));
  line.set("ts", Json::number(record.sim_time));
  line.set("wall_ns", Json::integer(static_cast<std::int64_t>(record.wall_ns)));
  line.set("level", Json::integer(record.level));
  line.set("message", Json::string(record.message));
  return line;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config config) : config_(config) {
  // The handlers run under their bus's lock on whichever thread
  // published, so each takes the recorder mutex (order: bus -> flight
  // recorder, never the reverse).
  event_sub_ = event_bus().subscribe([this](const EventRecord& record) {
    MutexLock lock(&mutex_);
    retain(events_, config_.event_capacity, record);
  });
  span_sub_ = span_bus().subscribe([this](const ItemSpan& span) {
    MutexLock lock(&mutex_);
    retain(spans_, config_.span_capacity, span);
  });
  log_sub_ = log_bus().subscribe([this](const LogRecord& record) {
    MutexLock lock(&mutex_);
    retain(logs_, config_.log_capacity, record);
  });
}

FlightRecorder::~FlightRecorder() {
  event_bus().unsubscribe(event_sub_);
  span_bus().unsubscribe(span_sub_);
  log_bus().unsubscribe(log_sub_);
}

void FlightRecorder::note_snapshot(double t, const std::string& snapshot_text) {
  MutexLock lock(&mutex_);
  // Delta retention: an unchanged overlay never consumes a ring slot,
  // so the window covers the last N *state changes*, not the last N
  // sampling ticks.
  if (!snapshots_.empty() && snapshots_.back().text == snapshot_text) return;
  retain(snapshots_, config_.snapshot_capacity,
         SnapshotRecord{t, snapshot_text});
}

void FlightRecorder::note_health(const Json& sample) {
  MutexLock lock(&mutex_);
  retain(health_, config_.health_capacity, sample);
}

void FlightRecorder::note_violation(const ViolationNote& note) {
  // Decide under the lock, dump outside it: dump() re-enters to_json()
  // (which takes this mutex) and the metrics registry.
  std::string dump_to;
  {
    MutexLock lock(&mutex_);
    retain(violations_, config_.violation_capacity, note);
    ++violations_total_;
    if (violations_total_ == 1 && !dump_path_.empty()) dump_to = dump_path_;
  }
  if (dump_to.empty()) return;
  const bool ok = dump(dump_to, "invariant_violation");
  MutexLock lock(&mutex_);
  dumped_ = ok;
}

Json FlightRecorder::to_json(const std::string& reason) const {
  MutexLock lock(&mutex_);
  Json root = Json::object();
  root.set("schema", Json::string("lagover.postmortem.v1"));
  root.set("reason", Json::string(reason));
  root.set("sim_time", Json::number(sim_now()));

  Json repro = Json::object();
  repro.set("seed", Json::integer(static_cast<std::int64_t>(seed_)));
  repro.set("flags", Json::string(flags_));
  root.set("repro", std::move(repro));
  if (!fault_plan_.empty())
    root.set("fault_plan", Json::string(fault_plan_));

  Json events = Json::array();
  for (const EventRecord& record : events_)
    events.push_back(event_to_json(record));
  root.set("events", std::move(events));

  Json spans = Json::array();
  for (const ItemSpan& span : spans_) spans.push_back(span_to_json(span));
  root.set("spans", std::move(spans));

  Json logs = Json::array();
  for (const LogRecord& record : logs_) logs.push_back(log_to_json(record));
  root.set("logs", std::move(logs));

  Json snapshots = Json::array();
  for (const SnapshotRecord& record : snapshots_) {
    Json entry = Json::object();
    entry.set("t", Json::number(record.t));
    entry.set("snapshot", Json::string(record.text));
    snapshots.push_back(std::move(entry));
  }
  root.set("snapshots", std::move(snapshots));

  Json violations = Json::array();
  for (const ViolationNote& note : violations_) {
    Json entry = Json::object();
    entry.set("ts", Json::number(note.ts));
    entry.set("invariant", Json::string(note.invariant));
    if (!note.cause.empty()) entry.set("cause", Json::string(note.cause));
    entry.set("node", Json::integer(note.node));
    entry.set("parent", Json::integer(note.parent));
    if (!note.detail.empty()) entry.set("detail", Json::string(note.detail));
    violations.push_back(std::move(entry));
  }
  root.set("violations", std::move(violations));
  root.set("violations_total",
           Json::integer(static_cast<std::int64_t>(violations_total_)));

  Json health = Json::array();
  for (const Json& sample : health_) health.push_back(sample);
  root.set("health", std::move(health));

  root.set("metrics", metrics_summary_json());
  return root;
}

bool FlightRecorder::dump(const std::string& path,
                          const std::string& reason) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(reason).dump() << '\n';
  return static_cast<bool>(out);
}

}  // namespace lagover::telemetry
