// Overlay health observatory: an incrementally-maintained structural
// view of the overlay forest, fed by the global edge-event stream
// (edge_attach / edge_detach / node_offline / node_online published by
// core/overlay.cpp) plus a per-round sampling hook in both engines.
//
// The recorder mirrors the forest in flat vectors (parent, children,
// depth-below-root, connectivity, liveness) and keeps every tree-quality
// aggregate — depth histogram, latency-slack distribution l_i - DelayAt,
// fanout utilization, orphan/unsatisfied counts, churn rates — updated
// in O(changed nodes) per round: a reparent shifts exactly the moved
// subtree's depths, and no BFS ever runs on the hot path. (The audit
// build's independent BFS recompute in core/validator.cpp cross-checks
// the mirror every audited round; see crosscheck_health.)
//
// On top of the mirror:
//   * a convergence tracker — the first round where every constraint
//     holds and stays stable for `stability_rounds` consecutive samples
//     is latched as the run's convergence round,
//   * a bounded-memory downsampling streamer — "lagover.health.v1"
//     JSONL, one run header + stride-thinned samples + a run_end
//     summary per construction run (the stride doubles whenever the
//     emitted-line budget is hit, so file size stays bounded),
//   * a last-K sample ring mirrored into flight-recorder bundles.
//
// Cost model, like every telemetry layer before it: no active recorder
// means engines skip registration entirely — default-off runs are
// byte-identical. Layering: this lives below core/, so engines hand in
// flattened fanout/latency vectors rather than core types.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// One sampled round's tree-quality aggregates. Delays follow the
/// paper's DelayAt: tree depth when connected to the source, optimistic
/// depth-within-group + 1 when detached.
struct HealthSample {
  std::uint64_t run = 0;
  std::int64_t round = 0;
  double t = 0.0;
  // --- constraint satisfaction ---------------------------------------
  std::uint64_t online = 0;       ///< online consumers
  std::uint64_t orphans = 0;      ///< online parentless consumers
  std::uint64_t satisfied = 0;    ///< online, connected, DelayAt <= l
  std::uint64_t unsatisfied = 0;  ///< online - satisfied
  bool converged = false;         ///< unsatisfied == 0 this round
  // --- DelayAt distribution over online consumers --------------------
  std::int64_t max_depth = 0;
  double mean_depth = 0.0;
  std::int64_t depth_p50 = 0;
  std::int64_t depth_p90 = 0;
  std::int64_t depth_p99 = 0;
  // --- latency slack l_i - DelayAt(i) over online consumers ----------
  std::int64_t min_slack = 0;
  double mean_slack = 0.0;
  /// Slack at (one of) the deepest online consumers — the tightest
  /// point of the gradient the paper's layering aims to protect.
  std::int64_t deepest_slack = 0;
  std::uint64_t violated = 0;  ///< consumers with negative slack
  // --- fanout utilization --------------------------------------------
  std::uint64_t edges = 0;      ///< attached parent-child edges
  std::uint64_t capacity = 0;   ///< sum of fanout over online nodes
  std::uint64_t saturated = 0;  ///< online nodes with zero free fanout
  double utilization = 0.0;     ///< edges / capacity
  // --- churn / reconfiguration since the previous sample -------------
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
  std::uint64_t offlines = 0;
  std::uint64_t onlines = 0;
  // --- per-subsystem counter deltas since the previous sample --------
  /// Keyed by the metric-name prefix before the first '.' ("net",
  /// "oracle", "feed", "engine", ...); ordered, so JSON output is
  /// deterministic.
  std::map<std::string, std::uint64_t> messages;
};

/// Final verdict of one construction run.
struct HealthRunResult {
  std::uint64_t run = 0;
  std::uint64_t nodes = 0;  ///< node count including the source
  std::int64_t rounds = 0;  ///< last sampled round
  bool converged = false;
  /// First round of the stable streak, or -1 when the run never locked
  /// convergence (the paper's "did not converge").
  std::int64_t convergence_round = -1;
  HealthSample final;  ///< the run's last sample
};

/// A copy of the recorder's mirror for one run, handed to the audit
/// cross-check (core/validator.cpp) so it can diff the incremental
/// state against an independent BFS recompute.
/// Dense histogram over a signed, small-range key (slack values).
/// add/remove are amortized O(1) array bumps — std::map nodes on the
/// per-event path were the recorder's dominant cost. Scans (min key,
/// counts below a bound) run only at sample time and cost O(key range),
/// the same order as the depth-percentile walk.
struct SlackHist {
  std::int64_t base = 0;  ///< counts[i] holds the count for key base+i
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  void add(std::int64_t key) {
    ++counts[slot(key)];
    ++total;
  }
  void remove(std::int64_t key) {
    const auto i = static_cast<std::size_t>(key - base);
    if (key >= base && i < counts.size() && counts[i] > 0) {
      --counts[i];
      --total;
    }
  }
  bool empty() const { return total == 0; }
  /// Smallest key with a nonzero count; `base` when empty.
  std::int64_t min_key() const {
    for (std::size_t i = 0; i < counts.size(); ++i)
      if (counts[i] != 0) return base + static_cast<std::int64_t>(i);
    return base;
  }
  /// Sum of counts over keys strictly below `bound`.
  std::uint64_t count_below(std::int64_t bound) const {
    std::uint64_t sum = 0;
    const std::int64_t end =
        std::min(bound - base, static_cast<std::int64_t>(counts.size()));
    for (std::int64_t i = 0; i < end; ++i) sum += counts[i];
    return sum;
  }
  void clear() {
    base = 0;
    counts.clear();
    total = 0;
  }

 private:
  std::size_t slot(std::int64_t key) {
    if (counts.empty()) {
      base = key;
      counts.assign(1, 0);
      return 0;
    }
    if (key < base) {  // grow at the front; base only ever decreases
      counts.insert(counts.begin(), static_cast<std::size_t>(base - key), 0);
      base = key;
      return 0;
    }
    const auto i = static_cast<std::size_t>(key - base);
    if (i >= counts.size()) counts.resize(i + 1, 0);
    return i;
  }
};

struct HealthMirrorView {
  std::vector<std::uint32_t> parent;  ///< 0xffffffff = no parent
  std::vector<char> online;
  std::vector<char> connected;
  std::vector<int> depth;  ///< depth below chain root
  std::uint64_t online_consumers = 0;
  std::uint64_t orphans = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t edges = 0;
  std::uint64_t capacity = 0;
  std::uint64_t saturated = 0;
};

/// The observatory. Subscribes to the global event bus on construction
/// (so overlay mutations reach it with no engine-side plumbing),
/// unsubscribes on destruction. Engines register each construction run
/// via begin_run() — only when a recorder is active, so the default
/// path never takes the detour — and drive sampling via note_round().
///
/// Internally locked, PerfRecorder-style: the active recorder is
/// installed through an acquire/release atomic, and all mirror and
/// aggregate state sits behind the recorder's mutex (the bus handler
/// may fire from any publishing thread; lock order is always bus ->
/// recorder -> metrics registry).
class LAGOVER_THREAD_SAFE OverlayHealthRecorder {
 public:
  struct Config {
    /// Consecutive converged samples required to latch the convergence
    /// round. 1 reproduces run_until_converged()'s "first all-satisfied
    /// round"; larger values reject transient dips under churn.
    int stability_rounds = 1;
    /// Emitted-sample budget per run before the stream stride doubles.
    std::size_t stream_budget = 2048;
    /// Last-K sample ring mirrored into post-mortem bundles.
    std::size_t ring_capacity = 64;
  };

  OverlayHealthRecorder();
  explicit OverlayHealthRecorder(Config config);
  ~OverlayHealthRecorder();

  OverlayHealthRecorder(const OverlayHealthRecorder&) = delete;
  OverlayHealthRecorder& operator=(const OverlayHealthRecorder&) = delete;

  /// The recorder engines register runs against (nullptr = inactive:
  /// begin_run is never reached and runs stay byte-identical).
  /// Acquire/release, mirroring PerfRecorder::active().
  static OverlayHealthRecorder* active() noexcept;
  static void set_active(OverlayHealthRecorder* recorder) noexcept;

  /// Opens the "lagover.health.v1" JSONL stream; false on I/O failure.
  bool set_stream(const std::string& path) LAGOVER_EXCLUDES(mutex_);

  /// Mirrors every emitted sample line into `fn` (the flight-recorder
  /// wiring; nullptr disables). Runs under the recorder lock: `fn` must
  /// not call back into this recorder.
  void set_sample_mirror(std::function<void(const Json&)> fn)
      LAGOVER_EXCLUDES(mutex_);

  // --- run lifecycle (engines) ---------------------------------------
  /// Registers a construction run over nodes 0..n-1 (index 0 = source).
  /// `fanout[i]` / `latency[i]` are node i's constraints; all consumers
  /// start online and parentless. Ends any previously open run first
  /// (benches run trials serially), resets the mirror, and returns the
  /// run id engines pass to note_round()/end_run(). Never returns 0.
  std::uint64_t begin_run(const std::vector<int>& fanout,
                          const std::vector<int>& latency)
      LAGOVER_EXCLUDES(mutex_);

  /// Samples the aggregates at the end of a round (sim time `t`).
  /// Ignored unless `run` is the currently open run, so an engine whose
  /// run was superseded cannot corrupt the successor's stream.
  void note_round(std::uint64_t run, double t) LAGOVER_EXCLUDES(mutex_);

  /// Closes a run: emits the run_end summary line and archives the
  /// HealthRunResult. Ignored unless `run` is currently open.
  void end_run(std::uint64_t run) LAGOVER_EXCLUDES(mutex_);

  /// Closes whichever run is still open (end-of-bench flush).
  void finalize() LAGOVER_EXCLUDES(mutex_);

  // --- introspection --------------------------------------------------
  std::uint64_t current_run() const LAGOVER_EXCLUDES(mutex_);
  std::size_t completed_run_count() const LAGOVER_EXCLUDES(mutex_);
  /// Completed runs in completion order (benches slice per cell).
  std::vector<HealthRunResult> completed_runs() const
      LAGOVER_EXCLUDES(mutex_);
  /// The last K emitted sample lines, oldest first.
  std::vector<Json> recent_samples() const LAGOVER_EXCLUDES(mutex_);
  std::uint64_t stream_lines() const LAGOVER_EXCLUDES(mutex_);
  std::uint64_t samples_total() const LAGOVER_EXCLUDES(mutex_);

  /// Copies the mirror state of `run` into `view`; false when `run` is
  /// not the open run. The audit cross-check's window into the
  /// incremental state.
  bool mirror_view(std::uint64_t run, HealthMirrorView* view) const
      LAGOVER_EXCLUDES(mutex_);

  /// The embedded bench-JSON health block (schema "lagover.health.v1"):
  /// run/convergence statistics over every completed run plus the last
  /// run's final sample. Finalizes the open run first.
  Json to_json() LAGOVER_EXCLUDES(mutex_);

  /// Serializes one sample as a "kind":"sample" stream line (shared by
  /// the streamer, the ring, and tests).
  static Json sample_to_json(const HealthSample& sample);

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  void on_event(const EventRecord& record) LAGOVER_EXCLUDES(mutex_);
  void apply_attach(std::uint32_t child, std::uint32_t parent)
      LAGOVER_REQUIRES(mutex_);
  void apply_detach(std::uint32_t child) LAGOVER_REQUIRES(mutex_);
  void apply_offline(std::uint32_t node) LAGOVER_REQUIRES(mutex_);
  void apply_online(std::uint32_t node) LAGOVER_REQUIRES(mutex_);
  /// Re-roots `node`'s subtree: every member's depth shifts by
  /// `depth_delta` and adopts `connected`. O(subtree) == O(changed).
  void shift_subtree(std::uint32_t node, int depth_delta, bool connected)
      LAGOVER_REQUIRES(mutex_);
  void add_node_stats(std::uint32_t node) LAGOVER_REQUIRES(mutex_);
  void remove_node_stats(std::uint32_t node) LAGOVER_REQUIRES(mutex_);
  std::int64_t delay_of(std::uint32_t node) const LAGOVER_REQUIRES(mutex_);
  HealthSample build_sample_locked(double t) LAGOVER_REQUIRES(mutex_);
  void emit_locked(const Json& line) LAGOVER_REQUIRES(mutex_);
  void end_run_locked() LAGOVER_REQUIRES(mutex_);
  /// Current per-subsystem counter totals from the metrics registry.
  static std::map<std::string, std::uint64_t> subsystem_totals();

  const Config config_;
  EventBus<EventRecord>::SubscriptionId event_sub_ = 0;

  mutable Mutex mutex_;
  // --- run state ------------------------------------------------------
  std::uint64_t next_run_ LAGOVER_GUARDED_BY(mutex_) = 1;
  std::uint64_t run_ LAGOVER_GUARDED_BY(mutex_) = 0;  ///< 0 = no open run
  // --- mirror forest (index = node id; 0 = source) --------------------
  std::vector<int> fanout_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<int> latency_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> parent_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<std::vector<std::uint32_t>> children_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<int> depth_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<char> connected_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<char> online_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> walk_stack_ LAGOVER_GUARDED_BY(mutex_);
  // --- incremental aggregates ----------------------------------------
  std::vector<std::uint64_t> depth_counts_ LAGOVER_GUARDED_BY(mutex_);
  std::int64_t depth_sum_ LAGOVER_GUARDED_BY(mutex_) = 0;
  SlackHist slack_counts_ LAGOVER_GUARDED_BY(mutex_);
  /// Per-DelayAt slack histograms: the minimum slack among the deepest
  /// consumers is one row scan at sample time, O(1) on the event path.
  std::vector<SlackHist> slack_by_depth_ LAGOVER_GUARDED_BY(mutex_);
  std::int64_t slack_sum_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t online_consumers_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t orphans_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t satisfied_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t edges_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t capacity_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t saturated_ LAGOVER_GUARDED_BY(mutex_) = 0;
  // --- per-round churn counters (reset at each sample) ----------------
  std::uint64_t attaches_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t detaches_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t offlines_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t onlines_ LAGOVER_GUARDED_BY(mutex_) = 0;
  // --- per-subsystem message baseline ---------------------------------
  std::map<std::string, std::uint64_t> message_base_
      LAGOVER_GUARDED_BY(mutex_);
  // --- convergence tracker --------------------------------------------
  std::int64_t streak_start_ LAGOVER_GUARDED_BY(mutex_) = -1;
  int streak_len_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::int64_t convergence_round_ LAGOVER_GUARDED_BY(mutex_) = -1;
  // --- sampling / streaming state -------------------------------------
  bool have_sample_ LAGOVER_GUARDED_BY(mutex_) = false;
  HealthSample last_sample_ LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t run_samples_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t run_emitted_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t stride_ LAGOVER_GUARDED_BY(mutex_) = 1;
  std::uint64_t samples_total_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t stream_lines_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<std::ostream> stream_ LAGOVER_GUARDED_BY(mutex_);
  /// Raw samples, not Json: serialization happens on read so the
  /// per-round hot path never pays for it.
  std::deque<HealthSample> ring_ LAGOVER_GUARDED_BY(mutex_);
  std::function<void(const Json&)> sample_mirror_ LAGOVER_GUARDED_BY(mutex_);
  std::vector<HealthRunResult> completed_ LAGOVER_GUARDED_BY(mutex_);
};

}  // namespace lagover::telemetry
