// Performance observability on top of the telemetry substrate: the
// PerfRecorder captures per-phase wall time, simulated rounds/sec,
// peak RSS, global allocation counts (via the opt-in counting
// operator new hook in alloc_hook.cpp), and protocol message totals
// drawn from the metrics registry. Benches embed its to_json() output
// as the "perf" section ("lagover.perf.v1") of their bench JSON;
// scripts/perf_compare.py diffs two such sections and gates CI.
//
// Cost model, matching the rest of the layer: no recorder active means
// PerfPhase construction is a single pointer load and branch; the
// allocation hook, when compiled in, adds one relaxed atomic load per
// operator new while tracking is off. Nothing here touches simulation
// state, so perf-off runs stay byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace lagover::telemetry {

// ---------------------------------------------------------------------
// Allocation counting (implemented in alloc_hook.cpp; all functions
// are safe to call whether or not the hook was compiled in).

/// Totals since process start. `allocs`/`bytes` count operator new
/// calls and requested sizes, `frees` counts operator delete calls
/// with a non-null pointer. All zero when the hook is compiled out.
struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

/// Was the counting operator new/delete hook compiled into this
/// binary (CMake option LAGOVER_ALLOC_HOOK)?
bool alloc_hook_compiled() noexcept;

/// Turns allocation counting on/off. A no-op (tracking stays off)
/// when the hook is compiled out.
void set_alloc_tracking(bool on) noexcept;
bool alloc_tracking() noexcept;

/// Current counter totals (monotonic; callers diff snapshots).
AllocStats alloc_stats() noexcept;

// ---------------------------------------------------------------------
// Process memory (implemented in perf.cpp).

/// Peak resident set size in bytes: /proc/self/status VmHWM where
/// available, getrusage(ru_maxrss) as the portable fallback, 0 when
/// neither source exists.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), 0 when unknown.
std::uint64_t current_rss_bytes();

// ---------------------------------------------------------------------
// The recorder.

/// One named phase's accumulated deltas. Re-entering a phase name
/// (benches loop over trials) accumulates into the same entry.
struct PerfPhaseStats {
  std::string name;
  std::uint64_t wall_ns = 0;
  std::uint64_t rounds = 0;    ///< engine rounds + async wakes
  std::uint64_t messages = 0;  ///< protocol messages (see perf.cpp)
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
};

/// Records a bench run's perf profile. Construction stamps the start
/// (wall clock, allocation counters, registry message/round totals);
/// finish() stamps the end and freezes the totals; to_json() renders
/// the "lagover.perf.v1" section. Rounds and messages are read as
/// deltas of the existing metrics registry counters, so the recorder
/// needs telemetry enabled to see non-zero values — benches pass
/// --perf, which implies --telemetry.
///
/// Internally locked: the active recorder is installed via an
/// acquire/release atomic (set_active on one thread is safely visible
/// to PerfPhase marks on another), and the phase stack / totals sit
/// behind the recorder's mutex so concurrent phase scopes cannot
/// corrupt the open-phase bookkeeping.
class LAGOVER_THREAD_SAFE PerfRecorder {
 public:
  PerfRecorder();

  PerfRecorder(const PerfRecorder&) = delete;
  PerfRecorder& operator=(const PerfRecorder&) = delete;
  ~PerfRecorder();

  /// Opens / closes a named phase; deltas accumulate per name.
  /// Re-entrant per name (a "construction" scope inside another
  /// "construction" scope counts once — the library entry points and
  /// a bench-local scope may overlap); unbalanced calls are tolerated
  /// (an unmatched end is ignored, finish() closes anything left
  /// open).
  void phase_begin(const std::string& name) LAGOVER_EXCLUDES(mutex_);
  void phase_end(const std::string& name) LAGOVER_EXCLUDES(mutex_);

  /// A named microbenchmark result (bench_micro's google-benchmark
  /// scalars, normalized to nanoseconds), emitted under "micro".
  void note_micro(const std::string& name, double real_ns, double cpu_ns)
      LAGOVER_EXCLUDES(mutex_);

  /// Freezes the run totals (idempotent; to_json() calls it).
  void finish() LAGOVER_EXCLUDES(mutex_);
  bool finished() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return finished_;
  }

  /// Snapshot of the phase stats in first-open order.
  std::vector<PerfPhaseStats> phases() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return phases_;
  }
  std::uint64_t total_wall_ns() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_wall_ns_;
  }
  std::uint64_t total_rounds() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_rounds_;
  }
  std::uint64_t total_messages() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_messages_;
  }

  /// The "lagover.perf.v1" JSON section. Includes the profiler's
  /// per-scope aggregates under "scopes" (so Chrome-trace hotspots
  /// and the trajectory agree) unless `include_scopes` is false.
  Json to_json(bool include_scopes = true) LAGOVER_EXCLUDES(mutex_);

  /// The recorder PerfPhase scopes attach to (nullptr = inactive,
  /// every PerfPhase is then a no-op). Acquire/release: everything the
  /// installing thread did before set_active() is visible to a thread
  /// that observes the recorder through active().
  static PerfRecorder* active() noexcept;
  static void set_active(PerfRecorder* recorder) noexcept;

 private:
  struct Mark {
    std::uint64_t wall_ns = 0;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    AllocStats alloc;
  };

  struct OpenPhase {
    Mark mark;
    int depth = 0;
  };

  static Mark mark_now();
  PerfPhaseStats& phase_slot_locked(const std::string& name)
      LAGOVER_REQUIRES(mutex_);
  void phase_end_locked(const std::string& name) LAGOVER_REQUIRES(mutex_);
  void finish_locked() LAGOVER_REQUIRES(mutex_);

  const Mark start_;  ///< stamped once at construction, then immutable

  mutable Mutex mutex_;
  std::vector<PerfPhaseStats> phases_ LAGOVER_GUARDED_BY(mutex_);
  std::map<std::string, OpenPhase> open_ LAGOVER_GUARDED_BY(mutex_);
  std::map<std::string, std::pair<double, double>> micro_
      LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t total_wall_ns_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_rounds_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_messages_ LAGOVER_GUARDED_BY(mutex_) = 0;
  AllocStats total_alloc_ LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t peak_rss_ LAGOVER_GUARDED_BY(mutex_) = 0;
  bool finished_ LAGOVER_GUARDED_BY(mutex_) = false;
};

/// RAII phase scope against the active recorder; free when none is
/// active. Benches mark their construction / dissemination stages:
///
///   { PerfPhase phase("construction"); engine.run_until_converged(n); }
class PerfPhase {
 public:
  explicit PerfPhase(const char* name) : name_(name) {
    PerfRecorder* recorder = PerfRecorder::active();
    if (recorder == nullptr) {
      name_ = nullptr;
      return;
    }
    recorder->phase_begin(name_);
  }

  PerfPhase(const PerfPhase&) = delete;
  PerfPhase& operator=(const PerfPhase&) = delete;

  ~PerfPhase() {
    if (name_ == nullptr) return;
    if (PerfRecorder* recorder = PerfRecorder::active())
      recorder->phase_end(name_);
  }

 private:
  const char* name_;
};

}  // namespace lagover::telemetry
