// Item-level causal tracing: one ItemSpan per hop of a feed item's
// dissemination path (publish at the source, source_poll at the depth-1
// pollers, relay at every forwarding node, deliver/repair at every
// receipt, drop/duplicate from the lossy paths). Spans carry enough
// identity — (item, node, parent, hop) — that an offline consumer can
// reconstruct the exact publish→deliver chain of any item without any
// shared-state side channel: the trace id is the item sequence number
// and the parent span of (item, node) is (item, parent).
//
// Spans flow over a process-global SpanBus (an EventBus<ItemSpan>) so
// exporters, the flight recorder, and tests subscribe without the feed
// simulations knowing about them. Everything is behind
// telemetry::enabled(): with telemetry off, record_span() is a single
// predicted branch and the dissemination paths stay byte-identical.
#pragma once

#include <cstdint>

#include "telemetry/event_bus.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// The hop kinds of an item's dissemination path.
enum class SpanKind {
  kPublish,     ///< the source published the item (node 0)
  kSourcePoll,  ///< a depth-1 node received the item via its pull
  kRelay,       ///< a node began forwarding the item to its children
  kDeliver,     ///< a node received the item via an overlay push
  kRepair,      ///< a node received the item via the recovery path
  kDrop,        ///< a push of the item was lost on the parent→node link
  kDuplicate,   ///< a redundant copy was suppressed at the node
};

/// Stable lower_snake name ("publish", "source_poll", ...).
const char* to_string(SpanKind kind) noexcept;

/// One hop of one item's dissemination path ("lagover.spans.v1").
struct ItemSpan {
  std::uint64_t item = 0;   ///< trace id: the item's sequence number
  SpanKind kind{};
  std::uint32_t node = 0;   ///< this hop's node (0 = the source)
  /// The forwarding hop (parent span id is (item, parent)); ~0u when
  /// there is none (publish spans, detached deliveries).
  std::uint32_t parent = 0xffffffffu;
  std::uint32_t hop = 0;    ///< hops from the source at this node
  std::uint32_t feed = 0;   ///< feed id for multi-feed runs (0 default)
  double published_at = 0.0;  ///< sim time the item was published
  /// Sim time this hop began (the parent's send instant); equals `ts`
  /// for instantaneous spans (publish, drop, duplicate).
  double start = 0.0;
  double ts = 0.0;          ///< sim time of the receipt / emission
  /// The node's latency constraint l_i; negative = not applicable
  /// (publish/relay spans). Receipt spans with ts - published_at
  /// beyond this budget count as deadline misses.
  double deadline = -1.0;
  std::int64_t epoch = 0;   ///< node incarnation (0 = unknown)
  const char* cause = "";   ///< e.g. "push_loss", "suppressed", "nack"
};

/// The process-global span bus (mirrors event_bus()/log_bus()).
inline EventBus<ItemSpan>& span_bus() {
  static EventBus<ItemSpan> bus;
  return bus;
}

using SpanBus = EventBus<ItemSpan>;

/// Publishes `span` on the span bus and feeds the per-item metrics
/// ("span.<kind>" counters; for receipt spans the
/// "feed.delivery_latency" histogram and — against `deadline` — the
/// "feed.deadline_misses" counter). No-op while telemetry is off.
void record_span(const ItemSpan& span);

/// True when a receipt span missed its deadline: latency beyond the
/// budget plus the same float slack the dissemination reports use.
inline bool missed_deadline(double published_at, double received_at,
                            double deadline) noexcept {
  return deadline >= 0.0 && received_at - published_at > deadline + 1e-9;
}

}  // namespace lagover::telemetry
