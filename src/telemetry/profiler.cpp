#include "telemetry/profiler.hpp"

namespace lagover::telemetry {

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

ProfileSite& Profiler::site(const std::string& name) {
  MutexLock lock(&mutex_);
  const auto it = sites_.find(name);
  if (it != sites_.end()) return it->second;
  ProfileSite& site = sites_[name];
  site.name = name;
  return site;
}

void Profiler::reset() {
  MutexLock lock(&mutex_);
  for (auto& [name, site] : sites_) {
    site.calls.store(0, std::memory_order_relaxed);
    site.total_ns.store(0, std::memory_order_relaxed);
    site.max_ns.store(0, std::memory_order_relaxed);
  }
}

void Profiler::for_each(
    const std::function<void(const ProfileSite&)>& fn) const {
  MutexLock lock(&mutex_);
  for (const auto& [name, site] : sites_) fn(site);
}

Json Profiler::to_json() const {
  MutexLock lock(&mutex_);
  Json root = Json::object();
  for (const auto& [name, site] : sites_) {
    const std::uint64_t calls = site.calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    const std::uint64_t total_ns =
        site.total_ns.load(std::memory_order_relaxed);
    Json entry = Json::object();
    entry.set("calls", Json::integer(static_cast<std::int64_t>(calls)));
    entry.set("total_ns", Json::integer(static_cast<std::int64_t>(total_ns)));
    entry.set("mean_ns", Json::number(static_cast<double>(total_ns) /
                                      static_cast<double>(calls)));
    entry.set("max_ns",
              Json::integer(static_cast<std::int64_t>(
                  site.max_ns.load(std::memory_order_relaxed))));
    root.set(name, std::move(entry));
  }
  return root;
}

}  // namespace lagover::telemetry
