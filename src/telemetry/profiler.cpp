#include "telemetry/profiler.hpp"

namespace lagover::telemetry {

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

ProfileSite& Profiler::site(const std::string& name) {
  const auto it = sites_.find(name);
  if (it != sites_.end()) return it->second;
  ProfileSite& site = sites_[name];
  site.name = name;
  return site;
}

void Profiler::reset() {
  for (auto& [name, site] : sites_) {
    site.calls = 0;
    site.total_ns = 0;
    site.max_ns = 0;
  }
}

void Profiler::for_each(
    const std::function<void(const ProfileSite&)>& fn) const {
  for (const auto& [name, site] : sites_) fn(site);
}

Json Profiler::to_json() const {
  Json root = Json::object();
  for (const auto& [name, site] : sites_) {
    if (site.calls == 0) continue;
    Json entry = Json::object();
    entry.set("calls", Json::integer(static_cast<std::int64_t>(site.calls)));
    entry.set("total_ns",
              Json::integer(static_cast<std::int64_t>(site.total_ns)));
    entry.set("mean_ns",
              Json::number(static_cast<double>(site.total_ns) /
                           static_cast<double>(site.calls)));
    entry.set("max_ns",
              Json::integer(static_cast<std::int64_t>(site.max_ns)));
    root.set(name, std::move(entry));
  }
  return root;
}

}  // namespace lagover::telemetry
