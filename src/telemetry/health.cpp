#include "telemetry/health.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "telemetry/metrics.hpp"

namespace lagover::telemetry {

namespace {

std::atomic<OverlayHealthRecorder*>& active_recorder() noexcept {
  static std::atomic<OverlayHealthRecorder*> recorder{nullptr};
  return recorder;
}

}  // namespace

OverlayHealthRecorder* OverlayHealthRecorder::active() noexcept {
  return active_recorder().load(std::memory_order_acquire);
}

void OverlayHealthRecorder::set_active(
    OverlayHealthRecorder* recorder) noexcept {
  active_recorder().store(recorder, std::memory_order_release);
}

OverlayHealthRecorder::OverlayHealthRecorder()
    : OverlayHealthRecorder(Config()) {}

OverlayHealthRecorder::OverlayHealthRecorder(Config config) : config_(config) {
  // The handler runs under the bus lock on whichever thread published;
  // lock order is bus -> recorder (-> metrics registry), never reversed.
  event_sub_ = event_bus().subscribe([this](const EventRecord& record) {
    on_event(record);
  });
}

OverlayHealthRecorder::~OverlayHealthRecorder() {
  event_bus().unsubscribe(event_sub_);
  // Only deactivate if we are still the active recorder (another one
  // may have been installed since).
  OverlayHealthRecorder* expected = this;
  active_recorder().compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
}

bool OverlayHealthRecorder::set_stream(const std::string& path) {
  auto out = std::make_unique<std::ofstream>(path);
  if (!*out) return false;
  MutexLock lock(&mutex_);
  stream_ = std::move(out);
  return true;
}

void OverlayHealthRecorder::set_sample_mirror(
    std::function<void(const Json&)> fn) {
  MutexLock lock(&mutex_);
  sample_mirror_ = std::move(fn);
}

std::map<std::string, std::uint64_t>
OverlayHealthRecorder::subsystem_totals() {
  std::map<std::string, std::uint64_t> totals;
  MetricsRegistry::instance().for_each_counter(
      [&totals](const std::string& name, const Counter& counter) {
        const std::size_t dot = name.find('.');
        std::string prefix =
            dot == std::string::npos ? name : name.substr(0, dot);
        // The recorder's own counters would feed back into the deltas.
        if (prefix == "health") return;
        totals[std::move(prefix)] += counter.value();
      });
  return totals;
}

std::uint64_t OverlayHealthRecorder::begin_run(
    const std::vector<int>& fanout, const std::vector<int>& latency) {
  MutexLock lock(&mutex_);
  if (run_ != 0) end_run_locked();
  const std::size_t n = std::min(fanout.size(), latency.size());
  run_ = next_run_++;
  const auto count = static_cast<std::ptrdiff_t>(n);
  fanout_.assign(fanout.begin(), fanout.begin() + count);
  latency_.assign(latency.begin(), latency.begin() + count);
  parent_.assign(n, kNone);
  children_.assign(n, {});
  depth_.assign(n, 0);
  connected_.assign(n, 0);
  online_.assign(n, 1);
  if (n > 0) connected_[0] = 1;  // the source is its own (connected) root
  depth_counts_.assign(2, 0);
  depth_sum_ = 0;
  slack_counts_.clear();
  slack_by_depth_.clear();
  slack_sum_ = 0;
  online_consumers_ = n > 0 ? n - 1 : 0;
  orphans_ = online_consumers_;  // every consumer starts parentless
  satisfied_ = 0;
  edges_ = 0;
  capacity_ = 0;
  saturated_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    capacity_ += static_cast<std::uint64_t>(std::max(fanout_[i], 0));
    if (fanout_[i] <= 0) ++saturated_;
  }
  for (std::uint32_t i = 1; i < n; ++i) add_node_stats(i);
  attaches_ = detaches_ = offlines_ = onlines_ = 0;
  message_base_ = subsystem_totals();
  streak_start_ = -1;
  streak_len_ = 0;
  convergence_round_ = -1;
  have_sample_ = false;
  last_sample_ = HealthSample{};
  run_samples_ = 0;
  run_emitted_ = 0;
  stride_ = 1;

  Json header = Json::object();
  header.set("schema", Json::string("lagover.health.v1"));
  header.set("kind", Json::string("run"));
  header.set("run", Json::integer(static_cast<std::int64_t>(run_)));
  header.set("t", Json::number(sim_now()));
  header.set("nodes", Json::integer(static_cast<std::int64_t>(n)));
  header.set("consumers",
             Json::integer(static_cast<std::int64_t>(online_consumers_)));
  header.set("stability_rounds", Json::integer(config_.stability_rounds));
  emit_locked(header);
  return run_;
}

void OverlayHealthRecorder::on_event(const EventRecord& record) {
  MutexLock lock(&mutex_);
  if (run_ == 0) return;
  // Subjects outside the registered population (another engine's
  // scratch overlay) are not ours to mirror.
  if (record.subject >= parent_.size()) return;
  if (std::strcmp(record.name, "edge_attach") == 0) {
    if (record.partner < parent_.size())
      apply_attach(record.subject, record.partner);
  } else if (std::strcmp(record.name, "edge_detach") == 0) {
    apply_detach(record.subject);
  } else if (std::strcmp(record.name, "node_offline") == 0) {
    apply_offline(record.subject);
  } else if (std::strcmp(record.name, "node_online") == 0) {
    apply_online(record.subject);
  }
}

void OverlayHealthRecorder::apply_attach(std::uint32_t child,
                                         std::uint32_t parent) {
  if (child == 0 || child == parent) return;
  if (parent_[child] != kNone) return;  // stale event; mirror disagrees
  // Orphan accounting is transition-based: parent_ flips under our feet
  // inside this handler, so add/remove_node_stats cannot infer it.
  if (online_[child] != 0 && orphans_ > 0) --orphans_;
  const bool parent_was_saturated =
      static_cast<int>(children_[parent].size()) >= fanout_[parent];
  parent_[child] = parent;
  children_[parent].push_back(child);
  if (online_[parent] != 0 && !parent_was_saturated &&
      static_cast<int>(children_[parent].size()) >= fanout_[parent])
    ++saturated_;
  ++edges_;
  ++attaches_;
  shift_subtree(child, depth_[parent] + 1 - depth_[child],
                connected_[parent] != 0);
}

void OverlayHealthRecorder::apply_detach(std::uint32_t child) {
  const std::uint32_t parent = parent_[child];
  if (parent == kNone) return;
  const bool parent_was_saturated =
      static_cast<int>(children_[parent].size()) >= fanout_[parent];
  auto& siblings = children_[parent];
  const auto it = std::find(siblings.begin(), siblings.end(), child);
  if (it != siblings.end()) siblings.erase(it);
  if (online_[parent] != 0 && parent_was_saturated &&
      static_cast<int>(siblings.size()) < fanout_[parent])
    --saturated_;
  parent_[child] = kNone;
  if (online_[child] != 0) ++orphans_;
  if (edges_ > 0) --edges_;
  ++detaches_;
  shift_subtree(child, -depth_[child], false);
}

void OverlayHealthRecorder::apply_offline(std::uint32_t node) {
  if (node == 0 || online_[node] == 0) return;
  // The overlay detaches the node and orphans its children before the
  // offline event fires; mirror defensively in case a stream consumer
  // sees reordered events.
  while (!children_[node].empty()) apply_detach(children_[node].back());
  if (parent_[node] != kNone) apply_detach(node);
  remove_node_stats(node);
  if (orphans_ > 0) --orphans_;  // parentless + online until this line
  online_[node] = 0;
  --online_consumers_;
  capacity_ -= static_cast<std::uint64_t>(std::max(fanout_[node], 0));
  if (fanout_[node] <= 0 && saturated_ > 0) --saturated_;
  ++offlines_;
}

void OverlayHealthRecorder::apply_online(std::uint32_t node) {
  if (node == 0 || online_[node] != 0) return;
  online_[node] = 1;
  depth_[node] = 0;
  connected_[node] = 0;
  ++orphans_;  // rejoins parentless
  ++online_consumers_;
  capacity_ += static_cast<std::uint64_t>(std::max(fanout_[node], 0));
  if (fanout_[node] <= 0) ++saturated_;
  add_node_stats(node);
  ++onlines_;
}

void OverlayHealthRecorder::shift_subtree(std::uint32_t node, int depth_delta,
                                          bool connected) {
  walk_stack_.clear();
  walk_stack_.push_back(node);
  while (!walk_stack_.empty()) {
    const std::uint32_t cur = walk_stack_.back();
    walk_stack_.pop_back();
    remove_node_stats(cur);
    depth_[cur] += depth_delta;
    connected_[cur] = connected ? 1 : 0;
    add_node_stats(cur);
    for (std::uint32_t child : children_[cur]) walk_stack_.push_back(child);
  }
}

std::int64_t OverlayHealthRecorder::delay_of(std::uint32_t node) const {
  if (node == 0) return 0;
  // DelayAt: tree depth when connected; optimistic depth-in-group + 1
  // while detached (core/overlay.cpp agrees).
  return connected_[node] != 0 ? depth_[node] : depth_[node] + 1;
}

void OverlayHealthRecorder::add_node_stats(std::uint32_t node) {
  if (node == 0 || online_[node] == 0) return;
  const std::int64_t delay = delay_of(node);
  if (static_cast<std::size_t>(delay) >= depth_counts_.size())
    depth_counts_.resize(static_cast<std::size_t>(delay) + 1, 0);
  ++depth_counts_[static_cast<std::size_t>(delay)];
  depth_sum_ += delay;
  const std::int64_t slack = latency_[node] - delay;
  slack_counts_.add(slack);
  if (static_cast<std::size_t>(delay) >= slack_by_depth_.size())
    slack_by_depth_.resize(static_cast<std::size_t>(delay) + 1);
  slack_by_depth_[static_cast<std::size_t>(delay)].add(slack);
  slack_sum_ += slack;
  if (connected_[node] != 0 && delay <= latency_[node]) ++satisfied_;
}

void OverlayHealthRecorder::remove_node_stats(std::uint32_t node) {
  if (node == 0 || online_[node] == 0) return;
  const std::int64_t delay = delay_of(node);
  if (static_cast<std::size_t>(delay) < depth_counts_.size() &&
      depth_counts_[static_cast<std::size_t>(delay)] > 0)
    --depth_counts_[static_cast<std::size_t>(delay)];
  depth_sum_ -= delay;
  const std::int64_t slack = latency_[node] - delay;
  slack_counts_.remove(slack);
  if (static_cast<std::size_t>(delay) < slack_by_depth_.size())
    slack_by_depth_[static_cast<std::size_t>(delay)].remove(slack);
  slack_sum_ -= slack;
  if (connected_[node] != 0 && delay <= latency_[node] && satisfied_ > 0)
    --satisfied_;
}

HealthSample OverlayHealthRecorder::build_sample_locked(double t) {
  HealthSample sample;
  sample.run = run_;
  sample.round = static_cast<std::int64_t>(std::llround(t));
  sample.t = t;
  sample.online = online_consumers_;
  sample.orphans = orphans_;
  sample.satisfied = satisfied_;
  sample.unsatisfied = online_consumers_ - satisfied_;
  sample.converged = sample.unsatisfied == 0;

  // Depth percentiles from the histogram: O(max observed DelayAt), not
  // O(nodes) — no hot-path BFS.
  const std::uint64_t total = online_consumers_;
  if (total > 0) {
    const std::uint64_t r50 = (total + 1) / 2;
    const std::uint64_t r90 =
        std::max<std::uint64_t>(1, (total * 9 + 9) / 10);
    const std::uint64_t r99 =
        std::max<std::uint64_t>(1, (total * 99 + 99) / 100);
    std::uint64_t seen = 0;
    for (std::size_t d = 0; d < depth_counts_.size(); ++d) {
      if (depth_counts_[d] == 0) continue;
      seen += depth_counts_[d];
      const auto depth = static_cast<std::int64_t>(d);
      if (sample.depth_p50 == 0 && seen >= r50) sample.depth_p50 = depth;
      if (sample.depth_p90 == 0 && seen >= r90) sample.depth_p90 = depth;
      if (sample.depth_p99 == 0 && seen >= r99) sample.depth_p99 = depth;
      sample.max_depth = depth;
    }
    sample.mean_depth =
        static_cast<double>(depth_sum_) / static_cast<double>(total);
    sample.mean_slack =
        static_cast<double>(slack_sum_) / static_cast<double>(total);
  }
  if (!slack_counts_.empty()) {
    sample.min_slack = slack_counts_.min_key();
    sample.violated = slack_counts_.count_below(0);
  }
  // The deepest consumers' row holds the smallest slack at max DelayAt.
  if (total > 0 &&
      static_cast<std::size_t>(sample.max_depth) < slack_by_depth_.size() &&
      !slack_by_depth_[static_cast<std::size_t>(sample.max_depth)].empty()) {
    sample.deepest_slack =
        slack_by_depth_[static_cast<std::size_t>(sample.max_depth)].min_key();
  }

  sample.edges = edges_;
  sample.capacity = capacity_;
  sample.saturated = saturated_;
  sample.utilization =
      capacity_ > 0
          ? static_cast<double>(edges_) / static_cast<double>(capacity_)
          : 0.0;
  sample.attaches = attaches_;
  sample.detaches = detaches_;
  sample.offlines = offlines_;
  sample.onlines = onlines_;

  std::map<std::string, std::uint64_t> totals = subsystem_totals();
  for (const auto& [prefix, value] : totals) {
    const auto base = message_base_.find(prefix);
    const std::uint64_t delta =
        base == message_base_.end() ? value : value - base->second;
    if (delta > 0) sample.messages[prefix] = delta;
  }
  message_base_ = std::move(totals);
  return sample;
}

Json OverlayHealthRecorder::sample_to_json(const HealthSample& sample) {
  Json line = Json::object();
  line.set("schema", Json::string("lagover.health.v1"));
  line.set("kind", Json::string("sample"));
  line.set("run", Json::integer(static_cast<std::int64_t>(sample.run)));
  line.set("round", Json::integer(sample.round));
  line.set("t", Json::number(sample.t));
  line.set("online", Json::integer(static_cast<std::int64_t>(sample.online)));
  line.set("orphans",
           Json::integer(static_cast<std::int64_t>(sample.orphans)));
  line.set("satisfied",
           Json::integer(static_cast<std::int64_t>(sample.satisfied)));
  line.set("unsatisfied",
           Json::integer(static_cast<std::int64_t>(sample.unsatisfied)));
  line.set("converged", Json::boolean(sample.converged));

  Json depth = Json::object();
  depth.set("max", Json::integer(sample.max_depth));
  depth.set("mean", Json::number(sample.mean_depth));
  depth.set("p50", Json::integer(sample.depth_p50));
  depth.set("p90", Json::integer(sample.depth_p90));
  depth.set("p99", Json::integer(sample.depth_p99));
  line.set("depth", std::move(depth));

  Json slack = Json::object();
  slack.set("min", Json::integer(sample.min_slack));
  slack.set("mean", Json::number(sample.mean_slack));
  slack.set("deepest", Json::integer(sample.deepest_slack));
  slack.set("violated",
            Json::integer(static_cast<std::int64_t>(sample.violated)));
  line.set("slack", std::move(slack));

  Json fanout = Json::object();
  fanout.set("edges", Json::integer(static_cast<std::int64_t>(sample.edges)));
  fanout.set("capacity",
             Json::integer(static_cast<std::int64_t>(sample.capacity)));
  fanout.set("saturated",
             Json::integer(static_cast<std::int64_t>(sample.saturated)));
  fanout.set("utilization", Json::number(sample.utilization));
  line.set("fanout", std::move(fanout));

  Json churn = Json::object();
  churn.set("attaches",
            Json::integer(static_cast<std::int64_t>(sample.attaches)));
  churn.set("detaches",
            Json::integer(static_cast<std::int64_t>(sample.detaches)));
  churn.set("offlines",
            Json::integer(static_cast<std::int64_t>(sample.offlines)));
  churn.set("onlines",
            Json::integer(static_cast<std::int64_t>(sample.onlines)));
  line.set("churn", std::move(churn));

  Json messages = Json::object();
  for (const auto& [prefix, delta] : sample.messages)
    messages.set(prefix, Json::integer(static_cast<std::int64_t>(delta)));
  line.set("messages", std::move(messages));
  return line;
}

void OverlayHealthRecorder::emit_locked(const Json& line) {
  ++stream_lines_;
  if (stream_ != nullptr) *stream_ << line.dump() << '\n';
}

void OverlayHealthRecorder::note_round(std::uint64_t run, double t) {
  MutexLock lock(&mutex_);
  if (run == 0 || run != run_) return;
  HealthSample sample = build_sample_locked(t);
  attaches_ = detaches_ = offlines_ = onlines_ = 0;

  // Convergence tracker: latch the first round whose converged state
  // held for `stability_rounds` consecutive samples.
  if (sample.converged) {
    if (streak_len_ == 0) streak_start_ = sample.round;
    ++streak_len_;
    if (streak_len_ >= config_.stability_rounds && convergence_round_ < 0) {
      convergence_round_ = streak_start_;
      TELEM_GAUGE("health.convergence_round",
                  static_cast<double>(convergence_round_));
    }
  } else {
    streak_len_ = 0;
    streak_start_ = -1;
  }

  TELEM_COUNT("health.samples", 1);
  TELEM_GAUGE("health.orphans", static_cast<double>(sample.orphans));
  TELEM_GAUGE("health.unsatisfied", static_cast<double>(sample.unsatisfied));
  TELEM_GAUGE("health.max_depth", static_cast<double>(sample.max_depth));
  TELEM_GAUGE("health.min_slack", static_cast<double>(sample.min_slack));
  TELEM_GAUGE("health.fanout_utilization", sample.utilization);

  ++samples_total_;
  ++run_samples_;
  if (config_.ring_capacity > 0) {
    if (ring_.size() == config_.ring_capacity) ring_.pop_front();
    ring_.push_back(sample);
  }
  // Bounded stream: every stride-th sample goes out; once the emitted
  // budget is hit the stride doubles, so a run of any length writes
  // O(stream_budget) sample lines. Serializing is the expensive part
  // of a round, so the Json line is only built when someone consumes
  // it this round.
  const bool emit_now = (run_samples_ - 1) % stride_ == 0;
  if (sample_mirror_ || (emit_now && stream_ != nullptr)) {
    const Json line = sample_to_json(sample);
    if (sample_mirror_) sample_mirror_(line);
    if (emit_now && stream_ != nullptr) *stream_ << line.dump() << '\n';
  }
  if (emit_now) {
    ++stream_lines_;  // stride bookkeeping runs even with no sink
    if (++run_emitted_ >= config_.stream_budget) {
      stride_ *= 2;
      run_emitted_ = 0;
    }
  }
  last_sample_ = std::move(sample);
  have_sample_ = true;
}

void OverlayHealthRecorder::end_run_locked() {
  if (run_ == 0) return;
  HealthRunResult result;
  result.run = run_;
  result.nodes = parent_.size();
  result.rounds = have_sample_ ? last_sample_.round : 0;
  result.convergence_round = convergence_round_;
  result.converged = convergence_round_ >= 0;
  result.final = last_sample_;

  Json line = Json::object();
  line.set("schema", Json::string("lagover.health.v1"));
  line.set("kind", Json::string("run_end"));
  line.set("run", Json::integer(static_cast<std::int64_t>(run_)));
  line.set("rounds", Json::integer(result.rounds));
  line.set("converged", Json::boolean(result.converged));
  line.set("convergence_round", Json::integer(result.convergence_round));
  line.set("samples",
           Json::integer(static_cast<std::int64_t>(run_samples_)));
  line.set("stride", Json::integer(static_cast<std::int64_t>(stride_)));
  if (have_sample_) line.set("final", sample_to_json(result.final));
  emit_locked(line);

  completed_.push_back(std::move(result));
  run_ = 0;
}

void OverlayHealthRecorder::end_run(std::uint64_t run) {
  MutexLock lock(&mutex_);
  if (run == 0 || run != run_) return;
  end_run_locked();
}

void OverlayHealthRecorder::finalize() {
  MutexLock lock(&mutex_);
  end_run_locked();
}

std::uint64_t OverlayHealthRecorder::current_run() const {
  MutexLock lock(&mutex_);
  return run_;
}

std::size_t OverlayHealthRecorder::completed_run_count() const {
  MutexLock lock(&mutex_);
  return completed_.size();
}

std::vector<HealthRunResult> OverlayHealthRecorder::completed_runs() const {
  MutexLock lock(&mutex_);
  return completed_;
}

std::vector<Json> OverlayHealthRecorder::recent_samples() const {
  MutexLock lock(&mutex_);
  std::vector<Json> lines;
  lines.reserve(ring_.size());
  for (const HealthSample& sample : ring_) {
    lines.push_back(sample_to_json(sample));
  }
  return lines;
}

std::uint64_t OverlayHealthRecorder::stream_lines() const {
  MutexLock lock(&mutex_);
  return stream_lines_;
}

std::uint64_t OverlayHealthRecorder::samples_total() const {
  MutexLock lock(&mutex_);
  return samples_total_;
}

bool OverlayHealthRecorder::mirror_view(std::uint64_t run,
                                        HealthMirrorView* view) const {
  MutexLock lock(&mutex_);
  if (run == 0 || run != run_) return false;
  view->parent = parent_;
  view->online.assign(online_.begin(), online_.end());
  view->connected.assign(connected_.begin(), connected_.end());
  view->depth = depth_;
  view->online_consumers = online_consumers_;
  view->orphans = orphans_;
  view->satisfied = satisfied_;
  view->edges = edges_;
  view->capacity = capacity_;
  view->saturated = saturated_;
  return true;
}

Json OverlayHealthRecorder::to_json() {
  MutexLock lock(&mutex_);
  end_run_locked();
  Json block = Json::object();
  block.set("schema", Json::string("lagover.health.v1"));
  block.set("stability_rounds", Json::integer(config_.stability_rounds));
  block.set("runs",
            Json::integer(static_cast<std::int64_t>(completed_.size())));
  std::vector<std::int64_t> rounds;
  for (const HealthRunResult& result : completed_)
    if (result.converged) rounds.push_back(result.convergence_round);
  block.set("converged_runs",
            Json::integer(static_cast<std::int64_t>(rounds.size())));
  if (!rounds.empty()) {
    std::sort(rounds.begin(), rounds.end());
    Json stats = Json::object();
    stats.set("min", Json::integer(rounds.front()));
    stats.set("median", Json::integer(rounds[rounds.size() / 2]));
    stats.set("max", Json::integer(rounds.back()));
    block.set("convergence_round", std::move(stats));
  }
  block.set("samples",
            Json::integer(static_cast<std::int64_t>(samples_total_)));
  block.set("stream_lines",
            Json::integer(static_cast<std::int64_t>(stream_lines_)));
  for (auto it = completed_.rbegin(); it != completed_.rend(); ++it) {
    if (it->rounds == 0 && it->final.online == 0) continue;
    block.set("final", sample_to_json(it->final));
    break;
  }
  return block;
}

}  // namespace lagover::telemetry
