// Metrics registry: named counters, gauges, and log-scale histograms
// with macro-guarded recording sites. Sites cache the metric pointer in
// a function-local static, so the steady-state cost of a hit is one
// enabled() branch plus one increment; with telemetry off it is the
// branch alone. Values survive reset() as registered-but-zero entries,
// so cached site pointers never dangle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Histogram with geometrically growing buckets: bucket i covers
/// [lo * base^i, lo * base^(i+1)). Values below `lo` (including zero
/// and negatives) land in the underflow bucket, values beyond the last
/// bucket in the overflow bucket; exact count/sum/min/max are kept
/// alongside, so means are exact and only quantiles are bucket-
/// resolution approximations. Log-scale buckets keep wide-dynamic-range
/// distributions (latencies, slacks, queue depths) compact.
class LogHistogram {
 public:
  explicit LogHistogram(double lo = 1.0, double base = 2.0,
                        std::size_t buckets = 24);

  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// Smallest / largest recorded value; only meaningful when count > 0.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t count_in_bucket(std::size_t bucket) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bucket_lower(std::size_t bucket) const;
  double bucket_upper(std::size_t bucket) const;

  /// Quantile estimate from the bucket counts (linear interpolation
  /// inside the containing bucket; exact min/max anchor the tails).
  /// q in [0, 1]; returns 0 for an empty histogram.
  double percentile(double q) const;

  /// Adds another histogram's observations. Precondition: identical
  /// geometry (lo, base, bucket count).
  void merge(const LogHistogram& other);

  /// Zeroes every bucket and the exact aggregates; geometry is kept.
  void reset() noexcept;

  double lo() const noexcept { return lo_; }
  double base() const noexcept { return base_; }

 private:
  double lo_;
  double base_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric registry. The process-wide instance() is what the
/// TELEM_* macros record into; independent instances exist for tests
/// and for merging per-shard registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates; references stay valid for the registry's
  /// lifetime (reset() zeroes values but never removes entries).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name, double lo = 1.0,
                          double base = 2.0, std::size_t buckets = 24);

  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  bool has_histogram(const std::string& name) const;

  /// Zeroes every registered metric (entries and their addresses are
  /// preserved, so cached recording sites stay valid).
  void reset();

  /// Adds `other`'s counters and histogram observations into this
  /// registry; gauges take `other`'s value (last-written-wins).
  /// Metrics missing here are created. Histogram merges require
  /// matching geometry.
  void merge_from(const MetricsRegistry& other);

  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn)
      const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const LogHistogram&)>& fn)
      const;

  /// The "lagover.metrics.v1" JSON fragment for this registry's
  /// counters / gauges / histograms (see docs/OBSERVABILITY.md). The
  /// profiler and timeseries sections are appended by the export layer.
  Json to_json(bool include_buckets = true) const;

 private:
  // std::map: node-stable addresses under later insertions.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace lagover::telemetry

// Recording-site macros. Each expands to its own block, so the cached
// static reference cannot collide across sites; the value expression is
// only evaluated when telemetry is enabled.
#define TELEM_COUNT(name, delta)                                        \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::Counter& telem_counter_ =            \
          ::lagover::telemetry::MetricsRegistry::instance().counter(    \
              name);                                                    \
      telem_counter_.inc(delta);                                        \
    }                                                                   \
  } while (false)

#define TELEM_GAUGE(name, value)                                        \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::Gauge& telem_gauge_ =                \
          ::lagover::telemetry::MetricsRegistry::instance().gauge(name);\
      telem_gauge_.set(static_cast<double>(value));                     \
    }                                                                   \
  } while (false)

#define TELEM_HIST(name, value)                                         \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::LogHistogram& telem_hist_ =          \
          ::lagover::telemetry::MetricsRegistry::instance().histogram(  \
              name);                                                    \
      telem_hist_.add(static_cast<double>(value));                      \
    }                                                                   \
  } while (false)
