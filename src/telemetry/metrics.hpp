// Metrics registry: named counters, gauges, and log-scale histograms
// with macro-guarded recording sites. Sites cache the metric pointer in
// a function-local static, so the steady-state cost of a hit is one
// enabled() branch plus one increment; with telemetry off it is the
// branch alone. Values survive reset() as registered-but-zero entries,
// so cached site pointers never dangle.
//
// Concurrency: Counter and Gauge are relaxed atomics (hot-path
// increments from parallel shards never lock); LogHistogram and
// MetricsRegistry are internally synchronized with an annotated Mutex.
// The never-erase contract is what makes the cached site references
// thread-safe: a reference handed out under the registry lock stays
// valid forever, and the referent is itself safe to hit concurrently.
// Lock order: registry mutex before any histogram mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// Monotonic event counter. Relaxed atomic: concurrent inc()s never
/// lose updates, and nothing orders against the count itself.
class LAGOVER_THREAD_SAFE Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written-wins instantaneous value.
class LAGOVER_THREAD_SAFE Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram with geometrically growing buckets: bucket i covers
/// [lo * base^i, lo * base^(i+1)). Values below `lo` (including zero
/// and negatives) land in the underflow bucket, values beyond the last
/// bucket in the overflow bucket; exact count/sum/min/max are kept
/// alongside, so means are exact and only quantiles are bucket-
/// resolution approximations. Log-scale buckets keep wide-dynamic-range
/// distributions (latencies, slacks, queue depths) compact.
///
/// Internally locked: add() takes the histogram's own mutex, so the
/// count/sum/min/max aggregate stays consistent with the buckets even
/// under concurrent recording. Geometry (lo, base, bucket count) is
/// immutable after construction and readable without the lock.
class LAGOVER_THREAD_SAFE LogHistogram {
 public:
  explicit LogHistogram(double lo = 1.0, double base = 2.0,
                        std::size_t buckets = 24);

  /// Copies a consistent snapshot of `other` (taken under its lock).
  LogHistogram(const LogHistogram& other);
  LogHistogram& operator=(const LogHistogram&) = delete;

  void add(double x) noexcept;

  std::uint64_t count() const noexcept {
    MutexLock lock(&mutex_);
    return count_;
  }
  double sum() const noexcept {
    MutexLock lock(&mutex_);
    return sum_;
  }
  /// Smallest / largest recorded value; only meaningful when count > 0.
  double min() const noexcept {
    MutexLock lock(&mutex_);
    return min_;
  }
  double max() const noexcept {
    MutexLock lock(&mutex_);
    return max_;
  }
  double mean() const noexcept {
    MutexLock lock(&mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  std::size_t bucket_count() const noexcept { return num_buckets_; }
  std::uint64_t count_in_bucket(std::size_t bucket) const;
  std::uint64_t underflow() const noexcept {
    MutexLock lock(&mutex_);
    return underflow_;
  }
  std::uint64_t overflow() const noexcept {
    MutexLock lock(&mutex_);
    return overflow_;
  }
  double bucket_lower(std::size_t bucket) const;
  double bucket_upper(std::size_t bucket) const;

  /// Quantile estimate from the bucket counts (linear interpolation
  /// inside the containing bucket; exact min/max anchor the tails).
  /// q in [0, 1]; returns 0 for an empty histogram.
  double percentile(double q) const;

  /// Adds another histogram's observations. Precondition: identical
  /// geometry (lo, base, bucket count). Snapshots `other` under its
  /// lock, then applies under this lock — no nested locking, so
  /// cross-registry merges cannot deadlock.
  void merge(const LogHistogram& other);

  /// Zeroes every bucket and the exact aggregates; geometry is kept.
  void reset() noexcept;

  double lo() const noexcept { return lo_; }
  double base() const noexcept { return base_; }

 private:
  /// Plain (unlocked) copy of the mutable state, for snapshot-then-
  /// apply operations.
  struct State {
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State snapshot() const;
  double percentile_locked(double q) const LAGOVER_REQUIRES(mutex_);

  // Geometry: set once in the constructor, never mutated — safe to
  // read without the lock.
  double lo_;
  double base_;
  std::size_t num_buckets_;

  mutable Mutex mutex_;
  std::vector<std::uint64_t> counts_ LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t underflow_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t overflow_ LAGOVER_GUARDED_BY(mutex_) = 0;
  std::uint64_t count_ LAGOVER_GUARDED_BY(mutex_) = 0;
  double sum_ LAGOVER_GUARDED_BY(mutex_) = 0.0;
  double min_ LAGOVER_GUARDED_BY(mutex_) = 0.0;
  double max_ LAGOVER_GUARDED_BY(mutex_) = 0.0;
};

/// Name -> metric registry. The process-wide instance() is what the
/// TELEM_* macros record into; independent instances exist for tests
/// and for merging per-shard registries.
///
/// The registry mutex guards only the maps; the returned references
/// outlive the lock because entries are never erased (reset() zeroes
/// in place), and each referent is itself thread-safe.
class LAGOVER_THREAD_SAFE MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates; references stay valid for the registry's
  /// lifetime (reset() zeroes values but never removes entries).
  Counter& counter(const std::string& name) LAGOVER_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) LAGOVER_EXCLUDES(mutex_);
  LogHistogram& histogram(const std::string& name, double lo = 1.0,
                          double base = 2.0, std::size_t buckets = 24)
      LAGOVER_EXCLUDES(mutex_);

  bool has_counter(const std::string& name) const LAGOVER_EXCLUDES(mutex_);
  bool has_gauge(const std::string& name) const LAGOVER_EXCLUDES(mutex_);
  bool has_histogram(const std::string& name) const LAGOVER_EXCLUDES(mutex_);

  /// Zeroes every registered metric (entries and their addresses are
  /// preserved, so cached recording sites stay valid).
  void reset() LAGOVER_EXCLUDES(mutex_);

  /// Adds `other`'s counters and histogram observations into this
  /// registry; gauges take `other`'s value (last-written-wins).
  /// Metrics missing here are created. Histogram merges require
  /// matching geometry. Snapshots `other` first, then applies — the
  /// two registry locks are never held together.
  void merge_from(const MetricsRegistry& other) LAGOVER_EXCLUDES(mutex_);

  /// Iteration runs under the registry lock: `fn` must not call back
  /// into this registry (find-or-create, reset, merge) or it will
  /// self-deadlock. Reading the passed metric is always safe.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn)
      const LAGOVER_EXCLUDES(mutex_);
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const
      LAGOVER_EXCLUDES(mutex_);
  void for_each_histogram(
      const std::function<void(const std::string&, const LogHistogram&)>& fn)
      const LAGOVER_EXCLUDES(mutex_);

  /// The "lagover.metrics.v1" JSON fragment for this registry's
  /// counters / gauges / histograms (see docs/OBSERVABILITY.md). The
  /// profiler and timeseries sections are appended by the export layer.
  Json to_json(bool include_buckets = true) const LAGOVER_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // std::map: node-stable addresses under later insertions.
  std::map<std::string, Counter> counters_ LAGOVER_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ LAGOVER_GUARDED_BY(mutex_);
  std::map<std::string, LogHistogram> histograms_ LAGOVER_GUARDED_BY(mutex_);
};

}  // namespace lagover::telemetry

// Recording-site macros. Each expands to its own block, so the cached
// static reference cannot collide across sites; the value expression is
// only evaluated when telemetry is enabled. The static initialization
// is a C++ magic static (thread-safe once-init), and the cached
// reference stays valid under the registry's never-erase contract.
#define TELEM_COUNT(name, delta)                                        \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::Counter& telem_counter_ =            \
          ::lagover::telemetry::MetricsRegistry::instance().counter(    \
              name);                                                    \
      telem_counter_.inc(delta);                                        \
    }                                                                   \
  } while (false)

#define TELEM_GAUGE(name, value)                                        \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::Gauge& telem_gauge_ =                \
          ::lagover::telemetry::MetricsRegistry::instance().gauge(name);\
      telem_gauge_.set(static_cast<double>(value));                     \
    }                                                                   \
  } while (false)

#define TELEM_HIST(name, value)                                         \
  do {                                                                  \
    if (::lagover::telemetry::enabled()) {                              \
      static ::lagover::telemetry::LogHistogram& telem_hist_ =          \
          ::lagover::telemetry::MetricsRegistry::instance().histogram(  \
              name);                                                    \
      telem_hist_.add(static_cast<double>(value));                      \
    }                                                                   \
  } while (false)
