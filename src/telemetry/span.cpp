#include "telemetry/span.hpp"

#include <string>

#include "telemetry/metrics.hpp"

namespace lagover::telemetry {

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kSourcePoll: return "source_poll";
    case SpanKind::kRelay: return "relay";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRepair: return "repair";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kDuplicate: return "duplicate";
  }
  return "unknown";
}

namespace {

/// Receipt spans are the ones that measure delivery latency (a repair
/// is still a delivery — just a late one, usually).
bool is_receipt(SpanKind kind) noexcept {
  return kind == SpanKind::kSourcePoll || kind == SpanKind::kDeliver ||
         kind == SpanKind::kRepair;
}

constexpr std::size_t kSpanKinds =
    static_cast<std::size_t>(SpanKind::kDuplicate) + 1;

/// Every metric the span path records into, resolved once per process.
/// Registry entries are never erased — reset() zeroes them in place —
/// so the cached pointers stay valid for the process lifetime and the
/// per-span hot path is free of string building and map walks.
struct SpanMetrics {
  Counter* kind_counters[kSpanKinds] = {};
  LogHistogram* delivery_latency = nullptr;
  Counter* deadline_misses = nullptr;
};

const SpanMetrics& span_metrics() {
  static const SpanMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::instance();
    SpanMetrics resolved;
    for (std::size_t i = 0; i < kSpanKinds; ++i)
      resolved.kind_counters[i] = &registry.counter(
          std::string("span.") + to_string(static_cast<SpanKind>(i)));
    resolved.delivery_latency = &registry.histogram("feed.delivery_latency");
    resolved.deadline_misses = &registry.counter("feed.deadline_misses");
    return resolved;
  }();
  return metrics;
}

}  // namespace

void record_span(const ItemSpan& span) {
  if (!enabled()) return;
  const SpanMetrics& metrics = span_metrics();
  metrics.kind_counters[static_cast<std::size_t>(span.kind)]->inc();
  if (is_receipt(span.kind)) {
    metrics.delivery_latency->add(span.ts - span.published_at);
    if (missed_deadline(span.published_at, span.ts, span.deadline))
      metrics.deadline_misses->inc();
  }
  span_bus().publish(span);
}

}  // namespace lagover::telemetry
