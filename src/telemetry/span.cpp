#include "telemetry/span.hpp"

#include <string>

#include "telemetry/metrics.hpp"

namespace lagover::telemetry {

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kSourcePoll: return "source_poll";
    case SpanKind::kRelay: return "relay";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRepair: return "repair";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kDuplicate: return "duplicate";
  }
  return "unknown";
}

namespace {

/// Receipt spans are the ones that measure delivery latency (a repair
/// is still a delivery — just a late one, usually).
bool is_receipt(SpanKind kind) noexcept {
  return kind == SpanKind::kSourcePoll || kind == SpanKind::kDeliver ||
         kind == SpanKind::kRepair;
}

}  // namespace

void record_span(const ItemSpan& span) {
  if (!enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  // The name varies per span kind, so the registry is hit directly
  // instead of through the site-cached TELEM_COUNT macro.
  registry.counter(std::string("span.") + to_string(span.kind)).inc();
  if (is_receipt(span.kind)) {
    registry.histogram("feed.delivery_latency")
        .add(span.ts - span.published_at);
    if (missed_deadline(span.published_at, span.ts, span.deadline))
      registry.counter("feed.deadline_misses").inc();
  }
  span_bus().publish(span);
}

}  // namespace lagover::telemetry
