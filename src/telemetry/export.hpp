// Export layer of the telemetry substrate:
//
//   * TimeseriesSampler — periodic per-round snapshots of every
//     registered counter/gauge into TimeSeries,
//   * JsonlEventWriter  — streaming JSONL dump of the global event,
//     span, and log buses (one JSON object per line),
//   * ChromeTraceWriter — Chrome trace_event format ("traceEvents"),
//     loadable in Perfetto / chrome://tracing: simulated-time instants
//     on the "sim" process, wall-clock profiler scopes on "wall",
//     per-item dissemination hops as duration events on "items",
//   * metrics_summary_json — the "lagover.metrics.v1" summary benches
//     embed next to their "lagover.bench.v1" block.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "stats/timeseries.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace lagover::telemetry {

/// Snapshots every registered counter and gauge of a MetricsRegistry on
/// each sample(t) call, building one TimeSeries per metric. Sampling
/// with a timestamp at or before the previous one restarts the series
/// (benches run many trials back-to-back on restarting clocks; the
/// exported series covers the most recent run).
class TimeseriesSampler {
 public:
  explicit TimeseriesSampler(const MetricsRegistry& registry =
                                 MetricsRegistry::instance())
      : registry_(registry) {}

  void sample(double t);
  void clear();

  const std::map<std::string, TimeSeries>& series() const noexcept {
    return series_;
  }
  std::size_t samples() const noexcept { return samples_; }

  /// {"<metric>": [[t, value], ...]} with at most `max_points` points
  /// per series (downsampled, step semantics).
  Json to_json(std::size_t max_points = 256) const;

 private:
  const MetricsRegistry& registry_;
  std::map<std::string, TimeSeries> series_;
  std::size_t samples_ = 0;
  double last_t_ = 0.0;
};

/// Streams the global event + span + log buses to a JSONL file.
/// Subscribes on construction, unsubscribes on destruction. With
/// `spans_only` set it captures just the span bus — the shape
/// `--spans-out` wants next to a full `--events-out` dump.
///
/// Subscribed to three independent buses, so two handlers can fire
/// concurrently from different publisher threads: the output stream is
/// guarded by the writer's own mutex (lines interleave whole, never
/// torn).
class LAGOVER_THREAD_SAFE JsonlEventWriter {
 public:
  explicit JsonlEventWriter(const std::string& path, bool spans_only = false);
  ~JsonlEventWriter();

  JsonlEventWriter(const JsonlEventWriter&) = delete;
  JsonlEventWriter& operator=(const JsonlEventWriter&) = delete;

  bool ok() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return static_cast<bool>(out_);
  }
  std::uint64_t lines() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return lines_;
  }

 private:
  void on_event(const EventRecord& record) LAGOVER_EXCLUDES(mutex_);
  void on_span(const ItemSpan& span) LAGOVER_EXCLUDES(mutex_);
  void on_log(const LogRecord& record) LAGOVER_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::ofstream out_ LAGOVER_GUARDED_BY(mutex_);
  std::uint64_t lines_ LAGOVER_GUARDED_BY(mutex_) = 0;
  EventBus<EventRecord>::SubscriptionId event_sub_ = 0;
  SpanBus::SubscriptionId span_sub_ = 0;
  EventBus<LogRecord>::SubscriptionId log_sub_ = 0;
  bool subscribed_events_ = false;
};

/// Collects the global event bus, the log bus, and (as the profiler's
/// scope sink) every profiled scope, then writes one Chrome
/// trace_event JSON file. Timestamps: simulated events use sim time
/// scaled to microseconds (1 time unit = 1s) on pid 1 ("sim");
/// profiler scopes use wall microseconds on pid 2 ("wall").
class LAGOVER_THREAD_SAFE ChromeTraceWriter final : public ScopeSink {
 public:
  ChromeTraceWriter();
  ~ChromeTraceWriter() override;

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  std::size_t event_count() const LAGOVER_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return events_.size();
  }

  /// Writes {"traceEvents": [...], "displayTimeUnit": "ms"}; false on
  /// I/O failure.
  bool write(const std::string& path) const LAGOVER_EXCLUDES(mutex_);

  void scope_complete(const ProfileSite& site, std::uint64_t start_wall_ns,
                      std::uint64_t duration_ns, double sim_time)
      LAGOVER_EXCLUDES(mutex_) override;

 private:
  void on_event(const EventRecord& record) LAGOVER_EXCLUDES(mutex_);
  void on_span(const ItemSpan& span) LAGOVER_EXCLUDES(mutex_);
  void on_log(const LogRecord& record) LAGOVER_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<Json> events_ LAGOVER_GUARDED_BY(mutex_);
  EventBus<EventRecord>::SubscriptionId event_sub_ = 0;
  SpanBus::SubscriptionId span_sub_ = 0;
  EventBus<LogRecord>::SubscriptionId log_sub_ = 0;
  ScopeSink* previous_sink_ = nullptr;
};

/// The full "lagover.metrics.v1" block: registry counters/gauges/
/// histograms, the profiler aggregates under "profile", and (when a
/// sampler is given) per-round series under "timeseries".
Json metrics_summary_json(const TimeseriesSampler* sampler = nullptr,
                          bool include_buckets = true);

}  // namespace lagover::telemetry
