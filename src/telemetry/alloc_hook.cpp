// Counting operator new/delete hook behind the LAGOVER_ALLOC_HOOK
// compile definition (a CMake option, on by default, forced off under
// sanitizers so their own allocator interposition stays undisturbed).
// While tracking is off the replacement costs one relaxed atomic load
// per allocation; with the definition absent the default operators are
// untouched and the query functions below report "unsupported".
//
// The counters are process-global relaxed atomics: the simulators are
// single-threaded, and perf runs only need eventually-consistent
// totals, not a happens-before edge.
#include "telemetry/perf.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace lagover::telemetry {
namespace {

std::atomic<bool> g_tracking{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

}  // namespace

bool alloc_hook_compiled() noexcept {
#if defined(LAGOVER_ALLOC_HOOK)
  return true;
#else
  return false;
#endif
}

void set_alloc_tracking(bool on) noexcept {
  g_tracking.store(on && alloc_hook_compiled(),
                   std::memory_order_relaxed);
}

bool alloc_tracking() noexcept {
  return g_tracking.load(std::memory_order_relaxed);
}

AllocStats alloc_stats() noexcept {
  AllocStats stats;
  stats.allocs = g_allocs.load(std::memory_order_relaxed);
  stats.frees = g_frees.load(std::memory_order_relaxed);
  stats.bytes = g_bytes.load(std::memory_order_relaxed);
  return stats;
}

namespace detail {

inline void note_alloc(std::size_t size) noexcept {
  if (!g_tracking.load(std::memory_order_relaxed)) return;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void note_free(void* pointer) noexcept {
  if (pointer == nullptr) return;
  if (!g_tracking.load(std::memory_order_relaxed)) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  // malloc(0) may return null; allocate a distinct byte instead, as
  // operator new must hand out unique non-null pointers.
  void* pointer = std::malloc(size == 0 ? 1 : size);
  if (pointer != nullptr) note_alloc(size);
  return pointer;
}

}  // namespace detail
}  // namespace lagover::telemetry

#if defined(LAGOVER_ALLOC_HOOK)

namespace ltd = lagover::telemetry::detail;

void* operator new(std::size_t size) {
  void* pointer = ltd::counted_alloc(size);
  if (pointer == nullptr) throw std::bad_alloc();
  return pointer;
}

void* operator new[](std::size_t size) {
  void* pointer = ltd::counted_alloc(size);
  if (pointer == nullptr) throw std::bad_alloc();
  return pointer;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ltd::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ltd::counted_alloc(size);
}

void operator delete(void* pointer) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

void operator delete[](void* pointer) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

void operator delete(void* pointer, std::size_t) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

void operator delete[](void* pointer, std::size_t) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

void operator delete(void* pointer, const std::nothrow_t&) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

void operator delete[](void* pointer, const std::nothrow_t&) noexcept {
  ltd::note_free(pointer);
  std::free(pointer);
}

#endif  // LAGOVER_ALLOC_HOOK
