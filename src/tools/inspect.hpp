// Offline time-travel inspection of telemetry dumps: loads a
// "lagover.postmortem.v1" bundle (flight-recorder dump) or a raw JSONL
// stream (--events-out / --spans-out) and answers causal queries
// without re-running the simulation:
//
//   * item_path    — the exact hop chain an item took to a node,
//   * ancestry_at  — a node's path-to-root at sim time t, rebuilt from
//                    the newest snapshot at or before t plus edge-event
//                    replay,
//   * laggards     — receipts that blew their latency budget l_i,
//   * timeline     — everything that happened at one node, in order,
//   * health       — convergence timeline + final tree-quality summary
//                    from "lagover.health.v1" lines or a bundle's
//                    retained health ring,
//   * summary      — what the dump contains.
//
// The query core is a library so tests can assert on structured
// results; `lagover_inspect` (lagover_inspect.cpp) is the CLI skin.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "core/types.hpp"

namespace lagover::tools {

/// One "lagover.spans.v1" line, decoded.
struct SpanRow {
  std::uint64_t item = 0;
  std::string kind;  ///< "publish", "source_poll", "relay", ...
  NodeId node = 0;
  NodeId parent = kNoNode;
  std::uint32_t hop = 0;
  std::uint32_t feed = 0;
  double published_at = 0.0;
  double start = 0.0;
  double ts = 0.0;
  double deadline = -1.0;
  std::int64_t epoch = 0;
  std::string cause;

  /// Receipt spans measure delivery latency (mirrors span.cpp).
  bool is_receipt() const noexcept {
    return kind == "source_poll" || kind == "deliver" || kind == "repair";
  }
};

/// One event line, decoded (overlay edge events and protocol trace).
struct EventRow {
  double ts = 0.0;
  std::string type;
  std::string cause;
  NodeId node = 0;
  NodeId partner = 0;
  std::int64_t epoch = 0;
  bool attached = false;
};

/// A loaded dump: either a post-mortem bundle or a raw JSONL stream.
struct Bundle {
  std::string schema;  ///< "lagover.postmortem.v1" or "" (plain JSONL)
  std::string reason;
  std::uint64_t seed = 0;
  std::string flags;
  std::string fault_plan;
  std::vector<EventRow> events;
  std::vector<SpanRow> spans;
  std::size_t log_lines = 0;
  /// (sim time, snapshot text) pairs, in capture order.
  std::vector<std::pair<double, std::string>> snapshots;
  Json violations = Json::array();
  Json metrics;  ///< null when the dump carries no metrics block
  /// "lagover.health.v1" lines in stream order (kinds "run", "sample",
  /// "run_end"), from a --health-out stream or a bundle's health ring.
  std::vector<Json> health;

  bool is_postmortem() const noexcept { return !schema.empty(); }
};

/// Decodes a parsed post-mortem document or a single JSONL line into
/// `bundle`. Exposed for tests; load_bundle() is the file entry point.
void ingest_document(const Json& document, Bundle& bundle);
void ingest_line(const Json& line, Bundle& bundle);

/// Loads a bundle or JSONL dump, autodetecting the format (a single
/// JSON document with schema "lagover.postmortem.v1" vs. one JSON
/// object per line). False on I/O or parse failure.
bool load_bundle(const std::string& path, Bundle& bundle,
                 std::string* error = nullptr);

/// The hop chain `item` took from the source to `node`: publish first
/// (when present), then one receipt per hop. `complete` means the walk
/// reached a depth-1 receipt from the source without a gap or cycle.
struct PathResult {
  bool complete = false;
  std::vector<SpanRow> hops;
  std::string note;  ///< why the chain is incomplete, when it is
};
PathResult item_path(const Bundle& bundle, std::uint64_t item, NodeId node);

/// `node`'s path to its chain root at sim time `t`, rebuilt from the
/// newest snapshot taken at or before `t` (or an empty forest when the
/// dump predates snapshots) plus replay of the edge events in (snapshot
/// time, t].
struct AncestryResult {
  bool ok = false;
  double snapshot_t = -1.0;  ///< -1 = replayed from the empty forest
  bool online = true;
  /// node, its parent, ... up to the chain root (the source when
  /// connected). Contains just `node` while parentless.
  std::vector<NodeId> chain;
  std::string note;
};
AncestryResult ancestry_at(const Bundle& bundle, NodeId node, double t);

/// A receipt that missed its deadline: latency > l_i + float slack.
struct Laggard {
  NodeId node = 0;
  std::uint64_t item = 0;
  std::string kind;
  double latency = 0.0;
  double deadline = 0.0;
  double miss = 0.0;  ///< latency - deadline
  /// Cause of the first drop span recorded for this (item, node) pair —
  /// the reason the timely copy never arrived ("shed", "queue_full",
  /// "push_loss", ...); empty when the lateness had no recorded drop.
  std::string drop_cause;
};

/// Deadline misses, worst first. `item` == 0 scans every item.
std::vector<Laggard> laggards(const Bundle& bundle, std::uint64_t item = 0);

/// Drop spans broken down by cause, sorted by cause name. Overload runs
/// distinguish deadline-aware "shed" (deferred, recovered later) from
/// "queue_full" (permanently dropped) and plain link loss.
std::vector<std::pair<std::string, std::size_t>> drop_causes(
    const Bundle& bundle);

/// Total deadline-missing receipts — defined to agree with the
/// "feed.deadline_misses" counter of the same run.
std::size_t deadline_misses(const Bundle& bundle);

/// Human-readable per-node merged timeline (events + spans by ts).
std::string timeline(const Bundle& bundle, NodeId node);

/// Human-readable overlay-health view: per-run convergence timeline
/// (sampled unsatisfied/orphan/depth/slack trajectory, long runs
/// thinned to fit) plus each run's convergence round and final
/// tree-quality sample.
std::string health_report(const Bundle& bundle);

/// Human-readable dump overview.
std::string summary(const Bundle& bundle);

/// Runs every query against a synthetic in-memory bundle and verifies
/// the expected answers; on failure, `error` names the broken query.
bool self_check(std::string* error = nullptr);

}  // namespace lagover::tools
