// lagover_inspect — offline time-travel queries over telemetry dumps.
//
// Usage:
//   lagover_inspect <dump> path <item> <node>
//   lagover_inspect <dump> ancestry <node> --at <t>
//   lagover_inspect <dump> laggards [item]
//   lagover_inspect <dump> timeline <node>
//   lagover_inspect <dump> health
//   lagover_inspect <dump> summary
//   lagover_inspect --self-check
//
// <dump> is a "lagover.postmortem.v1" bundle (flight-recorder dump) or
// a JSONL stream from --events-out / --spans-out; the format is
// autodetected.
#include <cstdint>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "tools/inspect.hpp"

namespace {

using lagover::Flags;
using lagover::NodeId;
using namespace lagover::tools;

int usage() {
  std::cerr
      << "usage: lagover_inspect <dump> <query> [args]\n"
         "       lagover_inspect --self-check\n"
         "queries:\n"
         "  path <item> <node>      hop chain the item took to the node\n"
         "  ancestry <node> --at t  the node's path-to-root at sim time t\n"
         "  laggards [item]         receipts that missed their deadline\n"
         "  timeline <node>         everything at one node, in order\n"
         "  health                  convergence timeline + tree quality\n"
         "  summary                 what the dump contains\n";
  return 2;
}

void print_span(const SpanRow& span) {
  std::cout << "  t=" << span.ts << "  " << span.kind << " node="
            << span.node;
  if (span.parent != lagover::kNoNode) std::cout << " from=" << span.parent;
  std::cout << " hop=" << span.hop;
  if (span.is_receipt())
    std::cout << " latency=" << span.ts - span.published_at;
  if (span.deadline >= 0.0) std::cout << " deadline=" << span.deadline;
  if (!span.cause.empty()) std::cout << " (" << span.cause << ")";
  std::cout << '\n';
}

int run_path(const Bundle& bundle, std::uint64_t item, NodeId node) {
  const PathResult result = item_path(bundle, item, node);
  std::cout << "path of item " << item << " to node " << node << ": "
            << (result.complete ? "complete" : "INCOMPLETE") << " ("
            << result.hops.size() << " hop(s))\n";
  for (const SpanRow& span : result.hops) print_span(span);
  if (!result.note.empty()) std::cout << "  note: " << result.note << '\n';
  return result.complete ? 0 : 1;
}

int run_ancestry(const Bundle& bundle, NodeId node, double t) {
  const AncestryResult result = ancestry_at(bundle, node, t);
  if (!result.ok) {
    std::cout << "ancestry of node " << node << " at t=" << t
              << ": FAILED (" << result.note << ")\n";
    return 1;
  }
  std::cout << "ancestry of node " << node << " at t=" << t << " ("
            << (result.snapshot_t >= 0.0
                    ? "snapshot t=" + std::to_string(result.snapshot_t) +
                          " + replay"
                    : "replayed from the initial forest")
            << "):\n  ";
  for (std::size_t i = 0; i < result.chain.size(); ++i) {
    if (i > 0) std::cout << " -> ";
    std::cout << result.chain[i];
  }
  if (result.chain.back() == lagover::kSourceId)
    std::cout << "  [connected]";
  else if (!result.online)
    std::cout << "  [offline]";
  else
    std::cout << "  [detached]";
  std::cout << '\n';
  return 0;
}

int run_laggards(const Bundle& bundle, std::uint64_t item) {
  const std::vector<Laggard> late = laggards(bundle, item);
  if (item != 0)
    std::cout << "laggards of item " << item;
  else
    std::cout << "laggards across all items";
  std::cout << ": " << late.size() << " deadline miss(es)\n";
  for (const Laggard& laggard : late) {
    std::cout << "  node=" << laggard.node << " item=" << laggard.item
              << " via=" << laggard.kind << " latency=" << laggard.latency
              << " deadline=" << laggard.deadline
              << " miss=" << laggard.miss;
    if (!laggard.drop_cause.empty())
      std::cout << " dropped=" << laggard.drop_cause;
    std::cout << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("self-check", false)) {
    std::string error;
    if (self_check(&error)) {
      std::cout << "lagover_inspect self-check: ok\n";
      return 0;
    }
    std::cerr << "lagover_inspect self-check FAILED: " << error << '\n';
    return 1;
  }

  const auto& positional = flags.positional();
  if (positional.size() < 2) return usage();

  Bundle bundle;
  std::string error;
  if (!load_bundle(positional[0], bundle, &error)) {
    std::cerr << "lagover_inspect: " << error << '\n';
    return 1;
  }

  const std::string& query = positional[1];
  if (query == "path" && positional.size() == 4)
    return run_path(bundle,
                    static_cast<std::uint64_t>(std::stoull(positional[2])),
                    static_cast<NodeId>(std::stoul(positional[3])));
  if (query == "ancestry" && positional.size() == 3 && flags.has("at"))
    return run_ancestry(bundle,
                        static_cast<NodeId>(std::stoul(positional[2])),
                        flags.get_double("at", 0.0));
  if (query == "laggards" && positional.size() <= 3)
    return run_laggards(bundle, positional.size() == 3
                                    ? std::stoull(positional[2])
                                    : 0);
  if (query == "timeline" && positional.size() == 3) {
    std::cout << timeline(bundle,
                          static_cast<NodeId>(std::stoul(positional[2])));
    return 0;
  }
  if (query == "health") {
    std::cout << health_report(bundle);
    return bundle.health.empty() ? 1 : 0;
  }
  if (query == "summary") {
    std::cout << summary(bundle);
    return 0;
  }
  return usage();
}
