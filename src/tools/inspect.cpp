#include "tools/inspect.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "core/snapshot.hpp"

namespace lagover::tools {

namespace {

constexpr double kSlack = 1e-9;  ///< same float slack as the feed layer

double number_or(const Json& object, const char* key, double fallback) {
  const Json* value = object.find(key);
  return value == nullptr ? fallback : value->as_number();
}

std::int64_t int_or(const Json& object, const char* key,
                    std::int64_t fallback) {
  const Json* value = object.find(key);
  return value == nullptr ? fallback : value->as_int();
}

std::string string_or(const Json& object, const char* key) {
  const Json* value = object.find(key);
  return value == nullptr ? std::string() : value->as_string();
}

SpanRow decode_span(const Json& line) {
  SpanRow row;
  row.item = static_cast<std::uint64_t>(int_or(line, "item", 0));
  row.kind = string_or(line, "span");
  row.node = static_cast<NodeId>(int_or(line, "node", 0));
  row.parent = static_cast<NodeId>(
      int_or(line, "parent", static_cast<std::int64_t>(kNoNode)));
  row.hop = static_cast<std::uint32_t>(int_or(line, "hop", 0));
  row.feed = static_cast<std::uint32_t>(int_or(line, "feed", 0));
  row.published_at = number_or(line, "published_at", 0.0);
  row.start = number_or(line, "start", 0.0);
  row.ts = number_or(line, "ts", 0.0);
  row.deadline = number_or(line, "deadline", -1.0);
  row.epoch = int_or(line, "epoch", 0);
  row.cause = string_or(line, "cause");
  return row;
}

EventRow decode_event(const Json& line) {
  EventRow row;
  row.ts = number_or(line, "ts", 0.0);
  row.type = string_or(line, "type");
  row.cause = string_or(line, "cause");
  row.node = static_cast<NodeId>(int_or(line, "node", 0));
  row.partner = static_cast<NodeId>(int_or(line, "partner", 0));
  row.epoch = int_or(line, "epoch", 0);
  const Json* attached = line.find("attached");
  row.attached = attached != nullptr && attached->as_bool();
  return row;
}

}  // namespace

void ingest_line(const Json& line, Bundle& bundle) {
  const std::string kind = string_or(line, "kind");
  if (kind == "span")
    bundle.spans.push_back(decode_span(line));
  else if (kind == "event")
    bundle.events.push_back(decode_event(line));
  else if (kind == "log")
    ++bundle.log_lines;
}

void ingest_document(const Json& document, Bundle& bundle) {
  bundle.schema = string_or(document, "schema");
  bundle.reason = string_or(document, "reason");
  if (const Json* repro = document.find("repro"); repro != nullptr) {
    bundle.seed = static_cast<std::uint64_t>(int_or(*repro, "seed", 0));
    bundle.flags = string_or(*repro, "flags");
  }
  bundle.fault_plan = string_or(document, "fault_plan");
  if (const Json* events = document.find("events"); events != nullptr)
    for (const Json& line : events->elements())
      bundle.events.push_back(decode_event(line));
  if (const Json* spans = document.find("spans"); spans != nullptr)
    for (const Json& line : spans->elements())
      bundle.spans.push_back(decode_span(line));
  if (const Json* logs = document.find("logs"); logs != nullptr)
    bundle.log_lines = logs->size();
  if (const Json* snapshots = document.find("snapshots");
      snapshots != nullptr)
    for (const Json& entry : snapshots->elements())
      bundle.snapshots.emplace_back(number_or(entry, "t", 0.0),
                                    string_or(entry, "snapshot"));
  if (const Json* violations = document.find("violations");
      violations != nullptr)
    bundle.violations = *violations;
  if (const Json* metrics = document.find("metrics"); metrics != nullptr)
    bundle.metrics = *metrics;
}

bool load_bundle(const std::string& path, Bundle& bundle,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Json parsed;
    std::string parse_error;
    if (!Json::parse(line, parsed, &parse_error)) {
      if (error != nullptr)
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    if (first) {
      first = false;
      // A flight-recorder dump is one whole-document line; everything
      // else is a JSONL stream of kind-tagged lines.
      if (string_or(parsed, "schema") == "lagover.postmortem.v1") {
        ingest_document(parsed, bundle);
        return true;
      }
    }
    ingest_line(parsed, bundle);
  }
  if (first) {
    if (error != nullptr) *error = path + ": empty dump";
    return false;
  }
  return true;
}

PathResult item_path(const Bundle& bundle, std::uint64_t item, NodeId node) {
  PathResult result;
  // First receipt per node is the applied copy (later copies are
  // suppressed as duplicates); the publish span ends the chain.
  std::map<NodeId, const SpanRow*> receipt_at;
  const SpanRow* publish = nullptr;
  for (const SpanRow& span : bundle.spans) {
    if (span.item != item) continue;
    if (span.kind == "publish" && publish == nullptr) publish = &span;
    if (span.is_receipt() && receipt_at.find(span.node) == receipt_at.end())
      receipt_at[span.node] = &span;
  }
  std::vector<SpanRow> reversed;
  NodeId cursor = node;
  std::size_t steps = 0;
  while (true) {
    const auto it = receipt_at.find(cursor);
    if (it == receipt_at.end()) {
      result.note = "no receipt of item " + std::to_string(item) +
                    " at node " + std::to_string(cursor);
      break;
    }
    reversed.push_back(*it->second);
    if (it->second->parent == kSourceId) {
      result.complete = true;
      break;
    }
    if (it->second->parent == kNoNode) {
      result.note = "receipt at node " + std::to_string(cursor) +
                    " has no parent hop";
      break;
    }
    cursor = it->second->parent;
    if (++steps > receipt_at.size()) {
      result.note = "parent chain does not terminate (cycle in spans)";
      break;
    }
  }
  if (publish != nullptr && (result.complete || !reversed.empty()))
    reversed.push_back(*publish);
  std::reverse(reversed.begin(), reversed.end());
  result.hops = std::move(reversed);
  return result;
}

AncestryResult ancestry_at(const Bundle& bundle, NodeId node, double t) {
  AncestryResult result;

  // Newest snapshot at or before t. Events stamped exactly at the
  // snapshot time are treated as already included in it.
  const std::pair<double, std::string>* base = nullptr;
  for (const auto& snapshot : bundle.snapshots)
    if (snapshot.first <= t) base = &snapshot;

  std::size_t node_count = 0;
  std::vector<NodeId> parent;
  std::vector<char> online;
  double replay_from = -1.0;
  if (base != nullptr) {
    Overlay overlay = from_snapshot(base->second);
    node_count = overlay.node_count();
    parent.resize(node_count, kNoNode);
    online.resize(node_count, 1);
    for (NodeId id = 0; id < node_count; ++id) {
      parent[id] = overlay.parent(id);
      online[id] = overlay.online(id) ? 1 : 0;
    }
    replay_from = base->first;
    result.snapshot_t = base->first;
  } else {
    // No snapshot: replay the edge events from the initial forest
    // (everyone online and parentless — how every engine run starts).
    for (const EventRow& event : bundle.events) {
      if (event.node != kNoNode)
        node_count = std::max<std::size_t>(node_count, event.node + 1);
      if (event.partner != kNoNode)
        node_count = std::max<std::size_t>(node_count, event.partner + 1);
    }
    for (const SpanRow& span : bundle.spans)
      node_count = std::max<std::size_t>(node_count, span.node + 1);
    parent.resize(node_count, kNoNode);
    online.resize(node_count, 1);
  }
  if (node >= node_count) {
    result.note = "node " + std::to_string(node) + " unknown to this dump";
    return result;
  }

  for (const EventRow& event : bundle.events) {
    if (event.ts <= replay_from || event.ts > t) continue;
    if (event.node >= node_count) continue;
    if (event.type == "edge_attach")
      parent[event.node] = event.partner;
    else if (event.type == "edge_detach")
      parent[event.node] = kNoNode;
    else if (event.type == "node_offline")
      online[event.node] = 0;
    else if (event.type == "node_online")
      online[event.node] = 1;
  }

  result.online = online[node] != 0;
  NodeId cursor = node;
  std::size_t steps = 0;
  result.chain.push_back(cursor);
  while (parent[cursor] != kNoNode) {
    cursor = parent[cursor];
    result.chain.push_back(cursor);
    if (cursor >= node_count || ++steps > node_count) {
      result.note = "parent chain does not terminate (corrupt replay)";
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::vector<Laggard> laggards(const Bundle& bundle, std::uint64_t item) {
  // First drop per (item, node): the recorded reason the timely copy
  // never made it, so a late repair can say *why* it was needed.
  std::map<std::pair<std::uint64_t, NodeId>, const std::string*> first_drop;
  for (const SpanRow& span : bundle.spans)
    if (span.kind == "drop" && !span.cause.empty())
      first_drop.emplace(std::make_pair(span.item, span.node), &span.cause);
  std::vector<Laggard> result;
  for (const SpanRow& span : bundle.spans) {
    if (item != 0 && span.item != item) continue;
    if (!span.is_receipt() || span.deadline < 0.0) continue;
    const double latency = span.ts - span.published_at;
    if (latency <= span.deadline + kSlack) continue;
    Laggard laggard;
    laggard.node = span.node;
    laggard.item = span.item;
    laggard.kind = span.kind;
    laggard.latency = latency;
    laggard.deadline = span.deadline;
    laggard.miss = latency - span.deadline;
    const auto dropped =
        first_drop.find(std::make_pair(span.item, span.node));
    if (dropped != first_drop.end()) laggard.drop_cause = *dropped->second;
    result.push_back(laggard);
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Laggard& a, const Laggard& b) {
                     return a.miss > b.miss;
                   });
  return result;
}

std::vector<std::pair<std::string, std::size_t>> drop_causes(
    const Bundle& bundle) {
  std::map<std::string, std::size_t> counts;
  for (const SpanRow& span : bundle.spans)
    if (span.kind == "drop")
      ++counts[span.cause.empty() ? "unknown" : span.cause];
  return {counts.begin(), counts.end()};
}

std::size_t deadline_misses(const Bundle& bundle) {
  return laggards(bundle, 0).size();
}

std::string timeline(const Bundle& bundle, NodeId node) {
  struct Entry {
    double ts;
    std::string text;
  };
  std::vector<Entry> entries;
  std::ostringstream line;
  for (const EventRow& event : bundle.events) {
    if (event.node != node && event.partner != node) continue;
    line.str("");
    line << "event " << event.type;
    if (!event.cause.empty()) line << " (" << event.cause << ")";
    line << " node=" << event.node << " partner=" << event.partner;
    if (event.epoch != 0) line << " epoch=" << event.epoch;
    entries.push_back({event.ts, line.str()});
  }
  for (const SpanRow& span : bundle.spans) {
    if (span.node != node) continue;
    line.str("");
    line << "span " << span.kind << " item=" << span.item;
    if (span.parent != kNoNode) line << " from=" << span.parent;
    line << " hop=" << span.hop;
    if (span.is_receipt())
      line << " latency=" << span.ts - span.published_at;
    if (span.deadline >= 0.0) line << " deadline=" << span.deadline;
    if (!span.cause.empty()) line << " (" << span.cause << ")";
    entries.push_back({span.ts, line.str()});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
  std::ostringstream out;
  out << "timeline of node " << node << " (" << entries.size()
      << " entries)\n";
  for (const Entry& entry : entries)
    out << "  t=" << entry.ts << "  " << entry.text << '\n';
  return out.str();
}

std::string summary(const Bundle& bundle) {
  std::ostringstream out;
  if (bundle.is_postmortem()) {
    out << "post-mortem bundle (" << bundle.schema << ")\n";
    out << "  reason:     " << bundle.reason << '\n';
    out << "  repro:      --seed " << bundle.seed
        << (bundle.flags.empty() ? "" : " | flags: " + bundle.flags) << '\n';
    if (!bundle.fault_plan.empty())
      out << "  fault plan: " << bundle.fault_plan << '\n';
    out << "  violations: " << bundle.violations.size() << '\n';
  } else {
    out << "JSONL telemetry dump\n";
  }
  std::map<std::string, std::size_t> span_kinds;
  std::map<std::uint64_t, std::size_t> items;
  for (const SpanRow& span : bundle.spans) {
    ++span_kinds[span.kind];
    ++items[span.item];
  }
  out << "  events:     " << bundle.events.size() << '\n';
  out << "  spans:      " << bundle.spans.size() << " across "
      << items.size() << " item(s)\n";
  for (const auto& [kind, count] : span_kinds) {
    out << "    " << kind << ": " << count;
    if (kind == "drop") {
      // Per-cause breakdown so overload runs show shed vs queue_full
      // vs link loss at a glance.
      out << " (";
      bool comma = false;
      for (const auto& [cause, cause_count] : drop_causes(bundle)) {
        if (comma) out << ", ";
        comma = true;
        out << cause << ": " << cause_count;
      }
      out << ")";
    }
    out << '\n';
  }
  out << "  log lines:  " << bundle.log_lines << '\n';
  out << "  snapshots:  " << bundle.snapshots.size() << '\n';
  out << "  deadline misses: " << deadline_misses(bundle) << '\n';
  return out.str();
}

bool self_check(std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  // A three-node run, hand-written in the postmortem schema: the source
  // publishes item 1 at t=1; node 1 (l=2) polls it at t=2; node 2's
  // timely copy is shed by its overloaded parent at t=2.5 (drop span,
  // cause "shed"); node 2 (l=1) then receives the push at t=3 — one hop
  // too late, so it must show up as the only laggard, attributed to the
  // shed. The snapshot and the edge events disagree about node 2's
  // parent *after* t=5 (it re-attaches under the source), so
  // ancestry_at must give different answers at t=4 and t=6.
  const std::string document =
      "{\"schema\":\"lagover.postmortem.v1\",\"reason\":\"explicit\","
      "\"repro\":{\"seed\":7,\"flags\":\"--peers 2\"},"
      "\"events\":["
      "{\"kind\":\"event\",\"ts\":6.0,\"type\":\"edge_detach\","
      "\"node\":2,\"partner\":1,\"attached\":false},"
      "{\"kind\":\"event\",\"ts\":6.0,\"type\":\"edge_attach\","
      "\"node\":2,\"partner\":0,\"attached\":true}],"
      "\"spans\":["
      "{\"kind\":\"span\",\"item\":1,\"span\":\"publish\",\"node\":0,"
      "\"hop\":0,\"published_at\":1.0,\"start\":1.0,\"ts\":1.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"source_poll\",\"node\":1,"
      "\"parent\":0,\"hop\":1,\"published_at\":1.0,\"start\":1.0,"
      "\"ts\":2.0,\"deadline\":2.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"relay\",\"node\":1,"
      "\"parent\":0,\"hop\":1,\"published_at\":1.0,\"start\":2.0,"
      "\"ts\":2.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"drop\",\"node\":2,"
      "\"parent\":1,\"hop\":2,\"published_at\":1.0,\"start\":2.5,"
      "\"ts\":2.5,\"cause\":\"shed\"},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"deliver\",\"node\":2,"
      "\"parent\":1,\"hop\":2,\"published_at\":1.0,\"start\":2.0,"
      "\"ts\":3.0,\"deadline\":1.0}],"
      "\"snapshots\":[{\"t\":0.5,\"snapshot\":"
      "\"lagover-snapshot v1\\nsource 2\\nnode 1 2 2 1 0\\n"
      "node 2 1 1 1 1\\n\"}],"
      "\"violations\":[]}";

  Json parsed;
  std::string parse_error;
  if (!Json::parse(document, parsed, &parse_error))
    return fail("self-check document does not parse: " + parse_error);
  Bundle bundle;
  ingest_document(parsed, bundle);
  if (!bundle.is_postmortem() || bundle.seed != 7)
    return fail("bundle metadata decoded wrong");
  if (bundle.spans.size() != 5 || bundle.events.size() != 2)
    return fail("bundle streams decoded wrong");

  const PathResult path = item_path(bundle, 1, 2);
  if (!path.complete || path.hops.size() != 3)
    return fail("item_path: expected complete publish->poll->deliver chain");
  if (path.hops.front().kind != "publish" || path.hops.back().node != 2)
    return fail("item_path: wrong hop order");

  const AncestryResult before = ancestry_at(bundle, 2, 4.0);
  if (!before.ok || before.chain != std::vector<NodeId>{2, 1, 0})
    return fail("ancestry_at(t=4): expected chain 2 -> 1 -> 0");
  const AncestryResult after = ancestry_at(bundle, 2, 6.5);
  if (!after.ok || after.chain != std::vector<NodeId>{2, 0})
    return fail("ancestry_at(t=6.5): expected replayed chain 2 -> 0");

  const std::vector<Laggard> late = laggards(bundle);
  if (late.size() != 1 || late.front().node != 2 ||
      late.front().miss < 1.0 - kSlack || late.front().miss > 1.0 + kSlack)
    return fail("laggards: expected exactly node 2, one unit late");
  if (late.front().drop_cause != "shed")
    return fail("laggards: miss not attributed to the shed drop");
  if (deadline_misses(bundle) != 1)
    return fail("deadline_misses: expected 1");

  const auto causes = drop_causes(bundle);
  if (causes.size() != 1 || causes.front().first != "shed" ||
      causes.front().second != 1)
    return fail("drop_causes: expected exactly {shed: 1}");

  if (timeline(bundle, 1).find("source_poll") == std::string::npos)
    return fail("timeline: node 1 poll receipt missing");
  const std::string overview = summary(bundle);
  if (overview.find("deadline misses: 1") == std::string::npos)
    return fail("summary: miss count missing");
  if (overview.find("drop: 1 (shed: 1)") == std::string::npos)
    return fail("summary: drop-cause breakdown missing");
  return true;
}

}  // namespace lagover::tools
