#include "tools/inspect.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/snapshot.hpp"

namespace lagover::tools {

namespace {

constexpr double kSlack = 1e-9;  ///< same float slack as the feed layer

double number_or(const Json& object, const char* key, double fallback) {
  const Json* value = object.find(key);
  return value == nullptr ? fallback : value->as_number();
}

std::int64_t int_or(const Json& object, const char* key,
                    std::int64_t fallback) {
  const Json* value = object.find(key);
  return value == nullptr ? fallback : value->as_int();
}

std::string string_or(const Json& object, const char* key) {
  const Json* value = object.find(key);
  return value == nullptr ? std::string() : value->as_string();
}

SpanRow decode_span(const Json& line) {
  SpanRow row;
  row.item = static_cast<std::uint64_t>(int_or(line, "item", 0));
  row.kind = string_or(line, "span");
  row.node = static_cast<NodeId>(int_or(line, "node", 0));
  row.parent = static_cast<NodeId>(
      int_or(line, "parent", static_cast<std::int64_t>(kNoNode)));
  row.hop = static_cast<std::uint32_t>(int_or(line, "hop", 0));
  row.feed = static_cast<std::uint32_t>(int_or(line, "feed", 0));
  row.published_at = number_or(line, "published_at", 0.0);
  row.start = number_or(line, "start", 0.0);
  row.ts = number_or(line, "ts", 0.0);
  row.deadline = number_or(line, "deadline", -1.0);
  row.epoch = int_or(line, "epoch", 0);
  row.cause = string_or(line, "cause");
  return row;
}

EventRow decode_event(const Json& line) {
  EventRow row;
  row.ts = number_or(line, "ts", 0.0);
  row.type = string_or(line, "type");
  row.cause = string_or(line, "cause");
  row.node = static_cast<NodeId>(int_or(line, "node", 0));
  row.partner = static_cast<NodeId>(int_or(line, "partner", 0));
  row.epoch = int_or(line, "epoch", 0);
  const Json* attached = line.find("attached");
  row.attached = attached != nullptr && attached->as_bool();
  return row;
}

}  // namespace

void ingest_line(const Json& line, Bundle& bundle) {
  const std::string kind = string_or(line, "kind");
  if (kind == "span")
    bundle.spans.push_back(decode_span(line));
  else if (kind == "event")
    bundle.events.push_back(decode_event(line));
  else if (kind == "log")
    ++bundle.log_lines;
  else if (kind == "run" || kind == "sample" || kind == "run_end")
    bundle.health.push_back(line);  // "lagover.health.v1" stream lines
}

void ingest_document(const Json& document, Bundle& bundle) {
  bundle.schema = string_or(document, "schema");
  bundle.reason = string_or(document, "reason");
  if (const Json* repro = document.find("repro"); repro != nullptr) {
    bundle.seed = static_cast<std::uint64_t>(int_or(*repro, "seed", 0));
    bundle.flags = string_or(*repro, "flags");
  }
  bundle.fault_plan = string_or(document, "fault_plan");
  if (const Json* events = document.find("events"); events != nullptr)
    for (const Json& line : events->elements())
      bundle.events.push_back(decode_event(line));
  if (const Json* spans = document.find("spans"); spans != nullptr)
    for (const Json& line : spans->elements())
      bundle.spans.push_back(decode_span(line));
  if (const Json* logs = document.find("logs"); logs != nullptr)
    bundle.log_lines = logs->size();
  if (const Json* snapshots = document.find("snapshots");
      snapshots != nullptr)
    for (const Json& entry : snapshots->elements())
      bundle.snapshots.emplace_back(number_or(entry, "t", 0.0),
                                    string_or(entry, "snapshot"));
  if (const Json* violations = document.find("violations");
      violations != nullptr)
    bundle.violations = *violations;
  if (const Json* metrics = document.find("metrics"); metrics != nullptr)
    bundle.metrics = *metrics;
  if (const Json* health = document.find("health"); health != nullptr)
    for (const Json& line : health->elements()) bundle.health.push_back(line);
}

bool load_bundle(const std::string& path, Bundle& bundle,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Json parsed;
    std::string parse_error;
    if (!Json::parse(line, parsed, &parse_error)) {
      if (error != nullptr)
        *error = path + ":" + std::to_string(line_no) + ": " + parse_error;
      return false;
    }
    if (first) {
      first = false;
      // A flight-recorder dump is one whole-document line; everything
      // else is a JSONL stream of kind-tagged lines.
      if (string_or(parsed, "schema") == "lagover.postmortem.v1") {
        ingest_document(parsed, bundle);
        return true;
      }
    }
    ingest_line(parsed, bundle);
  }
  if (first) {
    if (error != nullptr) *error = path + ": empty dump";
    return false;
  }
  return true;
}

PathResult item_path(const Bundle& bundle, std::uint64_t item, NodeId node) {
  PathResult result;
  // First receipt per node is the applied copy (later copies are
  // suppressed as duplicates); the publish span ends the chain.
  std::map<NodeId, const SpanRow*> receipt_at;
  const SpanRow* publish = nullptr;
  for (const SpanRow& span : bundle.spans) {
    if (span.item != item) continue;
    if (span.kind == "publish" && publish == nullptr) publish = &span;
    if (span.is_receipt() && receipt_at.find(span.node) == receipt_at.end())
      receipt_at[span.node] = &span;
  }
  std::vector<SpanRow> reversed;
  NodeId cursor = node;
  std::size_t steps = 0;
  while (true) {
    const auto it = receipt_at.find(cursor);
    if (it == receipt_at.end()) {
      result.note = "no receipt of item " + std::to_string(item) +
                    " at node " + std::to_string(cursor);
      break;
    }
    reversed.push_back(*it->second);
    if (it->second->parent == kSourceId) {
      result.complete = true;
      break;
    }
    if (it->second->parent == kNoNode) {
      result.note = "receipt at node " + std::to_string(cursor) +
                    " has no parent hop";
      break;
    }
    cursor = it->second->parent;
    if (++steps > receipt_at.size()) {
      result.note = "parent chain does not terminate (cycle in spans)";
      break;
    }
  }
  if (publish != nullptr && (result.complete || !reversed.empty()))
    reversed.push_back(*publish);
  std::reverse(reversed.begin(), reversed.end());
  result.hops = std::move(reversed);
  return result;
}

AncestryResult ancestry_at(const Bundle& bundle, NodeId node, double t) {
  AncestryResult result;

  // Newest snapshot at or before t. Events stamped exactly at the
  // snapshot time are treated as already included in it.
  const std::pair<double, std::string>* base = nullptr;
  for (const auto& snapshot : bundle.snapshots)
    if (snapshot.first <= t) base = &snapshot;

  std::size_t node_count = 0;
  std::vector<NodeId> parent;
  std::vector<char> online;
  double replay_from = -1.0;
  if (base != nullptr) {
    Overlay overlay = from_snapshot(base->second);
    node_count = overlay.node_count();
    parent.resize(node_count, kNoNode);
    online.resize(node_count, 1);
    for (NodeId id = 0; id < node_count; ++id) {
      parent[id] = overlay.parent(id);
      online[id] = overlay.online(id) ? 1 : 0;
    }
    replay_from = base->first;
    result.snapshot_t = base->first;
  } else {
    // No snapshot: replay the edge events from the initial forest
    // (everyone online and parentless — how every engine run starts).
    for (const EventRow& event : bundle.events) {
      if (event.node != kNoNode)
        node_count = std::max<std::size_t>(node_count, event.node + 1);
      if (event.partner != kNoNode)
        node_count = std::max<std::size_t>(node_count, event.partner + 1);
    }
    for (const SpanRow& span : bundle.spans)
      node_count = std::max<std::size_t>(node_count, span.node + 1);
    parent.resize(node_count, kNoNode);
    online.resize(node_count, 1);
  }
  if (node >= node_count) {
    result.note = "node " + std::to_string(node) + " unknown to this dump";
    return result;
  }

  for (const EventRow& event : bundle.events) {
    if (event.ts <= replay_from || event.ts > t) continue;
    if (event.node >= node_count) continue;
    if (event.type == "edge_attach")
      parent[event.node] = event.partner;
    else if (event.type == "edge_detach")
      parent[event.node] = kNoNode;
    else if (event.type == "node_offline")
      online[event.node] = 0;
    else if (event.type == "node_online")
      online[event.node] = 1;
  }

  result.online = online[node] != 0;
  NodeId cursor = node;
  std::size_t steps = 0;
  result.chain.push_back(cursor);
  while (parent[cursor] != kNoNode) {
    cursor = parent[cursor];
    result.chain.push_back(cursor);
    if (cursor >= node_count || ++steps > node_count) {
      result.note = "parent chain does not terminate (corrupt replay)";
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::vector<Laggard> laggards(const Bundle& bundle, std::uint64_t item) {
  // First drop per (item, node): the recorded reason the timely copy
  // never made it, so a late repair can say *why* it was needed.
  std::map<std::pair<std::uint64_t, NodeId>, const std::string*> first_drop;
  for (const SpanRow& span : bundle.spans)
    if (span.kind == "drop" && !span.cause.empty())
      first_drop.emplace(std::make_pair(span.item, span.node), &span.cause);
  std::vector<Laggard> result;
  for (const SpanRow& span : bundle.spans) {
    if (item != 0 && span.item != item) continue;
    if (!span.is_receipt() || span.deadline < 0.0) continue;
    const double latency = span.ts - span.published_at;
    if (latency <= span.deadline + kSlack) continue;
    Laggard laggard;
    laggard.node = span.node;
    laggard.item = span.item;
    laggard.kind = span.kind;
    laggard.latency = latency;
    laggard.deadline = span.deadline;
    laggard.miss = latency - span.deadline;
    const auto dropped =
        first_drop.find(std::make_pair(span.item, span.node));
    if (dropped != first_drop.end()) laggard.drop_cause = *dropped->second;
    result.push_back(laggard);
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const Laggard& a, const Laggard& b) {
                     return a.miss > b.miss;
                   });
  return result;
}

std::vector<std::pair<std::string, std::size_t>> drop_causes(
    const Bundle& bundle) {
  std::map<std::string, std::size_t> counts;
  for (const SpanRow& span : bundle.spans)
    if (span.kind == "drop")
      ++counts[span.cause.empty() ? "unknown" : span.cause];
  return {counts.begin(), counts.end()};
}

std::size_t deadline_misses(const Bundle& bundle) {
  return laggards(bundle, 0).size();
}

std::string timeline(const Bundle& bundle, NodeId node) {
  struct Entry {
    double ts;
    std::string text;
  };
  std::vector<Entry> entries;
  std::ostringstream line;
  for (const EventRow& event : bundle.events) {
    if (event.node != node && event.partner != node) continue;
    line.str("");
    line << "event " << event.type;
    if (!event.cause.empty()) line << " (" << event.cause << ")";
    line << " node=" << event.node << " partner=" << event.partner;
    if (event.epoch != 0) line << " epoch=" << event.epoch;
    entries.push_back({event.ts, line.str()});
  }
  for (const SpanRow& span : bundle.spans) {
    if (span.node != node) continue;
    line.str("");
    line << "span " << span.kind << " item=" << span.item;
    if (span.parent != kNoNode) line << " from=" << span.parent;
    line << " hop=" << span.hop;
    if (span.is_receipt())
      line << " latency=" << span.ts - span.published_at;
    if (span.deadline >= 0.0) line << " deadline=" << span.deadline;
    if (!span.cause.empty()) line << " (" << span.cause << ")";
    entries.push_back({span.ts, line.str()});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
  std::ostringstream out;
  out << "timeline of node " << node << " (" << entries.size()
      << " entries)\n";
  for (const Entry& entry : entries)
    out << "  t=" << entry.ts << "  " << entry.text << '\n';
  return out.str();
}

namespace {

/// bundle.health lines of one run, in stream order.
struct HealthRun {
  std::int64_t run = 0;
  std::int64_t nodes = -1;           ///< from the "run" header, -1 unknown
  const Json* end = nullptr;         ///< the "run_end" line, when present
  std::vector<const Json*> samples;  ///< the "sample" lines
};

std::int64_t nested_int(const Json& line, const char* outer,
                        const char* inner, std::int64_t fallback) {
  const Json* object = line.find(outer);
  return object == nullptr ? fallback : int_or(*object, inner, fallback);
}

double nested_number(const Json& line, const char* outer, const char* inner,
                     double fallback) {
  const Json* object = line.find(outer);
  return object == nullptr ? fallback : number_or(*object, inner, fallback);
}

/// Groups bundle.health by run id, preserving stream order. Lines with
/// no run field (foreign input) land in run 0.
std::vector<HealthRun> health_runs(const Bundle& bundle) {
  std::vector<HealthRun> runs;
  const auto run_for = [&runs](std::int64_t id) -> HealthRun& {
    for (HealthRun& run : runs)
      if (run.run == id) return run;
    runs.push_back(HealthRun{});
    runs.back().run = id;
    return runs.back();
  };
  for (const Json& line : bundle.health) {
    const std::string kind = string_or(line, "kind");
    HealthRun& run = run_for(int_or(line, "run", 0));
    if (kind == "run")
      run.nodes = int_or(line, "nodes", -1);
    else if (kind == "sample")
      run.samples.push_back(&line);
    else if (kind == "run_end")
      run.end = &line;
  }
  return runs;
}

/// The line holding a run's final sample: the run_end's embedded
/// "final", or the last streamed sample.
const Json* final_sample(const HealthRun& run) {
  if (run.end != nullptr)
    if (const Json* final = run.end->find("final"); final != nullptr)
      return final;
  return run.samples.empty() ? nullptr : run.samples.back();
}

}  // namespace

std::string health_report(const Bundle& bundle) {
  std::ostringstream out;
  if (bundle.health.empty()) {
    out << "no health data in this dump (run the bench with --health-out, "
           "or inspect a bundle recorded with --health)\n";
    return out.str();
  }
  const std::vector<HealthRun> runs = health_runs(bundle);
  out << "overlay health (lagover.health.v1): " << runs.size()
      << " run(s)\n";
  for (const HealthRun& run : runs) {
    out << "\nrun " << run.run;
    if (run.nodes >= 0) out << " (" << run.nodes << " node(s))";
    out << '\n';
    if (!run.samples.empty()) {
      // Thin long timelines: at most 40 rows, evenly strided, always
      // keeping the final sample.
      constexpr std::size_t kMaxRows = 40;
      const std::size_t stride =
          (run.samples.size() + kMaxRows - 1) / kMaxRows;
      if (stride > 1)
        out << "  (showing every " << stride << ". of "
            << run.samples.size() << " samples)\n";
      out << "  round  unsat  orphan  depth  slack  util  churn\n";
      for (std::size_t i = 0; i < run.samples.size(); ++i) {
        if (i % stride != 0 && i + 1 != run.samples.size()) continue;
        const Json& sample = *run.samples[i];
        const std::int64_t churn =
            nested_int(sample, "churn", "attaches", 0) +
            nested_int(sample, "churn", "detaches", 0) +
            nested_int(sample, "churn", "offlines", 0) +
            nested_int(sample, "churn", "onlines", 0);
        char util[16];
        std::snprintf(util, sizeof(util), "%.2f",
                      nested_number(sample, "fanout", "utilization", 0.0));
        out << "  " << int_or(sample, "round", 0) << '\t'
            << int_or(sample, "unsatisfied", 0) << '\t'
            << int_or(sample, "orphans", 0) << '\t'
            << nested_int(sample, "depth", "max", 0) << '\t'
            << nested_int(sample, "slack", "min", 0) << '\t' << util << '\t'
            << churn;
        const Json* converged = sample.find("converged");
        if (converged != nullptr && converged->as_bool()) out << "  *";
        out << '\n';
      }
      out << "  (* = all constraints held that round)\n";
    }
    if (run.end != nullptr) {
      const std::int64_t convergence_round =
          int_or(*run.end, "convergence_round", -1);
      if (convergence_round >= 0)
        out << "  converged at round " << convergence_round;
      else
        out << "  did not converge";
      out << " (" << int_or(*run.end, "rounds", 0) << " round(s), "
          << int_or(*run.end, "samples", 0) << " sample(s))\n";
    }
    if (const Json* final = final_sample(run); final != nullptr) {
      out << "  final: " << int_or(*final, "satisfied", 0) << '/'
          << int_or(*final, "online", 0) << " satisfied, "
          << int_or(*final, "orphans", 0) << " orphan(s), max depth "
          << nested_int(*final, "depth", "max", 0) << ", deepest slack "
          << nested_int(*final, "slack", "deepest", 0) << ", utilization ";
      char util[16];
      std::snprintf(util, sizeof(util), "%.2f",
                    nested_number(*final, "fanout", "utilization", 0.0));
      out << util << '\n';
    }
  }
  return out.str();
}

std::string summary(const Bundle& bundle) {
  std::ostringstream out;
  if (bundle.is_postmortem()) {
    out << "post-mortem bundle (" << bundle.schema << ")\n";
    out << "  reason:     " << bundle.reason << '\n';
    out << "  repro:      --seed " << bundle.seed
        << (bundle.flags.empty() ? "" : " | flags: " + bundle.flags) << '\n';
    if (!bundle.fault_plan.empty())
      out << "  fault plan: " << bundle.fault_plan << '\n';
    out << "  violations: " << bundle.violations.size() << '\n';
  } else {
    out << "JSONL telemetry dump\n";
  }
  std::map<std::string, std::size_t> span_kinds;
  std::map<std::uint64_t, std::size_t> items;
  for (const SpanRow& span : bundle.spans) {
    ++span_kinds[span.kind];
    ++items[span.item];
  }
  out << "  events:     " << bundle.events.size() << '\n';
  out << "  spans:      " << bundle.spans.size() << " across "
      << items.size() << " item(s)\n";
  for (const auto& [kind, count] : span_kinds) {
    out << "    " << kind << ": " << count;
    if (kind == "drop") {
      // Per-cause breakdown so overload runs show shed vs queue_full
      // vs link loss at a glance.
      out << " (";
      bool comma = false;
      for (const auto& [cause, cause_count] : drop_causes(bundle)) {
        if (comma) out << ", ";
        comma = true;
        out << cause << ": " << cause_count;
      }
      out << ")";
    }
    out << '\n';
  }
  out << "  log lines:  " << bundle.log_lines << '\n';
  out << "  snapshots:  " << bundle.snapshots.size() << '\n';
  out << "  deadline misses: " << deadline_misses(bundle) << '\n';
  if (!bundle.health.empty()) {
    const std::vector<HealthRun> runs = health_runs(bundle);
    out << "  health:     " << bundle.health.size() << " line(s), "
        << runs.size() << " run(s)\n";
    for (const HealthRun& run : runs) {
      out << "    run " << run.run << ": ";
      const std::int64_t convergence_round =
          run.end == nullptr ? -1
                             : int_or(*run.end, "convergence_round", -1);
      if (convergence_round >= 0)
        out << "converged at round " << convergence_round;
      else
        out << "did not converge";
      if (const Json* final = final_sample(run); final != nullptr)
        out << ", final orphans " << int_or(*final, "orphans", 0)
            << ", unsatisfied " << int_or(*final, "unsatisfied", 0)
            << ", deepest slack "
            << nested_int(*final, "slack", "deepest", 0);
      out << '\n';
    }
  }
  return out.str();
}

bool self_check(std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  // A three-node run, hand-written in the postmortem schema: the source
  // publishes item 1 at t=1; node 1 (l=2) polls it at t=2; node 2's
  // timely copy is shed by its overloaded parent at t=2.5 (drop span,
  // cause "shed"); node 2 (l=1) then receives the push at t=3 — one hop
  // too late, so it must show up as the only laggard, attributed to the
  // shed. The snapshot and the edge events disagree about node 2's
  // parent *after* t=5 (it re-attaches under the source), so
  // ancestry_at must give different answers at t=4 and t=6.
  const std::string document =
      "{\"schema\":\"lagover.postmortem.v1\",\"reason\":\"explicit\","
      "\"repro\":{\"seed\":7,\"flags\":\"--peers 2\"},"
      "\"events\":["
      "{\"kind\":\"event\",\"ts\":6.0,\"type\":\"edge_detach\","
      "\"node\":2,\"partner\":1,\"attached\":false},"
      "{\"kind\":\"event\",\"ts\":6.0,\"type\":\"edge_attach\","
      "\"node\":2,\"partner\":0,\"attached\":true}],"
      "\"spans\":["
      "{\"kind\":\"span\",\"item\":1,\"span\":\"publish\",\"node\":0,"
      "\"hop\":0,\"published_at\":1.0,\"start\":1.0,\"ts\":1.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"source_poll\",\"node\":1,"
      "\"parent\":0,\"hop\":1,\"published_at\":1.0,\"start\":1.0,"
      "\"ts\":2.0,\"deadline\":2.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"relay\",\"node\":1,"
      "\"parent\":0,\"hop\":1,\"published_at\":1.0,\"start\":2.0,"
      "\"ts\":2.0},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"drop\",\"node\":2,"
      "\"parent\":1,\"hop\":2,\"published_at\":1.0,\"start\":2.5,"
      "\"ts\":2.5,\"cause\":\"shed\"},"
      "{\"kind\":\"span\",\"item\":1,\"span\":\"deliver\",\"node\":2,"
      "\"parent\":1,\"hop\":2,\"published_at\":1.0,\"start\":2.0,"
      "\"ts\":3.0,\"deadline\":1.0}],"
      "\"snapshots\":[{\"t\":0.5,\"snapshot\":"
      "\"lagover-snapshot v1\\nsource 2\\nnode 1 2 2 1 0\\n"
      "node 2 1 1 1 1\\n\"}],"
      "\"violations\":[]}";

  Json parsed;
  std::string parse_error;
  if (!Json::parse(document, parsed, &parse_error))
    return fail("self-check document does not parse: " + parse_error);
  Bundle bundle;
  ingest_document(parsed, bundle);
  if (!bundle.is_postmortem() || bundle.seed != 7)
    return fail("bundle metadata decoded wrong");
  if (bundle.spans.size() != 5 || bundle.events.size() != 2)
    return fail("bundle streams decoded wrong");

  const PathResult path = item_path(bundle, 1, 2);
  if (!path.complete || path.hops.size() != 3)
    return fail("item_path: expected complete publish->poll->deliver chain");
  if (path.hops.front().kind != "publish" || path.hops.back().node != 2)
    return fail("item_path: wrong hop order");

  const AncestryResult before = ancestry_at(bundle, 2, 4.0);
  if (!before.ok || before.chain != std::vector<NodeId>{2, 1, 0})
    return fail("ancestry_at(t=4): expected chain 2 -> 1 -> 0");
  const AncestryResult after = ancestry_at(bundle, 2, 6.5);
  if (!after.ok || after.chain != std::vector<NodeId>{2, 0})
    return fail("ancestry_at(t=6.5): expected replayed chain 2 -> 0");

  const std::vector<Laggard> late = laggards(bundle);
  if (late.size() != 1 || late.front().node != 2 ||
      late.front().miss < 1.0 - kSlack || late.front().miss > 1.0 + kSlack)
    return fail("laggards: expected exactly node 2, one unit late");
  if (late.front().drop_cause != "shed")
    return fail("laggards: miss not attributed to the shed drop");
  if (deadline_misses(bundle) != 1)
    return fail("deadline_misses: expected 1");

  const auto causes = drop_causes(bundle);
  if (causes.size() != 1 || causes.front().first != "shed" ||
      causes.front().second != 1)
    return fail("drop_causes: expected exactly {shed: 1}");

  if (timeline(bundle, 1).find("source_poll") == std::string::npos)
    return fail("timeline: node 1 poll receipt missing");
  const std::string overview = summary(bundle);
  if (overview.find("deadline misses: 1") == std::string::npos)
    return fail("summary: miss count missing");
  if (overview.find("drop: 1 (shed: 1)") == std::string::npos)
    return fail("summary: drop-cause breakdown missing");

  // Health stream: one run that converges at round 3, fed through
  // ingest_line (the --health-out path) and rendered by both
  // health_report and the summary health section.
  const char* health_lines[] = {
      "{\"schema\":\"lagover.health.v1\",\"kind\":\"run\",\"run\":1,"
      "\"t\":0.0,\"nodes\":3,\"consumers\":2,\"stability_rounds\":2}",
      "{\"schema\":\"lagover.health.v1\",\"kind\":\"sample\",\"run\":1,"
      "\"round\":1,\"t\":1.0,\"online\":3,\"orphans\":1,\"satisfied\":1,"
      "\"unsatisfied\":1,\"converged\":false,"
      "\"depth\":{\"max\":1,\"mean\":1.0,\"p50\":1,\"p90\":1,\"p99\":1},"
      "\"slack\":{\"min\":1,\"mean\":1.0,\"deepest\":1,\"violated\":0},"
      "\"fanout\":{\"edges\":1,\"capacity\":4,\"saturated\":0,"
      "\"utilization\":0.25},"
      "\"churn\":{\"attaches\":1,\"detaches\":0,\"offlines\":0,"
      "\"onlines\":0},\"messages\":{}}",
      "{\"schema\":\"lagover.health.v1\",\"kind\":\"sample\",\"run\":1,"
      "\"round\":3,\"t\":3.0,\"online\":3,\"orphans\":0,\"satisfied\":2,"
      "\"unsatisfied\":0,\"converged\":true,"
      "\"depth\":{\"max\":2,\"mean\":1.5,\"p50\":1,\"p90\":2,\"p99\":2},"
      "\"slack\":{\"min\":0,\"mean\":1.0,\"deepest\":2,\"violated\":0},"
      "\"fanout\":{\"edges\":2,\"capacity\":4,\"saturated\":0,"
      "\"utilization\":0.5},"
      "\"churn\":{\"attaches\":1,\"detaches\":0,\"offlines\":0,"
      "\"onlines\":0},\"messages\":{}}",
      "{\"schema\":\"lagover.health.v1\",\"kind\":\"run_end\",\"run\":1,"
      "\"rounds\":4,\"converged\":true,\"convergence_round\":3,"
      "\"samples\":4,\"stride\":1,\"final\":{\"round\":4,\"online\":3,"
      "\"orphans\":0,\"satisfied\":2,\"unsatisfied\":0,\"converged\":true,"
      "\"depth\":{\"max\":2},\"slack\":{\"min\":0,\"deepest\":2},"
      "\"fanout\":{\"utilization\":0.5}}}",
  };
  Bundle health_bundle;
  for (const char* text : health_lines) {
    Json line;
    if (!Json::parse(text, line, &parse_error))
      return fail("health line does not parse: " + parse_error);
    ingest_line(line, health_bundle);
  }
  if (health_bundle.health.size() != 4)
    return fail("health: lines not ingested");
  const std::string health = health_report(health_bundle);
  if (health.find("converged at round 3") == std::string::npos)
    return fail("health_report: convergence round missing");
  if (health.find("round  unsat") == std::string::npos)
    return fail("health_report: timeline header missing");
  if (health.find("deepest slack 2") == std::string::npos)
    return fail("health_report: final sample missing");
  const std::string health_overview = summary(health_bundle);
  if (health_overview.find("converged at round 3") == std::string::npos ||
      health_overview.find("deepest slack 2") == std::string::npos)
    return fail("summary: health section missing");
  return true;
}

}  // namespace lagover::tools
