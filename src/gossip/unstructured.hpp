// Unstructured membership overlay with random walks — the paper's
// suggested realization of Oracle Random ("if nodes participate in an
// unstructured network, random walkers can be used to implement Oracle
// Random"). Nodes keep a bounded partial view (random peers); a TTL
// random walk over live views yields an approximately uniform sample
// without any global state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "core/types.hpp"

namespace lagover::gossip {

struct GossipConfig {
  int view_size = 6;   ///< partial-view degree per node
  int walk_ttl = 8;    ///< random-walk length for one sample
  std::uint64_t seed = 1;
  /// Periodic view repair: every `shuffle_every` samples each node
  /// replaces one view entry with a random neighbour-of-neighbour
  /// (a minimal Newscast/Cyclon-style shuffle keeping views fresh).
  int shuffle_every = 64;
};

/// Partial-view membership graph over the consumers of one feed.
class UnstructuredOverlay {
 public:
  UnstructuredOverlay(std::size_t consumer_count, GossipConfig config);

  /// A node's current partial view (may contain offline peers until the
  /// next repair touches them).
  const std::vector<NodeId>& view(NodeId id) const;

  /// TTL random walk starting at `start`, stepping only through peers
  /// that are online in `overlay`; returns the endpoint, or nullopt when
  /// the walk is stuck (no live neighbour).
  std::optional<NodeId> random_walk(NodeId start, const Overlay& overlay,
                                    Rng& rng) const;

  /// One round of view shuffling: every online node swaps a random view
  /// entry with a random entry of a random live neighbour, dropping
  /// offline entries it notices. Keeps the graph connected under churn.
  void shuffle_views(const Overlay& overlay, Rng& rng);

  std::uint64_t walk_messages() const noexcept { return walk_messages_; }

 private:
  GossipConfig config_;
  std::vector<std::vector<NodeId>> views_;  // index = NodeId (0 unused)
  mutable std::uint64_t walk_messages_ = 0;
};

/// Oracle Random realized by random walks on the unstructured overlay.
/// Approximately uniform; the deviation from the idealized
/// DirectoryOracle(kRandom) is itself an experiment
/// (bench_oracle_realizations).
class GossipRandomOracle final : public Oracle {
 public:
  GossipRandomOracle(std::size_t consumer_count, GossipConfig config);

  OracleKind kind() const noexcept override { return OracleKind::kRandom; }
  const UnstructuredOverlay& membership() const noexcept { return overlay_; }

 protected:
  std::optional<NodeId> sample_impl(NodeId querier, const Overlay& overlay,
                                    Rng& rng) override;

 private:
  UnstructuredOverlay overlay_;
  int shuffle_every_;
  int samples_since_shuffle_ = 0;
};

}  // namespace lagover::gossip
