#include "gossip/unstructured.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lagover::gossip {

UnstructuredOverlay::UnstructuredOverlay(std::size_t consumer_count,
                                         GossipConfig config)
    : config_(config) {
  LAGOVER_EXPECTS(config.view_size >= 1);
  LAGOVER_EXPECTS(config.walk_ttl >= 1);
  views_.resize(consumer_count + 1);
  if (consumer_count <= 1) return;
  Rng rng(config.seed);
  for (NodeId id = 1; id <= consumer_count; ++id) {
    auto& view = views_[id];
    const int degree =
        std::min<int>(config.view_size, static_cast<int>(consumer_count) - 1);
    while (static_cast<int>(view.size()) < degree) {
      const auto peer = static_cast<NodeId>(
          1 + rng.next_below(consumer_count));
      if (peer == id ||
          std::find(view.begin(), view.end(), peer) != view.end())
        continue;
      view.push_back(peer);
    }
  }
}

const std::vector<NodeId>& UnstructuredOverlay::view(NodeId id) const {
  LAGOVER_EXPECTS(id >= 1 && id < views_.size());
  return views_[id];
}

std::optional<NodeId> UnstructuredOverlay::random_walk(NodeId start,
                                                       const Overlay& overlay,
                                                       Rng& rng) const {
  NodeId current = start;
  for (int step = 0; step < config_.walk_ttl; ++step) {
    // Gather live neighbours of the current holder of the walker.
    std::vector<NodeId> live;
    for (NodeId peer : views_[current])
      if (overlay.online(peer)) live.push_back(peer);
    if (live.empty()) break;
    current = rng.pick(live);
    ++walk_messages_;
  }
  if (current == start) return std::nullopt;
  return current;
}

void UnstructuredOverlay::shuffle_views(const Overlay& overlay, Rng& rng) {
  for (NodeId id = 1; id < views_.size(); ++id) {
    if (!overlay.online(id)) continue;
    auto& view = views_[id];
    // Drop one offline entry if we notice any.
    const auto dead = std::find_if(view.begin(), view.end(), [&](NodeId p) {
      return !overlay.online(p);
    });
    if (dead != view.end()) view.erase(dead);
    if (view.empty()) continue;
    // Swap one entry with a random live neighbour's random entry
    // (neighbour-of-neighbour exchange).
    const NodeId neighbour = rng.pick(view);
    const auto& other_view = views_[neighbour];
    if (other_view.empty()) continue;
    const NodeId candidate = rng.pick(other_view);
    if (candidate == id || !overlay.online(candidate)) continue;
    if (std::find(view.begin(), view.end(), candidate) != view.end())
      continue;
    if (static_cast<int>(view.size()) < config_.view_size) {
      view.push_back(candidate);
    } else {
      view[static_cast<std::size_t>(
          rng.next_below(view.size()))] = candidate;
    }
  }
}

GossipRandomOracle::GossipRandomOracle(std::size_t consumer_count,
                                       GossipConfig config)
    : overlay_(consumer_count, config), shuffle_every_(config.shuffle_every) {
  LAGOVER_EXPECTS(config.shuffle_every >= 1);
}

std::optional<NodeId> GossipRandomOracle::sample_impl(NodeId querier,
                                                      const Overlay& overlay,
                                                      Rng& rng) {
  if (++samples_since_shuffle_ >= shuffle_every_) {
    overlay_.shuffle_views(overlay, rng);
    samples_since_shuffle_ = 0;
  }
  // A walk can legitimately end back at its origin (even-length cycles);
  // a real peer would simply launch another walker.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto endpoint = overlay_.random_walk(querier, overlay, rng);
    if (endpoint.has_value()) return endpoint;
  }
  return std::nullopt;
}

}  // namespace lagover::gossip
