#include "sim/simulator.hpp"

#include <limits>
#include <utility>

namespace lagover {

EventId Simulator::schedule_at(SimTime when, Action action) {
  LAGOVER_EXPECTS(when >= now_);
  LAGOVER_EXPECTS(action != nullptr);
  const EventId id = next_id_++;
  actions_.emplace(id, std::move(action));
  queue_.push(Entry{when, next_seq_++, id});
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Action action) {
  LAGOVER_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (cancelled_.count(id) != 0) return false;  // already cancelled
  const bool was_periodic = periodics_.erase(id) != 0;
  if (actions_.erase(id) == 0 && !was_periodic) return false;
  cancelled_.insert(id);
  return true;
}

bool Simulator::step(SimTime horizon) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      queue_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.when > horizon) return false;
    queue_.pop();
    now_ = top.when;

    const auto periodic_it = periodics_.find(top.id);
    if (periodic_it != periodics_.end()) {
      // Re-arm before firing, and fire a copy so the action may safely
      // cancel its own timer (which erases the map entry mid-call).
      queue_.push(
          Entry{now_ + periodic_it->second.period, next_seq_++, top.id});
      Action action = periodic_it->second.action;
      ++executed_;
      action();
      return true;
    }

    auto it = actions_.find(top.id);
    LAGOVER_ASSERT(it != actions_.end());
    Action action = std::move(it->second);
    actions_.erase(it);
    ++executed_;
    action();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t fired = 0;
  while (step(horizon)) ++fired;
  // Advance the clock to the horizon so callers' time arithmetic stays
  // simple even when the last event fell short of it.
  if (now_ < horizon) now_ = horizon;
  return fired;
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (step(std::numeric_limits<SimTime>::infinity())) ++fired;
  return fired;
}

EventId Simulator::schedule_periodic(SimTime period, Action action) {
  LAGOVER_EXPECTS(period > 0.0);
  LAGOVER_EXPECTS(action != nullptr);
  const EventId id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(action)});
  queue_.push(Entry{now_ + period, next_seq_++, id});
  return id;
}

}  // namespace lagover
