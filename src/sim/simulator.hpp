// Discrete-event simulation kernel: a time-ordered event queue with
// stable FIFO ordering for simultaneous events, cancellable handles, and
// periodic timers. This is the substrate for the asynchronous LagOver
// construction engine and the feed-dissemination simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace lagover {

/// Simulated time in abstract "time units" (the paper's latency unit;
/// a depth-1 node's poll period is 1.0).
using SimTime = double;

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator. Events scheduled for the
/// same timestamp fire in scheduling order (stable), which keeps runs
/// reproducible.
class LAGOVER_THREAD_HOSTILE Simulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }
  std::uint64_t executed_events() const noexcept { return executed_; }
  std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Schedules `action` at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Action action);

  /// Schedules `action` after a relative delay (>= 0).
  EventId schedule_after(SimTime delay, Action action);

  /// Cancels a pending event; cancelling an already-fired or unknown id
  /// is a no-op and returns false.
  bool cancel(EventId id);

  /// Runs events until the queue empties or `horizon` is passed; the
  /// clock ends at min(horizon, last event time). Returns the number of
  /// events executed by this call.
  std::uint64_t run_until(SimTime horizon);

  /// Runs until the queue is empty.
  std::uint64_t run();

  /// Executes exactly one event if any is pending before `horizon`;
  /// returns whether an event fired.
  bool step(SimTime horizon);

  /// Schedules `action` every `period` starting at now + period, until
  /// `cancel` is called on the returned id or the horizon is reached.
  /// The id remains valid across firings.
  EventId schedule_periodic(SimTime period, Action action);

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct Periodic {
    SimTime period;
    Action action;
  };

  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ordered containers (determinism lint): these are only ever keyed
  // into, but the unordered_ variants are banned in src/sim so an
  // iteration added later can never leak hash order into a run. Ids are
  // monotonically increasing, so inserts hit the right spine edge.
  std::map<EventId, Action> actions_;
  std::map<EventId, Periodic> periodics_;
  std::set<EventId> cancelled_;
};

}  // namespace lagover
