#include "core/protocol.hpp"

#include "common/error.hpp"

namespace lagover {

bool Protocol::contact_source(Overlay& overlay, NodeId i) {
  LAGOVER_EXPECTS(i != kSourceId);
  LAGOVER_EXPECTS(!overlay.has_parent(i));

  if (overlay.can_attach(i, kSourceId)) {
    overlay.attach(i, kSourceId);
    ++counters_.source_attaches;
    return true;
  }

  // No free capacity: displace the laxest direct child c with l_c > l_i
  // (Algorithm 2 step 5: "else if exists c <- 0 s.t. l_c > l_i then
  // c <- i <- 0"). The displaced child is re-adopted by i when i has a
  // free slot; otherwise it restarts construction as a chain root.
  const Delay li = overlay.latency_of(i);
  NodeId victim = kNoNode;
  for (NodeId c : overlay.children(kSourceId)) {
    if (overlay.latency_of(c) <= li) continue;
    if (victim == kNoNode ||
        overlay.latency_of(c) > overlay.latency_of(victim))
      victim = c;
  }
  if (victim == kNoNode) {
    ++counters_.failed_source_contacts;
    return false;
  }

  overlay.detach(victim);
  overlay.attach(i, kSourceId);
  if (overlay.can_attach(victim, i)) overlay.attach(victim, i);
  ++counters_.source_replacements;
  return true;
}

bool Protocol::try_plain_attach(Overlay& overlay, NodeId c, NodeId p) {
  if (!overlay.can_attach(c, p)) return false;
  // c admits the attach on p's *reported* delay: a delay-liar parent
  // passes this check and leaves c truly violated afterwards.
  if (claimed_delay(overlay, p) + 1 > overlay.latency_of(c)) return false;
  overlay.attach(c, p);
  ++counters_.plain_attaches;
  return true;
}

bool Protocol::try_attach_with_displacement(Overlay& overlay, NodeId i,
                                            NodeId j,
                                            bool require_greedy_order) {
  if (overlay.in_subtree(j, i)) return false;
  const Delay li = overlay.latency_of(i);
  if (require_greedy_order && overlay.latency_of(j) > li) return false;
  // All of i's and m's decisions below run on j's reported delay.
  const Delay dj = claimed_delay(overlay, j);
  if (dj + 1 > li) return false;

  if (try_plain_attach(overlay, i, j)) return true;

  // j's fanout is saturated: find a child m to push down under i
  // ("possibly by becoming parent of one of j's current children m
  // provided m's latency constraint is not violated").
  if (overlay.free_fanout(i) > 0) {
    NodeId m = kNoNode;
    for (NodeId candidate : overlay.children(j)) {
      const Delay lm = overlay.latency_of(candidate);
      if (dj + 2 > lm) continue;  // would violate m's constraint
      if (require_greedy_order && lm < li) continue;  // would break ordering
      if (m == kNoNode || lm > overlay.latency_of(m)) m = candidate;
    }
    if (m != kNoNode) {
      overlay.detach(m);
      overlay.attach(i, j);
      LAGOVER_ASSERT(overlay.can_attach(m, i));
      overlay.attach(m, i);
      ++counters_.displacements;
      return true;
    }
  }

  // Adoption impossible (i's fanout is full, or no child survives the
  // extra hop). A strictly laxer child may still yield its slot and
  // restart construction as a chain root: without this move a saturated
  // group root deadlocks whenever every shallow slot is occupied by a
  // laxer node (tight workloads like Tf1). Strictness of l_m > l_i
  // guarantees termination: a slot's occupant latency only decreases.
  if (!orphaning_displacement_) return false;
  NodeId victim = kNoNode;
  for (NodeId candidate : overlay.children(j)) {
    const Delay lm = overlay.latency_of(candidate);
    if (lm <= li) continue;
    if (victim == kNoNode || lm > overlay.latency_of(victim))
      victim = candidate;
  }
  if (victim == kNoNode) return false;
  overlay.detach(victim);
  overlay.attach(i, j);
  ++counters_.displacements;
  return true;
}

bool Protocol::try_replace_at(Overlay& overlay, NodeId i, NodeId j, NodeId k,
                              bool allow_child_discard) {
  LAGOVER_EXPECTS(overlay.parent(j) == k);
  if (overlay.in_subtree(j, i) || overlay.in_subtree(k, i)) return false;
  if (overlay.fanout_of(i) < 1) return false;  // i must adopt j

  const Delay new_delay_i =
      k == kSourceId ? 1 : claimed_delay(overlay, k) + 1;
  if (new_delay_i > overlay.latency_of(i)) return false;
  if (new_delay_i + 1 > overlay.latency_of(j)) return false;

  const bool needs_discard = overlay.free_fanout(i) <= 0;
  if (needs_discard && !allow_child_discard) return false;

  overlay.detach(j);
  if (needs_discard) {
    const NodeId evicted = laxest_child(overlay, i);
    LAGOVER_ASSERT(evicted != kNoNode);
    overlay.detach(evicted);
    ++counters_.child_discards;
  }
  overlay.attach(i, k);
  LAGOVER_ASSERT(overlay.can_attach(j, i));
  overlay.attach(j, i);
  ++counters_.replacements;
  return true;
}

NodeId Protocol::laxest_child(const Overlay& overlay, NodeId p) {
  NodeId best = kNoNode;
  for (NodeId c : overlay.children(p)) {
    if (best == kNoNode || overlay.latency_of(c) > overlay.latency_of(best) ||
        (overlay.latency_of(c) == overlay.latency_of(best) && c > best))
      best = c;
  }
  return best;
}

}  // namespace lagover
