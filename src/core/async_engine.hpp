// Event-driven (asynchronous) LagOver construction (paper Section 5.3:
// "peers interacted asynchronously, i.e. different peers need different
// amount of time to complete the interactions. Asynchrony slowed down
// the overlay construction, but interestingly did not affect the
// eventual convergence").
//
// Each consumer runs its own action loop on the discrete-event kernel:
// while parentless it performs one construction step and then sleeps for
// an interaction duration drawn uniformly from
// [min_interaction_time, max_interaction_time]; while attached it wakes
// every maintenance_period to evaluate the maintenance condition.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/admission.hpp"
#include "core/construction_core.hpp"
#include "core/engine.hpp"
#include "core/types.hpp"
#include "core/validator.hpp"
#include "fault/byzantine.hpp"
#include "fault/fault_injector.hpp"
#include "health/health.hpp"
#include "health/suspicion.hpp"
#include "net/latency_model.hpp"
#include "sim/simulator.hpp"

namespace lagover {

struct AsyncConfig {
  AlgorithmKind algorithm = AlgorithmKind::kHybrid;
  OracleKind oracle = OracleKind::kRandomDelay;
  SourceMode source_mode = SourceMode::kPullOnly;
  int timeout_steps = 4;       ///< orphan actions before source contact
  int maintenance_patience = 1;
  /// Interaction duration bounds; the synchronous engine corresponds to
  /// every duration being exactly 1.0 (one round).
  double min_interaction_time = 0.5;
  double max_interaction_time = 2.5;
  double maintenance_period = 1.0;
  /// Optional network model: when set, an interaction with partner j
  /// additionally costs rtt_weight * 2 * latency(i, j) — geographically
  /// far partners take longer to negotiate with (the model must cover
  /// addresses [0, consumers]; address = NodeId, 0 = the source).
  std::shared_ptr<net::LatencyModel> network_latency;
  double rtt_weight = 1.0;
  /// Optional chaos layer. Null (or an empty FaultPlan) leaves the run
  /// byte-identical to the fault-free engine for the same seed: no
  /// extra engine-RNG draws happen and every hook below is inert.
  std::shared_ptr<fault::FaultInjector> faults;
  /// Exponential backoff with jitter for failed interactions / source
  /// contacts (dropped request, partitioned peer, dead stale-Oracle
  /// partner, or a starved Oracle during an outage): the k-th
  /// consecutive failure reschedules the node after
  ///   min(backoff_base * 2^k, backoff_max) * (1 ± backoff_jitter).
  double backoff_base = 0.5;
  double backoff_max = 8.0;
  double backoff_jitter = 0.25;
  /// Attached nodes poll their parent every maintenance_period; this
  /// many consecutive undeliverable polls (partition / message loss)
  /// convince a node its parent is dead and it re-orphans itself.
  /// (The fixed fallback when health.detection selects phi-accrual.)
  int parent_poll_miss_limit = 3;
  /// Health layer: failure detection + failover policy. The defaults
  /// (fixed misses, Oracle rejoin) reproduce the legacy behavior
  /// byte-for-byte; epoch bookkeeping is always on but inert without
  /// faults.
  health::HealthConfig health;
  /// Byzantine adversary layer (liars, free-riders, flappers). Null or
  /// an empty book is normalized away: no hook installs, no RNG-stream
  /// change, runs stay byte-identical to an adversary-free engine.
  std::shared_ptr<fault::AdversaryBook> adversary;
  /// Defense ladder (suspicion scoring, quarantine, Oracle plausibility
  /// filter). Only engaged when both defense.enabled and an adversary
  /// layer are present — defenses-off adversarial runs show the
  /// undefended collapse.
  health::DefenseConfig defense;
  /// Oracle admission control (rate limiting + circuit breaker). An
  /// empty config (no rate limit) installs nothing: no wrapper, no
  /// RNG-stream change, runs stay byte-identical.
  AdmissionConfig admission;
  std::uint64_t seed = 1;
};

/// Runs construction on the event kernel and reports the simulated time
/// at which every online consumer became satisfied.
class LAGOVER_THREAD_HOSTILE AsyncEngine {
 public:
  AsyncEngine(Population population, AsyncConfig config);
  /// Closes the health-observatory run, when one was registered.
  ~AsyncEngine();

  // The construction core and scheduled events reference this object,
  // so it is pinned in place.
  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;
  AsyncEngine(AsyncEngine&&) = delete;
  AsyncEngine& operator=(AsyncEngine&&) = delete;

  const Overlay& overlay() const noexcept { return overlay_; }
  const Oracle& oracle() const noexcept { return *oracle_; }
  const Simulator& simulator() const noexcept { return sim_; }

  /// Replaces the Oracle (e.g. a locality-biased or DHT-backed
  /// realization). Must be called before the first run.
  void set_oracle(std::unique_ptr<Oracle> oracle);

  /// Installs a churn model, applied once per time unit (the same
  /// cadence as the synchronous engine's rounds). Must be called before
  /// the first run. Newly joined nodes re-enter the construction loop
  /// at their own pace.
  void set_churn(std::unique_ptr<ChurnModel> churn);

  /// Parks a consumer offline before the run starts — flash-crowd
  /// experiments hold part of the population back until a
  /// FlashCrowdChurn joins them all at once. Must be called before the
  /// first run (the node's initial wake dies at the offline check, and
  /// the churn join path restarts its action loop).
  void park_offline(NodeId id);

  /// Runs for exactly `duration` time units (under churn there is no
  /// stable "converged" endpoint) and reports the final satisfied
  /// fraction.
  double run_for(SimTime duration);

  /// Runs until convergence or `horizon` simulated time units. Returns
  /// the convergence time, or nullopt on timeout.
  std::optional<SimTime> run_until_converged(SimTime horizon);

  /// Installs a periodic observer (e.g. a metrics::RecoveryRecorder's
  /// sample method) invoked every `period` time units once the run
  /// starts. Must be called before the first run.
  void set_sampler(double period, std::function<void(SimTime)> sampler);

  /// Installs a trace observer (nullptr to disable). Must be called
  /// before the first run. Legacy single-observer entry point, now a
  /// named subscription on trace_bus(): calling it again releases the
  /// previous subscription (its slot and retention-ring config with it)
  /// before installing the replacement. Returns the new subscription id
  /// (0 when disabling).
  TraceBus::SubscriptionId set_trace(
      std::function<void(const TraceEvent&)> trace);

  /// The engine's trace event bus. Subscriptions survive set_oracle()
  /// rebuilds — the core is re-pointed at the same bus.
  TraceBus& trace_bus() noexcept { return trace_bus_; }

  /// Paper-invariant audit sink. LAGOVER_AUDIT builds publish one event
  /// per violation per audit tick (every simulated time unit); the bus
  /// exists in every build so subscribers need no conditional
  /// compilation.
  AuditBus& audit_bus() noexcept { return audit_bus_; }

  /// Total invariant violations seen by the periodic audit (always 0
  /// in builds without LAGOVER_AUDIT).
  std::uint64_t audit_violations() const noexcept {
    return audit_violations_;
  }

  const fault::FaultInjector* faults() const noexcept {
    return config_.faults.get();
  }
  const fault::AdversaryBook* adversary() const noexcept {
    return config_.adversary.get();
  }
  /// Defense-ladder state (empty book when defenses are off).
  const health::SuspicionBook& suspicion() const noexcept {
    return suspicion_;
  }
  /// The claim-filtered Oracle, when an adversary layer is installed
  /// (null otherwise); exposes barred/implausible skip counters.
  const fault::ByzantineOracle* byzantine_oracle() const noexcept {
    return byzantine_oracle_;
  }
  /// Children that abandoned a quarantined/blacklisted parent.
  std::uint64_t quarantine_detaches() const noexcept {
    return quarantine_detaches_;
  }

  /// Oracle admission controller, when admission control is configured
  /// (null otherwise); exposes rate/breaker counters.
  const AdmissionController* admission() const noexcept {
    return admission_.get();
  }
  /// The admission-wrapped Oracle (null without admission control);
  /// exposes the stale-served counter.
  const AdmittedOracle* admitted_oracle() const noexcept {
    return admission_oracle_;
  }
  /// Children the feed layer detached from a parent that starved them
  /// (graceful-degradation escalation).
  std::uint64_t starvation_detaches() const noexcept {
    return starvation_detaches_;
  }

  /// Escalation entry point for the feed layer's degradation ladder: a
  /// persistently starved child abandons its overloaded parent (mild
  /// suspicion evidence when defenses run) and re-enters construction
  /// on its next wake, spreading load across the tree. No-op when the
  /// child is offline or already parentless.
  void escalate_starvation(NodeId child);

  /// Health-layer state, for validators and metrics.
  const health::EpochBook& epochs() const noexcept { return epochs_; }
  const health::PhiAccrualDetector& detector() const noexcept {
    return detector_;
  }
  const Protocol& protocol() const noexcept { return *protocol_; }
  const ConstructionCore& core() const noexcept { return *core_; }

 private:
  void schedule_node(NodeId id, SimTime delay);
  void on_wake(NodeId id);
  void wake_attached(NodeId id);
  void wake_orphan(NodeId id);
  void apply_churn();
  /// Takes `id` offline for `downtime` (floored at 0.1) and schedules
  /// its rejoin as a new incarnation. `cause` tags the kCrash event
  /// ("" = plain fault-plan crash, "flap" = adversarial flapper,
  /// "domain" = correlated domain outage).
  void crash_node(NodeId id, double downtime, const char* cause);
  /// Wraps the Oracle in the Byzantine claim filter (before the fault
  /// layer wraps it again, so outages apply on top of lies).
  void install_adversary_oracle();
  /// Installs the claimed-delay hook on the protocol and the reject /
  /// defense hooks on the (final) construction core. Must run after
  /// every core_ rebuild is done.
  void install_adversary_hooks();
  void install_fault_hooks();
  void install_core_hooks();
  /// Wraps the Oracle in the admission-control decorator (between the
  /// Byzantine filter and the fault layer: rate limiting applies to the
  /// service itself, outages on top of it).
  void install_admission_oracle();
  bool defense_active() const noexcept {
    return config_.adversary != nullptr && config_.defense.enabled;
  }
  /// One undeliverable poll from id to its parent: updates the active
  /// detection policy's state and reports whether the parent is now
  /// suspected dead.
  bool suspect_parent(NodeId id);
  /// Re-orphans id after a suspicion / epoch fence, arming the failover
  /// ladder when configured.
  void detach_suspected(NodeId id, NodeId parent, Round label,
                        TraceEventType type);
  /// Runs the paper-invariant audit against the current overlay state
  /// and publishes violations (scheduled once per simulated time unit
  /// in LAGOVER_AUDIT builds).
  void audit_tick();
  /// Registers this run with the active OverlayHealthRecorder, if any,
  /// and schedules the per-time-unit sampling tick. No recorder = no
  /// scheduled event, so default runs stay byte-identical.
  void register_health_run();
  double draw_duration();
  double backoff_delay(NodeId id);

  AsyncConfig config_;
  Overlay overlay_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<Oracle> oracle_;
  std::unique_ptr<ConstructionCore> core_;
  std::unique_ptr<ChurnModel> churn_;
  TraceBus trace_bus_;
  /// set_trace()'s subscription on trace_bus_ (0 = none installed).
  TraceBus::SubscriptionId trace_subscription_ = 0;
  AuditBus audit_bus_;
  std::uint64_t audit_violations_ = 0;
  /// Health-observatory run id (0 = no recorder active at construction).
  std::uint64_t health_run_ = 0;
  Simulator sim_;
  Rng rng_;
  Round churn_ticks_ = 0;
  bool started_ = false;
  bool converged_ = false;
  SimTime converged_at_ = 0.0;
  /// Consecutive failed attempts per node (drives the backoff; sized
  /// only when a fault layer is installed).
  std::vector<int> failed_attempts_;
  /// Consecutive missed parent polls per attached node.
  std::vector<int> parent_poll_misses_;
  /// Health layer (always sized; pure bookkeeping without faults).
  health::EpochBook epochs_;
  health::PhiAccrualDetector detector_;
  /// Last known parent-of-parent per node, piggy-backed on successful
  /// polls — the first rung of the failover ladder.
  std::vector<NodeId> grandparent_hint_;
  /// Armed by a suspicion event (kParentLost / kEpochFenced / parent
  /// crash): the node's next orphan wake tries the failover ladder
  /// before the Oracle. Never set on the fault-free path.
  std::vector<char> failover_pending_;
  /// Defense-ladder scores and trust states (sized always, inert unless
  /// defense_active()).
  health::SuspicionBook suspicion_;
  /// Delay each attached node was promised at attach time (parent's
  /// claimed delay + 1); -1 = no active promise. Maintained only while
  /// the defense ladder runs delay verification.
  std::vector<Delay> promised_delay_;
  /// Borrowed view of the claim-filtering Oracle (owned by oracle_,
  /// possibly through the fault layer's wrapper). Null without an
  /// adversary layer.
  fault::ByzantineOracle* byzantine_oracle_ = nullptr;
  std::uint64_t quarantine_detaches_ = 0;
  /// Admission layer (null unless config_.admission is non-empty).
  std::shared_ptr<AdmissionController> admission_;
  /// Borrowed view of the admission decorator (owned by oracle_,
  /// possibly through the fault layer's wrapper).
  AdmittedOracle* admission_oracle_ = nullptr;
  std::uint64_t starvation_detaches_ = 0;
};

}  // namespace lagover
