// Hybrid LagOver construction (paper Section 3.4, Algorithm 2).
//
// Jointly optimizes latency and capacity: high-fanout nodes are
// preferred upstream so more nodes can be accommodated downstream, and
// latency drives decisions only where a constraint would otherwise be
// violated (or at a pull-only source, whose direct children should be
// the latency-strict pollers). Because i <- j carries no ordering
// information here, maintenance needs the aggressive condition
// DelayAt > l damped by a timeout (maintenance_patience rounds).
#pragma once

#include "core/protocol.hpp"

namespace lagover {

class HybridProtocol final : public Protocol {
 public:
  explicit HybridProtocol(SourceMode source_mode = SourceMode::kPullOnly,
                          int maintenance_patience = 1)
      : Protocol(source_mode), maintenance_patience_(maintenance_patience) {}

  AlgorithmKind kind() const noexcept override {
    return AlgorithmKind::kHybrid;
  }

  InteractionResult interact(Overlay& overlay, NodeId i, NodeId j) override;

  int maintenance_patience() const noexcept override {
    return maintenance_patience_;
  }

 private:
  InteractionResult merge_orphan_groups(Overlay& overlay, NodeId i, NodeId j);
  InteractionResult interact_at_source_child(Overlay& overlay, NodeId i,
                                             NodeId j);
  InteractionResult interact_interior(Overlay& overlay, NodeId i, NodeId j,
                                      NodeId k);

  int maintenance_patience_;
};

}  // namespace lagover
