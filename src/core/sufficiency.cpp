#include "core/sufficiency.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace lagover {

SufficiencyReport sufficiency_condition(const Population& population) {
  validate(population);
  SufficiencyReport report;

  std::map<Delay, std::vector<const NodeSpec*>> classes;
  for (const NodeSpec& spec : population.consumers)
    classes[spec.constraints.latency].push_back(&spec);
  if (classes.empty()) {
    report.holds = true;
    return report;
  }

  const Delay max_latency = classes.rbegin()->first;
  long surplus = 0;
  // Fanout contributed by class N_{l-1}; N_0 is the source.
  long previous_class_fanout = population.source_fanout;
  for (Delay l = 1; l <= max_latency; ++l) {
    SufficiencyLevel level;
    level.latency = l;
    const auto it = classes.find(l);
    level.demand = it == classes.end() ? 0 : it->second.size();
    level.capacity = previous_class_fanout + surplus;
    level.surplus = level.capacity - static_cast<long>(level.demand);
    report.levels.push_back(level);
    if (level.surplus < 0) {
      report.holds = false;
      report.failing_level = l;
      return report;
    }
    surplus = level.surplus;
    previous_class_fanout = 0;
    if (it != classes.end())
      for (const NodeSpec* spec : it->second)
        previous_class_fanout += spec->constraints.fanout;
  }
  report.holds = true;
  return report;
}

std::optional<std::vector<int>> feasible_depths(const Population& population) {
  validate(population);
  const std::size_t n = population.consumers.size();
  std::vector<int> depths(n, 0);
  if (n == 0) return depths;

  auto fanout_of = [&](NodeId id) {
    return population.consumers[id - 1].constraints.fanout;
  };
  auto deadline_of = [&](NodeId id) {
    return population.consumers[id - 1].constraints.latency;
  };

  Delay max_latency = 1;
  std::vector<NodeId> pool;  // unplaced nodes; all deadlines >= current depth
  pool.reserve(n);
  for (const NodeSpec& spec : population.consumers) {
    pool.push_back(spec.id);
    max_latency = std::max(max_latency, spec.constraints.latency);
  }

  long capacity = population.source_fanout;  // slots at the current depth
  std::size_t placed = 0;

  for (Delay depth = 1; depth <= max_latency && placed < n; ++depth) {
    // Nodes whose deadline equals this depth must be placed now or never.
    std::vector<NodeId> mandatory;
    std::vector<NodeId> later;
    later.reserve(pool.size());
    for (NodeId id : pool) {
      LAGOVER_ASSERT(deadline_of(id) >= depth);
      (deadline_of(id) == depth ? mandatory : later).push_back(id);
    }
    if (static_cast<long>(mandatory.size()) > capacity)
      return std::nullopt;  // deadline miss: infeasible

    long next_capacity = 0;
    for (NodeId id : mandatory) {
      depths[id - 1] = depth;
      next_capacity += fanout_of(id);
      ++placed;
    }
    capacity -= static_cast<long>(mandatory.size());

    // Fill the remaining slots with the highest-fanout later-deadline
    // nodes: capacity not used at this depth is lost, while placing a
    // node earlier than its deadline is never worse.
    std::sort(later.begin(), later.end(), [&](NodeId a, NodeId b) {
      if (fanout_of(a) != fanout_of(b)) return fanout_of(a) > fanout_of(b);
      return a < b;
    });
    const std::size_t take = std::min<std::size_t>(
        capacity > 0 ? static_cast<std::size_t>(capacity) : 0, later.size());
    for (std::size_t idx = 0; idx < take; ++idx) {
      const NodeId id = later[idx];
      depths[id - 1] = depth;
      next_capacity += fanout_of(id);
      ++placed;
    }
    pool.assign(later.begin() + static_cast<std::ptrdiff_t>(take),
                later.end());
    capacity = next_capacity;
  }
  if (placed < n) return std::nullopt;
  return depths;
}

bool exactly_feasible(const Population& population) {
  return feasible_depths(population).has_value();
}

Overlay build_witness_overlay(const Population& population,
                              const std::vector<int>& depths) {
  LAGOVER_EXPECTS(depths.size() == population.consumers.size());
  Overlay overlay(population);

  int max_depth = 0;
  for (int d : depths) max_depth = std::max(max_depth, d);
  std::vector<std::vector<NodeId>> by_depth(
      static_cast<std::size_t>(max_depth) + 1);
  by_depth[0].push_back(kSourceId);
  for (std::size_t k = 0; k < depths.size(); ++k) {
    LAGOVER_EXPECTS(depths[k] >= 1 && depths[k] <= max_depth);
    by_depth[static_cast<std::size_t>(depths[k])].push_back(
        static_cast<NodeId>(k + 1));
  }

  for (int d = 1; d <= max_depth; ++d) {
    std::size_t parent_idx = 0;
    const auto& parents = by_depth[static_cast<std::size_t>(d - 1)];
    for (NodeId child : by_depth[static_cast<std::size_t>(d)]) {
      while (parent_idx < parents.size() &&
             overlay.free_fanout(parents[parent_idx]) == 0)
        ++parent_idx;
      LAGOVER_ASSERT_MSG(parent_idx < parents.size(),
                         "witness depths exceed level capacity");
      overlay.attach(child, parents[parent_idx]);
    }
  }
  LAGOVER_ASSERT_MSG(overlay.all_satisfied(),
                     "witness overlay does not satisfy all constraints");
  return overlay;
}

namespace {

bool brute_force_recurse(const Population& population,
                         std::vector<int>& depths, std::size_t next,
                         Delay max_latency) {
  const std::size_t n = population.consumers.size();
  if (next == n) {
    // Verify level capacities for the complete assignment.
    int max_depth = 0;
    for (int d : depths) max_depth = std::max(max_depth, d);
    std::vector<long> count(static_cast<std::size_t>(max_depth) + 1, 0);
    std::vector<long> fanout(static_cast<std::size_t>(max_depth) + 1, 0);
    fanout[0] = population.source_fanout;
    for (std::size_t k = 0; k < n; ++k) {
      const auto d = static_cast<std::size_t>(depths[k]);
      ++count[d];
      if (d < fanout.size())
        fanout[d] += population.consumers[k].constraints.fanout;
    }
    for (int d = 1; d <= max_depth; ++d)
      if (count[static_cast<std::size_t>(d)] >
          fanout[static_cast<std::size_t>(d - 1)])
        return false;
    return true;
  }
  const Delay deadline = population.consumers[next].constraints.latency;
  for (Delay d = 1; d <= std::min(deadline, max_latency); ++d) {
    depths[next] = d;
    if (brute_force_recurse(population, depths, next + 1, max_latency))
      return true;
  }
  return false;
}

}  // namespace

bool brute_force_feasible(const Population& population) {
  validate(population);
  LAGOVER_EXPECTS(population.consumers.size() <= 12);
  if (population.consumers.empty()) return true;
  Delay max_latency = 1;
  for (const NodeSpec& spec : population.consumers)
    max_latency = std::max(max_latency, spec.constraints.latency);
  std::vector<int> depths(population.consumers.size(), 0);
  return brute_force_recurse(population, depths, 0, max_latency);
}

std::optional<int> minimum_source_fanout(Population population) {
  const int upper = static_cast<int>(population.consumers.size());
  int lo = 0;
  int hi = upper;
  population.source_fanout = hi;
  if (!exactly_feasible(population)) return std::nullopt;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    population.source_fanout = mid;
    if (exactly_feasible(population))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

}  // namespace lagover
