#include "core/hybrid.hpp"

namespace lagover {

InteractionResult HybridProtocol::interact(Overlay& overlay, NodeId i,
                                           NodeId j) {
  ++counters_.interactions;
  if (overlay.in_subtree(j, i)) {
    ++counters_.wasted_interactions;
    return {};
  }
  const NodeId pj = overlay.parent(j);
  if (pj == kNoNode) return merge_orphan_groups(overlay, i, j);
  if (pj == kSourceId) return interact_at_source_child(overlay, i, j);
  return interact_interior(overlay, i, j, pj);
}

InteractionResult HybridProtocol::merge_orphan_groups(Overlay& overlay,
                                                      NodeId i, NodeId j) {
  // Algorithm 2 steps 16-20: give preference to the node with larger
  // fanout to be the parent if fanout is available at both; on equal
  // fanout, the node with the stricter latency constraint hosts.
  InteractionResult result;
  const bool i_free = overlay.free_fanout(i) > 0;
  const bool j_free = overlay.free_fanout(j) > 0;
  if (!i_free && !j_free) return result;

  NodeId parent;
  if (i_free && j_free) {
    const int fi = overlay.fanout_of(i);
    const int fj = overlay.fanout_of(j);
    if (fi != fj) {
      parent = fi > fj ? i : j;
    } else if (overlay.latency_of(i) != overlay.latency_of(j)) {
      parent = overlay.latency_of(i) < overlay.latency_of(j) ? i : j;
    } else {
      parent = i < j ? i : j;
    }
  } else {
    parent = i_free ? i : j;
  }
  const NodeId child = parent == i ? j : i;

  if (!try_plain_attach(overlay, child, parent) && i_free && j_free) {
    // The preferred orientation can fail on the child's (optimistic)
    // delay bound; try the other one before giving up.
    try_plain_attach(overlay, parent, child);
  }
  result.attached = overlay.has_parent(i);
  return result;
}

InteractionResult HybridProtocol::interact_at_source_child(Overlay& overlay,
                                                           NodeId i,
                                                           NodeId j) {
  // Algorithm 2 steps 21-35: j is a direct child of the source.
  InteractionResult result;
  const bool replace_preferred =
      source_mode() == SourceMode::kPullOnly
          // Pull-only: the direct pollers should be the latency-strict
          // nodes (step 24).
          ? overlay.latency_of(i) < overlay.latency_of(j)
          // Push source: any node can sit at the source, prefer fanout
          // (step 30).
          : overlay.fanout_of(i) > overlay.fanout_of(j);

  if (replace_preferred &&
      try_replace_at(overlay, i, j, kSourceId, /*allow_child_discard=*/true)) {
    result.attached = true;
    return result;
  }
  if (try_attach_with_displacement(overlay, i, j,
                                   /*require_greedy_order=*/false)) {
    result.attached = true;
    return result;
  }
  // "Refer i to 0 otherwise": the engine turns a source referral into a
  // direct source contact on i's next step.
  result.referral = kSourceId;
  return result;
}

InteractionResult HybridProtocol::interact_interior(Overlay& overlay, NodeId i,
                                                    NodeId j, NodeId k) {
  // Algorithm 2 steps 36-43: j <- k with k interior. The paper's step 36
  // reads f_i >= f_j, but replacing on *equal* fanout is a zero-gain
  // reconfiguration that only churns the tree (and with it every delay
  // downstream), so we require a strict capacity win and fall through to
  // plain attachment on ties.
  InteractionResult result;
  if (overlay.fanout_of(i) > overlay.fanout_of(j) &&
      try_replace_at(overlay, i, j, k, /*allow_child_discard=*/true)) {
    // j <- i <- k: the higher-fanout node moves upstream.
    result.attached = true;
    return result;
  }
  if (try_attach_with_displacement(overlay, i, j,
                                   /*require_greedy_order=*/false)) {
    result.attached = true;
    return result;
  }
  // Neither configuration possible. If j's delay already reaches i's
  // constraint, move closer to the source via k; otherwise re-consult
  // the Oracle.
  // Referral decision runs on j's reported delay (i cannot audit it).
  if (claimed_delay(overlay, j) >= overlay.latency_of(i)) result.referral = k;
  return result;
}

}  // namespace lagover
