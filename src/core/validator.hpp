// Constraint-satisfaction report: a downstream-facing audit of a LagOver
// snapshot that explains *why* each unsatisfied node is unsatisfied.
// Complements Overlay::audit() (which checks structural invariants and
// aborts) with a non-fatal, per-node diagnosis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/overlay.hpp"
#include "health/lease.hpp"

namespace lagover {

enum class NodeIssue {
  kNone,           ///< satisfied
  kOffline,        ///< not currently participating
  kParentless,     ///< chain root still seeking a parent
  kDisconnected,   ///< attached, but the chain root is not the source
  kDelayExceeded,  ///< connected but DelayAt > l
};

std::string to_string(NodeIssue issue);

struct NodeDiagnosis {
  NodeId node = kNoNode;
  NodeIssue issue = NodeIssue::kNone;
  Delay delay = 0;       ///< DelayAt (optimistic when detached)
  Delay constraint = 0;  ///< l
};

struct ValidationReport {
  std::size_t consumers = 0;
  std::size_t satisfied = 0;
  /// Diagnoses of every node that is NOT satisfied (empty = converged).
  std::vector<NodeDiagnosis> issues;

  bool converged() const noexcept { return issues.empty(); }

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

/// Diagnoses every consumer of the overlay.
ValidationReport validate_overlay(const Overlay& overlay);

/// Epoch-consistency audit of an overlay against a lease book (the
/// health layer's fencing invariant): no edge may connect a child to a
/// parent incarnation other than the one it leased, and the forest must
/// be acyclic. A clean audit means no stale-epoch attachment survived.
struct EpochAudit {
  /// Edges whose recorded lease names a previous incarnation of the
  /// parent (lease epoch != parent's current epoch).
  std::vector<NodeId> stale_edges;
  /// Attached children with no recorded lease at all. Benign for
  /// overlays built before the health layer was wired in; should be
  /// empty for engine-built overlays.
  std::vector<NodeId> unleased_edges;
  bool acyclic = true;

  bool ok() const noexcept { return stale_edges.empty() && acyclic; }
  std::string to_string() const;
};

EpochAudit audit_epochs(const Overlay& overlay,
                        const health::EpochBook& epochs);

}  // namespace lagover
