// Constraint-satisfaction report: a downstream-facing audit of a LagOver
// snapshot that explains *why* each unsatisfied node is unsatisfied.
// Complements Overlay::audit() (which checks structural invariants and
// aborts) with a non-fatal, per-node diagnosis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/overlay.hpp"
#include "core/types.hpp"
#include "health/lease.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/health.hpp"

namespace lagover {

enum class NodeIssue {
  kNone,           ///< satisfied
  kOffline,        ///< not currently participating
  kParentless,     ///< chain root still seeking a parent
  kDisconnected,   ///< attached, but the chain root is not the source
  kDelayExceeded,  ///< connected but DelayAt > l
};

std::string to_string(NodeIssue issue);

struct NodeDiagnosis {
  NodeId node = kNoNode;
  NodeIssue issue = NodeIssue::kNone;
  Delay delay = 0;       ///< DelayAt (optimistic when detached)
  Delay constraint = 0;  ///< l
};

struct ValidationReport {
  std::size_t consumers = 0;
  std::size_t satisfied = 0;
  /// Diagnoses of every node that is NOT satisfied (empty = converged).
  std::vector<NodeDiagnosis> issues;

  bool converged() const noexcept { return issues.empty(); }

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

/// Diagnoses every consumer of the overlay.
ValidationReport validate_overlay(const Overlay& overlay);

/// Epoch-consistency audit of an overlay against a lease book (the
/// health layer's fencing invariant): no edge may connect a child to a
/// parent incarnation other than the one it leased, and the forest must
/// be acyclic. A clean audit means no stale-epoch attachment survived.
struct EpochAudit {
  /// Edges whose recorded lease names a previous incarnation of the
  /// parent (lease epoch != parent's current epoch).
  std::vector<NodeId> stale_edges;
  /// Attached children with no recorded lease at all. Benign for
  /// overlays built before the health layer was wired in; should be
  /// empty for engine-built overlays.
  std::vector<NodeId> unleased_edges;
  bool acyclic = true;

  bool ok() const noexcept { return stale_edges.empty() && acyclic; }
  std::string to_string() const;
};

EpochAudit audit_epochs(const Overlay& overlay,
                        const health::EpochBook& epochs);

// --- paper-invariant audit harness (LAGOVER_AUDIT) ---------------------
//
// The full machine-checkable invariant set of the paper, evaluated
// against an overlay snapshot and (optionally) the health layer's epoch
// book. Unlike Overlay::audit() this never aborts: every violation is
// reported as a structured event so the engines can stream them through
// the telemetry EventBus and CI can assert the stream stayed empty.

/// One checkable structural invariant (paper Sections 2-3).
enum class Invariant {
  kAcyclic,      ///< the overlay is a forest: parent walks terminate
  kFanoutBound,  ///< |Children(i)| <= f_i at every node
  /// Greedy latency ordering on every non-source edge: a parent's
  /// constraint never exceeds its child's (l_parent <= l_child). Only
  /// meaningful for AlgorithmKind::kGreedy runs.
  kGreedyOrder,
  kDelayDepth,   ///< DelayAt(i) equals the independently recomputed depth
  kEpochLease,   ///< every edge's lease names the parent's current epoch
  /// The health observatory's incremental mirror (telemetry/health.hpp)
  /// agrees with an independent BFS recompute of the overlay.
  kHealthMirror,
};

/// Stable lower_snake name ("acyclic", "fanout_bound", ...).
const char* to_string(Invariant invariant) noexcept;

/// A single invariant violation with a structured cause tag, suitable
/// for publishing on an EventBus and for JSONL export.
struct InvariantViolation {
  Invariant invariant{};
  NodeId node = kNoNode;    ///< offending node (the child on edge checks)
  NodeId parent = kNoNode;  ///< other endpoint for edge-local checks
  /// Round (or sim-time tick) the audit ran in; stamped by publish().
  Round round = 0;
  /// Structured cause tag: "cycle", "fanout_exceeded", "latency_order",
  /// "delay_depth_mismatch", "stale_lease", "future_lease",
  /// "unleased_edge".
  const char* cause = "";
  std::string detail;  ///< human-readable specifics
};

/// Result of one audit pass.
struct InvariantReport {
  std::vector<InvariantViolation> violations;
  std::size_t nodes_checked = 0;
  std::size_t edges_checked = 0;

  bool ok() const noexcept { return violations.empty(); }

  /// Human-readable multi-line summary.
  std::string to_string() const;
};

/// The engines' audit sink: one event per violation per audited round.
using AuditBus = telemetry::EventBus<InvariantViolation>;

/// Audits the full paper invariant set: acyclicity, fanout bounds,
/// DelayAt/depth consistency (depths recomputed independently from the
/// children lists, not via Overlay's parent walks), the greedy latency
/// ordering when mode == kGreedy, and — when `epochs` is non-null —
/// epoch-lease consistency (no stale, future, or missing lease on any
/// live edge). Non-fatal: violations are collected, never aborted on.
InvariantReport audit_invariants(const Overlay& overlay, AlgorithmKind mode,
                                 const health::EpochBook* epochs = nullptr);

/// Diffs the health observatory's incrementally-maintained mirror of
/// `run` against an independent BFS recompute over `overlay`: per-node
/// liveness/parent/connectivity/DelayAt, plus the derived aggregates
/// (online consumers, orphans, satisfied, edges, capacity, saturated
/// nodes). Every disagreement becomes a kHealthMirror violation with
/// cause "health_mismatch". Empty report when `run` is not the
/// recorder's open run (nothing to check). Read-only on both sides.
InvariantReport crosscheck_health(
    const Overlay& overlay, const telemetry::OverlayHealthRecorder& recorder,
    std::uint64_t run);

/// Stamps `round` on every violation, publishes each to `bus`, and
/// bumps the "audit.violations" telemetry counter. Returns the number
/// of violations published.
std::size_t publish(const InvariantReport& report, AuditBus& bus,
                    Round round);

/// Flattens an InvariantViolation into the flight recorder's
/// core-agnostic note shape (telemetry sits below core and cannot see
/// this type).
telemetry::ViolationNote to_violation_note(const InvariantViolation& violation);

/// Forwards every violation published on `bus` into `recorder` — the
/// wiring that makes an engine's audit stream trigger the recorder's
/// post-mortem dump. The recorder must outlive the subscription; the
/// returned id unsubscribes.
AuditBus::SubscriptionId attach_flight_recorder(
    AuditBus& bus, telemetry::FlightRecorder& recorder);

}  // namespace lagover
