#include "core/snapshot.hpp"

#include <functional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace lagover {

void write_snapshot(const Overlay& overlay, std::ostream& out) {
  out << "lagover-snapshot v1\n";
  out << "source " << overlay.fanout_of(kSourceId) << '\n';
  for (NodeId id = 1; id < overlay.node_count(); ++id) {
    const NodeSpec& spec = overlay.spec_of(id);
    out << "node " << id << ' ' << spec.constraints.fanout << ' '
        << spec.constraints.latency << ' ' << (overlay.online(id) ? 1 : 0)
        << ' ';
    if (overlay.has_parent(id))
      out << overlay.parent(id);
    else
      out << '-';
    out << '\n';
  }
}

std::string to_snapshot(const Overlay& overlay) {
  std::ostringstream out;
  write_snapshot(overlay, out);
  return out.str();
}

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw InvalidArgument("malformed snapshot: " + detail);
}

}  // namespace

Overlay read_snapshot(std::istream& in) {
  std::string line;
  // Header.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line != "lagover-snapshot v1") malformed("bad header '" + line + "'");
    break;
  }

  Population population;
  bool have_source = false;
  struct NodeLine {
    NodeSpec spec;
    bool online = true;
    NodeId parent = kNoNode;
  };
  std::vector<NodeLine> nodes;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "source") {
      if (!(fields >> population.source_fanout)) malformed("source line");
      have_source = true;
    } else if (keyword == "node") {
      NodeLine node;
      int online_flag = 1;
      std::string parent_token;
      if (!(fields >> node.spec.id >> node.spec.constraints.fanout >>
            node.spec.constraints.latency >> online_flag >> parent_token))
        malformed("node line '" + line + "'");
      node.online = online_flag != 0;
      if (parent_token != "-") {
        std::size_t consumed = 0;
        node.parent =
            static_cast<NodeId>(std::stoul(parent_token, &consumed));
        if (consumed != parent_token.size()) malformed("parent id");
      }
      nodes.push_back(node);
    } else {
      malformed("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_source) malformed("missing source line");

  for (const NodeLine& node : nodes) population.consumers.push_back(node.spec);
  Overlay overlay(population);  // validates ids/constraints

  for (const NodeLine& node : nodes)
    if (!node.online) overlay.set_offline(node.spec.id);

  // Replay attaches parent-first so every edge passes can_attach().
  std::vector<char> attached(overlay.node_count(), 0);
  attached[kSourceId] = 1;
  std::function<void(NodeId)> attach_chain = [&](NodeId id) {
    if (attached[id]) return;
    attached[id] = 1;  // set first: a parent cycle would otherwise recurse
    const NodeId parent = nodes[id - 1].parent;
    if (parent == kNoNode) return;
    if (parent >= overlay.node_count()) malformed("parent out of range");
    attach_chain(parent);
    if (!overlay.can_attach(id, parent))
      malformed("edge " + std::to_string(id) + " <- " +
                std::to_string(parent) + " violates constraints");
    overlay.attach(id, parent);
  };
  for (NodeId id = 1; id < overlay.node_count(); ++id) attach_chain(id);
  overlay.audit();
  return overlay;
}

Overlay from_snapshot(const std::string& text) {
  std::istringstream in(text);
  return read_snapshot(in);
}

bool same_structure(const Overlay& a, const Overlay& b) {
  if (a.node_count() != b.node_count()) return false;
  if (a.fanout_of(kSourceId) != b.fanout_of(kSourceId)) return false;
  for (NodeId id = 1; id < a.node_count(); ++id) {
    if (a.spec_of(id) != b.spec_of(id)) return false;
    if (a.online(id) != b.online(id)) return false;
    if (a.parent(id) != b.parent(id)) return false;
  }
  return true;
}

}  // namespace lagover
