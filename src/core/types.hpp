// Fundamental vocabulary types for LagOver (paper Table 1).
//
// A node i is written i_f^l in the paper: f is its maximum fanout (how
// many children it will serve) and l its delay constraint (the maximum
// staleness, in overlay time units, it tolerates). Node 0 is the feed
// source; it only supports pulls, and a direct child polling at period
// T = 1 observes delay 1, so a node at tree depth d observes delay d.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lagover {

/// Node identifier. Node 0 is always the feed source.
using NodeId = std::uint32_t;

/// The feed source (paper: "Node 0").
inline constexpr NodeId kSourceId = 0;

/// Sentinel for "no node" (e.g. Parent() of a chain root).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Construction proceeds in discrete rounds (decoupled from the latency
/// unit, per paper Section 2.1.1).
using Round = std::uint64_t;

/// Delay measured in overlay time units (= tree depth under the
/// delay-equals-depth model established in Section 3.2's example).
using Delay = int;

/// A consumer's declared constraints: i_f^l in the paper's notation.
struct Constraints {
  /// Maximum number of children this node will serve (f_i >= 0).
  int fanout = 0;
  /// Maximum tolerated delay in time units (l_i >= 1).
  Delay latency = 1;

  friend bool operator==(const Constraints&, const Constraints&) = default;
};

/// A node together with its constraints. Populations are given as the
/// source fanout plus one NodeSpec per consumer (ids 1..N).
struct NodeSpec {
  NodeId id = kNoNode;
  Constraints constraints;

  friend bool operator==(const NodeSpec&, const NodeSpec&) = default;
};

/// Which construction algorithm drives interactions (Section 3).
enum class AlgorithmKind {
  kGreedy,  ///< strictly latency-ordered: i <- j implies l_j <= l_i
  kHybrid,  ///< Algorithm 2: jointly optimizes fanout and latency
  /// Pure fanout preference ignoring latency constraints — the paper's
  /// Section 3.4 hypothetical, as a baseline (min-depth trees, but
  /// strict consumers end up violated).
  kFanoutGreedy,
};

/// The four Oracles of Section 2.1.4 (paper evaluation labels O1..O3).
enum class OracleKind {
  kRandom,               ///< O1: any random peer (no global information)
  kRandomCapacity,       ///< O2a: random peer with free fanout
  kRandomDelayCapacity,  ///< O2b: free fanout AND delay below querier's l
  kRandomDelay,          ///< O3: delay below querier's l, capacity ignored
};

/// Whether the source supports only pulls (RSS-style) or can push to its
/// direct children (Section 2.1.2; Algorithm 2 branches on this).
enum class SourceMode {
  kPullOnly,
  kPush,
};

std::string to_string(AlgorithmKind kind);
std::string to_string(OracleKind kind);
std::string to_string(SourceMode mode);

/// Paper evaluation label for an Oracle ("O1", "O2a", "O2b", "O3").
std::string paper_label(OracleKind kind);

/// Renders a node in the paper's i_f^l notation, e.g. "3_2^4".
std::string to_notation(const NodeSpec& spec);

/// A complete experiment population: the source's fanout plus all
/// consumer specs (ids are 1..consumers.size() in order).
struct Population {
  int source_fanout = 0;
  std::vector<NodeSpec> consumers;

  /// Total number of consumers (excluding the source).
  std::size_t size() const noexcept { return consumers.size(); }
};

/// Validates ids are 1..N in order and constraints are in range; throws
/// InvalidArgument otherwise. Called by Overlay's constructor.
void validate(const Population& population);

}  // namespace lagover
