#include "core/fanout_greedy.hpp"

#include "common/error.hpp"

namespace lagover {

bool FanoutGreedyProtocol::attach_ignoring_latency(Overlay& overlay, NodeId c,
                                                   NodeId p) {
  if (!overlay.can_attach(c, p)) return false;
  overlay.attach(c, p);
  ++counters_.plain_attaches;
  return true;
}

InteractionResult FanoutGreedyProtocol::interact(Overlay& overlay, NodeId i,
                                                 NodeId j) {
  ++counters_.interactions;
  InteractionResult result;
  if (overlay.in_subtree(j, i)) {
    ++counters_.wasted_interactions;
    return result;
  }

  const NodeId pj = overlay.parent(j);
  if (pj == kNoNode) {
    // Two group roots: the larger total fanout hosts (ties: lower id).
    const int fi = overlay.fanout_of(i);
    const int fj = overlay.fanout_of(j);
    NodeId parent = fi != fj ? (fi > fj ? i : j) : (i < j ? i : j);
    NodeId child = parent == i ? j : i;
    if (!attach_ignoring_latency(overlay, child, parent)) {
      // Preferred host saturated: try the other orientation.
      attach_ignoring_latency(overlay, parent, child);
    }
    result.attached = overlay.has_parent(i);
    return result;
  }

  // j is in a chain. A strictly higher-fanout i takes j's slot and
  // adopts it (the latency-blind analogue of hybrid's interior rule:
  // capacity bubbles upward, which is what actually minimizes depth).
  if (overlay.fanout_of(i) > overlay.fanout_of(j) &&
      overlay.fanout_of(i) >= 1 && !overlay.in_subtree(pj, i)) {
    overlay.detach(j);
    if (overlay.free_fanout(i) <= 0) {
      // Make room by discarding the smallest-fanout child (it brings
      // the least capacity upward).
      NodeId discard = kNoNode;
      for (NodeId child : overlay.children(i))
        if (discard == kNoNode ||
            overlay.fanout_of(child) < overlay.fanout_of(discard))
          discard = child;
      overlay.detach(discard);
      ++counters_.child_discards;
    }
    overlay.attach(i, pj);
    LAGOVER_ASSERT(overlay.can_attach(j, i));
    overlay.attach(j, i);
    ++counters_.replacements;
    result.attached = true;
    return result;
  }

  // Otherwise take any free slot; a saturated host refers i upstream
  // (shallower nodes are the ones with spare capacity in a min-depth
  // tree).
  if (attach_ignoring_latency(overlay, i, j)) {
    result.attached = true;
    return result;
  }
  if (pj != kSourceId) {
    result.referral = pj;
  } else {
    result.referral = kSourceId;
  }
  return result;
}

}  // namespace lagover
